/// \file oracle.hpp
/// Bridge between the independent simulator and the core problem model, so
/// generated scenarios can be cross-checked differentially:
///
///   instance runs  ->  SimTrain routes        (simTrainsFor)
///   sim timeline   ->  core::Solution traces  (solutionFromSimulation)
///
/// For trains occupying one segment (every generated train), a completed
/// simulation converts into a Solution that passes core::validateSolution,
/// making "greedy simulation completes" a machine-checked SAT witness.
#pragma once

#include <vector>

#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "sim/simulator.hpp"

namespace etcs::gen {

/// Simulator inputs for an instance's runs, in run order: shortest-path
/// head routes with the discretized train parameters.
[[nodiscard]] std::vector<sim::SimTrain> simTrainsFor(const core::Instance& instance);

/// Run the greedy simulator for the instance's runs on `layout`, bounded by
/// the instance horizon when `maxSteps` is 0.
[[nodiscard]] sim::SimResult simulate(const core::Instance& instance,
                                      const core::VssLayout& layout, int maxSteps = 0);

/// Convert a simulation into a Solution on `layout`: the timeline becomes
/// the per-run traces (clipped to the instance horizon). The caller is
/// responsible for only validating results of completed simulations.
[[nodiscard]] core::Solution solutionFromSimulation(const core::Instance& instance,
                                                    const core::VssLayout& layout,
                                                    const sim::SimResult& result);

}  // namespace etcs::gen
