#include "gen/generator.hpp"

#include <algorithm>
#include <array>
#include <random>
#include <string>

#include "railway/segment_graph.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace etcs::gen {

namespace {

using rail::Network;
using rail::Schedule;
using rail::SegmentGraph;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

/// Deterministic random stream. Raw mt19937_64 outputs with modulo mapping:
/// the engine is fully specified by the standard while the distribution
/// templates are implementation-defined, so generated fixtures stay
/// byte-identical across standard libraries. Modulo bias is irrelevant for
/// scenario sampling.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [lo, hi], inclusive.
    int range(int lo, int hi) {
        ETCS_REQUIRE_MSG(lo <= hi, "empty range");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(engine_() % span);
    }

    bool chance(int percent) { return range(0, 99) < percent; }

private:
    std::mt19937_64 engine_;
};

struct Topology {
    Network network;
    std::vector<StationId> stations;  ///< candidate origins/destinations
    bool singleTrack = false;         ///< bias sampling toward one direction
};

/// Two parallel one-segment platform tracks between fresh nodes; the motif
/// every family with passing opportunities is built from.
void addStationMotif(Network& n, const std::string& tag, NodeId west, NodeId east,
                     std::int64_t unit, std::vector<StationId>& stations) {
    const auto a = n.addTrack(tag + "a", west, east, Meters(unit));
    const auto b = n.addTrack(tag + "b", west, east, Meters(unit));
    n.addTtd("T" + tag + "a", {a});
    n.addTtd("T" + tag + "b", {b});
    stations.push_back(n.addStation("St" + tag, a, Meters(0)));
    stations.push_back(n.addStation("St" + tag + "b", b, Meters(0)));
}

Topology buildCorridor(Rng& rng, int size, std::int64_t unit) {
    const int stations = std::max(1, size);
    Topology t{Network("corridor"), {}, false};
    NodeId previousEast;
    for (int i = 0; i < stations; ++i) {
        const std::string tag = std::to_string(i);
        const auto west = t.network.addNode("w" + tag);
        const auto east = t.network.addNode("e" + tag);
        if (i > 0) {
            const auto line = t.network.addTrack("l" + tag, previousEast, west,
                                                 Meters(unit * rng.range(1, 4)));
            t.network.addTtd("Tl" + tag, {line});
        }
        addStationMotif(t.network, tag, west, east, unit, t.stations);
        previousEast = east;
    }
    return t;
}

Topology buildStation(Rng& rng, int size, std::int64_t unit) {
    const int platforms = std::max(1, size);
    Topology t{Network("station"), {}, false};
    const auto a = t.network.addNode("A");
    const auto l = t.network.addNode("L");
    const auto r = t.network.addNode("R");
    const auto b = t.network.addNode("B");
    const std::int64_t westLen = unit * rng.range(2, 3);
    const std::int64_t eastLen = unit * rng.range(2, 3);
    const auto west = t.network.addTrack("aw", a, l, Meters(westLen));
    t.network.addTtd("Taw", {west});
    t.stations.push_back(t.network.addStation("West", west, Meters(0)));
    for (int i = 0; i < platforms; ++i) {
        const std::string tag = std::to_string(i);
        const auto p = t.network.addTrack("p" + tag, l, r, Meters(unit));
        t.network.addTtd("Tp" + tag, {p});
        t.stations.push_back(t.network.addStation("P" + tag, p, Meters(0)));
    }
    const auto east = t.network.addTrack("ae", r, b, Meters(eastLen));
    t.network.addTtd("Tae", {east});
    t.stations.push_back(t.network.addStation("East", east, Meters(eastLen - unit)));
    return t;
}

Topology buildJunction(Rng& rng, int size, std::int64_t unit) {
    const int branches = std::max(2, size);
    Topology t{Network("junction"), {}, false};
    const auto hub = t.network.addNode("J");
    for (int i = 0; i < branches; ++i) {
        const std::string tag = std::to_string(i);
        const auto mid = t.network.addNode("m" + tag);
        const auto end = t.network.addNode("t" + tag);
        const auto line =
            t.network.addTrack("br" + tag, hub, mid, Meters(unit * rng.range(1, 3)));
        const auto stationTrack = t.network.addTrack("st" + tag, mid, end, Meters(unit));
        t.network.addTtd("Tbr" + tag, {line});
        t.network.addTtd("Tst" + tag, {stationTrack});
        t.stations.push_back(t.network.addStation("St" + tag, stationTrack, Meters(0)));
    }
    return t;
}

Topology buildRing(Rng& rng, int size, std::int64_t unit) {
    const int motifs = std::max(2, size);
    Topology t{Network("ring"), {}, false};
    std::vector<NodeId> west(static_cast<std::size_t>(motifs));
    std::vector<NodeId> east(static_cast<std::size_t>(motifs));
    for (int i = 0; i < motifs; ++i) {
        const std::string tag = std::to_string(i);
        west[static_cast<std::size_t>(i)] = t.network.addNode("w" + tag);
        east[static_cast<std::size_t>(i)] = t.network.addNode("e" + tag);
        addStationMotif(t.network, tag, west[static_cast<std::size_t>(i)],
                        east[static_cast<std::size_t>(i)], unit, t.stations);
    }
    for (int i = 0; i < motifs; ++i) {
        const std::string tag = std::to_string(i);
        const auto line = t.network.addTrack(
            "l" + tag, east[static_cast<std::size_t>(i)],
            west[static_cast<std::size_t>((i + 1) % motifs)], Meters(unit * rng.range(1, 3)));
        t.network.addTtd("Tl" + tag, {line});
    }
    return t;
}

Topology buildSingleTrack(Rng& rng, int size, std::int64_t unit) {
    const int blocks = std::max(1, size);
    Topology t{Network("single_track"), {}, true};
    auto previous = t.network.addNode("n0");
    for (int i = 0; i < blocks; ++i) {
        const std::string tag = std::to_string(i);
        // A one-block line still needs two stations on distinct segments.
        const int units = blocks == 1 ? rng.range(2, 4) : rng.range(1, 3);
        std::string nextName = "n";
        nextName += std::to_string(i + 1);
        const auto next = t.network.addNode(nextName);
        const auto track = t.network.addTrack("t" + tag, previous, next, Meters(unit * units));
        t.network.addTtd("Tt" + tag, {track});
        t.stations.push_back(t.network.addStation("St" + tag, track, Meters(0)));
        if (i + 1 == blocks) {
            t.stations.push_back(
                t.network.addStation("End", track, Meters(unit * (units - 1))));
        }
        previous = next;
    }
    return t;
}

Topology buildNetwork(Rng& rng, int size, std::int64_t unit) {
    const int hubs = std::max(2, size);
    Topology t{Network("synthnet"), {}, false};
    std::vector<NodeId> west(static_cast<std::size_t>(hubs));
    std::vector<NodeId> east(static_cast<std::size_t>(hubs));
    for (int i = 0; i < hubs; ++i) {
        const std::string tag = std::to_string(i);
        west[static_cast<std::size_t>(i)] = t.network.addNode("h" + tag + "w");
        east[static_cast<std::size_t>(i)] = t.network.addNode("h" + tag + "e");
        const int platforms = rng.range(1, 2);
        for (int p = 0; p < platforms; ++p) {
            const std::string ptag = tag + "p" + std::to_string(p);
            const auto track = t.network.addTrack(
                "h" + ptag, west[static_cast<std::size_t>(i)],
                east[static_cast<std::size_t>(i)], Meters(unit));
            t.network.addTtd("Th" + ptag, {track});
            t.stations.push_back(t.network.addStation("H" + ptag, track, Meters(0)));
        }
    }
    // Random spanning tree over the hubs; connectors are plain lines or
    // lines with a passing loop in the middle (a stitched corridor motif).
    auto connect = [&](int from, int to, const std::string& tag) {
        const auto a = east[static_cast<std::size_t>(from)];
        const auto b = west[static_cast<std::size_t>(to)];
        if (rng.chance(50)) {
            const auto line = t.network.addTrack("c" + tag, a, b, Meters(unit * rng.range(1, 3)));
            t.network.addTtd("Tc" + tag, {line});
        } else {
            const auto m1 = t.network.addNode("c" + tag + "m1");
            const auto m2 = t.network.addNode("c" + tag + "m2");
            const auto in = t.network.addTrack("c" + tag + "i", a, m1,
                                               Meters(unit * rng.range(1, 2)));
            const auto loopA = t.network.addTrack("c" + tag + "a", m1, m2, Meters(unit));
            const auto loopB = t.network.addTrack("c" + tag + "b", m1, m2, Meters(unit));
            const auto out = t.network.addTrack("c" + tag + "o", m2, b,
                                                Meters(unit * rng.range(1, 2)));
            t.network.addTtd("Tc" + tag + "i", {in});
            t.network.addTtd("Tc" + tag + "a", {loopA});
            t.network.addTtd("Tc" + tag + "b", {loopB});
            t.network.addTtd("Tc" + tag + "o", {out});
        }
    };
    for (int i = 1; i < hubs; ++i) {
        connect(rng.range(0, i - 1), i, std::to_string(i));
    }
    if (hubs >= 3 && rng.chance(60)) {
        connect(hubs - 1, 0, "ring");  // one extra edge closes a cycle
    }
    return t;
}

Topology buildTopology(Rng& rng, const GenParams& params) {
    const std::int64_t unit = params.resolution.spatial.count();
    switch (params.family) {
        case Family::Corridor: return buildCorridor(rng, params.size, unit);
        case Family::Station: return buildStation(rng, params.size, unit);
        case Family::Junction: return buildJunction(rng, params.size, unit);
        case Family::Ring: return buildRing(rng, params.size, unit);
        case Family::SingleTrack: return buildSingleTrack(rng, params.size, unit);
        case Family::Network: return buildNetwork(rng, params.size, unit);
    }
    throw InputError("unknown topology family");
}

/// Smallest whole km/h giving at least `segments` segments per step, so
/// discretization never rounds a sampled train down to zero movement.
std::int64_t speedKmhFor(int segments, const Resolution& resolution) {
    const std::int64_t rs = resolution.spatial.count();
    const std::int64_t rt = resolution.temporal.count();
    return (36 * segments * rs + 10 * rt - 1) / (10 * rt);
}

/// The lint/encoder shortest-path lower bound on travel steps (L024).
int travelLowerBound(int distance, int lengthSegments, int speedSegments) {
    const int effective = std::max(0, distance - (lengthSegments - 1));
    return (effective + speedSegments - 1) / speedSegments;
}

struct SampledTraffic {
    TrainSet trains;
    std::vector<StationId> origins;
    std::vector<StationId> destinations;
    std::vector<int> departureSteps;
    std::vector<sim::SimTrain> simTrains;
    std::vector<int> arrivalSteps;
};

}  // namespace

std::string_view familyName(Family family) {
    switch (family) {
        case Family::Corridor: return "corridor";
        case Family::Station: return "station";
        case Family::Junction: return "junction";
        case Family::Ring: return "ring";
        case Family::SingleTrack: return "single_track";
        case Family::Network: return "network";
    }
    return "unknown";
}

std::string_view scheduleKindName(ScheduleKind kind) {
    switch (kind) {
        case ScheduleKind::Feasible: return "feasible";
        case ScheduleKind::Tight: return "tight";
        case ScheduleKind::Infeasible: return "infeasible";
    }
    return "unknown";
}

std::optional<Family> parseFamily(std::string_view name) {
    for (Family family : allFamilies()) {
        if (name == familyName(family)) {
            return family;
        }
    }
    return std::nullopt;
}

std::optional<ScheduleKind> parseScheduleKind(std::string_view name) {
    for (ScheduleKind kind : allScheduleKinds()) {
        if (name == scheduleKindName(kind)) {
            return kind;
        }
    }
    return std::nullopt;
}

std::span<const Family> allFamilies() {
    static constexpr std::array<Family, 6> kFamilies = {
        Family::Corridor, Family::Station,     Family::Junction,
        Family::Ring,     Family::SingleTrack, Family::Network,
    };
    return kFamilies;
}

std::span<const ScheduleKind> allScheduleKinds() {
    static constexpr std::array<ScheduleKind, 3> kKinds = {
        ScheduleKind::Feasible, ScheduleKind::Tight, ScheduleKind::Infeasible};
    return kKinds;
}

GeneratedScenario generate(const GenParams& params) {
    ETCS_REQUIRE_MSG(params.trains >= 0, "train count must be nonnegative");
    ETCS_REQUIRE_MSG(params.resolution.spatial.count() > 0 &&
                         params.resolution.temporal.count() > 0,
                     "resolution must be positive");
    Rng rng(params.seed);
    Topology topology = buildTopology(rng, params);
    topology.network.validate();

    GeneratedScenario out;
    out.params = params;
    if (params.trains == 0) {
        // An empty schedule is vacuously satisfiable; coerce the kind so
        // the name and manifest never claim tightness or infeasibility.
        out.params.schedule = ScheduleKind::Feasible;
    }
    out.name = std::string(familyName(out.params.family)) + "_s" +
               std::to_string(out.params.seed) + "_n" + std::to_string(out.params.size) +
               "_t" + std::to_string(out.params.trains) + "_" +
               std::string(scheduleKindName(out.params.schedule));
    out.network = std::move(topology.network);

    if (params.trains == 0) {
        out.simCompleted = true;  // trivially: nothing to move
        return out;
    }

    const SegmentGraph graph(out.network, params.resolution);
    const sim::Simulator simulator(graph,
                                   std::vector<bool>(graph.numNodes(), true));
    const int numStations = static_cast<int>(topology.stations.size());
    const std::int64_t rs = params.resolution.spatial.count();

    // Sample traffic until the greedy simulation on the finest layout
    // completes with every train entering exactly at its departure step (the
    // encoding pins exact departures, so a delayed entry would invalidate
    // the witness). Contention-heavy draws are retried; the requested train
    // count is reduced as a last resort. A single staggered train always
    // completes, so the loop terminates.
    SampledTraffic sample;
    bool sampled = false;
    const int maxAttempts = 6 * std::max(1, params.trains) + 6;
    for (int attempt = 0; attempt < maxAttempts && !sampled; ++attempt) {
        const int count = std::max(1, params.trains - attempt / 6);
        const bool sameDirection = topology.singleTrack && rng.chance(70);
        SampledTraffic candidate;
        int maxDeparture = 0;
        bool valid = true;
        for (int i = 0; i < count; ++i) {
            const int speedClass = rng.range(1, 3);
            const auto speed =
                Speed::fromKmPerHour(speedKmhFor(speedClass, params.resolution));
            const auto length =
                Meters(rng.range(static_cast<int>(std::max<std::int64_t>(1, rs / 2)),
                                 static_cast<int>(rs)));
            const TrainId id =
                candidate.trains.addTrain("tr" + std::to_string(i), speed, length);
            int a = rng.range(0, numStations - 1);
            int b = numStations > 1 ? rng.range(0, numStations - 2) : a;
            if (numStations > 1 && b >= a) {
                ++b;
            }
            if (sameDirection && a > b) {
                std::swap(a, b);
            }
            const StationId origin = topology.stations[static_cast<std::size_t>(a)];
            const StationId destination = topology.stations[static_cast<std::size_t>(b)];
            const int departure = i * rng.range(1, 2) + rng.range(0, 1);
            maxDeparture = std::max(maxDeparture, departure);

            sim::SimTrain train;
            train.train = id;
            train.route = graph.shortestPath(graph.segmentOfStation(origin),
                                             graph.segmentOfStation(destination));
            train.departureStep = departure;
            train.lengthSegments = params.resolution.trainLengthSegments(length);
            train.speedSegments = params.resolution.segmentsPerStep(speed);
            if (train.route.size() < 2) {
                // Disconnected pick, or two stations discretizing onto the
                // same segment: such a run has a zero travel lower bound, so
                // no deadline distortion could ever make it infeasible.
                valid = false;
                break;
            }
            candidate.origins.push_back(origin);
            candidate.destinations.push_back(destination);
            candidate.departureSteps.push_back(departure);
            candidate.simTrains.push_back(std::move(train));
        }
        if (!valid) {
            continue;
        }
        const int maxSteps = std::min(
            500, maxDeparture + static_cast<int>(graph.numSegments()) * (count + 1) * 2 + 16);
        const auto result = simulator.run(candidate.simTrains, maxSteps);
        if (!result.completed) {
            continue;
        }
        bool punctual = true;
        for (int i = 0; i < count && punctual; ++i) {
            const auto step = static_cast<std::size_t>(candidate.departureSteps[static_cast<std::size_t>(i)]);
            punctual = result.timeline[step][static_cast<std::size_t>(i)].present;
        }
        if (!punctual) {
            continue;
        }
        candidate.arrivalSteps = result.arrivalStep;
        sample = std::move(candidate);
        sampled = true;
    }
    ETCS_REQUIRE_MSG(sampled, "scenario sampling did not converge");

    // Deadlines: start from the simulated arrivals (a witness), then distort
    // one of them for the tight/infeasible kinds.
    const std::size_t runs = sample.simTrains.size();
    std::vector<int> deadlines = sample.arrivalSteps;
    if (params.schedule == ScheduleKind::Tight) {
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto& t = sample.simTrains[i];
            const int bound =
                sample.departureSteps[i] +
                travelLowerBound(static_cast<int>(t.route.size()) - 1, t.lengthSegments,
                                 t.speedSegments);
            if (deadlines[i] - 1 >= bound) {
                candidates.push_back(i);
            }
        }
        if (!candidates.empty()) {
            const std::size_t pick =
                candidates[static_cast<std::size_t>(rng.range(0, static_cast<int>(candidates.size()) - 1))];
            --deadlines[pick];
        }
    } else if (params.schedule == ScheduleKind::Infeasible) {
        const auto pick = static_cast<std::size_t>(rng.range(0, static_cast<int>(runs) - 1));
        const auto& t = sample.simTrains[pick];
        const int bound = travelLowerBound(static_cast<int>(t.route.size()) - 1,
                                           t.lengthSegments, t.speedSegments);
        ETCS_REQUIRE_MSG(bound >= 1, "infeasible run needs a nontrivial route");
        deadlines[pick] = sample.departureSteps[pick] + bound - 1;
    }

    // A lone train departing at step 0 whose deadline was distorted down to
    // step 0 would give the schedule a zero horizon (core::Instance requires
    // a positive one). Translating the whole timetable one step later
    // preserves both the simulated witness and the distortion's verdict.
    int latestStep = 0;
    for (std::size_t i = 0; i < runs; ++i) {
        latestStep = std::max(latestStep, std::max(sample.departureSteps[i], deadlines[i]));
    }
    if (latestStep == 0) {
        for (std::size_t i = 0; i < runs; ++i) {
            ++sample.departureSteps[i];
            ++sample.arrivalSteps[i];
            ++deadlines[i];
        }
    }

    out.trains = std::move(sample.trains);
    for (std::size_t i = 0; i < runs; ++i) {
        TrainRun run;
        run.train = sample.simTrains[i].train;
        run.origin = sample.origins[i];
        run.departure = params.resolution.timeOf(sample.departureSteps[i]);
        run.stops.push_back(TimedStop{sample.destinations[i],
                                      params.resolution.timeOf(deadlines[i]), Seconds(0)});
        out.schedule.addRun(std::move(run));
    }
    out.simCompleted = true;
    out.simArrivalSteps = std::move(sample.arrivalSteps);
    return out;
}

std::string manifestJson(const GeneratedScenario& scenario) {
    const GenParams& p = scenario.params;
    std::string json = "{\n";
    auto field = [&json](const std::string& key, const std::string& value, bool quote) {
        json += "  \"" + key + "\": " + (quote ? "\"" + value + "\"" : value) + ",\n";
    };
    field("generator", "etcsgen", true);
    field("version", "1", false);
    field("name", scenario.name, true);
    field("family", std::string(familyName(p.family)), true);
    field("seed", std::to_string(p.seed), false);
    field("size", std::to_string(p.size), false);
    field("trains", std::to_string(p.trains), false);
    field("schedule", std::string(scheduleKindName(p.schedule)), true);
    field("rs_m", std::to_string(p.resolution.spatial.count()), false);
    field("rt_s", std::to_string(p.resolution.temporal.count()), false);
    field("nodes", std::to_string(scenario.network.numNodes()), false);
    field("tracks", std::to_string(scenario.network.numTracks()), false);
    field("ttds", std::to_string(scenario.network.numTtds()), false);
    field("stations", std::to_string(scenario.network.numStations()), false);
    field("total_m", std::to_string(scenario.network.totalLength().count()), false);
    field("runs", std::to_string(scenario.schedule.size()), false);
    field("horizon_s", std::to_string(scenario.schedule.horizon().count()), false);
    json += "  \"sim_completed\": ";
    json += scenario.simCompleted ? "true" : "false";
    json += "\n}\n";
    return json;
}

}  // namespace etcs::gen
