#include "gen/oracle.hpp"

#include <algorithm>

namespace etcs::gen {

std::vector<sim::SimTrain> simTrainsFor(const core::Instance& instance) {
    std::vector<sim::SimTrain> trains;
    trains.reserve(instance.numRuns());
    for (const core::DiscreteRun& run : instance.runs()) {
        sim::SimTrain t;
        t.train = run.train;
        t.route = instance.graph().shortestPath(run.originSegment, run.destination().segment);
        t.departureStep = run.departureStep;
        t.lengthSegments = run.lengthSegments;
        t.speedSegments = run.speedSegments;
        trains.push_back(std::move(t));
    }
    return trains;
}

sim::SimResult simulate(const core::Instance& instance, const core::VssLayout& layout,
                        int maxSteps) {
    const sim::Simulator simulator(instance.graph(), layout.flags());
    if (maxSteps <= 0) {
        maxSteps = instance.horizonSteps();
    }
    return simulator.run(simTrainsFor(instance), maxSteps);
}

core::Solution solutionFromSimulation(const core::Instance& instance,
                                      const core::VssLayout& layout,
                                      const sim::SimResult& result) {
    core::Solution solution{layout, {}, 0, layout.sectionCount(instance.graph())};
    const int horizon = instance.horizonSteps();
    solution.traces.resize(instance.numRuns());
    for (std::size_t run = 0; run < instance.numRuns(); ++run) {
        core::RunTrace& trace = solution.traces[run];
        trace.occupied.resize(static_cast<std::size_t>(horizon));
        for (int t = 0; t < horizon && t < static_cast<int>(result.timeline.size()); ++t) {
            const auto& snapshot = result.timeline[static_cast<std::size_t>(t)][run];
            if (!snapshot.present) {
                continue;
            }
            trace.occupied[static_cast<std::size_t>(t)] = snapshot.occupied;
            trace.lastPresentStep = t;
        }
        if (result.arrivalStep[run] >= 0 && result.arrivalStep[run] < horizon) {
            trace.firstArrivalStep = result.arrivalStep[run];
        }
        solution.completionSteps =
            std::max(solution.completionSteps, trace.lastPresentStep + 1);
    }
    return solution;
}

}  // namespace etcs::gen
