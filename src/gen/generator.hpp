/// \file generator.hpp
/// Parameterized, seed-deterministic scenario generation.
///
/// Six topology families (corridors, stations with N platforms, junctions,
/// ring lines, single-track lines, and synthetic national networks stitched
/// from those motifs) are combined with a schedule sampler that produces
/// three kinds of schedules against the generated network:
///
///   * feasible:   arrival deadlines pinned at the exact arrival steps of a
///                 completed greedy simulation on the finest layout — the
///                 simulated timeline is a witness, so the verification
///                 instance is satisfiable by construction;
///   * tight:      one deadline tightened by a step below the simulated
///                 arrival (but not below the shortest-path lower bound), so
///                 the verdict is genuinely open — the solver may beat the
///                 greedy simulation or prove it optimal;
///   * infeasible: one deadline placed below the shortest-path lower bound,
///                 so the instance is provably unsatisfiable and the linter's
///                 L024 proof fires before any solving.
///
/// Everything is a pure function of GenParams (including the seed): the
/// random stream uses raw std::mt19937_64 outputs (fully specified by the
/// standard, unlike the distribution templates), so emitted `.rail`/`.sched`
/// files and manifests are byte-identical across platforms and runs.
/// See docs/GENERATOR.md for the catalogue and the reproduction workflow.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"
#include "util/units.hpp"

namespace etcs::gen {

enum class Family {
    Corridor,     ///< stations with passing loops joined by line blocks
    Station,      ///< one station with N parallel platforms between throats
    Junction,     ///< N branches with terminal stations meeting at a switch
    Ring,         ///< station motifs joined into a cycle
    SingleTrack,  ///< a plain line with no passing opportunities
    Network,      ///< a random tree of station hubs with loop/line connectors
};

enum class ScheduleKind {
    Feasible,    ///< SAT by construction (simulated witness)
    Tight,       ///< open verdict: one deadline a step under the witness
    Infeasible,  ///< UNSAT by construction (deadline under the lint bound)
};

struct GenParams {
    Family family = Family::Corridor;
    std::uint64_t seed = 1;
    int size = 3;    ///< family-specific extent: stations/platforms/branches/hubs
    int trains = 2;  ///< requested train count (reduced if sampling deadlocks)
    ScheduleKind schedule = ScheduleKind::Feasible;
    Resolution resolution{Meters(500), Seconds(60)};
};

/// A generated scenario plus the sampling facts needed to use it as an
/// oracle (the greedy-simulation arrival steps the deadlines derive from).
struct GeneratedScenario {
    GenParams params;
    std::string name;  ///< deterministic: <family>_s<seed>_n<size>_t<trains>_<kind>
    rail::Network network;
    rail::TrainSet trains;
    rail::Schedule schedule;
    bool simCompleted = false;        ///< greedy sampling simulation finished
    std::vector<int> simArrivalSteps;  ///< per run: greedy arrival step
};

[[nodiscard]] std::string_view familyName(Family family);
[[nodiscard]] std::string_view scheduleKindName(ScheduleKind kind);
[[nodiscard]] std::optional<Family> parseFamily(std::string_view name);
[[nodiscard]] std::optional<ScheduleKind> parseScheduleKind(std::string_view name);
[[nodiscard]] std::span<const Family> allFamilies();
[[nodiscard]] std::span<const ScheduleKind> allScheduleKinds();

/// Generate a scenario. Deterministic in `params`; the returned network
/// passes Network::validate() and the schedule is fully timed (so it feeds
/// the verification/generation tasks directly). With `params.trains == 0`
/// the schedule is empty and `schedule` is coerced to feasible.
[[nodiscard]] GeneratedScenario generate(const GenParams& params);

/// Deterministic single-line-per-field JSON manifest (seed, parameters and
/// instance facts) for exact reproduction of a generated scenario.
[[nodiscard]] std::string manifestJson(const GeneratedScenario& scenario);

}  // namespace etcs::gen
