#include "core/analysis.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>

#include "cnf/cardinality.hpp"

namespace etcs::core {

namespace {

std::unique_ptr<cnf::SatBackend> makeBackend(const TaskOptions& options) {
    if (options.backendFactory) {
        return options.backendFactory();
    }
    return cnf::makeInternalBackend();
}

}  // namespace

std::vector<TradeoffPoint> tradeoffCurve(const Instance& instance, int maxExtraBorders,
                                         const TaskOptions& options) {
    ETCS_REQUIRE_MSG(maxExtraBorders >= 0, "border budget must be non-negative");
    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(nullptr);

    const auto borders = encoder.freeBorderLiterals();
    // A budget of |borders| or more is unconstrained; clamp the sweep.
    const int maxUseful = static_cast<int>(borders.size());
    std::optional<cnf::Totalizer> totalizer;
    if (maxUseful > 0) {
        totalizer.emplace(*backend, borders);
    }

    const int lo = encoder.completionLowerBound();
    const int hi = instance.horizonSteps() - 1;

    std::vector<TradeoffPoint> curve;
    for (int k = 0; k <= maxExtraBorders; ++k) {
        TradeoffPoint point;
        point.extraBorders = k;
        std::vector<cnf::Literal> budget;
        if (k < maxUseful) {
            budget.push_back(totalizer->atMostAssumption(static_cast<std::size_t>(k)));
        }
        if (lo <= hi) {
            const auto search = opt::smallestFeasibleIndex(
                *backend, [&](int step) { return encoder.doneAllLiteral(step); }, lo, hi,
                options.timeSearch, budget);
            if (search.feasible) {
                point.feasible = true;
                point.completionSteps = search.index;
                point.sectionCount = encoder.decode().sectionCount;
            }
        }
        curve.push_back(point);
        if (k >= maxUseful) {
            break;  // further budgets cannot change anything
        }
    }
    return curve;
}

RobustnessReport delayRobustness(const Instance& instance, const VssLayout& layout,
                                 int maxDelaySteps, bool shiftArrivals,
                                 const TaskOptions& options) {
    ETCS_REQUIRE_MSG(maxDelaySteps >= 1, "need at least one delay step to check");
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "robustness analysis requires a fully timed schedule");

    const Seconds stepLength = instance.resolution().temporal;
    const auto& baseSchedule = instance.schedule();

    RobustnessReport report;
    report.feasible.resize(baseSchedule.size());
    report.toleranceSteps.assign(baseSchedule.size(), 0);

    for (std::size_t r = 0; r < baseSchedule.size(); ++r) {
        for (int delay = 1; delay <= maxDelaySteps; ++delay) {
            const Seconds shift = Seconds(stepLength.count() * delay);
            rail::Schedule delayed;
            for (std::size_t other = 0; other < baseSchedule.size(); ++other) {
                rail::TrainRun run = baseSchedule.runs()[other];
                if (other == r) {
                    run.departure = run.departure + shift;
                    if (shiftArrivals) {
                        for (rail::TimedStop& stop : run.stops) {
                            if (stop.arrival) {
                                stop.arrival = *stop.arrival + shift;
                            }
                        }
                    }
                }
                delayed.addRun(std::move(run));
            }
            if (shiftArrivals) {
                delayed.setHorizon(baseSchedule.horizon() + shift);
            }

            bool works = false;
            try {
                const Instance delayedInstance(instance.network(), instance.trains(), delayed,
                                               instance.resolution());
                // The layout's flags vector is sized by segment-graph nodes;
                // the delayed instance shares the network and resolution, so
                // the graphs are structurally identical.
                works = verifySchedule(delayedInstance, layout, options).feasible;
            } catch (const InputError&) {
                works = false;  // delay pushed the run outside the horizon
            }
            report.feasible[r].push_back(works);
            if (works && report.toleranceSteps[r] == delay - 1) {
                report.toleranceSteps[r] = delay;
            }
        }
    }
    return report;
}

GenerationResult generateLayoutWeighted(const Instance& instance,
                                        const std::function<int(SegNodeId)>& costOf,
                                        const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "layout generation requires a fully timed schedule");
    ETCS_REQUIRE_MSG(static_cast<bool>(costOf), "cost function required");
    const auto start = std::chrono::steady_clock::now();
    GenerationResult result;

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(nullptr);

    // Collect weights per candidate border node, in literal order.
    const auto& graph = instance.graph();
    std::vector<int> weights;
    std::vector<cnf::Literal> soft(encoder.freeBorderLiterals().begin(),
                                   encoder.freeBorderLiterals().end());
    std::size_t literalIndex = 0;
    for (std::size_t n = 0; n < graph.numNodes() && literalIndex < soft.size(); ++n) {
        if (!graph.node(SegNodeId(n)).fixedBorder) {
            const int cost = costOf(SegNodeId(n));
            ETCS_REQUIRE_MSG(cost > 0, "border costs must be positive");
            weights.push_back(cost);
            ++literalIndex;
        }
    }

    const auto minimized =
        opt::minimizeWeightedTrueLiterals(*backend, soft, weights, options.borderSearch);
    result.stats.solveCalls = minimized.solveCalls;
    result.feasible = minimized.feasible;
    if (result.feasible) {
        result.solution = encoder.decode();
        result.sectionCount = result.solution->sectionCount;
    }
    result.stats.numVariables = backend->numVariables();
    result.stats.numClauses = backend->numClauses();
    result.stats.runtimeSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

SlackReport scheduleSlack(const Instance& instance, const VssLayout& layout,
                          const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "slack analysis requires a fully timed schedule");
    const auto& baseSchedule = instance.schedule();
    const Seconds stepLength = instance.resolution().temporal;

    SlackReport report;
    report.tightestArrivalStep.assign(baseSchedule.size(), -1);
    report.slackSteps.assign(baseSchedule.size(), -1);

    for (std::size_t r = 0; r < baseSchedule.size(); ++r) {
        const DiscreteRun& run = instance.runs()[r];
        const int scheduled = *run.destination().arrivalStep;
        // Physical lower bound: departure plus unimpeded travel time.
        const int travel =
            instance.segmentDistance(run.originSegment, run.destination().segment);
        const int bound = run.departureStep + (travel + run.speedSegments - 1) /
                                                  run.speedSegments;

        // Binary search the smallest feasible arrival in [bound, scheduled].
        // Feasibility is monotone here: arriving later is never harder when
        // the train may keep standing at its destination.
        auto feasibleAt = [&](int arrivalStep) {
            rail::Schedule adjusted;
            for (std::size_t other = 0; other < baseSchedule.size(); ++other) {
                rail::TrainRun tweaked = baseSchedule.runs()[other];
                if (other == r) {
                    tweaked.stops.back().arrival =
                        Seconds(stepLength.count() * arrivalStep);
                }
                adjusted.addRun(std::move(tweaked));
            }
            adjusted.setHorizon(baseSchedule.horizon());
            const Instance adjustedInstance(instance.network(), instance.trains(), adjusted,
                                            instance.resolution());
            return verifySchedule(adjustedInstance, layout, options).feasible;
        };

        if (!feasibleAt(scheduled)) {
            continue;  // already infeasible as scheduled
        }
        int feasibleHi = scheduled;
        int infeasibleLo = bound - 1;
        while (infeasibleLo + 1 < feasibleHi) {
            const int mid = infeasibleLo + (feasibleHi - infeasibleLo) / 2;
            if (feasibleAt(mid)) {
                feasibleHi = mid;
            } else {
                infeasibleLo = mid;
            }
        }
        report.tightestArrivalStep[r] = feasibleHi;
        report.slackSteps[r] = scheduled - feasibleHi;
    }
    return report;
}

IndividualArrivalResult optimizeIndividualArrivals(const Instance& instance,
                                                   std::vector<std::size_t> priority,
                                                   const TaskOptions& options) {
    const auto start = std::chrono::steady_clock::now();
    IndividualArrivalResult result;
    result.doneSteps.assign(instance.numRuns(), -1);

    if (priority.empty()) {
        priority.resize(instance.numRuns());
        std::iota(priority.begin(), priority.end(), std::size_t{0});
    }
    ETCS_REQUIRE_MSG(priority.size() == instance.numRuns(),
                     "priority must list every run exactly once");

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(nullptr);

    const int horizon = instance.horizonSteps();
    // Every train must still be able to finish within the horizon while the
    // leaders grab their best arrivals -- otherwise the greedy lexicographic
    // choice could strand a lower-priority train.
    const cnf::Literal everyoneFinishes[] = {encoder.doneAllLiteral(horizon - 1)};
    ++result.stats.solveCalls;
    result.feasible = backend->solve(everyoneFinishes) == cnf::SolveStatus::Sat;
    for (std::size_t rank = 0; rank < priority.size() && result.feasible; ++rank) {
        const std::size_t run = priority[rank];
        const DiscreteRun& r = instance.runs()[run];
        // Earliest conceivable done step: travel time plus one step to leave.
        const int travel = instance.segmentDistance(r.originSegment,
                                                    r.destination().segment);
        const int lo = r.departureStep + (travel + r.speedSegments - 1) / r.speedSegments + 1;
        if (lo > horizon - 1) {
            result.feasible = false;
            break;
        }
        const auto search = opt::smallestFeasibleIndex(
            *backend, [&](int step) { return encoder.doneLiteral(run, step); }, lo,
            horizon - 1, options.timeSearch, everyoneFinishes);
        result.stats.solveCalls += search.solveCalls;
        if (!search.feasible) {
            result.feasible = false;
            break;
        }
        result.doneSteps[run] = search.index;
        // Freeze this train's arrival before optimizing the next one.
        backend->addUnit(encoder.doneLiteral(run, search.index));
    }

    if (result.feasible) {
        ++result.stats.solveCalls;
        const bool ok = backend->solve() == cnf::SolveStatus::Sat;
        ETCS_REQUIRE_MSG(ok, "lexicographically fixed instance must stay satisfiable");
        result.solution = encoder.decode();
    }
    result.stats.numVariables = backend->numVariables();
    result.stats.numClauses = backend->numClauses();
    result.stats.runtimeSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

}  // namespace etcs::core
