/// \file instance.hpp
/// A discretized problem instance: network, trains and schedule brought to
/// the common (r_s, r_t) grid of paper Sec. III-A.
///
/// The instance owns the segment graph and the per-run discrete data every
/// downstream component (encoder, simulator glue, validator) works with.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/segment_graph.hpp"
#include "railway/train.hpp"

namespace etcs::core {

using rail::Network;
using rail::Schedule;
using rail::SegmentGraph;
using rail::TrainRun;
using rail::TrainSet;

/// A stop brought onto the discrete grid.
struct DiscreteStop {
    StationId station;
    SegmentId segment;          ///< segment containing the station point
    std::optional<int> arrivalStep;  ///< pinned arrival step, if timed
    int dwellSteps = 1;         ///< consecutive steps the stop must be held
};

/// One train's run on the discrete grid.
struct DiscreteRun {
    TrainId train;
    SegmentId originSegment;
    int departureStep = 0;
    std::vector<DiscreteStop> stops;  ///< back() is the destination
    int lengthSegments = 1;           ///< l*_tr = ceil(l_tr / r_s)
    int speedSegments = 1;            ///< floor(s_tr * r_t / r_s)

    [[nodiscard]] const DiscreteStop& destination() const { return stops.back(); }
};

/// The discretized scenario. Immutable after construction.
class Instance {
public:
    /// Discretize. Throws InputError when a train cannot move at this
    /// resolution (speed rounds down to zero segments per step) or when a
    /// run's timing is inconsistent (arrival before departure).
    ///
    /// The instance keeps references to `network`, `trains` and `schedule`;
    /// the caller must keep them alive for the instance's lifetime.
    Instance(const Network& network, const TrainSet& trains, const Schedule& schedule,
             Resolution resolution);

    [[nodiscard]] const Network& network() const noexcept { return *network_; }
    [[nodiscard]] const TrainSet& trains() const noexcept { return *trains_; }
    [[nodiscard]] const Schedule& schedule() const noexcept { return *schedule_; }
    [[nodiscard]] const SegmentGraph& graph() const noexcept { return *graph_; }
    [[nodiscard]] Resolution resolution() const noexcept { return resolution_; }

    /// Number of time steps t_0 .. t_{H-1} under consideration.
    [[nodiscard]] int horizonSteps() const noexcept { return horizonSteps_; }

    [[nodiscard]] std::span<const DiscreteRun> runs() const noexcept { return runs_; }
    [[nodiscard]] std::size_t numRuns() const noexcept { return runs_.size(); }

    /// Hop distance between segments, cached (used by the encoder's cones).
    [[nodiscard]] int segmentDistance(SegmentId a, SegmentId b) const;

private:
    const Network* network_;
    const TrainSet* trains_;
    const Schedule* schedule_;
    std::unique_ptr<SegmentGraph> graph_;
    Resolution resolution_;
    int horizonSteps_ = 0;
    std::vector<DiscreteRun> runs_;
    // all-pairs segment distances (numSegments^2, computed once)
    std::vector<int> distance_;
};

}  // namespace etcs::core
