/// \file layout.hpp
/// A VSS layout: the assignment of the paper's border_v variables.
#pragma once

#include <vector>

#include "railway/segment_graph.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace etcs::core {

using rail::SegmentGraph;

/// A VSS layout over a segment graph. Fixed borders (TTD boundaries,
/// switches, endpoints) are always borders; this class tracks the additional
/// virtual borders chosen at the remaining candidate nodes.
class VssLayout {
public:
    /// The pure-TTD layout: no virtual borders.
    explicit VssLayout(const SegmentGraph& graph)
        : border_(graph.numNodes(), false) {}

    /// The finest layout: every candidate node is a border (the paper's
    /// "trivial way": each segment its own VSS).
    [[nodiscard]] static VssLayout finest(const SegmentGraph& graph) {
        VssLayout layout(graph);
        for (std::size_t n = 0; n < graph.numNodes(); ++n) {
            layout.border_[n] = true;
        }
        return layout;
    }

    void setBorder(SegNodeId node, bool border) { border_.at(node.get()) = border; }

    /// True when the node separates two VSS (fixed borders included).
    [[nodiscard]] bool isBorder(const SegmentGraph& graph, SegNodeId node) const {
        return graph.node(node).fixedBorder || border_.at(node.get());
    }

    /// Raw virtual-border flags, indexed by SegNodeId.
    [[nodiscard]] const std::vector<bool>& flags() const noexcept { return border_; }

    /// Number of virtual borders placed at candidate (non-fixed) nodes.
    [[nodiscard]] int virtualBorderCount(const SegmentGraph& graph) const {
        int count = 0;
        for (std::size_t n = 0; n < border_.size(); ++n) {
            if (border_[n] && !graph.node(SegNodeId(n)).fixedBorder) {
                ++count;
            }
        }
        return count;
    }

    /// Total number of TTD/VSS sections (the Table I "TTD/VSS" column).
    [[nodiscard]] int sectionCount(const SegmentGraph& graph) const {
        return graph.countSections(border_);
    }

private:
    std::vector<bool> border_;
};

}  // namespace etcs::core
