#include "core/pruning.hpp"

#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace etcs::core {

namespace {

lint::ReachAnalysis buildAnalysis(const Instance& instance) {
    std::vector<lint::ReachRun> runs;
    runs.reserve(instance.numRuns());
    for (const DiscreteRun& run : instance.runs()) {
        lint::ReachRun r;
        r.originSegment = run.originSegment;
        r.departureStep = run.departureStep;
        r.lengthSegments = run.lengthSegments;
        r.speedSegments = run.speedSegments;
        r.stops.reserve(run.stops.size());
        for (const DiscreteStop& stop : run.stops) {
            r.stops.push_back(lint::ReachStop{stop.segment, stop.arrivalStep, stop.dwellSteps});
        }
        runs.push_back(std::move(r));
    }
    return lint::ReachAnalysis(instance.graph(), std::move(runs), instance.horizonSteps());
}

}  // namespace

PruneTable::PruneTable(const Instance& instance) : analysis_(buildAnalysis(instance)) {}

void PruneTable::recordMetrics() const {
    auto& registry = obs::Registry::global();
    registry.counter("etcs.reach.runs").add(analysis_.numRuns());
    registry.counter("etcs.reach.iterations").add(analysis_.iterations());
    registry.counter("etcs.reach.violations").add(analysis_.violations().size());
    registry.counter("etcs.reach.cells.possible").add(analysis_.possibleCells());
    registry.counter("etcs.reach.cells.total").add(analysis_.totalCells());
    std::uint64_t promptRuns = 0;
    for (std::size_t run = 0; run < analysis_.numRuns(); ++run) {
        if (analysis_.promptCutoff(run)) {
            ++promptRuns;
        }
    }
    registry.counter("etcs.reach.prompt_cutoff_runs").add(promptRuns);
}

}  // namespace etcs::core
