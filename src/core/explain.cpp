#include "core/explain.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "cnf/collect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/drat_check.hpp"
#include "sat/solver.hpp"

namespace etcs::core {

namespace {

using sat::Literal;
using sat::SolveStatus;
using sat::Var;

/// Group identity: a provenance record minus the step. Steps are aggregated
/// into a range per group so one cited entry covers a whole time window.
using GroupKey = std::tuple<std::string_view, int, int, int, int>;  // family, run, run2, ttd, segment

struct Group {
    ClauseProvenance record;  ///< step kept as the group's stepFirst seed
    int stepFirst = -1;
    int stepLast = -1;
    std::vector<std::size_t> clauseIndices;  ///< core clause indices (into formula)
};

[[nodiscard]] GroupKey keyOf(const ClauseProvenance& r) {
    return {r.family, r.run, r.run2, r.ttd, r.segment};
}

[[nodiscard]] std::pair<const char*, lint::Severity> codeOf(std::string_view family) {
    if (family == "schedule_pins") {
        return {"E102", lint::Severity::Error};
    }
    if (family == "vss_separation") {
        return {"E103", lint::Severity::Error};
    }
    if (family == "pass_through") {
        return {"E104", lint::Severity::Error};
    }
    return {"E105", lint::Severity::Info};
}

[[nodiscard]] std::string stepText(int first, int last) {
    if (first < 0) {
        return {};
    }
    if (first == last) {
        return " at step " + std::to_string(first);
    }
    return " at steps " + std::to_string(first) + ".." + std::to_string(last);
}

[[nodiscard]] std::string trainName(const Instance& instance, int run) {
    if (run < 0 || static_cast<std::size_t>(run) >= instance.numRuns()) {
        return "?";
    }
    return instance.trains().train(instance.runs()[static_cast<std::size_t>(run)].train).name;
}

/// Station at `segment` on `run`'s itinerary; "origin" for the departure
/// segment; the bare segment label otherwise.
[[nodiscard]] std::string pinLocation(const Instance& instance, int run, int segment) {
    const std::string label =
        segment >= 0 ? instance.graph().segmentLabel(SegmentId(static_cast<std::size_t>(segment)))
                     : std::string("?");
    if (run < 0 || static_cast<std::size_t>(run) >= instance.numRuns() || segment < 0) {
        return "segment " + label;
    }
    const DiscreteRun& r = instance.runs()[static_cast<std::size_t>(run)];
    for (const DiscreteStop& stop : r.stops) {
        if (static_cast<int>(stop.segment.get()) == segment) {
            return "station " + instance.network().station(stop.station).name + " (segment " +
                   label + ")";
        }
    }
    if (static_cast<int>(r.originSegment.get()) == segment) {
        return "origin (segment " + label + ")";
    }
    return "segment " + label;
}

[[nodiscard]] std::string describeGroup(const Instance& instance, const Group& group) {
    const ClauseProvenance& r = group.record;
    const std::string steps = stepText(group.stepFirst, group.stepLast);
    if (r.family == "schedule_pins") {
        return "train " + trainName(instance, r.run) + ": schedule pin at " +
               pinLocation(instance, r.run, r.segment) + " cannot be satisfied" + steps;
    }
    if (r.family == "vss_separation") {
        std::string where;
        if (r.ttd >= 0) {
            where = " on TTD " +
                    instance.network().ttd(TtdId(static_cast<std::size_t>(r.ttd))).name;
        }
        if (r.segment >= 0) {
            where += " (segment " +
                     instance.graph().segmentLabel(SegmentId(static_cast<std::size_t>(r.segment))) +
                     ")";
        }
        return "trains " + trainName(instance, r.run) + " and " + trainName(instance, r.run2) +
               ": separation/headway conflict" + where + steps;
    }
    if (r.family == "pass_through") {
        if (r.run2 >= 0) {
            return "train " + trainName(instance, r.run) + " would pass through train " +
                   trainName(instance, r.run2) + steps;
        }
        return "train " + trainName(instance, r.run) + ": pass-through sweep envelope" + steps;
    }
    if (r.family == "chain_occupancy") {
        return "train " + trainName(instance, r.run) + ": occupancy-chain constraints" + steps;
    }
    if (r.family == "movement") {
        return "train " + trainName(instance, r.run) + ": movement constraints" + steps;
    }
    if (r.family == "done_machinery") {
        return "train " + trainName(instance, r.run) + ": completion (done) machinery" + steps;
    }
    if (r.family == "done_all_selectors") {
        return "all-trains-done selector" + steps;
    }
    return std::string(r.family) + " constraints" + steps;
}

[[nodiscard]] bool recordLess(const ClauseProvenance& a, const ClauseProvenance& b) {
    return std::tie(a.family, a.run, a.run2, a.step, a.ttd, a.segment) <
           std::tie(b.family, b.run, b.run2, b.step, b.ttd, b.segment);
}

/// Deletion-based group-MUS shrinking: guard every group's core clauses with
/// a fresh selector, keep untagged core clauses hard, and probe dropping one
/// group at a time on a warm incremental solver. Unsat probes tighten the
/// active set to the failed-assumption core; Sat/Unknown probes keep the
/// group (sound — only removals need proof). Returns the surviving flags.
std::vector<char> shrinkGroups(const sat::CnfFormula& formula,
                               const std::vector<Group>& groups,
                               const std::vector<std::size_t>& untaggedCoreClauses,
                               std::int64_t budget, std::size_t& solves) {
    std::vector<char> active(groups.size(), 1);
    if (groups.size() <= 1) {
        return active;
    }
    obs::Span span("etcs.explain.shrink");

    sat::Solver solver;
    for (int v = 0; v < formula.numVariables; ++v) {
        (void)solver.addVariable();
    }
    std::vector<Var> selector(groups.size());
    std::vector<Literal> guarded;
    bool ok = true;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        selector[g] = solver.addVariable();
        for (const std::size_t clause : groups[g].clauseIndices) {
            guarded.assign(1, Literal::negative(selector[g]));
            const auto& lits = formula.clauses[clause];
            guarded.insert(guarded.end(), lits.begin(), lits.end());
            ok = solver.addClause(guarded) && ok;
        }
    }
    for (const std::size_t clause : untaggedCoreClauses) {
        ok = solver.addClause(formula.clauses[clause]) && ok;
    }

    const auto groupsOfCore = [&](std::span<const Literal> core) {
        std::vector<char> survivors(groups.size(), 0);
        for (const Literal l : core) {
            const Var v = l.var();
            if (v >= formula.numVariables) {
                const auto g = static_cast<std::size_t>(v - formula.numVariables);
                if (g < groups.size()) {
                    survivors[g] = 1;
                }
            }
        }
        return survivors;
    };
    const auto assumptionsFor = [&](const std::vector<char>& flags, std::size_t skip) {
        std::vector<Literal> assumptions;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            if (flags[g] != 0 && g != skip) {
                assumptions.push_back(Literal::positive(selector[g]));
            }
        }
        return assumptions;
    };
    const auto probe = [&](const std::vector<Literal>& assumptions) {
        solver.options().conflictLimit =
            static_cast<std::int64_t>(solver.stats().conflicts) + budget;
        ++solves;
        return solver.solve(assumptions);
    };

    // Baseline: the whole core must still refute; its failed-assumption core
    // is already a (possibly strict) subset of the groups.
    if (probe(assumptionsFor(active, groups.size())) != SolveStatus::Unsat) {
        return active;  // budget exhausted on the easy direction — keep all
    }
    active = groupsOfCore(solver.conflictCore());

    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (active[g] == 0) {
            continue;
        }
        if (std::count(active.begin(), active.end(), char(1)) <= 1) {
            break;
        }
        if (probe(assumptionsFor(active, g)) == SolveStatus::Unsat) {
            std::vector<char> survivors = groupsOfCore(solver.conflictCore());
            survivors[g] = 0;  // dropping g succeeded; keep the tightened set
            active = survivors;
        }
        // Sat/Unknown: g is load-bearing (or undecided) — keep it.
    }
    return active;
}

void recordExplainMetrics(const ExplainResult& result) {
    auto& registry = obs::Registry::global();
    registry.counter("etcs.explain.reports").increment();
    registry.counter("etcs.explain.core.clauses").add(result.coreClauses);
    registry.counter("etcs.explain.shrink.solves").add(result.shrinkSolves);
    // Proof-core heatmaps: tagged core records credited to every run and
    // family they mention (run2 counts too — pairwise constraints heat both
    // trains).
    for (const ClauseProvenance& r : result.coreRecords) {
        registry.counter("etcs.explain.core.family." + std::string(r.family)).increment();
        if (r.run >= 0) {
            registry.counter("etcs.explain.core.run." + std::to_string(r.run)).increment();
        }
        if (r.run2 >= 0) {
            registry.counter("etcs.explain.core.run." + std::to_string(r.run2)).increment();
        }
    }
}

}  // namespace

ExplainResult explainInfeasibility(const Instance& instance, const VssLayout* fixedLayout,
                                   const ExplainOptions& options) {
    ExplainResult result;

    cnf::CollectingBackend collector;
    EncoderOptions encoderOptions = options.encoder;
    encoderOptions.trackProvenance = true;
    Encoder encoder(collector, instance, encoderOptions);
    {
        obs::Span span("etcs.explain.encode");
        encoder.encode(fixedLayout);
    }
    result.formula = collector.takeFormula();
    const ProvenanceTable* table = encoder.provenance();

    sat::Solver solver;
    sat::MemoryProofWriter proofWriter;
    solver.setProofWriter(&proofWriter);
    for (int v = 0; v < result.formula.numVariables; ++v) {
        (void)solver.addVariable();
    }
    bool consistent = true;
    for (const auto& clause : result.formula.clauses) {
        consistent = solver.addClause(clause) && consistent;
    }
    SolveStatus status = SolveStatus::Unsat;
    if (consistent) {
        obs::Span span("etcs.explain.solve");
        status = solver.solve();
    }
    solver.setProofWriter(nullptr);
    result.proof = proofWriter.takeProof();

    if (status == SolveStatus::Sat) {
        result.feasible = true;
        return result;
    }
    if (status == SolveStatus::Unknown) {
        result.error = "solver returned unknown (resource limit)";
        return result;
    }
    result.unsat = true;

    const sat::DratCheckResult check = sat::checkDrat(result.formula, result.proof);
    if (!check.verified) {
        result.error = "DRAT certification failed: " + check.error;
        return result;
    }
    result.certified = true;
    result.coreClauses = check.coreClauseIndices.size();

    // Attribute every core clause to its provenance span and aggregate the
    // spans into constraint groups (record minus step, with a step range).
    std::map<GroupKey, std::size_t> groupIndex;
    std::vector<Group> groups;
    std::vector<std::size_t> untaggedCore;
    std::map<int, ClauseProvenance> coreSpans;  // span id -> record (deduped)
    {
        obs::Span span("etcs.explain.attribute");
        for (const std::size_t clause : check.coreClauseIndices) {
            const int spanId = table->spanOf(clause);
            if (spanId < 0) {
                untaggedCore.push_back(clause);
                continue;
            }
            ++result.taggedCoreClauses;
            const ClauseProvenance& record = table->record(static_cast<std::size_t>(spanId));
            coreSpans.emplace(spanId, record);
            const auto [it, inserted] = groupIndex.emplace(keyOf(record), groups.size());
            if (inserted) {
                Group g;
                g.record = record;
                g.stepFirst = record.step;
                g.stepLast = record.step;
                groups.push_back(std::move(g));
            }
            Group& g = groups[it->second];
            if (record.step >= 0) {
                g.stepFirst = g.stepFirst < 0 ? record.step : std::min(g.stepFirst, record.step);
                g.stepLast = std::max(g.stepLast, record.step);
            }
            g.clauseIndices.push_back(clause);
        }
    }
    result.untaggedCoreClauses = untaggedCore.size();
    result.coreGroups = groups.size();
    for (const auto& [spanId, record] : coreSpans) {
        result.coreRecords.push_back(record);
    }
    std::sort(result.coreRecords.begin(), result.coreRecords.end(), recordLess);
    result.coreRecords.erase(std::unique(result.coreRecords.begin(), result.coreRecords.end()),
                             result.coreRecords.end());

    std::vector<char> active(groups.size(), 1);
    if (options.shrinkCore) {
        active = shrinkGroups(result.formula, groups, untaggedCore,
                              options.shrinkConflictBudget, result.shrinkSolves);
    }
    result.citedGroups = static_cast<std::size_t>(
        std::count(active.begin(), active.end(), char(1)));

    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (active[g] == 0) {
            continue;
        }
        const Group& group = groups[g];
        const auto [code, severity] = codeOf(group.record.family);
        ExplainEntry entry;
        entry.code = code;
        entry.severity = severity;
        entry.family = std::string(group.record.family);
        entry.run = group.record.run;
        entry.run2 = group.record.run2;
        entry.ttd = group.record.ttd;
        entry.segment = group.record.segment;
        entry.stepFirst = group.stepFirst;
        entry.stepLast = group.stepLast;
        entry.message = describeGroup(instance, group);
        result.entries.push_back(std::move(entry));
    }
    std::sort(result.entries.begin(), result.entries.end(),
              [](const ExplainEntry& a, const ExplainEntry& b) {
                  return std::tie(a.code, a.family, a.run, a.run2, a.ttd, a.segment,
                                  a.stepFirst) <
                         std::tie(b.code, b.family, b.run, b.run2, b.ttd, b.segment, b.stepFirst);
              });

    ExplainEntry summary;
    summary.code = "E101";
    summary.severity = lint::Severity::Error;
    summary.message = "schedule proven infeasible: certified UNSAT core of " +
                      std::to_string(result.coreClauses) + " clauses in " +
                      std::to_string(result.coreGroups) + " constraint groups (" +
                      std::to_string(result.citedGroups) + " cited)";
    result.entries.insert(result.entries.begin(), std::move(summary));

    recordExplainMetrics(result);
    return result;
}

void writeExplanationText(std::ostream& os, const ExplainResult& result) {
    if (result.feasible) {
        os << "feasible: a satisfying schedule exists; nothing to explain\n";
        return;
    }
    if (!result.error.empty()) {
        os << "explain error: " << result.error << '\n';
        return;
    }
    for (const ExplainEntry& entry : result.entries) {
        os << lint::severityName(entry.severity) << ' ' << entry.code;
        if (!entry.family.empty()) {
            os << " [" << entry.family << ']';
        }
        os << ": " << entry.message << '\n';
    }
    if (result.untaggedCoreClauses > 0) {
        os << "note: " << result.untaggedCoreClauses
           << " structural core clause(s) without provenance\n";
    }
}

void writeExplanationJson(std::ostream& os, const ExplainResult& result) {
    os << "{\"feasible\":" << (result.feasible ? "true" : "false")
       << ",\"unsat\":" << (result.unsat ? "true" : "false")
       << ",\"certified\":" << (result.certified ? "true" : "false") << ",\"error\":\""
       << obs::jsonEscape(result.error) << "\",\"coreClauses\":" << result.coreClauses
       << ",\"taggedCoreClauses\":" << result.taggedCoreClauses
       << ",\"untaggedCoreClauses\":" << result.untaggedCoreClauses
       << ",\"coreGroups\":" << result.coreGroups << ",\"citedGroups\":" << result.citedGroups
       << ",\"shrinkSolves\":" << result.shrinkSolves << ",\"entries\":[";
    bool first = true;
    for (const ExplainEntry& entry : result.entries) {
        if (!first) {
            os << ',';
        }
        first = false;
        os << "{\"code\":\"" << entry.code << "\",\"severity\":\""
           << lint::severityName(entry.severity) << "\",\"family\":\""
           << obs::jsonEscape(entry.family) << "\",\"run\":" << entry.run
           << ",\"run2\":" << entry.run2 << ",\"ttd\":" << entry.ttd
           << ",\"segment\":" << entry.segment << ",\"stepFirst\":" << entry.stepFirst
           << ",\"stepLast\":" << entry.stepLast << ",\"message\":\""
           << obs::jsonEscape(entry.message) << "\"}";
    }
    os << "],\"coreRecords\":[";
    first = true;
    for (const ClauseProvenance& r : result.coreRecords) {
        if (!first) {
            os << ',';
        }
        first = false;
        os << "{\"family\":\"" << obs::jsonEscape(std::string(r.family))
           << "\",\"run\":" << r.run << ",\"run2\":" << r.run2 << ",\"step\":" << r.step
           << ",\"ttd\":" << r.ttd << ",\"segment\":" << r.segment << '}';
    }
    os << "]}\n";
}

}  // namespace etcs::core
