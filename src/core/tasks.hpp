/// \file tasks.hpp
/// The three design/verification tasks of paper Sec. II-B as a library API:
///   1. verifySchedule   — does a timed schedule work on a given TTD/VSS layout?
///   2. generateLayout   — find a VSS layout realizing a timed schedule, with
///                         as few sections as possible (min sum border_v).
///   3. optimizeSchedule — find layout + schedule minimizing completion time
///                         (min sum !done^t), optionally followed by a
///                         lexicographic section minimization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "sat/types.hpp"

#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "opt/minimize.hpp"

namespace etcs::core {

struct TaskOptions {
    EncoderOptions encoder;
    opt::SearchStrategy borderSearch = opt::SearchStrategy::LinearDown;
    opt::SearchStrategy timeSearch = opt::SearchStrategy::Binary;
    /// Generation: minimize the number of virtual borders (paper's
    /// min sum border_v). When false, any feasible layout is returned.
    bool minimizeSections = true;
    /// Optimization: after minimizing completion time, also minimize the
    /// number of virtual borders at the optimal completion time.
    bool lexicographicSections = true;
    /// SAT backend factory; defaults to the built-in CDCL solver (or to the
    /// portfolio backend when `threads` requests more than one worker).
    std::function<std::unique_ptr<cnf::SatBackend>()> backendFactory;
    /// Solver worker count when no backendFactory is given: 1 runs the
    /// single-threaded internal backend, >1 the parallel portfolio with that
    /// many diversified workers, 0 picks the hardware concurrency (see
    /// docs/PARALLEL.md).
    int threads = 1;
    /// Run the portfolio in deterministic lock-step mode (reproducible
    /// verdict/model/winner for a fixed (threads, seed) pair). Only
    /// meaningful when the portfolio backend is selected via `threads`.
    bool deterministicPortfolio = false;
    /// Progress/cancellation hook forwarded to the backend (see
    /// sat::ProgressCallback). Returning false aborts the running solve;
    /// the task then reports infeasible/incomplete. Ignored by backends
    /// without progress support (e.g. Z3).
    sat::ProgressCallback progress;
    /// Conflicts between progress callbacks.
    std::uint64_t progressIntervalConflicts = 16384;
    /// Run the instance linter (lint/rail_lint.hpp) before encoding and fail
    /// fast — no encode, no solver call — when it proves the schedule
    /// infeasible (shortest-path lower bounds, headway conflicts, horizon
    /// overruns). Lint counts are recorded in the metrics registry either
    /// way; set to false to opt out and always hand the instance to the
    /// solver.
    bool lintInstance = true;
};

/// Effort/size measurements common to all tasks (Table I columns), extended
/// with the backend's solver counters so results carry the full cost profile.
struct TaskStats {
    int numVariables = 0;
    std::size_t numClauses = 0;
    std::uint64_t solveCalls = 0;
    double runtimeSeconds = 0.0;
    // Solver work, accumulated over every solve of the task (0 for backends
    // that do not report a counter).
    std::uint64_t conflicts = 0;
    std::uint64_t propagations = 0;
    std::uint64_t decisions = 0;
    std::uint64_t restarts = 0;
    std::uint64_t maxDecisionLevel = 0;
    std::uint64_t peakLearnts = 0;
};

struct VerificationResult {
    bool feasible = false;               ///< SAT: the schedule works on the layout
    std::optional<Solution> solution;    ///< a witness execution when feasible
    TaskStats stats;
};

struct GenerationResult {
    bool feasible = false;               ///< SAT: some VSS layout realizes the schedule
    std::optional<Solution> solution;    ///< layout + witness execution
    int sectionCount = 0;                ///< TTD/VSS sections of the layout
    TaskStats stats;
};

struct OptimizationResult {
    bool feasible = false;               ///< schedule completable within the horizon
    std::optional<Solution> solution;
    int sectionCount = 0;
    int completionSteps = 0;             ///< minimized number of time steps
    TaskStats stats;
};

/// Task 1: verify a fully timed schedule against a fixed TTD/VSS layout.
[[nodiscard]] VerificationResult verifySchedule(const Instance& instance,
                                                const VssLayout& layout,
                                                const TaskOptions& options = {});

/// Task 2: generate a VSS layout on which the fully timed schedule works.
[[nodiscard]] GenerationResult generateLayout(const Instance& instance,
                                              const TaskOptions& options = {});

/// Task 3: choose layout and train movements minimizing completion time.
/// The instance's schedule may leave arrival times open; its horizon bounds
/// the search.
[[nodiscard]] OptimizationResult optimizeSchedule(const Instance& instance,
                                                  const TaskOptions& options = {});

/// Variant of task 3 on a fixed layout: the best schedule achievable on the
/// existing TTD/VSS sections. Comparing its completion time against the
/// free-layout optimum quantifies what the virtual subsections buy.
[[nodiscard]] OptimizationResult optimizeScheduleOnLayout(const Instance& instance,
                                                          const VssLayout& layout,
                                                          const TaskOptions& options = {});

}  // namespace etcs::core
