#include "core/validator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

namespace etcs::core {

namespace {

/// Occupied segments at a step (empty when absent).
const std::vector<SegmentId>& occupiedAt(const RunTrace& trace, int step) {
    return trace.occupied[static_cast<std::size_t>(step)];
}

bool contains(const std::vector<SegmentId>& segs, SegmentId s) {
    return std::find(segs.begin(), segs.end(), s) != segs.end();
}

/// True when the segments form one node-simple chain.
bool isChain(const rail::SegmentGraph& graph, const std::vector<SegmentId>& segs) {
    if (segs.empty()) {
        return false;
    }
    if (segs.size() == 1) {
        return true;
    }
    // Node occurrence counting: a k-segment chain touches k+1 distinct
    // nodes; the two chain ends once, every interior node twice.
    std::map<SegNodeId, int> occurrences;
    for (SegmentId s : segs) {
        ++occurrences[graph.segment(s).a];
        ++occurrences[graph.segment(s).b];
    }
    int once = 0;
    for (const auto& [node, count] : occurrences) {
        if (count == 1) {
            ++once;
        } else if (count != 2) {
            return false;
        }
    }
    if (once != 2 || occurrences.size() != segs.size() + 1) {
        return false;
    }
    // Connectivity via BFS over shared nodes.
    std::set<SegmentId> pending(segs.begin() + 1, segs.end());
    std::deque<SegmentId> queue{segs.front()};
    while (!queue.empty()) {
        const SegmentId current = queue.front();
        queue.pop_front();
        for (auto it = pending.begin(); it != pending.end();) {
            if (graph.sharedNode(current, *it).valid()) {
                queue.push_back(*it);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
    }
    return pending.empty();
}

std::string runName(const Instance& instance, std::size_t run) {
    return instance.trains().train(instance.runs()[run].train).name;
}

}  // namespace

std::vector<std::string> validateSolution(const Instance& instance, const Solution& solution) {
    std::vector<std::string> violations;
    auto report = [&violations](const std::string& message) { violations.push_back(message); };

    const auto& graph = instance.graph();
    const int horizon = instance.horizonSteps();
    ETCS_REQUIRE_MSG(solution.traces.size() == instance.numRuns(),
                     "solution has a trace per run");

    // Section lookup for the solution's layout.
    const auto sections = graph.sections(solution.layout.flags());
    std::vector<int> sectionOf(graph.numSegments(), -1);
    for (std::size_t i = 0; i < sections.size(); ++i) {
        for (SegmentId s : sections[i]) {
            sectionOf[s.get()] = static_cast<int>(i);
        }
    }

    // ---- per-run rules ---------------------------------------------------
    for (std::size_t run = 0; run < instance.numRuns(); ++run) {
        const DiscreteRun& r = instance.runs()[run];
        const RunTrace& trace = solution.traces[run];
        const std::string name = runName(instance, run);

        bool everPresent = false;
        bool presenceEnded = false;
        for (int t = 0; t < horizon; ++t) {
            const auto& segs = occupiedAt(trace, t);
            if (t < r.departureStep && !segs.empty()) {
                report(name + ": occupies track before its departure step " +
                       std::to_string(t));
            }
            if (segs.empty()) {
                if (everPresent) {
                    presenceEnded = true;
                }
                continue;
            }
            if (presenceEnded) {
                report(name + ": reappears at step " + std::to_string(t) +
                       " after having left the network");
            }
            everPresent = true;
            if (static_cast<int>(segs.size()) != r.lengthSegments) {
                report(name + ": occupies " + std::to_string(segs.size()) +
                       " segments at step " + std::to_string(t) + ", expected " +
                       std::to_string(r.lengthSegments));
            }
            if (!isChain(graph, segs)) {
                report(name + ": occupied segments at step " + std::to_string(t) +
                       " do not form a chain");
            }
        }
        if (!everPresent) {
            report(name + ": never appears on the network");
        }
        if (!occupiedAt(trace, r.departureStep).empty() &&
            !contains(occupiedAt(trace, r.departureStep), r.originSegment)) {
            report(name + ": does not start at its origin segment");
        }
        if (occupiedAt(trace, r.departureStep).empty()) {
            report(name + ": absent at its departure step");
        }

        // Stops: pinned stops (plus dwell) at their steps, open stops at
        // some window of dwellSteps consecutive steps.
        for (const DiscreteStop& stop : r.stops) {
            if (stop.arrivalStep) {
                for (int j = 0; j < stop.dwellSteps; ++j) {
                    const int step = *stop.arrivalStep + j;
                    if (step >= horizon ||
                        !contains(occupiedAt(trace, step), stop.segment)) {
                        report(name + ": misses pinned stop at step " + std::to_string(step));
                    }
                }
            } else {
                bool visited = false;
                for (int t = 0; t + stop.dwellSteps <= horizon && !visited; ++t) {
                    bool window = true;
                    for (int j = 0; j < stop.dwellSteps && window; ++j) {
                        window = contains(occupiedAt(trace, t + j), stop.segment);
                    }
                    visited = window;
                }
                if (!visited) {
                    report(name + ": never dwells at one of its stops");
                }
            }
        }

        // Movement: every occupied segment must reach some next-step segment.
        for (int t = 0; t + 1 < horizon; ++t) {
            const auto& now = occupiedAt(trace, t);
            const auto& next = occupiedAt(trace, t + 1);
            if (now.empty() || next.empty()) {
                continue;
            }
            for (SegmentId e : now) {
                const bool reachable =
                    std::any_of(next.begin(), next.end(), [&](SegmentId f) {
                        const int d = instance.segmentDistance(e, f);
                        return d >= 0 && d <= r.speedSegments;
                    });
                if (!reachable) {
                    report(name + ": movement between steps " + std::to_string(t) + " and " +
                           std::to_string(t + 1) + " exceeds its speed");
                }
            }
        }
    }

    // ---- cross-run rules ---------------------------------------------------
    for (int t = 0; t < horizon; ++t) {
        std::map<int, std::size_t> ownerOfSection;
        for (std::size_t run = 0; run < instance.numRuns(); ++run) {
            for (SegmentId s : occupiedAt(solution.traces[run], t)) {
                const int section = sectionOf[s.get()];
                const auto [it, inserted] = ownerOfSection.emplace(section, run);
                if (!inserted && it->second != run) {
                    report("VSS exclusivity violated at step " + std::to_string(t) +
                           ": trains " + runName(instance, it->second) + " and " +
                           runName(instance, run) + " share section " +
                           std::to_string(section));
                }
            }
        }
    }

    // No pass-through: the corridor swept by a moving train must be free of
    // every other train at both steps.
    for (std::size_t mover = 0; mover < instance.numRuns(); ++mover) {
        const DiscreteRun& rm = instance.runs()[mover];
        for (int t = 0; t + 1 < horizon; ++t) {
            const auto& now = occupiedAt(solution.traces[mover], t);
            const auto& next = occupiedAt(solution.traces[mover], t + 1);
            if (now.empty() || next.empty()) {
                continue;
            }
            std::set<SegmentId> corridor;
            for (SegmentId e : now) {
                for (SegmentId f : next) {
                    const int d = instance.segmentDistance(e, f);
                    if (d < 1 || d > rm.speedSegments) {
                        continue;
                    }
                    // d hops span d+1 segments including the endpoints.
                    for (const auto& path : graph.simplePaths(e, f, rm.speedSegments + 1)) {
                        corridor.insert(path.begin(), path.end());
                    }
                }
            }
            for (std::size_t other = 0; other < instance.numRuns(); ++other) {
                if (other == mover) {
                    continue;
                }
                for (int tau : {t, t + 1}) {
                    for (SegmentId g : occupiedAt(solution.traces[other], tau)) {
                        // Same-segment/same-step conflicts are exclusivity
                        // violations reported above; the corridor check is
                        // about sweeping over the other train.
                        if (corridor.contains(g) && !contains(occupiedAt(solution.traces[mover], tau), g)) {
                            report("pass-through conflict: " + runName(instance, mover) +
                                   " sweeps over " + runName(instance, other) + " at step " +
                                   std::to_string(tau));
                        }
                    }
                }
            }
        }
    }

    return violations;
}

}  // namespace etcs::core
