#include "core/tasks.hpp"

#include <chrono>

namespace etcs::core {

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<cnf::SatBackend> makeBackend(const TaskOptions& options) {
    if (options.backendFactory) {
        return options.backendFactory();
    }
    return cnf::makeInternalBackend();
}

double secondsSince(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

VerificationResult verifySchedule(const Instance& instance, const VssLayout& layout,
                                  const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "verification requires a fully timed schedule");
    const auto start = Clock::now();
    VerificationResult result;

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(&layout);

    ++result.stats.solveCalls;
    result.feasible = backend->solve() == cnf::SolveStatus::Sat;
    if (result.feasible) {
        result.solution = encoder.decode();
    }
    result.stats.numVariables = backend->numVariables();
    result.stats.numClauses = backend->numClauses();
    result.stats.runtimeSeconds = secondsSince(start);
    return result;
}

GenerationResult generateLayout(const Instance& instance, const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "layout generation requires a fully timed schedule");
    const auto start = Clock::now();
    GenerationResult result;

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(nullptr);

    if (options.minimizeSections) {
        const auto minimized = opt::minimizeTrueLiterals(
            *backend, encoder.freeBorderLiterals(), options.borderSearch);
        result.stats.solveCalls = minimized.solveCalls;
        result.feasible = minimized.feasible;
    } else {
        ++result.stats.solveCalls;
        result.feasible = backend->solve() == cnf::SolveStatus::Sat;
    }
    if (result.feasible) {
        result.solution = encoder.decode();
        result.sectionCount = result.solution->sectionCount;
    }
    result.stats.numVariables = backend->numVariables();
    result.stats.numClauses = backend->numClauses();
    result.stats.runtimeSeconds = secondsSince(start);
    return result;
}

namespace {

OptimizationResult optimizeImpl(const Instance& instance, const VssLayout* fixedLayout,
                                const TaskOptions& options);

}  // namespace

OptimizationResult optimizeSchedule(const Instance& instance, const TaskOptions& options) {
    return optimizeImpl(instance, nullptr, options);
}

OptimizationResult optimizeScheduleOnLayout(const Instance& instance, const VssLayout& layout,
                                            const TaskOptions& options) {
    return optimizeImpl(instance, &layout, options);
}

namespace {

OptimizationResult optimizeImpl(const Instance& instance, const VssLayout* fixedLayout,
                                const TaskOptions& options) {
    const auto start = Clock::now();
    OptimizationResult result;

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(fixedLayout);

    // Primary objective: minimize the number of time steps until all trains
    // have left (paper's min sum !done^t). done^t is monotone, so the optimum
    // is the smallest step at which the done-all selector can hold.
    const int lo = encoder.completionLowerBound();
    const int hi = instance.horizonSteps() - 1;
    if (lo > hi) {
        result.stats.runtimeSeconds = secondsSince(start);
        return result;  // horizon shorter than any possible completion
    }
    const auto search = opt::smallestFeasibleIndex(
        *backend, [&](int step) { return encoder.doneAllLiteral(step); }, lo, hi,
        options.timeSearch);
    result.stats.solveCalls = search.solveCalls;
    if (!search.feasible) {
        result.stats.numVariables = backend->numVariables();
        result.stats.numClauses = backend->numClauses();
        result.stats.runtimeSeconds = secondsSince(start);
        return result;
    }
    result.feasible = true;
    result.completionSteps = search.index;

    if (options.lexicographicSections && fixedLayout == nullptr) {
        // Freeze the optimal completion time, then minimize virtual borders.
        backend->addUnit(encoder.doneAllLiteral(search.index));
        const auto minimized = opt::minimizeTrueLiterals(
            *backend, encoder.freeBorderLiterals(), options.borderSearch);
        result.stats.solveCalls += minimized.solveCalls;
        ETCS_REQUIRE_MSG(minimized.feasible,
                         "border minimization must stay feasible at the optimal time");
    }

    result.solution = encoder.decode();
    result.sectionCount = result.solution->sectionCount;
    result.stats.numVariables = backend->numVariables();
    result.stats.numClauses = backend->numClauses();
    result.stats.runtimeSeconds = secondsSince(start);
    return result;
}

}  // namespace

}  // namespace etcs::core
