#include "core/tasks.hpp"

#include <chrono>
#include <string>

#include "lint/rail_lint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace etcs::core {

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<cnf::SatBackend> makeBackend(const TaskOptions& options) {
    auto backend = options.backendFactory ? options.backendFactory()
                   : options.threads == 1
                       ? cnf::makeInternalBackend()
                       : cnf::makePortfolioBackend(options.threads,
                                                   options.deterministicPortfolio);
    if (options.progress) {
        backend->setProgressCallback(options.progress, options.progressIntervalConflicts);
    }
    return backend;
}

double secondsSince(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fail-fast pre-pass: run the instance linter and report whether it proved
/// the schedule unsatisfiable. The schedule lints are sound w.r.t. the
/// encoding (see lint/rail_lint.hpp), so an Error-severity finding lets the
/// task return infeasible without encoding or solving anything.
bool lintRejects(const Instance& instance, const TaskOptions& options, const char* task) {
    if (!options.lintInstance) {
        return false;
    }
    lint::LintReport report;
    lint::lintSchedule(instance.graph(), instance.trains(), instance.schedule(), report);
    report.recordMetrics();
    if (report.hasErrors()) {
        obs::Registry::global()
            .counter(std::string("etcs.task.") + task + ".lint_rejected")
            .increment();
        if (obs::logEnabled(obs::LogLevel::Info)) {
            obs::log(obs::LogLevel::Info, "task", task,
                     ",\"lint_rejected\":true,\"errors\":" +
                         std::to_string(report.count(lint::Severity::Error)));
        }
        return true;
    }
    // Second, stronger gate: the fixpoint reachability analysis refutes
    // schedules the shortest-path bounds miss (R-codes, lint/reach.hpp) and
    // is equally sound w.r.t. the encoding.
    const PruneTable reach(instance);
    if (reach.provablyInfeasible()) {
        obs::Registry::global()
            .counter(std::string("etcs.task.") + task + ".reach_rejected")
            .increment();
        if (obs::logEnabled(obs::LogLevel::Info)) {
            obs::log(obs::LogLevel::Info, "task", task,
                     ",\"reach_rejected\":true,\"violations\":" +
                         std::to_string(reach.analysis().violations().size()));
        }
        return true;
    }
    return false;
}

/// Fold formula size and the backend's solver counters into the task stats,
/// record the task runtime, and mirror the totals into the metrics registry.
void finishStats(TaskStats& stats, const cnf::SatBackend& backend, const char* task,
                 Clock::time_point start) {
    stats.numVariables = backend.numVariables();
    stats.numClauses = backend.numClauses();
    const sat::SolverStats& solver = backend.stats();
    stats.conflicts = solver.conflicts;
    stats.propagations = solver.propagations;
    stats.decisions = solver.decisions;
    stats.restarts = solver.restarts;
    stats.maxDecisionLevel = solver.maxDecisionLevel;
    stats.peakLearnts = solver.peakLearnts;
    stats.runtimeSeconds = secondsSince(start);

    auto& registry = obs::Registry::global();
    registry.counter(std::string("etcs.task.") + task + ".runs").increment();
    registry.histogram(std::string("etcs.task.") + task + ".seconds")
        .observe(stats.runtimeSeconds);
    if (obs::logEnabled(obs::LogLevel::Info)) {
        obs::log(obs::LogLevel::Info, "task", task,
                 ",\"variables\":" + std::to_string(stats.numVariables) +
                     ",\"clauses\":" + std::to_string(stats.numClauses) +
                     ",\"solve_calls\":" + std::to_string(stats.solveCalls) +
                     ",\"conflicts\":" + std::to_string(stats.conflicts) +
                     ",\"seconds\":" + std::to_string(stats.runtimeSeconds));
    }
}

}  // namespace

VerificationResult verifySchedule(const Instance& instance, const VssLayout& layout,
                                  const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "verification requires a fully timed schedule");
    const obs::Span span("task.verify");
    const auto start = Clock::now();
    VerificationResult result;
    if (lintRejects(instance, options, "verify")) {
        result.stats.runtimeSeconds = secondsSince(start);
        return result;
    }

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(&layout);

    ++result.stats.solveCalls;
    result.feasible = backend->solve() == cnf::SolveStatus::Sat;
    if (result.feasible) {
        result.solution = encoder.decode();
    }
    finishStats(result.stats, *backend, "verify", start);
    return result;
}

GenerationResult generateLayout(const Instance& instance, const TaskOptions& options) {
    ETCS_REQUIRE_MSG(instance.schedule().fullyTimed(),
                     "layout generation requires a fully timed schedule");
    const obs::Span span("task.generate");
    const auto start = Clock::now();
    GenerationResult result;
    if (lintRejects(instance, options, "generate")) {
        result.stats.runtimeSeconds = secondsSince(start);
        return result;
    }

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(nullptr);

    if (options.minimizeSections) {
        const obs::Span minimizeSpan("minimize.borders");
        const auto minimized = opt::minimizeTrueLiterals(
            *backend, encoder.freeBorderLiterals(), options.borderSearch);
        result.stats.solveCalls = minimized.solveCalls;
        result.feasible = minimized.feasible;
    } else {
        ++result.stats.solveCalls;
        result.feasible = backend->solve() == cnf::SolveStatus::Sat;
    }
    if (result.feasible) {
        result.solution = encoder.decode();
        result.sectionCount = result.solution->sectionCount;
    }
    finishStats(result.stats, *backend, "generate", start);
    return result;
}

namespace {

OptimizationResult optimizeImpl(const Instance& instance, const VssLayout* fixedLayout,
                                const TaskOptions& options);

}  // namespace

OptimizationResult optimizeSchedule(const Instance& instance, const TaskOptions& options) {
    return optimizeImpl(instance, nullptr, options);
}

OptimizationResult optimizeScheduleOnLayout(const Instance& instance, const VssLayout& layout,
                                            const TaskOptions& options) {
    return optimizeImpl(instance, &layout, options);
}

namespace {

OptimizationResult optimizeImpl(const Instance& instance, const VssLayout* fixedLayout,
                                const TaskOptions& options) {
    const obs::Span span("task.optimize");
    const auto start = Clock::now();
    OptimizationResult result;
    if (lintRejects(instance, options, "optimize")) {
        result.stats.runtimeSeconds = secondsSince(start);
        return result;
    }

    const auto backend = makeBackend(options);
    Encoder encoder(*backend, instance, options.encoder);
    encoder.encode(fixedLayout);

    // Primary objective: minimize the number of time steps until all trains
    // have left (paper's min sum !done^t). done^t is monotone, so the optimum
    // is the smallest step at which the done-all selector can hold.
    const int lo = encoder.completionLowerBound();
    const int hi = instance.horizonSteps() - 1;
    if (lo > hi) {
        finishStats(result.stats, *backend, "optimize", start);
        return result;  // horizon shorter than any possible completion
    }
    opt::IndexSearchResult search;
    {
        const obs::Span minimizeSpan("minimize.completion_time");
        search = opt::smallestFeasibleIndex(
            *backend, [&](int step) { return encoder.doneAllLiteral(step); }, lo, hi,
            options.timeSearch);
    }
    result.stats.solveCalls = search.solveCalls;
    if (!search.feasible) {
        finishStats(result.stats, *backend, "optimize", start);
        return result;
    }
    result.feasible = true;
    result.completionSteps = search.index;

    if (options.lexicographicSections && fixedLayout == nullptr) {
        // Freeze the optimal completion time, then minimize virtual borders.
        const obs::Span minimizeSpan("minimize.borders");
        backend->addUnit(encoder.doneAllLiteral(search.index));
        const auto minimized = opt::minimizeTrueLiterals(
            *backend, encoder.freeBorderLiterals(), options.borderSearch);
        result.stats.solveCalls += minimized.solveCalls;
        ETCS_REQUIRE_MSG(minimized.feasible,
                         "border minimization must stay feasible at the optimal time");
    }

    result.solution = encoder.decode();
    result.sectionCount = result.solution->sectionCount;
    finishStats(result.stats, *backend, "optimize", start);
    return result;
}

}  // namespace

}  // namespace etcs::core
