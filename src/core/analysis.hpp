/// \file analysis.hpp
/// Higher-level design-space analyses built on the three base tasks:
///
///  * tradeoffCurve     — "how much does each additional virtual border
///    buy?": for every budget of k virtual borders, the fastest achievable
///    completion time. This quantifies the paper's claim that VSS unveil
///    scheduling potential, one border at a time.
///  * delayRobustness   — "which departure delays does the timetable
///    survive?": per train and delay, whether the schedule remains
///    realizable on a fixed layout. Verification "covering all
///    possibilities" is the paper's stated motivation (footnote 4).
///  * generateLayoutWeighted — generation with per-border installation
///    costs instead of plain border counting.
#pragma once

#include <vector>

#include "core/tasks.hpp"

namespace etcs::core {

/// One point of the borders-vs-completion trade-off curve.
struct TradeoffPoint {
    int extraBorders = 0;     ///< budget: at most this many virtual borders
    bool feasible = false;    ///< schedule completable within the horizon
    int completionSteps = 0;  ///< minimal completion under the budget
    int sectionCount = 0;     ///< sections of the witness layout
};

/// For k = 0..maxExtraBorders: the minimal completion time achievable with
/// at most k virtual borders (departures fixed, arrivals open).  The curve
/// is non-increasing in k.  Encodes once and sweeps budgets via solver
/// assumptions.
[[nodiscard]] std::vector<TradeoffPoint> tradeoffCurve(const Instance& instance,
                                                       int maxExtraBorders,
                                                       const TaskOptions& options = {});

/// Per-train delay tolerance of a fully timed schedule on a fixed layout.
struct RobustnessReport {
    /// feasible[r][d-1]: does the schedule still work when run r departs d
    /// steps late (its arrivals shifted alike)?
    std::vector<std::vector<bool>> feasible;
    /// toleranceSteps[r]: largest d in [0..maxDelay] with all of 1..d
    /// feasible (0 = any delay breaks the timetable).
    std::vector<int> toleranceSteps;
};

/// Check, for every run and every delay d in [1..maxDelaySteps], whether the
/// timed schedule still works on `layout` when that single run departs d
/// steps late. When `shiftArrivals` is set (default) the delayed run's
/// arrival obligations shift by the same d (and the horizon grows
/// accordingly); otherwise the original arrival deadlines must still be met.
[[nodiscard]] RobustnessReport delayRobustness(const Instance& instance,
                                               const VssLayout& layout, int maxDelaySteps,
                                               bool shiftArrivals = true,
                                               const TaskOptions& options = {});

/// Generation with per-node installation costs: minimize the total cost of
/// the virtual borders instead of their count. `costOf` is evaluated for
/// every candidate border node and must return a positive cost.
[[nodiscard]] GenerationResult generateLayoutWeighted(
    const Instance& instance, const std::function<int(SegNodeId)>& costOf,
    const TaskOptions& options = {});

/// Per-run slack of a timed schedule on a fixed layout.
struct SlackReport {
    /// tightestArrivalStep[r]: smallest arrival step for run r's destination
    /// at which the whole schedule (other runs unchanged) still works;
    /// -1 when even the scheduled arrival fails.
    std::vector<int> tightestArrivalStep;
    /// slackSteps[r] = scheduled arrival - tightest arrival (>= 0), or -1.
    std::vector<int> slackSteps;
};

/// How much each arrival deadline of a fully timed schedule could be
/// tightened on the given layout, one run at a time (all other runs keep
/// their scheduled times). A slack of 0 means the timetable pins that train
/// to its fastest possible arrival.
[[nodiscard]] SlackReport scheduleSlack(const Instance& instance, const VssLayout& layout,
                                        const TaskOptions& options = {});

/// Result of the per-train arrival optimization.
struct IndividualArrivalResult {
    bool feasible = false;
    /// doneSteps[r]: earliest step at which run r has left the network,
    /// after the arrivals of all higher-priority runs were fixed.
    std::vector<int> doneSteps;
    std::optional<Solution> solution;
    TaskStats stats;
};

/// The paper's alternative objective (Sec. III-C): instead of minimizing the
/// global completion time, minimize each train's own arrival,
/// lexicographically in priority order (`priority` lists run indices; empty
/// = schedule order). Trains earlier in the order get the best possible
/// arrival; later trains optimize within what remains.
[[nodiscard]] IndividualArrivalResult optimizeIndividualArrivals(
    const Instance& instance, std::vector<std::size_t> priority = {},
    const TaskOptions& options = {});

}  // namespace etcs::core
