#include "core/instance.hpp"

#include <deque>

namespace etcs::core {

Instance::Instance(const Network& network, const TrainSet& trains, const Schedule& schedule,
                   Resolution resolution)
    : network_(&network),
      trains_(&trains),
      schedule_(&schedule),
      graph_(std::make_unique<SegmentGraph>(network, resolution)),
      resolution_(resolution) {
    const Seconds horizon = schedule.horizon();
    ETCS_REQUIRE_MSG(horizon.count() > 0, "schedule horizon must be positive");
    horizonSteps_ = resolution.stepOf(horizon) + 1;

    for (const TrainRun& run : schedule.runs()) {
        const rail::Train& train = trains.train(run.train);
        DiscreteRun d;
        d.train = run.train;
        d.originSegment = graph_->segmentOfStation(run.origin);
        d.departureStep = resolution.stepOf(run.departure);
        d.lengthSegments = train.lengthSegments(resolution);
        d.speedSegments = train.speedSegments(resolution);
        if (d.speedSegments < 1) {
            throw InputError("train " + train.name +
                             " cannot move at this resolution (speed rounds to zero "
                             "segments per step); refine r_t or coarsen r_s");
        }
        if (d.departureStep >= horizonSteps_) {
            throw InputError("train " + train.name + " departs after the scenario horizon");
        }
        int lastStep = d.departureStep;
        for (const rail::TimedStop& stop : run.stops) {
            DiscreteStop ds;
            ds.station = stop.station;
            ds.segment = graph_->segmentOfStation(stop.station);
            if (stop.dwell.count() > 0) {
                // A dwell of up to one step is the implicit minimum (a train
                // always occupies its stop for at least one step).
                ds.dwellSteps = static_cast<int>(
                    (stop.dwell.count() + resolution.temporal.count() - 1) /
                    resolution.temporal.count());
                ds.dwellSteps = std::max(ds.dwellSteps, 1);
            }
            if (stop.arrival) {
                ds.arrivalStep = resolution.stepOf(*stop.arrival);
                if (*ds.arrivalStep < lastStep) {
                    throw InputError("train " + train.name +
                                     " has a stop scheduled before its previous stop");
                }
                if (*ds.arrivalStep >= horizonSteps_) {
                    throw InputError("train " + train.name +
                                     " has a stop scheduled after the scenario horizon");
                }
                lastStep = *ds.arrivalStep;
            }
            d.stops.push_back(ds);
        }
        ETCS_REQUIRE_MSG(!d.stops.empty(), "run without stops");
        runs_.push_back(std::move(d));
    }

    // All-pairs BFS over the segment adjacency (graphs here are small; the
    // encoder queries distances heavily for its reachability cones).
    const std::size_t n = graph_->numSegments();
    distance_.assign(n * n, -1);
    for (std::size_t s = 0; s < n; ++s) {
        std::deque<SegmentId> queue{SegmentId(s)};
        distance_[s * n + s] = 0;
        while (!queue.empty()) {
            const SegmentId current = queue.front();
            queue.pop_front();
            const int d = distance_[s * n + current.get()];
            const rail::Segment& cs = graph_->segment(current);
            for (SegNodeId end : {cs.a, cs.b}) {
                for (SegmentId next : graph_->segmentsAt(end)) {
                    if (distance_[s * n + next.get()] < 0) {
                        distance_[s * n + next.get()] = d + 1;
                        queue.push_back(next);
                    }
                }
            }
        }
    }
}

int Instance::segmentDistance(SegmentId a, SegmentId b) const {
    return distance_[a.get() * graph_->numSegments() + b.get()];
}

}  // namespace etcs::core
