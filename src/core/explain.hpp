/// \file explain.hpp
/// Domain-level infeasibility explanations from certified UNSAT cores.
///
/// Pipeline (see docs/EXPLAIN.md):
///  1. Encode the instance with clause provenance tracking (provenance.hpp)
///     into a collected formula.
///  2. Solve with DRAT logging; on UNSAT, certify the refutation with the
///     independent checker (drat_check.hpp) and extract the original-clause
///     core.
///  3. Attribute every core clause to its provenance record and aggregate
///     the records into constraint groups (family, trains, TTD, segment)
///     with step ranges.
///  4. Optionally shrink the group set to a minimal explanation by
///     deletion-based probing with selector literals on a warm incremental
///     solver (a group MUS over provenance spans).
///  5. Render the surviving groups as human-readable diagnostics (E101-E105,
///     catalogued in lint/diagnostics.hpp) plus machine-readable JSON.
///
/// The cited (train, section, step) entries are, by construction, a subset
/// of the certified core's provenance records: shrinking only ever removes
/// groups, and step ranges come from the phase-3 core spans.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/provenance.hpp"
#include "lint/diagnostics.hpp"
#include "sat/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace etcs::core {

struct ExplainOptions {
    /// Shrink the core groups to a minimal explanation (deletion-based
    /// probing over selector assumptions). Off: report every core group.
    bool shrinkCore = true;
    /// Conflict budget per shrink probe; a probe that exhausts it keeps the
    /// group (sound — only removals need proof).
    std::int64_t shrinkConflictBudget = 20000;
    /// Encoding options; trackProvenance is forced on by the engine.
    EncoderOptions encoder;
};

/// One cited constraint group of the explanation, with resolved entity
/// names in `message`. Steps are a closed range [stepFirst, stepLast]
/// aggregated over the group's core spans (-1/-1: step-independent).
struct ExplainEntry {
    std::string code;  ///< E101..E105, see lint::knownCodes()
    lint::Severity severity = lint::Severity::Error;
    std::string family;
    int run = -1;
    int run2 = -1;
    int ttd = -1;
    int segment = -1;
    int stepFirst = -1;
    int stepLast = -1;
    std::string message;
};

/// Everything explainInfeasibility() learned about one instance.
struct ExplainResult {
    bool feasible = false;   ///< solver found a model; no explanation needed
    bool unsat = false;      ///< solver proved UNSAT
    bool certified = false;  ///< DRAT checker verified the refutation
    std::string error;       ///< non-empty when the pipeline stopped early

    std::size_t coreClauses = 0;         ///< original clauses in the certified core
    std::size_t taggedCoreClauses = 0;   ///< of those, clauses with provenance
    std::size_t untaggedCoreClauses = 0; ///< structural/auxiliary core clauses
    std::size_t coreGroups = 0;          ///< constraint groups before shrinking
    std::size_t citedGroups = 0;         ///< groups cited after shrinking
    std::size_t shrinkSolves = 0;        ///< incremental probes spent shrinking

    /// Cited groups, sorted by (code, family, run, run2, ttd, segment,
    /// stepFirst) for deterministic output. Empty when feasible.
    std::vector<ExplainEntry> entries;
    /// Provenance records of the certified core's tagged clauses, one per
    /// core span (steps included), deduplicated and sorted. The entries
    /// above cite a subset of these.
    std::vector<ClauseProvenance> coreRecords;

    /// The encoded formula and the recorded proof, kept so callers can
    /// re-certify externally (tools/etcs_explain --cnf-out/--proof-out).
    sat::CnfFormula formula;
    sat::DratProof proof;
};

/// Run the full explanation pipeline on an instance. Pass a layout to pin
/// the VSS borders (verification task); nullptr leaves them free. Never
/// throws on infeasible inputs — inspect `error` for pipeline failures.
[[nodiscard]] ExplainResult explainInfeasibility(const Instance& instance,
                                                 const VssLayout* fixedLayout,
                                                 const ExplainOptions& options = {});

/// Human-readable report, one line per entry.
void writeExplanationText(std::ostream& os, const ExplainResult& result);

/// Deterministic machine-readable report (stable member order, no timings).
void writeExplanationJson(std::ostream& os, const ExplainResult& result);

}  // namespace etcs::core
