/// \file pruning.hpp
/// Bridge between the lint-layer reachability analysis (lint/reach.hpp) and
/// the core encoder: runs the fixpoint over an already-discretized Instance
/// and answers per-cell pruning queries for EncoderOptions::pruneUnreachable.
///
/// Soundness (docs/REACHABILITY.md): every cell the table rules out is
/// absent from some satisfiability-preserving transformation of every model,
/// so skipping its variable (and thereby every clause that would mention it)
/// preserves the SAT/UNSAT verdict and the optimal objectives.
#pragma once

#include "core/instance.hpp"
#include "lint/reach.hpp"

namespace etcs::core {

class PruneTable {
public:
    /// Runs the reachability fixpoint for every run of `instance` (which the
    /// Instance constructor has already validated: speed >= 1, departures
    /// and arrivals inside the horizon). Analysis run indices equal
    /// instance run indices.
    explicit PruneTable(const Instance& instance);

    /// Sound per-cell verdict; false means the encoder may drop the cell.
    [[nodiscard]] bool possible(std::size_t run, SegmentId segment, int step) const {
        return analysis_.possible(run, segment, step);
    }

    /// Non-empty violations refute a scheduled obligation: the encoded
    /// instance is UNSAT without solving (used by the task fail-fast gate).
    [[nodiscard]] bool provablyInfeasible() const noexcept {
        return analysis_.provablyInfeasible();
    }

    [[nodiscard]] const lint::ReachAnalysis& analysis() const noexcept { return analysis_; }

    /// Export etcs.reach.* counters to the global metrics registry.
    void recordMetrics() const;

private:
    lint::ReachAnalysis analysis_;
};

}  // namespace etcs::core
