#include "core/provenance.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace etcs::core {

void ProvenanceTable::open(std::size_t clauseId, const ClauseProvenance& record) {
    close(clauseId);
    openActive_ = true;
    openAt_ = clauseId;
    openRecord_ = record;
}

void ProvenanceTable::close(std::size_t clauseId) {
    if (!openActive_) {
        return;
    }
    openActive_ = false;
    ETCS_REQUIRE_MSG(clauseId >= openAt_, "provenance context closed before it opened");
    if (clauseId == openAt_) {
        return;  // context emitted no clauses
    }
    // Merge with the previous span when the record matches and the ranges
    // touch (re-entered contexts, e.g. a family resumed for the next run).
    if (!spans_.empty()) {
        Span& last = spans_.back();
        if (last.firstClause + last.clauseCount == openAt_ && last.record == openRecord_) {
            last.clauseCount += clauseId - openAt_;
            taggedClauses_ += clauseId - openAt_;
            return;
        }
        ETCS_REQUIRE_MSG(last.firstClause + last.clauseCount <= openAt_,
                         "provenance spans must not overlap");
    }
    spans_.push_back(Span{openAt_, clauseId - openAt_, openRecord_});
    taggedClauses_ += clauseId - openAt_;
}

int ProvenanceTable::spanOf(std::size_t clauseId) const {
    // First span starting after clauseId, then step back one.
    const auto it = std::upper_bound(
        spans_.begin(), spans_.end(), clauseId,
        [](std::size_t id, const Span& span) { return id < span.firstClause; });
    if (it == spans_.begin()) {
        return -1;
    }
    const Span& span = *std::prev(it);
    if (clauseId >= span.firstClause + span.clauseCount) {
        return -1;
    }
    return static_cast<int>(std::distance(spans_.begin(), std::prev(it)));
}

const ClauseProvenance* ProvenanceTable::lookup(std::size_t clauseId) const {
    const int span = spanOf(clauseId);
    return span < 0 ? nullptr : &spans_[static_cast<std::size_t>(span)].record;
}

std::string toString(const ClauseProvenance& record) {
    std::string out(record.family);
    const auto append = [&out](const char* name, int value) {
        if (value >= 0) {
            out += ' ';
            out += name;
            out += '=';
            out += std::to_string(value);
        }
    };
    append("run", record.run);
    append("run2", record.run2);
    append("step", record.step);
    append("ttd", record.ttd);
    append("segment", record.segment);
    return out;
}

}  // namespace etcs::core
