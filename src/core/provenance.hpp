/// \file provenance.hpp
/// Clause provenance: a side-table mapping clause ids of an encoding to the
/// domain entity that emitted them — (constraint family, run, time step,
/// TTD section, segment). The encoder tags contiguous ranges of clauses as
/// it emits them; the table stores one run-length span per tagging context,
/// so lookups are a binary search and memory stays proportional to the
/// number of contexts, not the number of clauses.
///
/// Downstream consumers (see explain.hpp and docs/EXPLAIN.md):
///  * proof-core attribution — DRAT core clause indices map back to the
///    trains/sections/steps whose constraints refute the instance;
///  * per-entity encoder accounting — etcs.provenance.* metrics;
///  * selector-group core shrinking on a warm incremental solver.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace etcs::core {

/// Where a clause came from. Fields not applicable to a family stay -1;
/// `family` points at a string literal (the encoder's family names, see
/// docs/OBSERVABILITY.md) and is valid for the program's lifetime.
struct ClauseProvenance {
    std::string_view family;
    int run = -1;      ///< first (or only) run involved
    int run2 = -1;     ///< second run for pairwise constraints
    int step = -1;     ///< time step (-1: step-independent)
    int ttd = -1;      ///< TTD section (vss_separation)
    int segment = -1;  ///< segment (schedule pins, separation witness)

    friend bool operator==(const ClauseProvenance&, const ClauseProvenance&) = default;
};

/// Run-length side-table keyed by clause id (the backend's clause count at
/// emission time). Spans are appended in strictly increasing clause order;
/// gaps between spans are untagged (auxiliary/structural clauses).
class ProvenanceTable {
public:
    /// Begin a tagging context at `clauseId`: clauses emitted from here on
    /// carry `record`. Implicitly closes any open context first; a context
    /// that ends up covering zero clauses is discarded.
    void open(std::size_t clauseId, const ClauseProvenance& record);

    /// Close the open context at `clauseId` (clauses [openAt, clauseId)).
    void close(std::size_t clauseId);

    /// Provenance of a clause, or nullptr when the clause is untagged.
    [[nodiscard]] const ClauseProvenance* lookup(std::size_t clauseId) const;

    /// Index of the span covering `clauseId` (-1: untagged). Span indices
    /// are stable and dense — usable as group ids for core shrinking.
    [[nodiscard]] int spanOf(std::size_t clauseId) const;

    [[nodiscard]] std::size_t numSpans() const noexcept { return spans_.size(); }
    [[nodiscard]] const ClauseProvenance& record(std::size_t span) const {
        return spans_.at(span).record;
    }
    [[nodiscard]] std::size_t spanFirstClause(std::size_t span) const {
        return spans_.at(span).firstClause;
    }
    [[nodiscard]] std::size_t spanClauseCount(std::size_t span) const {
        return spans_.at(span).clauseCount;
    }

    /// Total number of clauses covered by some span.
    [[nodiscard]] std::size_t taggedClauses() const noexcept { return taggedClauses_; }

private:
    struct Span {
        std::size_t firstClause = 0;
        std::size_t clauseCount = 0;
        ClauseProvenance record;
    };

    std::vector<Span> spans_;
    bool openActive_ = false;
    std::size_t openAt_ = 0;
    ClauseProvenance openRecord_;
    std::size_t taggedClauses_ = 0;
};

/// "family run=0 run2=1 step=4 ttd=2 segment=7" — stable debug rendering
/// (only the fields that are set); used by tests and trace events.
[[nodiscard]] std::string toString(const ClauseProvenance& record);

}  // namespace etcs::core
