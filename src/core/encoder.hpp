/// \file encoder.hpp
/// SAT encoding of ETCS Level 3 design tasks (paper Sec. III).
///
/// Variables:
///  * occupies[r][e][t] — run r occupies segment e at step t. Created only
///    inside the run's reachability cone (forward from the origin, and
///    backward from the destination when the arrival is pinned); everything
///    outside the cone is constant false.
///  * border[v]         — candidate node v is a VSS border (free-layout
///    mode only; in fixed-layout mode borders are compile-time constants).
///  * done[r][t]        — run r has left the network by step t (monotone).
///  * chain selectors   — one auxiliary per admissible chain per step for
///    trains longer than one segment (the Tseitin refinement of the paper's
///    chain disjunction, see DESIGN.md §3).
///  * sweep[r][g][t]    — run r's movement between t and t+1 sweeps over
///    segment g (aggregation variable for the no-pass-through constraint).
///
/// Constraint families (paper Sec. III-B):
///  C1 chain occupancy, C2 movement, C3 VSS separation, C4 no pass-through,
/// plus the schedule pinning of Sec. III-C.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cnf/amo.hpp"
#include "cnf/backend.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/provenance.hpp"
#include "core/pruning.hpp"

namespace etcs::core {

using cnf::Literal;
using cnf::SatBackend;

struct EncoderOptions {
    cnf::AmoEncoding amoEncoding = cnf::AmoEncoding::Sequential;
    bool pruneWithCones = true;       ///< restrict occupies vars to reachability cones
    bool pruneUnreachable = true;     ///< additionally drop cells the fixpoint
                                      ///< reachability analysis excludes
                                      ///< (lint/reach.hpp, docs/REACHABILITY.md);
                                      ///< verdict- and objective-preserving
    bool encodePassThrough = true;    ///< emit C4 (ablation toggle; unsafe to disable
                                      ///< except for measurements)
    bool trackProvenance = false;     ///< record a clause provenance side-table
                                      ///< (see provenance.hpp / docs/EXPLAIN.md)
};

/// Variables/clauses attributed to one part of the encoding — the Table-I
/// effort breakdown at constraint-family granularity (see
/// docs/OBSERVABILITY.md for the family names).
struct FamilyCounts {
    std::string_view family;
    int variables = 0;
    std::size_t clauses = 0;
};

/// Per-run decoded movement data.
struct RunTrace {
    std::vector<std::vector<SegmentId>> occupied;  ///< [t] -> segments (may be empty)
    int firstArrivalStep = -1;  ///< first step occupying the destination (-1: never)
    int lastPresentStep = -1;   ///< last step with any occupancy (-1: never present)
};

/// A decoded satisfying assignment.
struct Solution {
    VssLayout layout;
    std::vector<RunTrace> traces;  ///< one per run
    int completionSteps = 0;       ///< steps until all trains have left / horizon
    int sectionCount = 0;          ///< TTD/VSS sections of `layout`
};

class Encoder {
public:
    Encoder(SatBackend& backend, const Instance& instance, EncoderOptions options = {});

    /// Emit all constraints. Pass a layout to pin every border (verification
    /// task); pass nullptr to leave borders free (generation/optimization).
    void encode(const VssLayout* fixedLayout);

    /// Free border literals (free-layout mode), for the minimization
    /// objective min sum(border_v).
    [[nodiscard]] std::span<const Literal> freeBorderLiterals() const noexcept {
        return freeBorderLiterals_;
    }

    /// Literal forcing "every run is done at `step`" (paper's done^t_i as an
    /// implication-defined selector); usable as a solver assumption.
    [[nodiscard]] Literal doneAllLiteral(int step);

    /// Earliest step at which all runs could possibly be done (lower bound
    /// for the completion-time search).
    [[nodiscard]] int completionLowerBound() const;

    /// Decode the backend's current model into a Solution.
    [[nodiscard]] Solution decode() const;

    /// Variable/clause counts per constraint family, in emission order.
    /// Populated by encode(); doneAllLiteral() adds to "done_all_selectors".
    [[nodiscard]] std::span<const FamilyCounts> familyCounts() const noexcept {
        return familyCounts_;
    }

    /// Clause provenance side-table; nullptr unless
    /// EncoderOptions::trackProvenance was set before encode().
    [[nodiscard]] const ProvenanceTable* provenance() const noexcept {
        return options_.trackProvenance ? &provenance_ : nullptr;
    }

    /// Occupies literal for (run, segment, step); invalid when constant false.
    [[nodiscard]] Literal occupiesLiteral(std::size_t run, SegmentId segment, int step) const {
        return occ_[run][static_cast<std::size_t>(step)][segment.get()];
    }

    /// Done literal for (run, step); invalid literal encodes constant false.
    [[nodiscard]] Literal doneLiteral(std::size_t run, int step) const {
        return done_[run][static_cast<std::size_t>(step)];
    }

private:
    void createOccupiesVariables();
    void createDoneVariables();
    void createBorderVariables(const VssLayout* fixedLayout);
    void encodeChainOccupancy(std::size_t run);
    void encodeMovement(std::size_t run);
    void encodeDoneMachinery(std::size_t run);
    void encodeSchedulePins(std::size_t run);
    void encodeVssSeparation(std::size_t run1, std::size_t run2, const VssLayout* fixedLayout);
    void encodePassThrough(std::size_t mover);

    /// Run `fn`, attributing the backend variables/clauses it adds to
    /// `family` (accumulates across calls with the same family name).
    template <typename Fn>
    void measured(const char* family, Fn&& fn);
    void accumulateFamily(std::string_view family, int variables, std::size_t clauses);

    /// Begin/end a provenance context at the backend's current clause count.
    /// Both are single-branch no-ops when provenance tracking is off.
    void tag(const ClauseProvenance& record) {
        if (options_.trackProvenance) {
            provenance_.open(backend_->numClauses(), record);
        }
    }
    void tagEnd() {
        if (options_.trackProvenance) {
            provenance_.close(backend_->numClauses());
        }
    }
    void recordProvenanceMetrics() const;

    [[nodiscard]] bool inCone(std::size_t run, SegmentId segment, int step) const;
    /// Union of segments on all node-simple paths from e to f of at most
    /// maxLength segments (memoized; endpoints included).
    [[nodiscard]] const std::vector<SegmentId>& pathUnion(SegmentId e, SegmentId f,
                                                          int maxLength);

    SatBackend* backend_;
    const Instance* instance_;
    EncoderOptions options_;
    bool encoded_ = false;
    std::optional<PruneTable> prune_;  ///< built by encode() when pruneUnreachable

    // occ_[run][t][segment]: literal or invalid (constant false).
    std::vector<std::vector<std::vector<Literal>>> occ_;
    // done_[run][t]: literal or invalid (constant false before/at departure).
    std::vector<std::vector<Literal>> done_;
    // borderLiteral_[node]: literal in free mode; invalid when fixed/pinned.
    std::vector<Literal> borderLiteral_;
    std::vector<Literal> freeBorderLiterals_;
    std::vector<SegNodeId> freeBorderNodes_;
    const VssLayout* fixedLayout_ = nullptr;
    std::vector<Literal> doneAll_;  // lazily created per step

    std::vector<FamilyCounts> familyCounts_;
    ProvenanceTable provenance_;  ///< populated only when options_.trackProvenance

    // chains per train length, computed once per distinct length
    std::unordered_map<int, std::vector<rail::Chain>> chainsByLength_;
    // memoized path unions keyed by (e, f, maxLength)
    std::unordered_map<std::uint64_t, std::vector<SegmentId>> pathUnionCache_;
    // sweep_[pair-run][t][segment] created lazily inside encodePassThrough
};

}  // namespace etcs::core
