#include "core/encoder.hpp"

#include <algorithm>
#include <string>

#include "cnf/formula.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace etcs::core {

namespace {

/// Cache key for path unions: (e, f, maxLength) packed into 64 bits.
std::uint64_t pathKey(SegmentId e, SegmentId f, int maxLength) {
    return (static_cast<std::uint64_t>(e.get()) << 40) |
           (static_cast<std::uint64_t>(f.get()) << 16) | static_cast<std::uint64_t>(maxLength);
}

}  // namespace

Encoder::Encoder(SatBackend& backend, const Instance& instance, EncoderOptions options)
    : backend_(&backend), instance_(&instance), options_(options) {}

bool Encoder::inCone(std::size_t run, SegmentId segment, int step) const {
    const DiscreteRun& r = instance_->runs()[run];
    if (step < r.departureStep) {
        return false;
    }
    if (!options_.pruneWithCones) {
        return true;
    }
    const int slack = r.lengthSegments - 1;
    const int fromOrigin = instance_->segmentDistance(r.originSegment, segment);
    if (fromOrigin < 0 || fromOrigin > (step - r.departureStep) * r.speedSegments + slack) {
        return false;
    }
    // Every pinned stop anchors a cone in both time directions.
    for (const DiscreteStop& stop : r.stops) {
        if (!stop.arrivalStep) {
            continue;
        }
        const int a = *stop.arrivalStep;
        const int d = instance_->segmentDistance(segment, stop.segment);
        const int window = (step <= a ? a - step : step - a) * r.speedSegments + slack;
        if (d < 0 || d > window) {
            return false;
        }
    }
    return true;
}

void Encoder::createOccupiesVariables() {
    const auto& graph = instance_->graph();
    const int horizon = instance_->horizonSteps();
    std::uint64_t prunedCells = 0;
    occ_.assign(instance_->numRuns(), {});
    for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
        occ_[run].assign(static_cast<std::size_t>(horizon),
                         std::vector<Literal>(graph.numSegments()));
        for (int t = 0; t < horizon; ++t) {
            for (std::size_t s = 0; s < graph.numSegments(); ++s) {
                if (!inCone(run, SegmentId(s), t)) {
                    continue;
                }
                if (prune_ && !prune_->possible(run, SegmentId(s), t)) {
                    ++prunedCells;  // cone-admitted, window-excluded
                    continue;
                }
                occ_[run][static_cast<std::size_t>(t)][s] =
                    Literal::positive(backend_->addVariable());
            }
        }
    }
    obs::Registry::global().counter("etcs.encoder.pruned.cells").add(prunedCells);
}

void Encoder::createDoneVariables() {
    const int horizon = instance_->horizonSteps();
    done_.assign(instance_->numRuns(), std::vector<Literal>(static_cast<std::size_t>(horizon)));
    for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
        const DiscreteRun& r = instance_->runs()[run];
        // A run can be done at the earliest one step after its departure.
        for (int t = r.departureStep + 1; t < horizon; ++t) {
            done_[run][static_cast<std::size_t>(t)] = Literal::positive(backend_->addVariable());
        }
    }
}

void Encoder::createBorderVariables(const VssLayout* fixedLayout) {
    const auto& graph = instance_->graph();
    borderLiteral_.assign(graph.numNodes(), Literal{});
    freeBorderLiterals_.clear();
    freeBorderNodes_.clear();
    if (fixedLayout != nullptr) {
        return;  // borders are constants taken from the layout
    }
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (graph.node(SegNodeId(n)).fixedBorder) {
            continue;  // constant true
        }
        const Literal lit = Literal::positive(backend_->addVariable());
        borderLiteral_[n] = lit;
        freeBorderLiterals_.push_back(lit);
        freeBorderNodes_.push_back(SegNodeId(n));
    }
}

template <typename Fn>
void Encoder::measured(const char* family, Fn&& fn) {
    const obs::Span span(family);
    const int varsBefore = backend_->numVariables();
    const std::size_t clausesBefore = backend_->numClauses();
    fn();
    accumulateFamily(family, backend_->numVariables() - varsBefore,
                     backend_->numClauses() - clausesBefore);
}

void Encoder::accumulateFamily(std::string_view family, int variables, std::size_t clauses) {
    for (FamilyCounts& counts : familyCounts_) {
        if (counts.family == family) {
            counts.variables += variables;
            counts.clauses += clauses;
            return;
        }
    }
    familyCounts_.push_back(FamilyCounts{family, variables, clauses});
}

void Encoder::encode(const VssLayout* fixedLayout) {
    ETCS_REQUIRE_MSG(!encoded_, "encode() may only be called once per Encoder");
    encoded_ = true;
    fixedLayout_ = fixedLayout;
    doneAll_.assign(static_cast<std::size_t>(instance_->horizonSteps()), Literal{});

    const obs::Span span("encode");
    if (options_.pruneUnreachable) {
        const obs::Span reachSpan("encode.reach");
        prune_.emplace(*instance_);
        prune_->recordMetrics();
    }
    measured("occupies_vars", [&] { createOccupiesVariables(); });
    measured("done_vars", [&] { createDoneVariables(); });
    measured("border_vars", [&] { createBorderVariables(fixedLayout); });

    for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
        measured("chain_occupancy", [&] { encodeChainOccupancy(run); });
        measured("movement", [&] { encodeMovement(run); });
        measured("done_machinery", [&] { encodeDoneMachinery(run); });
        measured("schedule_pins", [&] { encodeSchedulePins(run); });
    }
    measured("vss_separation", [&] {
        for (std::size_t r1 = 0; r1 < instance_->numRuns(); ++r1) {
            for (std::size_t r2 = r1 + 1; r2 < instance_->numRuns(); ++r2) {
                encodeVssSeparation(r1, r2, fixedLayout);
            }
        }
    });
    if (options_.encodePassThrough && instance_->numRuns() > 1) {
        measured("pass_through", [&] {
            for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
                encodePassThrough(run);
            }
        });
    }

    // Mirror the per-family breakdown into the global metrics registry and,
    // when tracing, one summary event (useful next to the encode span).
    auto& registry = obs::Registry::global();
    for (const FamilyCounts& counts : familyCounts_) {
        const std::string family(counts.family);
        registry.counter("etcs.encoder.vars." + family)
            .add(static_cast<std::uint64_t>(counts.variables));
        registry.counter("etcs.encoder.clauses." + family).add(counts.clauses);
    }
    if (options_.trackProvenance) {
        recordProvenanceMetrics();
    }
    if (obs::tracingEnabled()) {
        std::string args = "{\"variables\":" + std::to_string(backend_->numVariables()) +
                           ",\"clauses\":" + std::to_string(backend_->numClauses()) + "}";
        obs::Tracer::instant("encode.done", args);
    }
    if (obs::logEnabled(obs::LogLevel::Info)) {
        obs::log(obs::LogLevel::Info, "encoder", "encoding finished",
                 ",\"variables\":" + std::to_string(backend_->numVariables()) +
                     ",\"clauses\":" + std::to_string(backend_->numClauses()));
    }
}

void Encoder::recordProvenanceMetrics() const {
    // Per-entity encoder accounting (the heatmap axes of docs/EXPLAIN.md):
    // how many clauses each run and each TTD section contributed.
    std::vector<std::uint64_t> byRun(instance_->numRuns(), 0);
    std::vector<std::uint64_t> byTtd(instance_->network().numTtds(), 0);
    for (std::size_t span = 0; span < provenance_.numSpans(); ++span) {
        const ClauseProvenance& record = provenance_.record(span);
        const auto clauses = static_cast<std::uint64_t>(provenance_.spanClauseCount(span));
        if (record.run >= 0) {
            byRun[static_cast<std::size_t>(record.run)] += clauses;
        }
        if (record.run2 >= 0) {
            byRun[static_cast<std::size_t>(record.run2)] += clauses;
        }
        if (record.ttd >= 0) {
            byTtd[static_cast<std::size_t>(record.ttd)] += clauses;
        }
    }
    auto& registry = obs::Registry::global();
    registry.counter("etcs.provenance.spans").add(provenance_.numSpans());
    registry.counter("etcs.provenance.clauses.tagged").add(provenance_.taggedClauses());
    registry.counter("etcs.provenance.clauses.untagged")
        .add(backend_->numClauses() - provenance_.taggedClauses());
    for (std::size_t run = 0; run < byRun.size(); ++run) {
        registry.counter("etcs.provenance.clauses.run." + std::to_string(run))
            .add(byRun[run]);
    }
    for (std::size_t ttd = 0; ttd < byTtd.size(); ++ttd) {
        registry.counter("etcs.provenance.clauses.ttd." + std::to_string(ttd))
            .add(byTtd[ttd]);
    }
}

void Encoder::encodeChainOccupancy(std::size_t run) {
    const DiscreteRun& r = instance_->runs()[run];
    const int horizon = instance_->horizonSteps();
    const auto& graph = instance_->graph();

    auto& chains = chainsByLength_[r.lengthSegments];
    if (chains.empty()) {
        chains = graph.chains(r.lengthSegments);
    }

    for (int t = r.departureStep; t < horizon; ++t) {
        tag({.family = "chain_occupancy", .run = static_cast<int>(run), .step = t});
        const auto& occAtT = occ_[run][static_cast<std::size_t>(t)];
        const Literal doneLit = done_[run][static_cast<std::size_t>(t)];

        std::vector<Literal> options;  // chain selectors (or direct occupies)
        if (r.lengthSegments == 1) {
            // Chains are single segments; the occupies variables double as
            // selectors and no auxiliary variables are needed.
            for (std::size_t s = 0; s < occAtT.size(); ++s) {
                if (occAtT[s].valid()) {
                    options.push_back(occAtT[s]);
                }
            }
        } else {
            // One selector per admissible chain (all member segments in the
            // cone). selector -> member occupies; occupies -> some selector.
            std::vector<std::vector<Literal>> selectorsOfSegment(graph.numSegments());
            for (const rail::Chain& chain : chains) {
                const bool admissible =
                    std::all_of(chain.begin(), chain.end(),
                                [&](SegmentId s) { return occAtT[s.get()].valid(); });
                if (!admissible) {
                    continue;
                }
                const Literal selector = Literal::positive(backend_->addVariable());
                options.push_back(selector);
                for (SegmentId s : chain) {
                    backend_->addClause({~selector, occAtT[s.get()]});
                    selectorsOfSegment[s.get()].push_back(selector);
                }
            }
            for (std::size_t s = 0; s < graph.numSegments(); ++s) {
                if (!occAtT[s].valid()) {
                    continue;
                }
                std::vector<Literal> clause{~occAtT[s]};
                clause.insert(clause.end(), selectorsOfSegment[s].begin(),
                              selectorsOfSegment[s].end());
                backend_->addClause(clause);
            }
        }
        if (doneLit.valid()) {
            options.push_back(doneLit);
        }
        if (options.empty()) {
            // The run has nowhere to be and cannot be done: infeasible.
            backend_->addClause({});
            continue;
        }
        // Exactly one option: the train occupies exactly one chain, or it has
        // left the network (paper's C1 with explicit presence handling).
        cnf::addExactlyOne(*backend_, options, options_.amoEncoding);
    }
    tagEnd();
}

void Encoder::encodeMovement(std::size_t run) {
    const DiscreteRun& r = instance_->runs()[run];
    const int horizon = instance_->horizonSteps();
    const auto& graph = instance_->graph();
    const std::size_t numSegments = graph.numSegments();

    for (int t = r.departureStep; t + 1 < horizon; ++t) {
        tag({.family = "movement", .run = static_cast<int>(run), .step = t});
        const auto& occNow = occ_[run][static_cast<std::size_t>(t)];
        const auto& occNext = occ_[run][static_cast<std::size_t>(t) + 1];
        const Literal doneNext = done_[run][static_cast<std::size_t>(t) + 1];
        for (std::size_t e = 0; e < numSegments; ++e) {
            if (!occNow[e].valid()) {
                continue;
            }
            std::vector<Literal> clause{~occNow[e]};
            for (std::size_t f = 0; f < numSegments; ++f) {
                if (!occNext[f].valid()) {
                    continue;
                }
                const int d = instance_->segmentDistance(SegmentId(e), SegmentId(f));
                if (d >= 0 && d <= r.speedSegments) {
                    clause.push_back(occNext[f]);
                }
            }
            if (doneNext.valid()) {
                clause.push_back(doneNext);
            }
            backend_->addClause(clause);
        }
    }
    tagEnd();
}

void Encoder::encodeDoneMachinery(std::size_t run) {
    const DiscreteRun& r = instance_->runs()[run];
    const int horizon = instance_->horizonSteps();
    const SegmentId dest = r.destination().segment;

    for (int t = r.departureStep + 1; t < horizon; ++t) {
        tag({.family = "done_machinery", .run = static_cast<int>(run), .step = t});
        const Literal doneNow = done_[run][static_cast<std::size_t>(t)];
        // done is monotone: done^t -> done^{t+1}.
        if (t + 1 < horizon) {
            backend_->addClause({~doneNow, done_[run][static_cast<std::size_t>(t) + 1]});
        }
        // A run is done only right after having reached its destination:
        // done^t -> done^{t-1} | occupies[dest]^{t-1}  (with done^{dep} = false).
        std::vector<Literal> clause{~doneNow};
        const Literal donePrev = done_[run][static_cast<std::size_t>(t) - 1];
        if (donePrev.valid()) {
            clause.push_back(donePrev);
        }
        const Literal occDestPrev = occ_[run][static_cast<std::size_t>(t) - 1][dest.get()];
        if (occDestPrev.valid()) {
            clause.push_back(occDestPrev);
        }
        backend_->addClause(clause);
    }
    tagEnd();
}

void Encoder::encodeSchedulePins(std::size_t run) {
    const DiscreteRun& r = instance_->runs()[run];
    const int horizon = instance_->horizonSteps();

    // Input position: the train appears at its origin at departure.
    tag({.family = "schedule_pins",
         .run = static_cast<int>(run),
         .step = r.departureStep,
         .segment = static_cast<int>(r.originSegment.get())});
    const Literal origin =
        occ_[run][static_cast<std::size_t>(r.departureStep)][r.originSegment.get()];
    if (origin.valid()) {
        backend_->addUnit(origin);
    } else {
        backend_->addClause({});  // origin unreachable: instance infeasible
    }

    for (const DiscreteStop& stop : r.stops) {
        if (stop.arrivalStep) {
            // Pinned stop: occupies[stop]^{arrival} = 1 (paper's schedule
            // triples); a dwell extends the pin over consecutive steps.
            for (int j = 0; j < stop.dwellSteps; ++j) {
                const int step = *stop.arrivalStep + j;
                tag({.family = "schedule_pins",
                     .run = static_cast<int>(run),
                     .step = step,
                     .segment = static_cast<int>(stop.segment.get())});
                const Literal lit =
                    step < horizon
                        ? occ_[run][static_cast<std::size_t>(step)][stop.segment.get()]
                        : Literal{};
                if (lit.valid()) {
                    backend_->addUnit(lit);
                } else {
                    backend_->addClause({});  // unreachable / past the horizon
                }
            }
        } else if (stop.dwellSteps <= 1) {
            // Open stop: the run must visit it at some step (paper Sec. III-C,
            // optimization task).
            tag({.family = "schedule_pins",
                 .run = static_cast<int>(run),
                 .segment = static_cast<int>(stop.segment.get())});
            std::vector<Literal> clause;
            for (int t = r.departureStep; t < horizon; ++t) {
                const Literal lit = occ_[run][static_cast<std::size_t>(t)][stop.segment.get()];
                if (lit.valid()) {
                    clause.push_back(lit);
                }
            }
            backend_->addClause(clause);
        } else {
            // Open stop with dwell: some window of dwellSteps consecutive
            // steps must all occupy the stop. One selector per window start.
            tag({.family = "schedule_pins",
                 .run = static_cast<int>(run),
                 .segment = static_cast<int>(stop.segment.get())});
            std::vector<Literal> selectors;
            for (int t = r.departureStep; t + stop.dwellSteps <= horizon; ++t) {
                bool windowAvailable = true;
                for (int j = 0; j < stop.dwellSteps && windowAvailable; ++j) {
                    windowAvailable =
                        occ_[run][static_cast<std::size_t>(t + j)][stop.segment.get()]
                            .valid();
                }
                if (!windowAvailable) {
                    continue;
                }
                const Literal selector = Literal::positive(backend_->addVariable());
                for (int j = 0; j < stop.dwellSteps; ++j) {
                    backend_->addClause(
                        {~selector,
                         occ_[run][static_cast<std::size_t>(t + j)][stop.segment.get()]});
                }
                selectors.push_back(selector);
            }
            backend_->addClause(selectors);  // empty -> infeasible, as intended
        }
    }
    tagEnd();
}

void Encoder::encodeVssSeparation(std::size_t run1, std::size_t run2,
                                  const VssLayout* fixedLayout) {
    const auto& graph = instance_->graph();
    const DiscreteRun& r1 = instance_->runs()[run1];
    const DiscreteRun& r2 = instance_->runs()[run2];
    const int firstStep = std::max(r1.departureStep, r2.departureStep);
    const int horizon = instance_->horizonSteps();

    for (std::size_t ttd = 0; ttd < instance_->network().numTtds(); ++ttd) {
        const auto segments = graph.segmentsOfTtd(TtdId(ttd));
        for (std::size_t i = 0; i < segments.size(); ++i) {
            for (std::size_t j = i; j < segments.size(); ++j) {
                const SegmentId e = segments[i];
                const SegmentId f = segments[j];

                // Border disjunction per connecting path (empty for e == f).
                // satisfied == true: some border on every set -> no clause.
                std::vector<std::vector<Literal>> borderDisjunctions;
                bool alwaysSeparated = false;
                if (e != f) {
                    alwaysSeparated = true;
                    for (const auto& nodeSet : graph.betweenNodeSets(e, f)) {
                        bool pathSatisfied = false;
                        std::vector<Literal> disjunction;
                        for (SegNodeId v : nodeSet) {
                            if (graph.node(v).fixedBorder) {
                                pathSatisfied = true;
                                break;
                            }
                            if (fixedLayout != nullptr) {
                                if (fixedLayout->flags()[v.get()]) {
                                    pathSatisfied = true;
                                    break;
                                }
                            } else {
                                disjunction.push_back(borderLiteral_[v.get()]);
                            }
                        }
                        if (!pathSatisfied) {
                            alwaysSeparated = false;
                            borderDisjunctions.push_back(std::move(disjunction));
                        }
                    }
                }
                if (alwaysSeparated) {
                    continue;
                }

                for (int t = firstStep; t < horizon; ++t) {
                    tag({.family = "vss_separation",
                         .run = static_cast<int>(run1),
                         .run2 = static_cast<int>(run2),
                         .step = t,
                         .ttd = static_cast<int>(ttd),
                         .segment = static_cast<int>(e.get())});
                    const Literal occ1e = occ_[run1][static_cast<std::size_t>(t)][e.get()];
                    const Literal occ2f = occ_[run2][static_cast<std::size_t>(t)][f.get()];
                    const Literal occ1f = occ_[run1][static_cast<std::size_t>(t)][f.get()];
                    const Literal occ2e = occ_[run2][static_cast<std::size_t>(t)][e.get()];
                    if (e == f) {
                        // Same segment, same TTD: plainly exclusive.
                        if (occ1e.valid() && occ2f.valid()) {
                            backend_->addClause({~occ1e, ~occ2f});
                        }
                        continue;
                    }
                    for (const auto& disjunction : borderDisjunctions) {
                        if (occ1e.valid() && occ2f.valid()) {
                            std::vector<Literal> clause{~occ1e, ~occ2f};
                            clause.insert(clause.end(), disjunction.begin(), disjunction.end());
                            backend_->addClause(clause);
                        }
                        if (occ1f.valid() && occ2e.valid()) {
                            std::vector<Literal> clause{~occ1f, ~occ2e};
                            clause.insert(clause.end(), disjunction.begin(), disjunction.end());
                            backend_->addClause(clause);
                        }
                    }
                }
            }
        }
    }
    tagEnd();
}

const std::vector<SegmentId>& Encoder::pathUnion(SegmentId e, SegmentId f, int maxLength) {
    const std::uint64_t key = pathKey(e, f, maxLength);
    const auto it = pathUnionCache_.find(key);
    if (it != pathUnionCache_.end()) {
        return it->second;
    }
    std::vector<char> member(instance_->graph().numSegments(), 0);
    for (const rail::SegmentPath& path : instance_->graph().simplePaths(e, f, maxLength)) {
        for (SegmentId s : path) {
            member[s.get()] = 1;
        }
    }
    std::vector<SegmentId> segments;
    for (std::size_t s = 0; s < member.size(); ++s) {
        if (member[s] != 0) {
            segments.push_back(SegmentId(s));
        }
    }
    return pathUnionCache_.emplace(key, std::move(segments)).first->second;
}

void Encoder::encodePassThrough(std::size_t mover) {
    const DiscreteRun& r = instance_->runs()[mover];
    const int horizon = instance_->horizonSteps();
    const auto& graph = instance_->graph();
    const std::size_t numSegments = graph.numSegments();

    for (int t = r.departureStep; t + 1 < horizon; ++t) {
        tag({.family = "pass_through", .run = static_cast<int>(mover), .step = t});
        const auto& occNow = occ_[mover][static_cast<std::size_t>(t)];
        const auto& occNext = occ_[mover][static_cast<std::size_t>(t) + 1];

        // A sweep variable for segment g only matters if some other run can
        // stand on g at t or t+1; otherwise it is a pure literal (it would
        // occur only positively, in its defining clauses) and both it and
        // those clauses can be dropped without changing satisfiability.
        std::vector<char> contested(numSegments, 0);
        for (std::size_t other = 0; other < instance_->numRuns(); ++other) {
            if (other == mover) {
                continue;
            }
            const auto& otherNow = occ_[other][static_cast<std::size_t>(t)];
            const auto& otherNext = occ_[other][static_cast<std::size_t>(t) + 1];
            for (std::size_t g = 0; g < numSegments; ++g) {
                if (otherNow[g].valid() || otherNext[g].valid()) {
                    contested[g] = 1;
                }
            }
        }

        // sweep[g]: this run's movement between t and t+1 covers segment g.
        std::vector<Literal> sweep(numSegments);
        for (std::size_t e = 0; e < numSegments; ++e) {
            if (!occNow[e].valid()) {
                continue;
            }
            for (std::size_t f = 0; f < numSegments; ++f) {
                if (e == f || !occNext[f].valid()) {
                    continue;
                }
                const int d = instance_->segmentDistance(SegmentId(e), SegmentId(f));
                if (d < 1 || d > r.speedSegments) {
                    continue;
                }
                // A move of distance d traverses d+1 segments including both
                // endpoints, hence the +1 on the path-length bound.
                for (SegmentId g : pathUnion(SegmentId(e), SegmentId(f), r.speedSegments + 1)) {
                    if (contested[g.get()] == 0) {
                        continue;
                    }
                    if (!sweep[g.get()].valid()) {
                        sweep[g.get()] = Literal::positive(backend_->addVariable());
                    }
                    // (occ[e]^t & occ[f]^{t+1}) -> sweep[g]
                    backend_->addClause({~occNow[e], ~occNext[f], sweep[g.get()]});
                }
            }
        }

        // No other run may stand on a swept segment at t or t+1 (paper's C4).
        for (std::size_t other = 0; other < instance_->numRuns(); ++other) {
            if (other == mover) {
                continue;
            }
            tag({.family = "pass_through",
                 .run = static_cast<int>(mover),
                 .run2 = static_cast<int>(other),
                 .step = t});
            for (std::size_t g = 0; g < numSegments; ++g) {
                if (!sweep[g].valid()) {
                    continue;
                }
                const Literal otherNow = occ_[other][static_cast<std::size_t>(t)][g];
                const Literal otherNext = occ_[other][static_cast<std::size_t>(t) + 1][g];
                if (otherNow.valid()) {
                    backend_->addClause({~sweep[g], ~otherNow});
                }
                if (otherNext.valid()) {
                    backend_->addClause({~sweep[g], ~otherNext});
                }
            }
        }
    }
    tagEnd();
}

Literal Encoder::doneAllLiteral(int step) {
    ETCS_REQUIRE_MSG(encoded_, "encode() must run before doneAllLiteral()");
    ETCS_REQUIRE_MSG(step >= 0 && step < instance_->horizonSteps(), "step out of range");
    Literal& cached = doneAll_[static_cast<std::size_t>(step)];
    if (cached.valid()) {
        return cached;
    }
    const int varsBefore = backend_->numVariables();
    const std::size_t clausesBefore = backend_->numClauses();
    tag({.family = "done_all_selectors", .step = step});
    const Literal lit = Literal::positive(backend_->addVariable());
    for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
        const Literal doneLit = done_[run][static_cast<std::size_t>(step)];
        if (doneLit.valid()) {
            backend_->addClause({~lit, doneLit});
        } else {
            // This run cannot be done at `step`; the selector is unusable.
            backend_->addUnit(~lit);
            break;
        }
    }
    tagEnd();
    accumulateFamily("done_all_selectors", backend_->numVariables() - varsBefore,
                     backend_->numClauses() - clausesBefore);
    cached = lit;
    return lit;
}

int Encoder::completionLowerBound() const {
    int bound = 1;
    for (const DiscreteRun& r : instance_->runs()) {
        const int travel = instance_->segmentDistance(r.originSegment, r.destination().segment);
        const int steps = (travel + r.speedSegments - 1) / r.speedSegments;
        bound = std::max(bound, r.departureStep + steps + 1);
    }
    return bound;
}

Solution Encoder::decode() const {
    ETCS_REQUIRE_MSG(encoded_, "encode() must run before decode()");
    const auto& graph = instance_->graph();
    const int horizon = instance_->horizonSteps();

    Solution solution{VssLayout(graph), {}, 0, 0};
    if (fixedLayout_ != nullptr) {
        solution.layout = *fixedLayout_;
    } else {
        for (std::size_t i = 0; i < freeBorderNodes_.size(); ++i) {
            solution.layout.setBorder(freeBorderNodes_[i],
                                      backend_->modelValue(freeBorderLiterals_[i]));
        }
    }
    solution.sectionCount = solution.layout.sectionCount(graph);

    solution.traces.resize(instance_->numRuns());
    int lastActivity = -1;
    for (std::size_t run = 0; run < instance_->numRuns(); ++run) {
        RunTrace& trace = solution.traces[run];
        trace.occupied.assign(static_cast<std::size_t>(horizon), {});
        const SegmentId dest = instance_->runs()[run].destination().segment;
        for (int t = 0; t < horizon; ++t) {
            for (std::size_t s = 0; s < graph.numSegments(); ++s) {
                const Literal lit = occ_[run][static_cast<std::size_t>(t)][s];
                if (lit.valid() && backend_->modelValue(lit)) {
                    trace.occupied[static_cast<std::size_t>(t)].push_back(SegmentId(s));
                }
            }
            if (!trace.occupied[static_cast<std::size_t>(t)].empty()) {
                trace.lastPresentStep = t;
                lastActivity = std::max(lastActivity, t);
                const auto& segs = trace.occupied[static_cast<std::size_t>(t)];
                if (trace.firstArrivalStep < 0 &&
                    std::find(segs.begin(), segs.end(), dest) != segs.end()) {
                    trace.firstArrivalStep = t;
                }
            }
        }
    }
    solution.completionSteps = lastActivity + 1;
    return solution;
}

}  // namespace etcs::core
