/// \file validator.hpp
/// Independent solution checking.
///
/// The validator re-derives every rule of the paper directly from the
/// decoded Solution — without consulting the SAT encoding — and reports all
/// violations.  Tests use it as an oracle: any model the encoder/solver
/// produces must validate cleanly.
#pragma once

#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/instance.hpp"

namespace etcs::core {

/// Check a decoded solution against the instance's rules. Returns
/// human-readable violation descriptions; empty means the solution is valid.
///
/// Checked rules:
///  * presence: nothing before departure, appears at its origin on
///    departure, presence is one contiguous window, pinned stops are met,
///    open stops are visited;
///  * chain shape: each present step occupies exactly l* segments forming a
///    node-simple chain;
///  * movement: every occupied segment reaches an occupied segment of the
///    next present step within the train's speed;
///  * VSS exclusivity: no two trains in one section of the solution layout;
///  * no pass-through: a train's swept corridor between consecutive steps is
///    free of every other train at both steps.
[[nodiscard]] std::vector<std::string> validateSolution(const Instance& instance,
                                                        const Solution& solution);

}  // namespace etcs::core
