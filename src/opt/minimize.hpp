/// \file minimize.hpp
/// Objective minimization on top of incremental SAT.
///
/// Two primitives cover both objective functions of the paper (Sec. III-C):
///   * minimizeTrueLiterals  — min sum of Boolean "soft" literals
///                             (used for  min Σ border_v),
///   * smallestFeasibleIndex — min index t such that a monotone family of
///                             literals can hold (used for completion-time
///                             minimization via the monotone done^t chain).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "cnf/backend.hpp"

namespace etcs::opt {

using cnf::Literal;
using cnf::SatBackend;

enum class SearchStrategy {
    LinearDown,  ///< SAT -> tighten bound below the incumbent until UNSAT.
    LinearUp,    ///< UNSAT -> relax bound upward until SAT.
    Binary,      ///< bisection between 0 and the incumbent.
};

[[nodiscard]] std::string_view toString(SearchStrategy strategy);

/// Outcome of a minimization run. When feasible, the backend's model is left
/// at an optimal assignment (callers decode directly from the backend).
struct MinimizeResult {
    bool feasible = false;       ///< false: hard constraints are unsatisfiable.
    int optimum = 0;             ///< minimum number of true soft literals.
    std::uint64_t solveCalls = 0;
};

/// Minimize the number of true literals among `soft` subject to the clauses
/// already in `backend`.  Builds one totalizer over `soft` and then tightens
/// the bound with assumption literals only, so the backend stays reusable.
/// `onImproved` (optional) is invoked with every improved incumbent.
/// `alwaysAssume` (optional) literals are assumed on every solve, which lets
/// callers scope the minimization (e.g. "given completion by step T").
MinimizeResult minimizeTrueLiterals(SatBackend& backend, std::span<const Literal> soft,
                                    SearchStrategy strategy = SearchStrategy::LinearDown,
                                    const std::function<void(int)>& onImproved = {},
                                    std::span<const Literal> alwaysAssume = {});

/// Weighted variant: minimize sum(weight_i * soft_i). Weights must be
/// positive; a literal of weight w contributes w duplicated totalizer inputs,
/// so keep total weight moderate (it bounds the totalizer width).
MinimizeResult minimizeWeightedTrueLiterals(SatBackend& backend,
                                            std::span<const Literal> soft,
                                            std::span<const int> weights,
                                            SearchStrategy strategy = SearchStrategy::LinearDown,
                                            std::span<const Literal> alwaysAssume = {});

/// Outcome of a monotone feasibility search.
struct IndexSearchResult {
    bool feasible = false;  ///< false: no index in [lo, hi] is feasible.
    int index = 0;          ///< smallest feasible index.
    std::uint64_t solveCalls = 0;
};

/// Find the smallest index t in [lo, hi] such that solve({literalAt(t)}) is
/// SAT.  Requires monotonicity: if t is feasible then every t' > t is
/// feasible (the paper's done^t literals satisfy this by construction).
/// Leaves the backend's model at the optimal index when feasible.
/// `alwaysAssume` literals are added to every solve.
IndexSearchResult smallestFeasibleIndex(SatBackend& backend,
                                        const std::function<Literal(int)>& literalAt, int lo,
                                        int hi,
                                        SearchStrategy strategy = SearchStrategy::Binary,
                                        std::span<const Literal> alwaysAssume = {});

}  // namespace etcs::opt
