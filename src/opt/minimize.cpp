#include "opt/minimize.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "cnf/cardinality.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace etcs::opt {

using cnf::SolveStatus;
using cnf::Totalizer;

namespace {

/// One trace/metrics record per bound probe of a minimization search.
void recordBoundProbe(const char* event, int bound, bool sat) {
    obs::Registry::global().counter("etcs.opt.bound_probes").increment();
    if (obs::tracingEnabled()) {
        obs::Tracer::instant(event, "{\"bound\":" + std::to_string(bound) +
                                        ",\"sat\":" + (sat ? "true" : "false") + "}");
    }
    if (obs::logEnabled(obs::LogLevel::Debug)) {
        obs::log(obs::LogLevel::Debug, "opt", event,
                 ",\"bound\":" + std::to_string(bound) +
                     ",\"sat\":" + (sat ? "true" : "false"));
    }
}

void recordIncumbent(int incumbent) {
    obs::Registry::global().gauge("etcs.opt.incumbent").set(incumbent);
    if (obs::tracingEnabled()) {
        obs::Tracer::counterValue("opt.incumbent", incumbent);
    }
}

int weightedCount(const SatBackend& backend, std::span<const Literal> lits,
                  std::span<const int> weights) {
    int count = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
        if (backend.modelValue(lits[i])) {
            count += weights.empty() ? 1 : weights[i];
        }
    }
    return count;
}

/// Shared search core: minimize the weighted count of true soft literals.
/// `weights` may be empty (all ones).
MinimizeResult minimizeImpl(SatBackend& backend, std::span<const Literal> soft,
                            std::span<const int> weights, SearchStrategy strategy,
                            const std::function<void(int)>& onImproved,
                            std::span<const Literal> alwaysAssume) {
    const obs::Span span("opt.minimize");
    MinimizeResult result;
    std::vector<Literal> assumptions(alwaysAssume.begin(), alwaysAssume.end());

    if (soft.empty()) {
        ++result.solveCalls;
        result.feasible = backend.solve(assumptions) == SolveStatus::Sat;
        return result;
    }

    // First solve establishes feasibility and the initial incumbent.
    ++result.solveCalls;
    if (backend.solve(assumptions) != SolveStatus::Sat) {
        return result;
    }
    result.feasible = true;
    int incumbent = weightedCount(backend, soft, weights);
    recordIncumbent(incumbent);
    if (onImproved) {
        onImproved(incumbent);
    }
    if (incumbent == 0) {
        result.optimum = 0;
        return result;
    }

    // Weighted literals enter the totalizer once per weight unit.
    std::vector<Literal> totalizerInputs;
    if (weights.empty()) {
        totalizerInputs.assign(soft.begin(), soft.end());
    } else {
        for (std::size_t i = 0; i < soft.size(); ++i) {
            for (int w = 0; w < weights[i]; ++w) {
                totalizerInputs.push_back(soft[i]);
            }
        }
    }
    const Totalizer totalizer(backend, totalizerInputs);
    const int maxTotal = static_cast<int>(totalizerInputs.size());

    auto solveAtMost = [&](int k) {
        ++result.solveCalls;
        assumptions.resize(alwaysAssume.size());
        assumptions.push_back(totalizer.atMostAssumption(static_cast<std::size_t>(k)));
        const bool sat = backend.solve(assumptions) == SolveStatus::Sat;
        recordBoundProbe("opt.tighten_bound", k, sat);
        if (sat) {
            recordIncumbent(weightedCount(backend, soft, weights));
        }
        return sat;
    };

    switch (strategy) {
        case SearchStrategy::LinearDown: {
            while (incumbent > 0 && solveAtMost(incumbent - 1)) {
                incumbent = weightedCount(backend, soft, weights);
                if (onImproved) {
                    onImproved(incumbent);
                }
            }
            break;
        }
        case SearchStrategy::LinearUp: {
            int bound = 0;
            while (bound < incumbent && !solveAtMost(bound)) {
                ++bound;
            }
            incumbent = (bound < incumbent) ? weightedCount(backend, soft, weights) : incumbent;
            if (onImproved) {
                onImproved(incumbent);
            }
            break;
        }
        case SearchStrategy::Binary: {
            int lo = 0;
            int hi = incumbent;  // hi is always feasible
            while (lo < hi) {
                const int mid = lo + (hi - lo) / 2;
                if (solveAtMost(mid)) {
                    hi = weightedCount(backend, soft, weights);
                    if (onImproved) {
                        onImproved(hi);
                    }
                } else {
                    lo = mid + 1;
                }
            }
            incumbent = lo;
            break;
        }
    }
    result.optimum = incumbent;

    // Leave the backend's model at an optimal assignment. (The last solve of
    // the search may have been UNSAT, which clobbers no model, but be
    // explicit so callers can always decode right after return.)
    bool ok = false;
    if (incumbent < maxTotal) {
        ok = solveAtMost(incumbent);
    } else {
        ++result.solveCalls;
        assumptions.resize(alwaysAssume.size());
        ok = backend.solve(assumptions) == SolveStatus::Sat;
    }
    ETCS_REQUIRE_MSG(ok, "optimal bound must be satisfiable");
    return result;
}

}  // namespace

std::string_view toString(SearchStrategy strategy) {
    switch (strategy) {
        case SearchStrategy::LinearDown: return "linear-down";
        case SearchStrategy::LinearUp: return "linear-up";
        case SearchStrategy::Binary: return "binary";
    }
    return "unknown";
}

MinimizeResult minimizeTrueLiterals(SatBackend& backend, std::span<const Literal> soft,
                                    SearchStrategy strategy,
                                    const std::function<void(int)>& onImproved,
                                    std::span<const Literal> alwaysAssume) {
    return minimizeImpl(backend, soft, {}, strategy, onImproved, alwaysAssume);
}

MinimizeResult minimizeWeightedTrueLiterals(SatBackend& backend,
                                            std::span<const Literal> soft,
                                            std::span<const int> weights,
                                            SearchStrategy strategy,
                                            std::span<const Literal> alwaysAssume) {
    ETCS_REQUIRE_MSG(weights.size() == soft.size(),
                     "one weight per soft literal required");
    ETCS_REQUIRE_MSG(std::all_of(weights.begin(), weights.end(), [](int w) { return w > 0; }),
                     "weights must be positive");
    return minimizeImpl(backend, soft, weights, strategy, {}, alwaysAssume);
}

IndexSearchResult smallestFeasibleIndex(SatBackend& backend,
                                        const std::function<Literal(int)>& literalAt, int lo,
                                        int hi, SearchStrategy strategy,
                                        std::span<const Literal> alwaysAssume) {
    ETCS_REQUIRE_MSG(lo <= hi, "empty search range");
    const obs::Span span("opt.index_search");
    IndexSearchResult result;
    std::vector<Literal> assumptions(alwaysAssume.begin(), alwaysAssume.end());
    auto feasible = [&](int t) {
        ++result.solveCalls;
        assumptions.resize(alwaysAssume.size());
        assumptions.push_back(literalAt(t));
        const bool sat = backend.solve(assumptions) == SolveStatus::Sat;
        recordBoundProbe("opt.probe_index", t, sat);
        return sat;
    };

    switch (strategy) {
        case SearchStrategy::Binary: {
            // Establish feasibility at hi first (monotone upper end).
            if (!feasible(hi)) {
                return result;
            }
            int feasibleHi = hi;
            int infeasibleLo = lo - 1;
            while (infeasibleLo + 1 < feasibleHi) {
                const int mid = infeasibleLo + (feasibleHi - infeasibleLo) / 2;
                if (feasible(mid)) {
                    feasibleHi = mid;
                } else {
                    infeasibleLo = mid;
                }
            }
            result.feasible = true;
            result.index = feasibleHi;
            break;
        }
        case SearchStrategy::LinearUp: {
            for (int t = lo; t <= hi; ++t) {
                if (feasible(t)) {
                    result.feasible = true;
                    result.index = t;
                    break;
                }
            }
            break;
        }
        case SearchStrategy::LinearDown: {
            if (!feasible(hi)) {
                return result;
            }
            int best = hi;
            for (int t = hi - 1; t >= lo; --t) {
                if (!feasible(t)) {
                    break;
                }
                best = t;
            }
            result.feasible = true;
            result.index = best;
            break;
        }
    }
    if (result.feasible) {
        // Re-solve at the optimum so the backend's model matches it.
        const bool ok = feasible(result.index);
        ETCS_REQUIRE_MSG(ok, "optimal index must remain satisfiable");
    }
    return result;
}

}  // namespace etcs::opt
