/// \file reach.hpp
/// Solver-sound reachability analysis: a fixpoint abstract interpretation
/// over the discretized segment graph that computes, per (run, segment), the
/// set of time steps at which the train can possibly occupy that position.
///
/// The abstraction is sound with respect to the SAT encoding of
/// core/encoder.hpp: every (run, segment, step) cell the analysis rules out
/// is false in *some satisfiability-preserving transformation* of every
/// model (for fully timed runs, the prompt-model truncation; for all other
/// constraints, in every model outright). Consequences:
///
///  * the encoder may skip variables and clauses for excluded cells without
///    changing the SAT/UNSAT verdict or the optimal objectives
///    (EncoderOptions::pruneUnreachable, see docs/REACHABILITY.md for the
///    soundness argument);
///  * an excluded cell that the schedule *pins* is a solver-free proof of
///    unsatisfiability, strictly stronger than the L024 shortest-path bound
///    (diagnostics R001/R002, emitted by lintReachability).
///
/// The analysis lives in the lint layer (rail-level types only) so both the
/// linter and the core encoder (via core/pruning.hpp) can consume it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lint/diagnostics.hpp"
#include "railway/schedule.hpp"
#include "railway/segment_graph.hpp"
#include "railway/train.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs::lint {

/// Earliest number of steps a train needs to bring any of its segments from
/// covering `from` to covering a segment `distance` hops away: the graph
/// distance minus the body slack (a train of k segments covering `from` may
/// already reach k-1 segments further), divided by the per-step advance.
/// Sound: never overestimates. Mirrors the rounding of core::Instance.
[[nodiscard]] int travelLowerBound(int distance, int lengthSegments, int speedSegments);

/// Number of discrete steps a stop must be held (mirrors core::Instance so
/// lint bounds and the encoding agree exactly).
[[nodiscard]] int dwellSteps(const rail::TimedStop& stop, Resolution resolution);

/// Interval hull of the allowed steps at one (run, segment): empty when
/// latest < earliest. The hull loses "gaps" (a pinned stop elsewhere can
/// forbid a middle band of steps); ReachAnalysis::possible() keeps the exact
/// per-cell answer.
struct StepWindow {
    int earliest = 0;
    int latest = -1;
    [[nodiscard]] bool empty() const noexcept { return latest < earliest; }
    [[nodiscard]] bool contains(int step) const noexcept {
        return step >= earliest && step <= latest;
    }
    [[nodiscard]] int width() const noexcept { return empty() ? 0 : latest - earliest + 1; }
};

/// A stop brought onto the discrete grid (mirrors core::DiscreteStop without
/// depending on the core layer).
struct ReachStop {
    SegmentId segment;
    std::optional<int> arrivalStep;  ///< pinned arrival step, if timed
    int dwellSteps = 1;              ///< consecutive steps the stop is held
};

/// One train's run on the discrete grid (mirrors core::DiscreteRun).
struct ReachRun {
    SegmentId originSegment;
    int departureStep = 0;
    int lengthSegments = 1;
    int speedSegments = 1;  ///< must be >= 1 (callers filter L020 runs)
    std::vector<ReachStop> stops;  ///< back() is the destination; may be empty
};

/// A scheduled obligation the analysis proved unsatisfiable. Every violation
/// is a sound UNSAT proof for the encoded instance (the corresponding pin or
/// visit clause has no admissible cell left).
struct ReachViolation {
    enum class Kind {
        OriginUnreachable,  ///< departure cell excluded (origin pin empty)
        PinnedStopEmpty,    ///< a pinned (segment, step) cell is excluded
        OpenStopEmpty,      ///< an open stop's window is empty
        DwellUnplaceable,   ///< window nonempty but no dwell-length fit
    };
    std::size_t run = 0;
    int stopIndex = -1;  ///< -1 = the origin, otherwise index into stops
    Kind kind = Kind::OriginUnreachable;
    int step = -1;  ///< offending step for pinned-cell violations (-1 n/a)
};

/// The fixpoint analysis result. Construction runs the analysis to a
/// (bounded) fixpoint; all queries are O(1) table lookups afterwards.
class ReachAnalysis {
public:
    /// `horizonSteps` counts the steps t_0 .. t_{H-1} (as core::Instance).
    /// Requires speedSegments >= 1 and 0 <= departureStep < horizonSteps for
    /// every run; filter structurally broken runs (L020/L023) first.
    ReachAnalysis(const rail::SegmentGraph& graph, std::vector<ReachRun> runs,
                  int horizonSteps);

    [[nodiscard]] std::size_t numRuns() const noexcept { return runs_.size(); }
    [[nodiscard]] int horizonSteps() const noexcept { return horizonSteps_; }
    [[nodiscard]] const ReachRun& run(std::size_t index) const { return runs_.at(index); }

    /// Exact per-cell verdict: can `run` possibly occupy `segment` at `step`?
    /// False is a sound exclusion (see file comment); true is "don't know".
    [[nodiscard]] bool possible(std::size_t run, SegmentId segment, int step) const {
        if (step < 0 || step >= horizonSteps_) {
            return false;
        }
        return allowed_[run][segment.get() * static_cast<std::size_t>(horizonSteps_) +
                            static_cast<std::size_t>(step)] != 0;
    }

    /// Interval hull of the allowed steps at (run, segment).
    [[nodiscard]] StepWindow window(std::size_t run, SegmentId segment) const;

    /// Last step the run can possibly be present anywhere. For fully timed
    /// runs whose destination pin ends last this is the prompt-model cutoff
    /// (max over stops of arrival + dwell - 1); otherwise horizon - 1.
    [[nodiscard]] int runCutoffStep(std::size_t run) const { return cutoff_.at(run); }

    /// Whether the prompt-model truncation applied to this run.
    [[nodiscard]] bool promptCutoff(std::size_t run) const { return prompt_.at(run) != 0; }

    /// Narrowing iterations summed over all runs (>= 1 per run).
    [[nodiscard]] std::uint64_t iterations() const noexcept { return iterations_; }

    /// Scheduled obligations the analysis refuted; non-empty implies the
    /// encoded instance is unsatisfiable.
    [[nodiscard]] std::span<const ReachViolation> violations() const noexcept {
        return violations_;
    }
    [[nodiscard]] bool provablyInfeasible() const noexcept { return !violations_.empty(); }

    /// Admitted cells (possible() == true) across all runs, and the total
    /// run x segment x step cell count — the pruning headroom.
    [[nodiscard]] std::uint64_t possibleCells() const noexcept { return possibleCells_; }
    [[nodiscard]] std::uint64_t totalCells() const noexcept {
        return static_cast<std::uint64_t>(runs_.size()) * numSegments_ *
               static_cast<std::uint64_t>(horizonSteps_);
    }

private:
    void analyzeRun(const rail::SegmentGraph& graph, std::size_t runIndex);
    void collectViolations(std::size_t runIndex);

    std::vector<ReachRun> runs_;
    int horizonSteps_ = 0;
    std::size_t numSegments_ = 0;
    // allowed_[run][segment * H + step] — 1 iff the cell may be occupied.
    std::vector<std::vector<char>> allowed_;
    std::vector<int> cutoff_;
    std::vector<char> prompt_;
    std::vector<ReachViolation> violations_;
    std::uint64_t iterations_ = 0;
    std::uint64_t possibleCells_ = 0;
};

/// Builds ReachRuns from a rail-level schedule, mirroring core::Instance
/// discretization. Runs that carry structural schedule defects the basic
/// linter already reports (L020 zero speed, L021 disconnected stops,
/// L022 time travel, L023 horizon overruns) are skipped; `scheduleRunIndex`
/// maps each analysis run back to its position in `schedule.runs()`.
struct ScheduleReach {
    std::optional<ReachAnalysis> analysis;  ///< nullopt when horizon invalid
    std::vector<std::size_t> scheduleRunIndex;
};
[[nodiscard]] ScheduleReach analyzeSchedule(const rail::SegmentGraph& graph,
                                            const rail::TrainSet& trains,
                                            const rail::Schedule& schedule);

/// Reachability lint pass (diagnostic family R0xx, see docs/LINTING.md):
///   R001 — scheduled position outside its reachability window (error;
///          strictly stronger than the L024 shortest-path bound),
///   R002 — dwell obligation cannot fit inside the window (error),
///   R003 — vacuous deadline: later obligations and the horizon already
///          force arrival at or before the pinned step (info).
/// Error findings are sound UNSAT proofs; no SAT solver is involved.
void lintReachability(const rail::SegmentGraph& graph, const rail::TrainSet& trains,
                      const rail::Schedule& schedule, LintReport& report);

}  // namespace etcs::lint
