/// \file cnf_lint.hpp
/// CNF linter: structural checks over a collected formula (diagnostic codes
/// C0xx, see docs/LINTING.md) plus a variable connected-component
/// decomposition report.
///
/// Run it over the formula-collector backend output (cnf/collect.hpp) to
/// audit an encoding — tautologies, duplicate clauses, contradictory units,
/// and auxiliary variables that Tseitin/AMO/totalizer constructions created
/// but never constrained — or over any DIMACS file. The component report is
/// the seam for future instance partitioning: independent components can be
/// solved in parallel.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/diagnostics.hpp"
#include "sat/dimacs.hpp"

namespace etcs::lint {

struct CnfLintOptions {
    /// Emit at most this many diagnostics per code; the remainder is folded
    /// into one closing summary diagnostic with the same code. Keeps reports
    /// readable on million-clause formulas.
    std::size_t maxDiagnosticsPerCode = 25;
};

/// Variable connected components of the formula's primal graph (variables
/// joined when they share a clause). Variables that occur in no clause are
/// excluded (they get a C005 diagnostic instead).
struct CnfComponentSummary {
    std::size_t numComponents = 0;
    std::vector<std::size_t> componentVariables;  ///< sizes, largest first
};

struct CnfLintResult {
    LintReport report;
    CnfComponentSummary components;
};

[[nodiscard]] CnfLintResult lintFormula(const sat::CnfFormula& formula,
                                        const CnfLintOptions& options = {});

}  // namespace etcs::lint
