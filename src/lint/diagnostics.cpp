#include "lint/diagnostics.hpp"

#include <array>

#include "obs/metrics.hpp"

namespace etcs::lint {

namespace {

constexpr std::array<CodeInfo, 37> kCodes{{
    // Parse-level issues (emitted by the lenient readers in railway/io.hpp).
    {"L001", Severity::Error, "syntax error (malformed line, number, or clock value)"},
    {"L002", Severity::Error, "duplicate entity name"},
    {"L003", Severity::Error, "reference to an unknown entity"},
    {"L004", Severity::Error, "non-positive length or speed (zero-length edge)"},
    {"L005", Severity::Error, "station offset outside its track"},
    // Network structure.
    {"L010", Severity::Error, "isolated node (degree 0, dangling)"},
    {"L011", Severity::Error, "network is not connected (unreachable component)"},
    {"L012", Severity::Error, "track does not belong to any TTD section"},
    {"L013", Severity::Warning, "duplicate parallel edge inside one TTD section"},
    {"L014", Severity::Warning, "degree anomaly at a switch point (degree > 3)"},
    {"L015", Severity::Warning, "TTD section is not contiguous"},
    {"L016", Severity::Error, "network has no tracks"},
    // Schedule feasibility.
    {"L020", Severity::Error, "train speed rounds to zero segments per step"},
    {"L021", Severity::Error, "consecutive stops are disconnected in the segment graph"},
    {"L022", Severity::Error, "stop scheduled before the previous stop or departure"},
    {"L023", Severity::Error, "departure, arrival, or dwell beyond the scenario horizon"},
    {"L024", Severity::Error, "arrival deadline below the shortest-path lower bound"},
    {"L025", Severity::Error, "run cannot complete within the horizon (lower bound)"},
    {"L026", Severity::Error, "two trains pinned to the same segment at the same step"},
    {"L027", Severity::Error, "train has more than one run"},
    // Reachability analysis (lint/reach.hpp): fixpoint time-window facts.
    {"R001", Severity::Error, "scheduled position outside its reachability window"},
    {"R002", Severity::Error, "dead stop: dwell cannot fit inside the reachability window"},
    {"R003", Severity::Info, "vacuous deadline: later obligations already force it"},
    // CNF formula.
    {"C001", Severity::Warning, "tautological clause (contains x and not-x)"},
    {"C002", Severity::Warning, "duplicate literal inside a clause"},
    {"C003", Severity::Warning, "duplicate clause"},
    {"C004", Severity::Error, "contradictory unit clauses (trivially UNSAT)"},
    {"C005", Severity::Warning, "variable never referenced by any clause"},
    {"C006", Severity::Info, "variable occurs with a single polarity (pure literal)"},
    {"C007", Severity::Error, "empty clause (trivially UNSAT)"},
    {"C008", Severity::Error, "literal references a variable beyond the declared count"},
    {"C010", Severity::Info, "formula decomposes into independent components"},
    // Infeasibility explanations (emitted by core/explain.hpp from a
    // certified UNSAT core, not by the static linters).
    {"E101", Severity::Error, "schedule proven infeasible (certified UNSAT core summary)"},
    {"E102", Severity::Error, "schedule pin unreachable or conflicting in the core"},
    {"E103", Severity::Error, "TTD separation / headway conflict in the core"},
    {"E104", Severity::Error, "pass-through exclusivity conflict in the core"},
    {"E105", Severity::Info, "movement or occupancy envelope cited by the core"},
}};

void writeJsonEscaped(std::ostream& os, std::string_view text) {
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default: os << c; break;
        }
    }
}

}  // namespace

std::string_view severityName(Severity severity) noexcept {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "unknown";
}

std::span<const CodeInfo> knownCodes() noexcept { return kCodes; }

void LintReport::add(Diagnostic diagnostic) {
    switch (diagnostic.severity) {
        case Severity::Error: ++errors_; break;
        case Severity::Warning: ++warnings_; break;
        case Severity::Info: ++infos_; break;
    }
    diagnostics_.push_back(std::move(diagnostic));
}

std::size_t LintReport::count(Severity severity) const noexcept {
    switch (severity) {
        case Severity::Error: return errors_;
        case Severity::Warning: return warnings_;
        case Severity::Info: return infos_;
    }
    return 0;
}

std::size_t LintReport::countOf(std::string_view code) const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics_) {
        if (d.code == code) {
            ++n;
        }
    }
    return n;
}

void LintReport::merge(const LintReport& other) {
    for (const Diagnostic& d : other.diagnostics_) {
        add(d);
    }
}

void LintReport::write(std::ostream& os, std::string_view file) const {
    for (const Diagnostic& d : diagnostics_) {
        if (!file.empty()) {
            os << file << ':';
            if (d.line > 0) {
                os << d.line << ':';
            }
            os << ' ';
        } else if (d.line > 0) {
            os << "line " << d.line << ": ";
        }
        os << severityName(d.severity) << ' ' << d.code;
        if (!d.entity.empty()) {
            os << " [" << d.entity << ']';
        }
        os << ": " << d.message;
        if (!d.hint.empty()) {
            os << " (fix: " << d.hint << ')';
        }
        os << '\n';
    }
}

void LintReport::writeJson(std::ostream& os) const {
    os << "{\"errors\":" << errors_ << ",\"warnings\":" << warnings_
       << ",\"infos\":" << infos_ << ",\"diagnostics\":[";
    bool first = true;
    for (const Diagnostic& d : diagnostics_) {
        if (!first) {
            os << ',';
        }
        first = false;
        os << "{\"code\":\"" << d.code << "\",\"severity\":\"" << severityName(d.severity)
           << "\",\"entity\":\"";
        writeJsonEscaped(os, d.entity);
        os << "\",\"message\":\"";
        writeJsonEscaped(os, d.message);
        os << "\",\"hint\":\"";
        writeJsonEscaped(os, d.hint);
        os << "\",\"line\":" << d.line << '}';
    }
    os << "]}";
}

void LintReport::recordMetrics() const {
    auto& registry = obs::Registry::global();
    registry.counter("etcs.lint.errors").add(errors_);
    registry.counter("etcs.lint.warnings").add(warnings_);
    registry.counter("etcs.lint.infos").add(infos_);
}

}  // namespace etcs::lint
