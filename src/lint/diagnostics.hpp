/// \file diagnostics.hpp
/// Structured lint diagnostics: stable codes, severities, source locations
/// and fix hints, collected into a LintReport.
///
/// Two analyzer families emit these diagnostics (see docs/LINTING.md for the
/// full catalogue):
///   * L0xx/L1xx/L2xx — instance linter over networks and schedules
///     (rail_lint.hpp), including parse-level issues from the lenient
///     readers in railway/io.hpp;
///   * C0xx — CNF linter over collected formulas (cnf_lint.hpp).
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace etcs::lint {

enum class Severity {
    Info,     ///< observation; never affects task feasibility or exit codes
    Warning,  ///< suspicious but not provably wrong
    Error,    ///< provably malformed or provably infeasible input
};

[[nodiscard]] std::string_view severityName(Severity severity) noexcept;

/// One finding: a stable code, a severity, the entity it concerns (track,
/// train, clause, ...), a human-readable message and an optional fix hint.
/// `line` carries the 1-based source line for file-level diagnostics
/// (0 when the diagnostic has no source location).
struct Diagnostic {
    std::string code;
    Severity severity = Severity::Warning;
    std::string entity;
    std::string message;
    std::string hint;
    int line = 0;
};

/// A catalogue entry describing one diagnostic code.
struct CodeInfo {
    std::string_view code;
    Severity severity;
    std::string_view summary;
};

/// Every diagnostic code either analyzer family can emit, in catalogue
/// order. docs/LINTING.md documents each entry; a regression test keeps the
/// two in sync.
[[nodiscard]] std::span<const CodeInfo> knownCodes() noexcept;

/// An ordered collection of diagnostics with per-severity counts.
class LintReport {
public:
    void add(Diagnostic diagnostic);

    [[nodiscard]] std::span<const Diagnostic> diagnostics() const noexcept {
        return diagnostics_;
    }
    [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return diagnostics_.size(); }

    [[nodiscard]] std::size_t count(Severity severity) const noexcept;
    [[nodiscard]] bool hasErrors() const noexcept { return count(Severity::Error) > 0; }

    /// Number of diagnostics carrying `code`.
    [[nodiscard]] std::size_t countOf(std::string_view code) const noexcept;
    [[nodiscard]] bool has(std::string_view code) const noexcept { return countOf(code) > 0; }

    /// Append another report's diagnostics.
    void merge(const LintReport& other);

    /// Plain-text rendering, one line per diagnostic:
    ///   file:12: error L004 [track broken]: track length must be positive (fix: ...)
    /// `file` prefixes diagnostics that carry a source line; pass an empty
    /// view for object-level reports.
    void write(std::ostream& os, std::string_view file = {}) const;

    /// Machine-readable rendering: {"diagnostics": [...], "errors": N, ...}.
    void writeJson(std::ostream& os) const;

    /// Fold the per-severity counts into the global metrics registry
    /// (counters etcs.lint.errors / .warnings / .infos).
    void recordMetrics() const;

private:
    std::vector<Diagnostic> diagnostics_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t infos_ = 0;
};

}  // namespace etcs::lint
