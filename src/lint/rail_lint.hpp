/// \file rail_lint.hpp
/// Instance linter: structural checks over railway networks and feasibility
/// lower bounds over schedules, run before any encoding (diagnostic codes
/// L0xx/L1xx/L2xx, see docs/LINTING.md).
///
/// The schedule checks are *sound* with respect to the SAT encoding: every
/// Error-severity schedule diagnostic (L020..L027) proves the encoded
/// instance unsatisfiable, so tasks can fail fast without invoking the
/// solver. The key check is the per-train shortest-path lower bound (L024):
/// a train moving at most speedSegments per step cannot occupy a stop
/// segment earlier than its cumulative graph distance allows.
#pragma once

#include <istream>

#include "lint/diagnostics.hpp"
#include "railway/io.hpp"
#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/segment_graph.hpp"
#include "railway/train.hpp"
#include "util/units.hpp"

namespace etcs::lint {

/// Structural network checks (L010..L016). The network may be unvalidated
/// (e.g. produced by the lenient reader); an error-free report implies
/// Network::validate() would succeed.
void lintNetwork(const rail::Network& network, LintReport& report);

/// Schedule feasibility checks (L020..L027) on an already-discretized graph.
void lintSchedule(const rail::SegmentGraph& graph, const rail::TrainSet& trains,
                  const rail::Schedule& schedule, LintReport& report);

/// Convenience: lintNetwork, then (when the network has no structural
/// errors) discretize at `resolution` and lintSchedule.
void lintScenario(const rail::Network& network, const rail::TrainSet& trains,
                  const rail::Schedule& schedule, Resolution resolution, LintReport& report);

/// Lenient file linting (L001..L005 during parsing): every parse problem
/// becomes a diagnostic with its source line; the returned objects may be
/// partial when the report carries errors.
[[nodiscard]] rail::Network lintNetworkFile(std::istream& in, LintReport& report);
[[nodiscard]] rail::Scenario lintScenarioFile(std::istream& in, const rail::Network& network,
                                              LintReport& report);

}  // namespace etcs::lint
