#include "lint/reach.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace etcs::lint {

namespace {

constexpr int kNoStep = std::numeric_limits<int>::max();

/// Iteration cap for the narrowing loop. Narrowing is sound at any point
/// (stopping early only prunes less), so the cap bounds wall-clock without
/// affecting correctness; real instances converge in two or three passes.
constexpr int kMaxNarrowingPasses = 32;

/// Hop distances from `source` to every segment (-1: unreachable), the same
/// BFS the core instance uses for its distance table.
std::vector<int> bfsDistances(const rail::SegmentGraph& graph, SegmentId source) {
    std::vector<int> dist(graph.numSegments(), -1);
    std::deque<SegmentId> queue{source};
    dist[source.get()] = 0;
    while (!queue.empty()) {
        const SegmentId current = queue.front();
        queue.pop_front();
        const int d = dist[current.get()];
        const rail::Segment& cs = graph.segment(current);
        for (SegNodeId end : {cs.a, cs.b}) {
            for (SegmentId next : graph.segmentsAt(end)) {
                if (dist[next.get()] < 0) {
                    dist[next.get()] = d + 1;
                    queue.push_back(next);
                }
            }
        }
    }
    return dist;
}

}  // namespace

int travelLowerBound(int distance, int lengthSegments, int speedSegments) {
    const int effective = std::max(0, distance - (lengthSegments - 1));
    return (effective + speedSegments - 1) / speedSegments;
}

int dwellSteps(const rail::TimedStop& stop, Resolution resolution) {
    if (stop.dwell.count() <= 0) {
        return 1;
    }
    const auto steps = (stop.dwell.count() + resolution.temporal.count() - 1) /
                       resolution.temporal.count();
    return std::max(static_cast<int>(steps), 1);
}

ReachAnalysis::ReachAnalysis(const rail::SegmentGraph& graph, std::vector<ReachRun> runs,
                             int horizonSteps)
    : runs_(std::move(runs)), horizonSteps_(horizonSteps), numSegments_(graph.numSegments()) {
    ETCS_REQUIRE_MSG(horizonSteps_ > 0, "reach analysis needs a positive horizon");
    allowed_.resize(runs_.size());
    cutoff_.assign(runs_.size(), horizonSteps_ - 1);
    prompt_.assign(runs_.size(), 0);
    for (std::size_t run = 0; run < runs_.size(); ++run) {
        const ReachRun& r = runs_[run];
        ETCS_REQUIRE_MSG(r.speedSegments >= 1, "reach analysis needs speed >= 1 seg/step");
        ETCS_REQUIRE_MSG(r.departureStep >= 0 && r.departureStep < horizonSteps_,
                         "reach analysis needs departure inside the horizon");
        analyzeRun(graph, run);
        collectViolations(run);
    }
    for (const auto& cells : allowed_) {
        possibleCells_ +=
            static_cast<std::uint64_t>(std::count(cells.begin(), cells.end(), char{1}));
    }
}

void ReachAnalysis::analyzeRun(const rail::SegmentGraph& graph, std::size_t runIndex) {
    const ReachRun& r = runs_[runIndex];
    const int H = horizonSteps_;
    const std::size_t S = numSegments_;

    const std::vector<int> distOrigin = bfsDistances(graph, r.originSegment);
    std::vector<std::vector<int>> distStop;
    distStop.reserve(r.stops.size());
    for (const ReachStop& stop : r.stops) {
        distStop.push_back(bfsDistances(graph, stop.segment));
    }

    // Prompt-model cutoff (docs/REACHABILITY.md): when every stop is pinned
    // and the destination's pin interval ends last, any model can be
    // transformed into one where the run is done right after its final
    // obligation, so no cell after max(arrival + dwell - 1) is ever needed.
    const bool fullyPinned =
        !r.stops.empty() && std::all_of(r.stops.begin(), r.stops.end(), [](const ReachStop& s) {
            return s.arrivalStep.has_value();
        });
    if (fullyPinned) {
        const ReachStop& dest = r.stops.back();
        const int destEnd = *dest.arrivalStep + dest.dwellSteps - 1;
        const bool destEndsLast =
            std::all_of(r.stops.begin(), r.stops.end(), [&](const ReachStop& s) {
                return *s.arrivalStep + s.dwellSteps - 1 <= destEnd;
            });
        if (destEndsLast && destEnd < H - 1) {
            cutoff_[runIndex] = destEnd;
            prompt_[runIndex] = 1;
        }
    }
    const int cutoff = cutoff_[runIndex];

    // Base abstraction: forward shortest-path cone from the departure,
    // clipped at the cutoff (generalizes the L024 bound to every segment).
    std::vector<char>& cells = allowed_[runIndex];
    cells.assign(S * static_cast<std::size_t>(H), 0);
    for (std::size_t s = 0; s < S; ++s) {
        if (distOrigin[s] < 0) {
            continue;
        }
        const int first =
            r.departureStep + travelLowerBound(distOrigin[s], r.lengthSegments, r.speedSegments);
        for (int t = std::max(first, r.departureStep); t <= cutoff; ++t) {
            cells[s * static_cast<std::size_t>(H) + static_cast<std::size_t>(t)] = 1;
        }
    }

    // Narrowing fixpoint. Every pass removes only cells that are impossible
    // in every (prompt-transformed) model, using the current per-stop
    // earliest/latest bounds, which themselves only tighten monotonically —
    // so the loop terminates and is sound at every iteration.
    const auto cellAt = [&](SegmentId seg, int t) -> char& {
        return cells[seg.get() * static_cast<std::size_t>(H) + static_cast<std::size_t>(t)];
    };
    std::vector<int> firstAtStop(r.stops.size(), kNoStep);
    std::vector<int> lastAtStop(r.stops.size(), -1);
    for (int pass = 0; pass < kMaxNarrowingPasses; ++pass) {
        ++iterations_;
        for (std::size_t j = 0; j < r.stops.size(); ++j) {
            firstAtStop[j] = kNoStep;
            lastAtStop[j] = -1;
            for (int t = r.departureStep; t <= cutoff; ++t) {
                if (cellAt(r.stops[j].segment, t) != 0) {
                    firstAtStop[j] = std::min(firstAtStop[j], t);
                    lastAtStop[j] = t;
                }
            }
        }
        bool changed = false;
        for (std::size_t s = 0; s < S; ++s) {
            for (int t = r.departureStep; t <= cutoff; ++t) {
                char& cell = cells[s * static_cast<std::size_t>(H) + static_cast<std::size_t>(t)];
                if (cell == 0) {
                    continue;
                }
                bool ok = true;
                for (std::size_t j = 0; j < r.stops.size() && ok; ++j) {
                    const ReachStop& stop = r.stops[j];
                    const int d = distStop[j][s];
                    if (d < 0) {
                        ok = false;  // disconnected from an obligatory stop
                        break;
                    }
                    const int tl = travelLowerBound(d, r.lengthSegments, r.speedSegments);
                    if (tl == 0) {
                        continue;  // the train body can cover both at once
                    }
                    if (stop.arrivalStep) {
                        // The visit interval [a, a + dwell - 1] is fixed, and
                        // tl >= 1 means the train cannot stand at s during it:
                        // it must be either tl steps of travel before the
                        // visit or tl steps after its end.
                        const int a = *stop.arrivalStep;
                        const int end = a + stop.dwellSteps - 1;
                        ok = t <= a - tl || t >= end + tl;
                    } else {
                        // Open stop: the dwell window either still lies ahead
                        // (travel + dwell must fit before the stop's latest
                        // admissible step) or was completed before t (travel
                        // back from the stop's earliest possible completion).
                        const bool visitAhead =
                            lastAtStop[j] >= 0 && t + tl + stop.dwellSteps - 1 <= lastAtStop[j];
                        const bool visitBehind =
                            firstAtStop[j] != kNoStep &&
                            t >= firstAtStop[j] + stop.dwellSteps - 1 + tl;
                        ok = visitAhead || visitBehind;
                    }
                }
                if (!ok) {
                    cell = 0;
                    changed = true;
                }
            }
        }
        if (!changed) {
            break;
        }
    }
}

void ReachAnalysis::collectViolations(std::size_t runIndex) {
    const ReachRun& r = runs_[runIndex];
    if (!possible(runIndex, r.originSegment, r.departureStep)) {
        violations_.push_back(ReachViolation{runIndex, -1,
                                             ReachViolation::Kind::OriginUnreachable,
                                             r.departureStep});
        return;  // with no admissible departure cell everything else is moot
    }
    for (std::size_t j = 0; j < r.stops.size(); ++j) {
        const ReachStop& stop = r.stops[j];
        if (stop.arrivalStep) {
            const int first = *stop.arrivalStep;
            const int last = std::min(first + stop.dwellSteps - 1, horizonSteps_ - 1);
            for (int t = first; t <= last; ++t) {
                if (!possible(runIndex, stop.segment, t)) {
                    violations_.push_back(ReachViolation{
                        runIndex, static_cast<int>(j), ReachViolation::Kind::PinnedStopEmpty,
                        t});
                    break;
                }
            }
        } else {
            const StepWindow w = window(runIndex, stop.segment);
            if (w.empty()) {
                violations_.push_back(ReachViolation{
                    runIndex, static_cast<int>(j), ReachViolation::Kind::OpenStopEmpty, -1});
                continue;
            }
            // Some dwell-length band of consecutive admissible steps must
            // exist, or the encoder's visit clause is empty.
            bool fits = false;
            int streak = 0;
            for (int t = w.earliest; t <= w.latest && !fits; ++t) {
                streak = possible(runIndex, stop.segment, t) ? streak + 1 : 0;
                fits = streak >= stop.dwellSteps;
            }
            if (!fits) {
                violations_.push_back(ReachViolation{
                    runIndex, static_cast<int>(j), ReachViolation::Kind::DwellUnplaceable, -1});
            }
        }
    }
}

StepWindow ReachAnalysis::window(std::size_t run, SegmentId segment) const {
    StepWindow w{horizonSteps_, -1};
    const std::size_t base = segment.get() * static_cast<std::size_t>(horizonSteps_);
    const std::vector<char>& cells = allowed_.at(run);
    for (int t = 0; t < horizonSteps_; ++t) {
        if (cells[base + static_cast<std::size_t>(t)] != 0) {
            w.earliest = std::min(w.earliest, t);
            w.latest = t;
        }
    }
    return w;
}

ScheduleReach analyzeSchedule(const rail::SegmentGraph& graph, const rail::TrainSet& trains,
                              const rail::Schedule& schedule) {
    ScheduleReach result;
    const Resolution resolution = graph.resolution();
    const Seconds horizon = schedule.horizon();
    if (horizon.count() <= 0) {
        return result;  // lintSchedule reports L023; nothing to analyze
    }
    const int horizonSteps = resolution.stepOf(horizon) + 1;

    std::vector<ReachRun> runs;
    for (std::size_t index = 0; index < schedule.runs().size(); ++index) {
        const rail::TrainRun& run = schedule.runs()[index];
        const rail::Train& train = trains.train(run.train);
        ReachRun r;
        r.originSegment = graph.segmentOfStation(run.origin);
        r.departureStep = resolution.stepOf(run.departure);
        r.lengthSegments = train.lengthSegments(resolution);
        r.speedSegments = train.speedSegments(resolution);
        // Runs with structural defects the schedule linter already rejects
        // (L020/L021/L022/L023) are skipped, not re-reported.
        if (r.speedSegments < 1 || r.departureStep < 0 || r.departureStep >= horizonSteps) {
            continue;
        }
        bool structurallySound = true;
        SegmentId previous = r.originSegment;
        int lastPinnedStep = r.departureStep;
        for (const rail::TimedStop& stop : run.stops) {
            ReachStop rs;
            rs.segment = graph.segmentOfStation(stop.station);
            rs.dwellSteps = dwellSteps(stop, resolution);
            if (graph.distance(previous, rs.segment) < 0) {
                structurallySound = false;
                break;
            }
            if (stop.arrival) {
                const int arrivalStep = resolution.stepOf(*stop.arrival);
                if (arrivalStep < lastPinnedStep || arrivalStep + rs.dwellSteps > horizonSteps) {
                    structurallySound = false;
                    break;
                }
                rs.arrivalStep = arrivalStep;
                lastPinnedStep = arrivalStep;
            }
            previous = rs.segment;
            r.stops.push_back(rs);
        }
        if (!structurallySound) {
            continue;
        }
        runs.push_back(std::move(r));
        result.scheduleRunIndex.push_back(index);
    }
    result.analysis.emplace(graph, std::move(runs), horizonSteps);
    return result;
}

void lintReachability(const rail::SegmentGraph& graph, const rail::TrainSet& trains,
                      const rail::Schedule& schedule, LintReport& report) {
    const ScheduleReach reach = analyzeSchedule(graph, trains, schedule);
    if (!reach.analysis) {
        return;
    }
    const ReachAnalysis& analysis = *reach.analysis;
    const rail::Network& network = graph.network();

    const auto stopName = [&](std::size_t scheduleRun, int stopIndex) -> std::string {
        const rail::TrainRun& run = schedule.runs()[scheduleRun];
        if (stopIndex < 0) {
            return network.station(run.origin).name;
        }
        return network.station(run.stops[static_cast<std::size_t>(stopIndex)].station).name;
    };

    std::vector<char> runHasError(analysis.numRuns(), 0);
    for (const ReachViolation& v : analysis.violations()) {
        runHasError[v.run] = 1;
        const std::size_t scheduleRun = reach.scheduleRunIndex[v.run];
        const rail::TrainRun& run = schedule.runs()[scheduleRun];
        const std::string who = "train " + trains.train(run.train).name;
        const std::string where = stopName(scheduleRun, v.stopIndex);
        switch (v.kind) {
            case ReachViolation::Kind::OriginUnreachable:
                report.add(Diagnostic{
                    "R001", Severity::Error, who,
                    "departure from " + where + " at step " + std::to_string(v.step) +
                        " lies outside the run's reachability window (schedule provably "
                        "unsatisfiable)",
                    "check the departure time against the run's other obligations"});
                break;
            case ReachViolation::Kind::PinnedStopEmpty:
                report.add(Diagnostic{
                    "R001", Severity::Error, who,
                    "pinned stop " + where + " at step " + std::to_string(v.step) +
                        " lies outside the run's reachability window (schedule provably "
                        "unsatisfiable; stronger than the L024 shortest-path bound)",
                    "move the arrival into the window reported by etcslint --reach"});
                break;
            case ReachViolation::Kind::OpenStopEmpty:
                report.add(Diagnostic{
                    "R001", Severity::Error, who,
                    "stop " + where +
                        " has an empty reachability window: no feasible trajectory can "
                        "visit it (schedule provably unsatisfiable)",
                    "extend the horizon or relax the run's other obligations"});
                break;
            case ReachViolation::Kind::DwellUnplaceable:
                report.add(Diagnostic{
                    "R002", Severity::Error, who,
                    "dead stop: the dwell at " + where + " (" +
                        std::to_string(
                            dwellSteps(run.stops[static_cast<std::size_t>(v.stopIndex)],
                                       graph.resolution())) +
                        " steps) cannot fit inside the stop's reachability window "
                        "(schedule provably unsatisfiable)",
                    "shorten the dwell, extend the horizon, or relax the deadlines"});
                break;
        }
    }

    // R003: a pinned arrival whose arrive-by reading can never bind, because
    // the horizon and the obligations after it already force an arrival at
    // or before the pinned step. Informational — the exact-time pin still
    // constrains the run; only the deadline component is redundant.
    for (std::size_t run = 0; run < analysis.numRuns(); ++run) {
        if (runHasError[run] != 0) {
            continue;
        }
        const ReachRun& r = analysis.run(run);
        const std::size_t scheduleRun = reach.scheduleRunIndex[run];
        const rail::TrainRun& trainRun = schedule.runs()[scheduleRun];
        const std::string who = "train " + trains.train(trainRun.train).name;
        for (std::size_t j = 0; j < r.stops.size(); ++j) {
            if (!r.stops[j].arrivalStep) {
                continue;
            }
            // Latest arrival at stop j that still leaves room for everything
            // after it (ignoring this pin itself).
            int latestBound = (analysis.horizonSteps() - 1) - (r.stops[j].dwellSteps - 1);
            for (std::size_t k = j + 1; k < r.stops.size(); ++k) {
                const int distance = graph.distance(r.stops[j].segment, r.stops[k].segment);
                const int travel =
                    travelLowerBound(distance, r.lengthSegments, r.speedSegments);
                const int bound = r.stops[k].arrivalStep
                                      ? *r.stops[k].arrivalStep - travel
                                      : (analysis.horizonSteps() - r.stops[k].dwellSteps) -
                                            travel;
                latestBound = std::min(latestBound, bound);
            }
            if (*r.stops[j].arrivalStep >= latestBound) {
                report.add(Diagnostic{
                    "R003", Severity::Info, who,
                    "vacuous deadline: " + stopName(scheduleRun, static_cast<int>(j)) +
                        " is pinned at step " + std::to_string(*r.stops[j].arrivalStep) +
                        " but later obligations already force arrival by step " +
                        std::to_string(latestBound) + "; the deadline can never bind",
                    "the pin only matters for its exact-time component"});
            }
        }
    }
}

}  // namespace etcs::lint
