#include "lint/cnf_lint.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace etcs::lint {

namespace {

using sat::CnfFormula;
using sat::Literal;
using sat::Var;

/// Emits at most `cap` diagnostics per code, folding the overflow into one
/// closing summary so huge formulas stay readable.
class CappedEmitter {
public:
    CappedEmitter(LintReport& report, std::size_t cap) : report_(&report), cap_(cap) {}

    void emit(Diagnostic diagnostic) {
        const std::size_t seen = ++seen_[diagnostic.code];
        if (seen <= cap_) {
            report_->add(std::move(diagnostic));
        }
    }

    void flush() {
        for (const auto& [code, seen] : seen_) {
            if (seen > cap_) {
                Severity severity = Severity::Warning;
                for (const CodeInfo& info : knownCodes()) {
                    if (info.code == code) {
                        severity = info.severity;
                        break;
                    }
                }
                report_->add(Diagnostic{code, severity, "formula",
                                        "... and " + std::to_string(seen - cap_) +
                                            " more " + code + " findings (capped)",
                                        {}});
            }
        }
    }

private:
    LintReport* report_;
    std::size_t cap_;
    std::unordered_map<std::string, std::size_t> seen_;
};

/// FNV-1a over the literal codes of a normalized clause.
std::uint64_t hashClause(const std::vector<Literal>& clause) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const Literal l : clause) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code()));
        h *= 1099511628211ULL;
    }
    return h;
}

/// Union-find over variables for the component decomposition.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a != b) {
            parent_[b] = a;
        }
    }

private:
    std::vector<std::size_t> parent_;
};

}  // namespace

CnfLintResult lintFormula(const CnfFormula& formula, const CnfLintOptions& options) {
    CnfLintResult result;
    CappedEmitter emit(result.report, options.maxDiagnosticsPerCode);

    const auto numVars = static_cast<std::size_t>(std::max(formula.numVariables, 0));
    std::vector<std::uint8_t> positive(numVars, 0);
    std::vector<std::uint8_t> negative(numVars, 0);
    // Unit polarity per variable: 0 none, 1 positive, 2 negative, 3 both.
    std::vector<std::uint8_t> unitPolarity(numVars, 0);
    UnionFind components(numVars);

    std::unordered_multimap<std::uint64_t, std::size_t> clausesByHash;
    std::vector<std::vector<Literal>> normalized(formula.clauses.size());

    for (std::size_t ci = 0; ci < formula.clauses.size(); ++ci) {
        const std::vector<Literal>& clause = formula.clauses[ci];
        const std::string entity = "clause " + std::to_string(ci + 1);

        if (clause.empty()) {
            emit.emit(Diagnostic{"C007", Severity::Error, entity,
                                 "empty clause: the formula is trivially unsatisfiable",
                                 {}});
            continue;
        }

        bool outOfRange = false;
        for (const Literal l : clause) {
            if (!l.valid() || static_cast<std::size_t>(l.var()) >= numVars) {
                emit.emit(Diagnostic{"C008", Severity::Error, entity,
                                     "literal references variable " +
                                         std::to_string(l.var() + 1) +
                                         " beyond the declared count (" +
                                         std::to_string(formula.numVariables) + ")",
                                     "fix the variable count in the problem header"});
                outOfRange = true;
            }
        }
        if (outOfRange) {
            continue;
        }

        std::vector<Literal> sorted = clause;
        std::sort(sorted.begin(), sorted.end());
        bool duplicateLiteral = false;
        bool tautology = false;
        for (std::size_t i = 1; i < sorted.size(); ++i) {
            if (sorted[i] == sorted[i - 1]) {
                duplicateLiteral = true;
            }
            if (sorted[i].var() == sorted[i - 1].var() &&
                sorted[i].sign() != sorted[i - 1].sign()) {
                tautology = true;
            }
        }
        if (duplicateLiteral) {
            emit.emit(Diagnostic{"C002", Severity::Warning, entity,
                                 "duplicate literal inside the clause",
                                 "deduplicate the literals"});
        }
        if (tautology) {
            emit.emit(Diagnostic{"C001", Severity::Warning, entity,
                                 "tautological clause: contains a literal and its negation",
                                 "drop the clause; it constrains nothing"});
        }

        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        const std::uint64_t h = hashClause(sorted);
        bool duplicateClause = false;
        const auto [lo, hi] = clausesByHash.equal_range(h);
        for (auto it = lo; it != hi; ++it) {
            if (normalized[it->second] == sorted) {
                emit.emit(Diagnostic{"C003", Severity::Warning, entity,
                                     "duplicate of clause " +
                                         std::to_string(it->second + 1),
                                     "emit each clause once"});
                duplicateClause = true;
                break;
            }
        }
        if (!duplicateClause) {
            clausesByHash.emplace(h, ci);
        }
        normalized[ci] = std::move(sorted);

        for (const Literal l : normalized[ci]) {
            const auto v = static_cast<std::size_t>(l.var());
            (l.sign() ? negative : positive)[v] = 1;
            components.unite(static_cast<std::size_t>(normalized[ci][0].var()), v);
        }
        if (!tautology && normalized[ci].size() == 1) {
            const Literal unit = normalized[ci][0];
            const auto v = static_cast<std::size_t>(unit.var());
            unitPolarity[v] |= unit.sign() ? 2 : 1;
            if (unitPolarity[v] == 3) {
                emit.emit(Diagnostic{"C004", Severity::Error,
                                     "var " + std::to_string(unit.var() + 1),
                                     "contradictory unit clauses: the formula is "
                                     "trivially unsatisfiable",
                                     {}});
            }
        }
    }

    // Variable-level findings: unreferenced (C005) and single-polarity (C006).
    for (std::size_t v = 0; v < numVars; ++v) {
        const std::string entity = "var " + std::to_string(v + 1);
        if (positive[v] == 0 && negative[v] == 0) {
            emit.emit(Diagnostic{"C005", Severity::Warning, entity,
                                 "variable is never referenced by any clause "
                                 "(unconstrained auxiliary)",
                                 "drop the variable or constrain it"});
        } else if (positive[v] == 0 || negative[v] == 0) {
            emit.emit(Diagnostic{"C006", Severity::Info, entity,
                                 std::string("variable occurs only ") +
                                     (positive[v] != 0 ? "positively" : "negatively") +
                                     " (pure literal)",
                                 {}});
        }
    }

    // Component decomposition over referenced variables.
    std::unordered_map<std::size_t, std::size_t> sizeByRoot;
    for (std::size_t v = 0; v < numVars; ++v) {
        if (positive[v] != 0 || negative[v] != 0) {
            ++sizeByRoot[components.find(v)];
        }
    }
    result.components.numComponents = sizeByRoot.size();
    result.components.componentVariables.reserve(sizeByRoot.size());
    for (const auto& [root, size] : sizeByRoot) {
        result.components.componentVariables.push_back(size);
    }
    std::sort(result.components.componentVariables.begin(),
              result.components.componentVariables.end(), std::greater<>());
    if (result.components.numComponents > 1) {
        result.report.add(Diagnostic{
            "C010", Severity::Info, "formula",
            "formula decomposes into " + std::to_string(result.components.numComponents) +
                " independent variable components (largest " +
                std::to_string(result.components.componentVariables.front()) +
                " variables); components can be solved in parallel",
            {}});
    }

    emit.flush();
    return result;
}

}  // namespace etcs::lint
