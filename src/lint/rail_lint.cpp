#include "lint/rail_lint.hpp"

#include <algorithm>
#include <cstdint>

#include "lint/reach.hpp"
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace etcs::lint {

namespace {

using rail::Network;
using rail::Schedule;
using rail::Scenario;
using rail::SegmentGraph;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

Severity severityOf(std::string_view code) {
    for (const CodeInfo& info : knownCodes()) {
        if (info.code == code) {
            return info.severity;
        }
    }
    return Severity::Error;
}

rail::ParseIssueHandler issueCollector(LintReport& report) {
    return [&report](const rail::ParseIssue& issue) {
        report.add(Diagnostic{issue.code, severityOf(issue.code), issue.entity, issue.message,
                              issue.hint, issue.line});
    };
}

}  // namespace

void lintNetwork(const Network& network, LintReport& report) {
    if (network.numTracks() == 0) {
        report.add(Diagnostic{"L016", Severity::Error, "network " + network.name(),
                              "network has no tracks",
                              "declare at least one track between two nodes"});
        return;
    }

    // L012: every track must carry exactly one TTD section.
    for (std::size_t t = 0; t < network.numTracks(); ++t) {
        const rail::Track& track = network.track(TrackId(t));
        if (!network.ttdOfTrack(TrackId(t)).valid()) {
            report.add(Diagnostic{"L012", Severity::Error, "track " + track.name,
                                  "track does not belong to any TTD section",
                                  "list the track in a 'ttd' declaration"});
        }
    }

    // Node degrees: dangling nodes (L010) and switch anomalies (L014).
    std::vector<int> degree(network.numNodes(), 0);
    for (const rail::Track& track : network.tracks()) {
        ++degree[track.from.get()];
        ++degree[track.to.get()];
    }
    for (std::size_t n = 0; n < network.numNodes(); ++n) {
        const std::string& name = network.node(NodeId(n)).name;
        if (degree[n] == 0) {
            report.add(Diagnostic{"L010", Severity::Error, "node " + name,
                                  "isolated node: no track is incident to it",
                                  "connect the node with a track or remove it"});
        } else if (degree[n] > 3) {
            report.add(Diagnostic{"L014", Severity::Warning, "node " + name,
                                  "degree anomaly: " + std::to_string(degree[n]) +
                                      " tracks meet here (a physical switch joins at "
                                      "most 3)",
                                  "split the junction into simple switches"});
        }
    }

    // L011: connectivity among non-isolated nodes (isolated ones already got
    // their own diagnostic).
    std::size_t start = 0;
    while (start < network.numNodes() && degree[start] == 0) {
        ++start;
    }
    if (start < network.numNodes()) {
        std::vector<char> seen(network.numNodes(), 0);
        std::vector<NodeId> queue{NodeId(start)};
        seen[start] = 1;
        while (!queue.empty()) {
            const NodeId current = queue.back();
            queue.pop_back();
            for (const rail::Track& t : network.tracks()) {
                NodeId next;
                if (t.from == current) {
                    next = t.to;
                } else if (t.to == current) {
                    next = t.from;
                } else {
                    continue;
                }
                if (seen[next.get()] == 0) {
                    seen[next.get()] = 1;
                    queue.push_back(next);
                }
            }
        }
        std::vector<std::string> unreachable;
        for (std::size_t n = 0; n < network.numNodes(); ++n) {
            if (seen[n] == 0 && degree[n] > 0) {
                unreachable.push_back(network.node(NodeId(n)).name);
            }
        }
        if (!unreachable.empty()) {
            std::string sample;
            for (std::size_t i = 0; i < unreachable.size() && i < 3; ++i) {
                sample += (i > 0 ? ", " : "") + unreachable[i];
            }
            if (unreachable.size() > 3) {
                sample += ", ...";
            }
            report.add(Diagnostic{"L011", Severity::Error, "network " + network.name(),
                                  "network is not connected: " +
                                      std::to_string(unreachable.size()) +
                                      " node(s) unreachable from " +
                                      network.node(NodeId(start)).name + " (" + sample + ")",
                                  "join the components with a track or split the file"});
        }
    }

    // L013: parallel tracks between the same node pair inside one TTD are
    // redundant (legitimate passing loops put each side in its own TTD).
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, std::string> firstEdge;
    for (std::size_t t = 0; t < network.numTracks(); ++t) {
        const rail::Track& track = network.track(TrackId(t));
        const TtdId ttd = network.ttdOfTrack(TrackId(t));
        if (!ttd.valid()) {
            continue;
        }
        const auto lo = std::min(track.from.get(), track.to.get());
        const auto hi = std::max(track.from.get(), track.to.get());
        const auto key = std::make_tuple(lo, hi, ttd.get());
        const auto [it, inserted] = firstEdge.emplace(key, track.name);
        if (!inserted) {
            report.add(Diagnostic{"L013", Severity::Warning, "track " + track.name,
                                  "duplicate parallel edge: tracks " + it->second + " and " +
                                      track.name +
                                      " join the same nodes inside one TTD section",
                                  "merge the tracks or give each its own TTD"});
        }
    }

    // L015: a TTD section whose tracks do not touch cannot be observed by
    // one pair of axle counters.
    for (std::size_t ttdIndex = 0; ttdIndex < network.numTtds(); ++ttdIndex) {
        const rail::TtdSection& ttd = network.ttd(TtdId(ttdIndex));
        if (ttd.tracks.size() < 2) {
            continue;
        }
        std::vector<char> reached(ttd.tracks.size(), 0);
        std::vector<std::size_t> queue{0};
        reached[0] = 1;
        while (!queue.empty()) {
            const std::size_t current = queue.back();
            queue.pop_back();
            const rail::Track& a = network.track(ttd.tracks[current]);
            for (std::size_t other = 0; other < ttd.tracks.size(); ++other) {
                if (reached[other] != 0) {
                    continue;
                }
                const rail::Track& b = network.track(ttd.tracks[other]);
                if (a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to) {
                    reached[other] = 1;
                    queue.push_back(other);
                }
            }
        }
        if (std::count(reached.begin(), reached.end(), 1) !=
            static_cast<std::ptrdiff_t>(ttd.tracks.size())) {
            report.add(Diagnostic{"L015", Severity::Warning, "ttd " + ttd.name,
                                  "TTD section is not contiguous: its tracks do not form "
                                  "a connected piece of the network",
                                  "split the section into contiguous TTDs"});
        }
    }
}

void lintSchedule(const SegmentGraph& graph, const TrainSet& trains, const Schedule& schedule,
                  LintReport& report) {
    const Network& network = graph.network();
    const Resolution resolution = graph.resolution();
    ETCS_REQUIRE_MSG(resolution.temporal.count() > 0, "temporal resolution must be positive");

    const Seconds horizon = schedule.horizon();
    if (horizon.count() <= 0) {
        report.add(Diagnostic{"L023", Severity::Error, "schedule",
                              "scenario horizon is not positive",
                              "set an explicit 'horizon' or pin at least one arrival"});
        return;
    }
    const int horizonSteps = resolution.stepOf(horizon) + 1;

    // L027: the encoding assumes at most one run per train.
    std::map<std::uint32_t, int> runsPerTrain;
    for (const TrainRun& run : schedule.runs()) {
        if (++runsPerTrain[run.train.get()] == 2) {
            report.add(Diagnostic{"L027", Severity::Error,
                                  "train " + trains.train(run.train).name,
                                  "train has more than one run",
                                  "merge the runs or add a second train"});
        }
    }

    // Pinned (segment, step) occupations across all runs, for the pairwise
    // headway check (L026).
    struct Pin {
        std::size_t run;
        std::string what;
    };
    std::map<std::pair<std::uint32_t, int>, Pin> pins;
    auto recordPin = [&](std::size_t runIndex, SegmentId segment, int step,
                         const std::string& what) {
        const auto key = std::make_pair(segment.get(), step);
        const auto [it, inserted] = pins.emplace(key, Pin{runIndex, what});
        if (!inserted && it->second.run != runIndex) {
            report.add(Diagnostic{"L026", Severity::Error, what,
                                  "headway conflict: " + what + " and " + it->second.what +
                                      " pin segment " + graph.segmentLabel(segment) +
                                      " at step " + std::to_string(step) +
                                      " simultaneously (two trains cannot share a VSS)",
                                  "separate the conflicting times"});
        }
    };

    for (std::size_t runIndex = 0; runIndex < schedule.runs().size(); ++runIndex) {
        const TrainRun& run = schedule.runs()[runIndex];
        const rail::Train& train = trains.train(run.train);
        const std::string who = "train " + train.name;

        const int speedSegments = train.speedSegments(resolution);
        if (speedSegments < 1) {
            report.add(Diagnostic{"L020", Severity::Error, who,
                                  "train cannot move at this resolution: speed rounds to "
                                  "zero segments per step",
                                  "refine the temporal or coarsen the spatial resolution"});
            continue;
        }
        const int lengthSegments = train.lengthSegments(resolution);

        const int departureStep = resolution.stepOf(run.departure);
        if (departureStep >= horizonSteps) {
            report.add(Diagnostic{"L023", Severity::Error, who,
                                  "train departs at step " + std::to_string(departureStep) +
                                      ", after the scenario horizon (" +
                                      std::to_string(horizonSteps) + " steps)",
                                  "extend the horizon or move the departure earlier"});
            continue;
        }

        SegmentId previousSegment = graph.segmentOfStation(run.origin);
        std::string previousName = network.station(run.origin).name;
        recordPin(runIndex, previousSegment, departureStep, who + " departing " + previousName);

        // Cumulative earliest occupation step along the run (the
        // shortest-path lower bound). Dwell times are deliberately NOT added
        // to the cumulative bound: a train may creep forward while its tail
        // still covers the stop, so only the first coverage step anchors the
        // next leg — this keeps every L024/L025 finding a sound UNSAT proof.
        int earliest = departureStep;
        int lastPinnedStep = departureStep;

        for (const TimedStop& stop : run.stops) {
            const std::string stopName = network.station(stop.station).name;
            const SegmentId segment = graph.segmentOfStation(stop.station);
            const int distance = graph.distance(previousSegment, segment);
            if (distance < 0) {
                report.add(Diagnostic{"L021", Severity::Error, who,
                                      "stops " + previousName + " and " + stopName +
                                          " are disconnected in the segment graph",
                                      "check the track layout between the stops"});
                break;
            }
            earliest += travelLowerBound(distance, lengthSegments, speedSegments);
            const int hold = dwellSteps(stop, resolution);

            if (stop.arrival) {
                const int arrivalStep = resolution.stepOf(*stop.arrival);
                if (arrivalStep < lastPinnedStep) {
                    report.add(Diagnostic{"L022", Severity::Error, who,
                                          "stop " + stopName + " is scheduled at step " +
                                              std::to_string(arrivalStep) +
                                              ", before the previous stop or departure "
                                              "(step " +
                                              std::to_string(lastPinnedStep) + ")",
                                          "reorder the stops or fix the clock values"});
                    break;
                }
                if (arrivalStep + hold > horizonSteps) {
                    report.add(Diagnostic{"L023", Severity::Error, who,
                                          "stop " + stopName + " (arrival step " +
                                              std::to_string(arrivalStep) + ", dwell " +
                                              std::to_string(hold) +
                                              " steps) extends past the scenario horizon",
                                          "extend the horizon or move the stop earlier"});
                    break;
                }
                if (arrivalStep < earliest) {
                    report.add(Diagnostic{
                        "L024", Severity::Error, who,
                        "unreachable deadline: " + stopName + " is pinned at step " +
                            std::to_string(arrivalStep) + " but the shortest path admits " +
                            "no arrival before step " + std::to_string(earliest) +
                            " (schedule provably unsatisfiable)",
                        "move the arrival to step " + std::to_string(earliest) +
                            " (clock " + resolution.timeOf(earliest).clock() + ") or later"});
                    break;
                }
                for (int j = 0; j < hold; ++j) {
                    recordPin(runIndex, segment, arrivalStep + j, who + " at " + stopName);
                }
                earliest = std::max(earliest, arrivalStep);
                lastPinnedStep = arrivalStep;
            } else {
                // Open stop: some window of `hold` consecutive steps must
                // still fit before the horizon.
                if (earliest + hold > horizonSteps) {
                    report.add(Diagnostic{
                        "L025", Severity::Error, who,
                        "run cannot complete within the horizon: " + stopName +
                            " is not reachable before step " + std::to_string(earliest) +
                            " but the scenario ends at step " +
                            std::to_string(horizonSteps - 1) +
                            " (schedule provably unsatisfiable)",
                        "extend the horizon or relax the run"});
                    break;
                }
            }
            previousSegment = segment;
            previousName = stopName;
        }
    }
}

void lintScenario(const Network& network, const TrainSet& trains, const Schedule& schedule,
                  Resolution resolution, LintReport& report) {
    LintReport structural;
    lintNetwork(network, structural);
    report.merge(structural);
    if (structural.hasErrors()) {
        return;  // the segment graph needs a well-formed network
    }
    const SegmentGraph graph(network, resolution);
    lintSchedule(graph, trains, schedule, report);
}

rail::Network lintNetworkFile(std::istream& in, LintReport& report) {
    return rail::readNetworkLenient(in, issueCollector(report));
}

Scenario lintScenarioFile(std::istream& in, const Network& network, LintReport& report) {
    return rail::readScenarioLenient(in, network, issueCollector(report));
}

}  // namespace etcs::lint
