/// \file simulator.hpp
/// A discrete-time ETCS Level 3 movement-authority simulator.
///
/// Trains follow fixed segment routes. Each time step, in priority order, a
/// train extends its movement authority through consecutive VSS sections
/// that contain no other train and advances its head by at most its speed.
/// The simulator is deliberately independent of the SAT encoding: it serves
/// as an oracle in tests (a greedy simulation that completes in time proves
/// the corresponding verification instance satisfiable) and lets examples
/// animate generated layouts.
#pragma once

#include <span>
#include <vector>

#include "railway/segment_graph.hpp"
#include "util/ids.hpp"

namespace etcs::sim {

/// A train's route and discrete parameters for simulation.
struct SimTrain {
    TrainId train;
    rail::SegmentPath route;  ///< head path from origin to destination segment
    int departureStep = 0;    ///< step at which the train appears
    int lengthSegments = 1;   ///< l*_tr
    int speedSegments = 1;    ///< max head advance per step
};

/// Per-step snapshot of a train (for animation / debugging).
struct TrainSnapshot {
    bool present = false;
    std::vector<SegmentId> occupied;  ///< head first
};

struct SimResult {
    bool completed = false;      ///< all trains reached their destinations
    bool deadlocked = false;     ///< no train can ever move again
    int stepsSimulated = 0;      ///< steps executed (completion step when done)
    std::vector<int> arrivalStep;  ///< per SimTrain; -1 when never arrived
    std::vector<std::vector<TrainSnapshot>> timeline;  ///< [step][train]
};

class Simulator {
public:
    /// `borderByNode` selects the VSS layout (fixed borders are implied).
    Simulator(const rail::SegmentGraph& graph, std::vector<bool> borderByNode);

    /// Run until all trains arrive, deadlock, or `maxSteps` elapse.
    [[nodiscard]] SimResult run(std::span<const SimTrain> trains, int maxSteps) const;

    /// VSS section index of a segment under this simulator's layout.
    [[nodiscard]] int sectionOf(SegmentId id) const { return sectionOfSegment_.at(id.get()); }
    [[nodiscard]] int numSections() const noexcept { return numSections_; }

private:
    const rail::SegmentGraph* graph_;
    std::vector<int> sectionOfSegment_;
    int numSections_ = 0;
};

}  // namespace etcs::sim
