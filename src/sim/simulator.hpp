/// \file simulator.hpp
/// A discrete-time ETCS Level 3 movement-authority simulator.
///
/// Trains follow fixed segment routes. Steps are synchronous: within a step
/// every train resolves its move against the section ownership at the end of
/// the previous step plus the claims made so far this step (in priority
/// order), and a moving train claims its whole swept corridor. A train
/// occupies its destination on its arrival step and leaves the network the
/// step after. These rules are at least as strict as the SAT encoding's
/// occupancy, exclusivity, and no-pass-through constraints, so for trains of
/// one segment length a completed simulation is a witness: its timeline
/// converts into a `core::Solution` that passes `core::validateSolution`
/// (see `gen/oracle.hpp`). The simulator shares no code with the encoder,
/// which makes it an independent differential oracle in tests.
#pragma once

#include <span>
#include <vector>

#include "railway/segment_graph.hpp"
#include "util/ids.hpp"

namespace etcs::sim {

/// A train's route and discrete parameters for simulation.
struct SimTrain {
    TrainId train;
    rail::SegmentPath route;  ///< head path from origin to destination segment
    int departureStep = 0;    ///< step at which the train appears
    int lengthSegments = 1;   ///< l*_tr
    int speedSegments = 1;    ///< max head advance per step
};

/// Per-step snapshot of a train (for animation / debugging).
struct TrainSnapshot {
    bool present = false;
    std::vector<SegmentId> occupied;  ///< head first
};

struct SimResult {
    bool completed = false;      ///< all trains reached their destinations
    bool deadlocked = false;     ///< no train can ever move again
    int stepsSimulated = 0;      ///< steps executed (completion step when done)
    std::vector<int> arrivalStep;  ///< per SimTrain; -1 when never arrived
    std::vector<std::vector<TrainSnapshot>> timeline;  ///< [step][train]
};

class Simulator {
public:
    /// `borderByNode` selects the VSS layout (fixed borders are implied).
    Simulator(const rail::SegmentGraph& graph, std::vector<bool> borderByNode);

    /// Run until all trains arrive, deadlock, or `maxSteps` elapse.
    [[nodiscard]] SimResult run(std::span<const SimTrain> trains, int maxSteps) const;

    /// VSS section index of a segment under this simulator's layout.
    [[nodiscard]] int sectionOf(SegmentId id) const { return sectionOfSegment_.at(id.get()); }
    [[nodiscard]] int numSections() const noexcept { return numSections_; }

private:
    const rail::SegmentGraph* graph_;
    std::vector<int> sectionOfSegment_;
    int numSections_ = 0;
};

}  // namespace etcs::sim
