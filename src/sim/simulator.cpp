#include "sim/simulator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace etcs::sim {

Simulator::Simulator(const rail::SegmentGraph& graph, std::vector<bool> borderByNode)
    : graph_(&graph), sectionOfSegment_(graph.numSegments(), -1) {
    const auto sections = graph.sections(borderByNode);
    numSections_ = static_cast<int>(sections.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
        for (SegmentId s : sections[i]) {
            sectionOfSegment_[s.get()] = static_cast<int>(i);
        }
    }
}

SimResult Simulator::run(std::span<const SimTrain> trains, int maxSteps) const {
    for (const SimTrain& t : trains) {
        ETCS_REQUIRE_MSG(!t.route.empty(), "simulated train needs a route");
        ETCS_REQUIRE_MSG(t.lengthSegments >= 1 && t.speedSegments >= 1,
                         "train length/speed must be at least one segment");
    }

    SimResult result;
    result.arrivalStep.assign(trains.size(), -1);

    // headIndex[i]: index into route of the head segment; -1 before
    // departure; route.size() once arrived (train removed).
    std::vector<int> headIndex(trains.size(), -1);
    // Occupancy: which train occupies each VSS section (-1: free).
    std::vector<int> sectionOwner(static_cast<std::size_t>(numSections_), -1);

    auto occupiedSegments = [&](std::size_t i) {
        std::vector<SegmentId> segs;
        const int head = headIndex[i];
        if (head < 0 || head >= static_cast<int>(trains[i].route.size())) {
            return segs;
        }
        const int tail = std::max(0, head - trains[i].lengthSegments + 1);
        for (int p = head; p >= tail; --p) {
            segs.push_back(trains[i].route[static_cast<std::size_t>(p)]);
        }
        return segs;
    };

    auto recomputeOwners = [&] {
        std::fill(sectionOwner.begin(), sectionOwner.end(), -1);
        for (std::size_t i = 0; i < trains.size(); ++i) {
            for (SegmentId s : occupiedSegments(i)) {
                sectionOwner[static_cast<std::size_t>(sectionOf(s))] = static_cast<int>(i);
            }
        }
    };

    auto arrived = [&](std::size_t i) {
        return headIndex[i] >= static_cast<int>(trains[i].route.size());
    };

    for (int step = 0; step < maxSteps; ++step) {
        bool anyProgress = false;

        // Departures: a train enters when its entry section is free. Like
        // the SAT encoding, an entering train occupies its origin for the
        // whole departure step and starts moving the step after.
        std::vector<char> enteredThisStep(trains.size(), 0);
        for (std::size_t i = 0; i < trains.size(); ++i) {
            if (headIndex[i] == -1 && trains[i].departureStep <= step) {
                const SegmentId entry = trains[i].route.front();
                const int section = sectionOf(entry);
                if (sectionOwner[static_cast<std::size_t>(section)] < 0) {
                    headIndex[i] = 0;
                    enteredThisStep[i] = 1;
                    recomputeOwners();
                    anyProgress = true;
                    if (trains[i].route.size() == 1) {
                        // Origin and destination coincide: arrive on entry.
                        result.arrivalStep[i] = step;
                        headIndex[i] = 1;
                        recomputeOwners();
                    }
                }
            }
        }

        // Movements, in priority (index) order.
        for (std::size_t i = 0; i < trains.size(); ++i) {
            if (headIndex[i] < 0 || arrived(i) || enteredThisStep[i] != 0) {
                continue;
            }
            const auto& route = trains[i].route;
            int advance = 0;
            for (int k = 1; k <= trains[i].speedSegments; ++k) {
                const int nextIndex = headIndex[i] + k;
                if (nextIndex >= static_cast<int>(route.size())) {
                    break;  // cannot move beyond the destination this step
                }
                const int section = sectionOf(route[static_cast<std::size_t>(nextIndex)]);
                const int owner = sectionOwner[static_cast<std::size_t>(section)];
                if (owner >= 0 && owner != static_cast<int>(i)) {
                    break;  // movement authority ends at an occupied VSS
                }
                advance = k;
            }
            if (advance > 0) {
                headIndex[i] += advance;
                recomputeOwners();
                anyProgress = true;
            }
            // Arrival: head on the destination segment -> leave the network.
            if (headIndex[i] == static_cast<int>(route.size()) - 1) {
                result.arrivalStep[i] = step;
                headIndex[i] = static_cast<int>(route.size());
                recomputeOwners();
                anyProgress = true;
            }
        }

        // Record the timeline after this step's movements.
        std::vector<TrainSnapshot> snapshots(trains.size());
        for (std::size_t i = 0; i < trains.size(); ++i) {
            snapshots[i].present = headIndex[i] >= 0 && !arrived(i);
            snapshots[i].occupied = occupiedSegments(i);
        }
        result.timeline.push_back(std::move(snapshots));
        result.stepsSimulated = step + 1;

        const bool allArrived =
            std::all_of(result.arrivalStep.begin(), result.arrivalStep.end(),
                        [](int a) { return a >= 0; });
        if (allArrived) {
            result.completed = true;
            return result;
        }
        const bool departuresPending = [&] {
            for (std::size_t i = 0; i < trains.size(); ++i) {
                if (headIndex[i] == -1 && trains[i].departureStep > step) {
                    return true;
                }
            }
            return false;
        }();
        if (!anyProgress && !departuresPending) {
            result.deadlocked = true;
            return result;
        }
    }
    return result;
}

}  // namespace etcs::sim
