#include "sim/simulator.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace etcs::sim {

Simulator::Simulator(const rail::SegmentGraph& graph, std::vector<bool> borderByNode)
    : graph_(&graph), sectionOfSegment_(graph.numSegments(), -1) {
    const auto sections = graph.sections(borderByNode);
    numSections_ = static_cast<int>(sections.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
        for (SegmentId s : sections[i]) {
            sectionOfSegment_[s.get()] = static_cast<int>(i);
        }
    }
}

SimResult Simulator::run(std::span<const SimTrain> trains, int maxSteps) const {
    for (const SimTrain& t : trains) {
        ETCS_REQUIRE_MSG(!t.route.empty(), "simulated train needs a route");
        ETCS_REQUIRE_MSG(t.lengthSegments >= 1 && t.speedSegments >= 1,
                         "train length/speed must be at least one segment");
    }

    SimResult result;
    result.arrivalStep.assign(trains.size(), -1);

    // headIndex[i]: index into route of the head segment; -1 before
    // departure; route.size() once removed (the step after arrival).
    std::vector<int> headIndex(trains.size(), -1);

    auto occupiedSegments = [&](std::size_t i) {
        std::vector<SegmentId> segs;
        const int head = headIndex[i];
        if (head < 0 || head >= static_cast<int>(trains[i].route.size())) {
            return segs;
        }
        const int tail = std::max(0, head - trains[i].lengthSegments + 1);
        for (int p = head; p >= tail; --p) {
            segs.push_back(trains[i].route[static_cast<std::size_t>(p)]);
        }
        return segs;
    };

    auto occupiedAtHead = [&](std::size_t i, int head) {
        std::vector<SegmentId> segs;
        const int tail = std::max(0, head - trains[i].lengthSegments + 1);
        for (int p = head; p >= tail; --p) {
            segs.push_back(trains[i].route[static_cast<std::size_t>(p)]);
        }
        return segs;
    };

    // Section ownership at the end of the previous step and the claims
    // accumulated during the current one (-1: free).
    std::vector<int> prevOwner(static_cast<std::size_t>(numSections_), -1);
    std::vector<int> curOwner(static_cast<std::size_t>(numSections_), -1);

    auto freeOrSelf = [&](const std::vector<int>& owner, int section, std::size_t i) {
        const int o = owner[static_cast<std::size_t>(section)];
        return o < 0 || o == static_cast<int>(i);
    };

    // The corridor a train sweeps when its occupancy changes from `now` to
    // `next`: every simple path between an old and a new segment at hop
    // distance 1..speed, mirroring the validator's no-pass-through rule.
    auto corridorSections = [&](std::size_t i, const std::vector<SegmentId>& now,
                                const std::vector<SegmentId>& next) {
        std::set<int> out;
        for (SegmentId e : now) {
            for (SegmentId f : next) {
                const int d = graph_->distance(e, f);
                if (d < 1 || d > trains[i].speedSegments) {
                    continue;
                }
                for (const auto& path : graph_->simplePaths(e, f, trains[i].speedSegments + 1)) {
                    for (SegmentId s : path) {
                        out.insert(sectionOf(s));
                    }
                }
            }
        }
        for (SegmentId s : next) {
            out.insert(sectionOf(s));
        }
        return out;
    };

    for (int step = 0; step < maxSteps; ++step) {
        // Ownership at the end of the previous step (trains that arrived
        // last step still hold their destination there).
        std::fill(prevOwner.begin(), prevOwner.end(), -1);
        for (std::size_t i = 0; i < trains.size(); ++i) {
            for (SegmentId s : occupiedSegments(i)) {
                prevOwner[static_cast<std::size_t>(sectionOf(s))] = static_cast<int>(i);
            }
        }

        bool anyProgress = false;

        // Remove trains that arrived on an earlier step: they occupied their
        // destination through the arrival step and leave the network now.
        for (std::size_t i = 0; i < trains.size(); ++i) {
            if (result.arrivalStep[i] >= 0 && result.arrivalStep[i] < step &&
                headIndex[i] < static_cast<int>(trains[i].route.size())) {
                headIndex[i] = static_cast<int>(trains[i].route.size());
                anyProgress = true;  // freed sections may unblock others
            }
        }

        // All claims are resolved synchronously against prevOwner (positions
        // at step-1) and curOwner (claims made this step), so the resulting
        // trace satisfies VSS exclusivity and the encoding's conservative
        // no-pass-through rule at every pair of consecutive steps.
        std::fill(curOwner.begin(), curOwner.end(), -1);
        std::vector<char> enteredThisStep(trains.size(), 0);
        for (std::size_t i = 0; i < trains.size(); ++i) {
            for (SegmentId s : occupiedSegments(i)) {
                curOwner[static_cast<std::size_t>(sectionOf(s))] = static_cast<int>(i);
            }
        }

        // Departures, in priority (index) order: a train enters when its
        // origin section was free last step (nobody swept it) and is
        // unclaimed this step.
        for (std::size_t i = 0; i < trains.size(); ++i) {
            if (headIndex[i] != -1 || trains[i].departureStep > step) {
                continue;
            }
            const int section = sectionOf(trains[i].route.front());
            if (prevOwner[static_cast<std::size_t>(section)] >= 0 ||
                curOwner[static_cast<std::size_t>(section)] >= 0) {
                continue;
            }
            headIndex[i] = 0;
            curOwner[static_cast<std::size_t>(section)] = static_cast<int>(i);
            enteredThisStep[i] = 1;
            anyProgress = true;
            if (trains[i].route.size() == 1) {
                // Origin and destination coincide: arrive on entry.
                result.arrivalStep[i] = step;
            }
        }

        // Movements, in priority (index) order. A move of k segments is
        // admissible when the new occupancy and the whole swept corridor are
        // free (or the train's own) both last step and among this step's
        // claims; the mover then claims the corridor so no later train can
        // cross it.
        for (std::size_t i = 0; i < trains.size(); ++i) {
            if (headIndex[i] < 0 || enteredThisStep[i] != 0 || result.arrivalStep[i] >= 0 ||
                headIndex[i] >= static_cast<int>(trains[i].route.size())) {
                continue;
            }
            const auto& route = trains[i].route;
            const auto now = occupiedSegments(i);
            int advance = 0;
            std::set<int> claim;
            for (int k = 1; k <= trains[i].speedSegments; ++k) {
                const int nextHead = headIndex[i] + k;
                if (nextHead >= static_cast<int>(route.size())) {
                    break;  // cannot move beyond the destination this step
                }
                const auto next = occupiedAtHead(i, nextHead);
                const auto sections = corridorSections(i, now, next);
                const bool admissible =
                    std::all_of(sections.begin(), sections.end(), [&](int section) {
                        return freeOrSelf(prevOwner, section, i) &&
                               freeOrSelf(curOwner, section, i);
                    });
                if (!admissible) {
                    break;  // movement authority ends at an occupied VSS
                }
                advance = k;
                claim = sections;
            }
            if (advance > 0) {
                headIndex[i] += advance;
                for (int section : claim) {
                    curOwner[static_cast<std::size_t>(section)] = static_cast<int>(i);
                }
                anyProgress = true;
            }
            // Arrival: head on the destination segment. The train keeps
            // occupying it for this step and leaves the step after.
            if (headIndex[i] == static_cast<int>(route.size()) - 1) {
                result.arrivalStep[i] = step;
            }
        }

        // Record the timeline after this step's movements.
        std::vector<TrainSnapshot> snapshots(trains.size());
        for (std::size_t i = 0; i < trains.size(); ++i) {
            snapshots[i].present =
                headIndex[i] >= 0 && headIndex[i] < static_cast<int>(trains[i].route.size());
            snapshots[i].occupied = occupiedSegments(i);
        }
        result.timeline.push_back(std::move(snapshots));
        result.stepsSimulated = step + 1;

        const bool allArrived =
            std::all_of(result.arrivalStep.begin(), result.arrivalStep.end(),
                        [](int a) { return a >= 0; });
        if (allArrived) {
            result.completed = true;
            return result;
        }
        const bool departuresPending = [&] {
            for (std::size_t i = 0; i < trains.size(); ++i) {
                if (headIndex[i] == -1 && trains[i].departureStep > step) {
                    return true;
                }
            }
            return false;
        }();
        if (!anyProgress && !departuresPending) {
            result.deadlocked = true;
            return result;
        }
    }
    return result;
}

}  // namespace etcs::sim
