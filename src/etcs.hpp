/// \file etcs.hpp
/// Umbrella header: the full public API of the etcs-vss library.
///
/// Layered bottom-up; include this for applications, or the individual
/// headers for finer-grained dependencies.
#pragma once

// Foundations
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

// SAT substrate
#include "sat/dimacs.hpp"
#include "sat/preprocess.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

// CNF construction and backends
#include "cnf/amo.hpp"
#include "cnf/backend.hpp"
#include "cnf/cardinality.hpp"
#include "cnf/formula.hpp"

// Optimization
#include "opt/minimize.hpp"

// Railway modelling
#include "railway/dot.hpp"
#include "railway/io.hpp"
#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/segment_graph.hpp"
#include "railway/train.hpp"

// Simulation
#include "sim/simulator.hpp"

// Core: the paper's design and verification tasks
#include "core/analysis.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/tasks.hpp"
#include "core/validator.hpp"
