/// \file metrics.hpp
/// Process-wide metrics registry: counters, gauges, and histograms with
/// quantile export, cheap enough for hot paths.
///
/// Updates are lock-free (plain atomics); only the first lookup of a metric
/// name takes a lock. References returned by the registry stay valid for the
/// lifetime of the registry, so callers should resolve a metric once and keep
/// the reference:
///
///   static obs::Counter& conflicts =
///       obs::Registry::global().counter("etcs.sat.conflicts");
///   conflicts.add(delta);
///
/// Registry::writeJson() serializes every registered metric (histograms with
/// count/sum/min/max and p50/p90/p99) for machine-readable benchmark output;
/// see docs/OBSERVABILITY.md for the naming scheme.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace etcs::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void increment() noexcept { add(1); }
    void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value (sizes, bounds, incumbents).
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) noexcept {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { set(0.0); }

private:
    std::atomic<double> value_{0.0};
};

/// Distribution of nonnegative samples over exponential buckets
/// (~10% relative resolution), with quantile estimation by linear
/// interpolation inside the selected bucket.
class Histogram {
public:
    Histogram();

    void observe(double value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    [[nodiscard]] double min() const noexcept;  ///< 0 when empty
    [[nodiscard]] double max() const noexcept;  ///< 0 when empty
    [[nodiscard]] double mean() const noexcept;

    /// Value below which a fraction `q` (in [0, 1]) of the samples fall.
    /// Accurate to the bucket resolution (~10% relative); 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept;

    void reset() noexcept;

private:
    [[nodiscard]] static std::size_t bucketIndex(double value) noexcept;
    [[nodiscard]] static double bucketLowerBound(std::size_t index) noexcept;
    [[nodiscard]] static double bucketUpperBound(std::size_t index) noexcept;

    // Bucket 0 holds values < kFirstBound; bucket i >= 1 holds
    // [kFirstBound * kGrowth^(i-1), kFirstBound * kGrowth^i).
    static constexpr double kFirstBound = 1e-9;
    static constexpr double kGrowth = 1.1;
    static constexpr std::size_t kNumBuckets = 512;  // covers up to ~1.6e12

    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/// Named metric store. One global instance serves the whole process;
/// independent registries can be created for tests.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    [[nodiscard]] static Registry& global();

    /// Find or create; the returned reference stays valid for the registry's
    /// lifetime.
    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);

    /// Serialize all metrics as one JSON object:
    /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
    void writeJson(std::ostream& os) const;
    [[nodiscard]] std::string toJson() const;
    /// Write toJson() to `path`; returns false when the file cannot be opened.
    bool writeJsonFile(const std::string& path) const;

    /// Zero every registered metric (metrics stay registered).
    void reset();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace etcs::obs
