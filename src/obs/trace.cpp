#include "obs/trace.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace etcs::obs {

namespace detail {
std::atomic<bool> traceActive{false};
std::atomic<int> logThreshold{static_cast<int>(LogLevel::Off)};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Stable small integer per thread for the Chrome "tid" field.
int threadId() {
    static std::atomic<int> nextId{1};
    thread_local const int id = nextId.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/// All mutable sink state, guarded by `mutex`. A single namespace-scope
/// instance reads the environment on construction and finalizes the trace
/// file on destruction, so `ETCS_TRACE=out.json some_binary` needs no
/// programmatic setup.
struct Sinks {
    std::mutex mutex;
    std::ofstream traceFile;
    bool firstEvent = true;
    Clock::time_point epoch = Clock::now();
    std::ofstream logFile;
    bool logToFile = false;

    Sinks() {
        if (const char* path = std::getenv("ETCS_TRACE"); path != nullptr && *path != '\0') {
            startLocked(path);
        }
        if (const char* level = std::getenv("ETCS_LOG_LEVEL"); level != nullptr) {
            detail::logThreshold.store(static_cast<int>(parseLogLevel(level)),
                                       std::memory_order_relaxed);
        }
        if (const char* path = std::getenv("ETCS_LOG"); path != nullptr && *path != '\0') {
            logFile.open(path);
            logToFile = logFile.is_open();
        }
    }

    ~Sinks() { stopLocked(); }

    bool startLocked(const std::string& path) {
        stopLocked();
        traceFile.open(path);
        if (!traceFile) {
            return false;
        }
        traceFile << "[";
        firstEvent = true;
        epoch = Clock::now();
        detail::traceActive.store(true, std::memory_order_relaxed);
        return true;
    }

    void stopLocked() {
        if (!traceFile.is_open()) {
            return;
        }
        detail::traceActive.store(false, std::memory_order_relaxed);
        traceFile << "\n]\n";
        traceFile.close();
    }

    [[nodiscard]] double microsSinceEpoch() const {
        return std::chrono::duration<double, std::micro>(Clock::now() - epoch).count();
    }

    /// Write one event record; `body` is everything after the common
    /// name/ph/ts/pid/tid fields (empty or ",\"args\":{...}").
    void event(const char* name, char phase, std::string_view body) {
        const std::scoped_lock lock(mutex);
        if (!traceFile.is_open()) {
            return;  // raced with stop()
        }
        traceFile << (firstEvent ? "\n" : ",\n");
        firstEvent = false;
        traceFile << "{\"name\":\"" << jsonEscape(name) << "\",\"cat\":\"etcs\",\"ph\":\""
                  << phase << "\",\"ts\":" << microsSinceEpoch() << ",\"pid\":1,\"tid\":"
                  << threadId();
        if (phase == 'i') {
            traceFile << ",\"s\":\"t\"";
        }
        traceFile << body << "}";
        // Flush per event: a trace of a crashed or aborted run is readable up
        // to the last completed event instead of losing the buffered tail.
        traceFile.flush();
    }

    void flushLocked() {
        if (traceFile.is_open()) {
            traceFile.flush();
        }
        if (logToFile && logFile.is_open()) {
            logFile.flush();
        }
    }
};

Sinks& sinks() {
    static Sinks instance;
    return instance;
}

// Force the sinks (and thus ETCS_TRACE handling) to life at process start,
// not at first instrumented call. The atexit handler is registered AFTER the
// Sinks instance is constructed, so it runs BEFORE the static destructor:
// std::exit() paths finalize the trace (closing "]") while the object is
// still alive, and the destructor's stopLocked() then sees a closed file.
[[maybe_unused]] const bool kSinksInitialized = [] {
    sinks();
    std::atexit([] { Tracer::stop(); });
    return true;
}();

double wallSeconds() {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

}  // namespace

std::string_view toString(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "trace";
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
        default: return "off";
    }
}

LogLevel parseLogLevel(std::string_view text) {
    std::string lower;
    lower.reserve(text.size());
    for (char c : text) {
        lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "trace") return LogLevel::Trace;
    if (lower == "debug") return LogLevel::Debug;
    if (lower == "info") return LogLevel::Info;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "error") return LogLevel::Error;
    return LogLevel::Off;
}

std::string jsonEscape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

bool Tracer::start(const std::string& path) {
    Sinks& s = sinks();
    const std::scoped_lock lock(s.mutex);
    return s.startLocked(path);
}

void Tracer::stop() {
    Sinks& s = sinks();
    const std::scoped_lock lock(s.mutex);
    s.stopLocked();
}

void Tracer::flush() {
    Sinks& s = sinks();
    const std::scoped_lock lock(s.mutex);
    s.flushLocked();
}

void Tracer::begin(const char* name, std::string_view args) {
    if (!tracingEnabled()) {
        return;
    }
    std::string body;
    if (!args.empty()) {
        body = ",\"args\":";
        body += args;
    }
    sinks().event(name, 'B', body);
}

void Tracer::end(const char* name) {
    if (!tracingEnabled()) {
        return;
    }
    sinks().event(name, 'E', {});
}

void Tracer::instant(const char* name, std::string_view args) {
    if (!tracingEnabled()) {
        return;
    }
    std::string body;
    if (!args.empty()) {
        body = ",\"args\":";
        body += args;
    }
    sinks().event(name, 'i', body);
}

void Tracer::counterValue(const char* name, double value) {
    if (!tracingEnabled()) {
        return;
    }
    std::string body = ",\"args\":{\"value\":";
    body += std::to_string(value);
    body += "}";
    sinks().event(name, 'C', body);
}

void Tracer::setLogLevel(LogLevel level) {
    detail::logThreshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool Tracer::setLogFile(const std::string& path) {
    Sinks& s = sinks();
    const std::scoped_lock lock(s.mutex);
    if (s.logFile.is_open()) {
        s.logFile.close();
    }
    s.logToFile = false;
    if (path.empty()) {
        return true;
    }
    s.logFile.open(path);
    s.logToFile = s.logFile.is_open();
    return s.logToFile;
}

void log(LogLevel level, const char* component, std::string_view message,
         std::string_view fields) {
    if (!logEnabled(level)) {
        return;
    }
    std::string line = "{\"ts\":";
    line += std::to_string(wallSeconds());
    line += ",\"level\":\"";
    line += toString(level);
    line += "\",\"component\":\"";
    line += jsonEscape(component);
    line += "\",\"message\":\"";
    line += jsonEscape(message);
    line += "\"";
    line += fields;
    line += "}\n";

    Sinks& s = sinks();
    const std::scoped_lock lock(s.mutex);
    if (s.logToFile) {
        s.logFile << line;
        s.logFile.flush();
    } else {
        std::fputs(line.c_str(), stderr);
    }
}

}  // namespace etcs::obs
