#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace etcs::obs {

namespace {

/// CAS-loop update keeping an atomic double at the min/max of all samples.
template <typename Compare>
void atomicExtremum(std::atomic<double>& slot, double value, Compare better) {
    double current = slot.load(std::memory_order_relaxed);
    while (better(value, current) &&
           !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
}

void appendJsonNumber(std::ostream& os, double v) {
    if (!std::isfinite(v)) {
        os << 0;  // JSON has no Inf/NaN; metrics never legitimately produce them
        return;
    }
    // Fixed %.12g formatting, independent of stream state and locale, so two
    // exports of the same registry are byte-identical (benchdiff and the
    // determinism tests rely on this).
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", v);
    os << buffer;
}

}  // namespace

// ----------------------------------------------------------- histogram ----

Histogram::Histogram() : buckets_(kNumBuckets) {}

std::size_t Histogram::bucketIndex(double value) noexcept {
    if (!(value >= kFirstBound)) {  // also catches NaN
        return 0;
    }
    const double position = std::log(value / kFirstBound) / std::log(kGrowth);
    const auto index = static_cast<std::size_t>(position) + 1;
    return std::min(index, kNumBuckets - 1);
}

double Histogram::bucketLowerBound(std::size_t index) noexcept {
    return index == 0 ? 0.0 : kFirstBound * std::pow(kGrowth, static_cast<double>(index - 1));
}

double Histogram::bucketUpperBound(std::size_t index) noexcept {
    return kFirstBound * std::pow(kGrowth, static_cast<double>(index));
}

void Histogram::observe(double value) noexcept {
    if (std::isnan(value)) {
        return;
    }
    value = std::max(value, 0.0);
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
        // First sample seeds both extrema (0-initialized slots would
        // otherwise clamp min to 0 forever).
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
    }
    atomicExtremum(min_, value, std::less<>());
    atomicExtremum(max_, value, std::greater<>());
}

double Histogram::min() const noexcept {
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile sample, 1-based: ceil(q * total), at least 1.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t inBucket = buckets_[i].load(std::memory_order_relaxed);
        if (inBucket == 0) {
            continue;
        }
        seen += inBucket;
        if (seen < rank) {
            continue;
        }
        // Interpolate inside the bucket by the rank position.
        const double lo = bucketLowerBound(i);
        const double hi = bucketUpperBound(i);
        const double within =
            static_cast<double>(rank - (seen - inBucket)) / static_cast<double>(inBucket);
        const double estimate = lo + (hi - lo) * within;
        return std::clamp(estimate, min(), max());
    }
    return max();
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) {
        bucket.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ registry ----

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

Counter& Registry::counter(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        return *it->second;
    }
    return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
        return *it->second;
    }
    return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        return *it->second;
    }
    return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
                .first->second;
}

void Registry::writeJson(std::ostream& os) const {
    const std::scoped_lock lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, metric] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << metric->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, metric] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
        appendJsonNumber(os, metric->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, metric] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
           << metric->count() << ", \"sum\": ";
        appendJsonNumber(os, metric->sum());
        os << ", \"min\": ";
        appendJsonNumber(os, metric->min());
        os << ", \"max\": ";
        appendJsonNumber(os, metric->max());
        os << ", \"p50\": ";
        appendJsonNumber(os, metric->quantile(0.5));
        os << ", \"p90\": ";
        appendJsonNumber(os, metric->quantile(0.9));
        os << ", \"p99\": ";
        appendJsonNumber(os, metric->quantile(0.99));
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::toJson() const {
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

bool Registry::writeJsonFile(const std::string& path) const {
    std::ofstream file(path);
    if (!file) {
        return false;
    }
    writeJson(file);
    return static_cast<bool>(file);
}

void Registry::reset() {
    const std::scoped_lock lock(mutex_);
    for (const auto& [name, metric] : counters_) {
        metric->reset();
    }
    for (const auto& [name, metric] : gauges_) {
        metric->reset();
    }
    for (const auto& [name, metric] : histograms_) {
        metric->reset();
    }
}

}  // namespace etcs::obs
