/// \file trace.hpp
/// Span tracing and structured logging for the whole pipeline.
///
/// Two sinks, both optional and both near-zero cost when off:
///
///  * **Chrome trace** — a JSON array of `trace_event` records loadable in
///    Perfetto (https://ui.perfetto.dev) or chrome://tracing. Enabled by the
///    `ETCS_TRACE=<file>` environment variable or programmatically via
///    `Tracer::start(path)`. RAII `Span` objects emit balanced "B"/"E"
///    events; `instant()` and `counterValue()` emit point events.
///
///  * **JSONL log** — one JSON object per line, filtered by severity.
///    Enabled by `ETCS_LOG_LEVEL=<trace|debug|info|warn|error>`; written to
///    stderr unless `ETCS_LOG=<file>` names a file.
///
/// The disabled fast path is a single relaxed atomic load per call site, so
/// instrumentation can stay compiled in everywhere (the <2% overhead budget
/// of the scaling benchmark holds with tracing off).
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace etcs::obs {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

[[nodiscard]] std::string_view toString(LogLevel level);
/// Parse "debug", "INFO", ... (case-insensitive); Off for unknown strings.
[[nodiscard]] LogLevel parseLogLevel(std::string_view text);

namespace detail {
// Hot-path flags; defined in trace.cpp and mutated only under its mutex.
extern std::atomic<bool> traceActive;
extern std::atomic<int> logThreshold;
}  // namespace detail

/// True iff a Chrome trace file is currently open.
[[nodiscard]] inline bool tracingEnabled() noexcept {
    return detail::traceActive.load(std::memory_order_relaxed);
}

/// True iff a JSONL log record at `level` would be written.
[[nodiscard]] inline bool logEnabled(LogLevel level) noexcept {
    return static_cast<int>(level) >= detail::logThreshold.load(std::memory_order_relaxed);
}

/// Static facade over the process-wide trace/log sinks. The environment
/// (ETCS_TRACE / ETCS_LOG_LEVEL / ETCS_LOG) is read once at process start;
/// start()/stop()/setLogLevel() override it programmatically.
class Tracer {
public:
    /// Open `path` and begin writing a Chrome trace array. Replaces any
    /// trace already in progress (which is finalized first). Returns false
    /// when the file cannot be opened.
    static bool start(const std::string& path);

    /// Finalize (write the closing bracket) and close the trace file.
    /// Also invoked automatically at process exit (including std::exit(),
    /// via an atexit handler), so no ETCS_TRACE output is lost on early
    /// termination; events are additionally flushed as they are written.
    static void stop();

    /// Push buffered trace/log output to disk without finalizing anything.
    static void flush();

    /// Emit a begin/end duration event. Use the Span RAII wrapper instead of
    /// calling these directly; they are public for bindings and tests.
    /// `args` is either empty or a complete JSON object (e.g. R"({"k":1})").
    static void begin(const char* name, std::string_view args = {});
    static void end(const char* name);

    /// Emit an instant (point-in-time) event.
    static void instant(const char* name, std::string_view args = {});

    /// Emit a counter track sample (rendered as a graph in Perfetto).
    static void counterValue(const char* name, double value);

    /// Severity threshold of the JSONL log sink.
    static void setLogLevel(LogLevel level);

    /// Redirect the JSONL log to `path` (empty: back to stderr).
    static bool setLogFile(const std::string& path);
};

/// Write one JSONL log record: {"ts":..,"level":..,"component":..,
/// "message":..}. `fields` is either empty or a fragment of extra JSON
/// members starting with a comma, e.g. R"(,"bound":3)".
void log(LogLevel level, const char* component, std::string_view message,
         std::string_view fields = {});

/// RAII scoped timer: emits a balanced begin/end event pair around its
/// lifetime. Constructing one while tracing is off costs a single atomic
/// load. `name` must outlive the span (string literals in practice).
class Span {
public:
    explicit Span(const char* name, std::string_view args = {}) {
        if (tracingEnabled()) {
            name_ = name;
            Tracer::begin(name, args);
        }
    }
    ~Span() {
        if (name_ != nullptr) {
            Tracer::end(name_);
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr;
};

/// Minimal JSON string escaping for values interpolated into trace/log
/// records (quotes, backslashes, control characters).
[[nodiscard]] std::string jsonEscape(std::string_view text);

}  // namespace etcs::obs
