#include "sat/preprocess.hpp"

#include <algorithm>

namespace etcs::sat {

namespace {

/// Tri-state assignment tracked during preprocessing.
class Assignment {
public:
    explicit Assignment(int numVariables) : value_(numVariables, Value::Undef) {}

    [[nodiscard]] Value of(Literal l) const {
        const Value v = value_[l.var()];
        return l.sign() ? negate(v) : v;
    }

    /// Returns false on conflict.
    bool assign(Literal l) {
        const Value current = of(l);
        if (current == Value::False) {
            return false;
        }
        value_[l.var()] = l.sign() ? Value::False : Value::True;
        return true;
    }

    [[nodiscard]] bool isAssigned(Var v) const { return value_[v] != Value::Undef; }

private:
    std::vector<Value> value_;
};

/// Normalize one clause under the current assignment: drop false literals
/// and duplicates. Returns false if the clause is satisfied or a tautology
/// (i.e. should be removed from the formula).
bool normalizeClause(std::vector<Literal>& clause, const Assignment& assignment,
                     PreprocessStats& stats) {
    std::sort(clause.begin(), clause.end());
    std::size_t out = 0;
    Literal previous = kUndefLiteral;
    for (Literal l : clause) {
        if (assignment.of(l) == Value::True) {
            return false;  // satisfied
        }
        if (l == ~previous) {
            ++stats.removedTautologies;
            return false;  // tautology
        }
        if (assignment.of(l) == Value::False || l == previous) {
            continue;
        }
        clause[out++] = l;
        previous = l;
    }
    clause.resize(out);
    return true;
}

/// True when `small` subsumes `big` (both sorted): small is a subset of big.
bool subsumes(const std::vector<Literal>& small, const std::vector<Literal>& big) {
    if (small.size() > big.size()) {
        return false;
    }
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

PreprocessResult preprocess(CnfFormula& formula, ProofWriter* proof) {
    PreprocessResult result;
    Assignment assignment(formula.numVariables);

    auto markUnsat = [&] {
        if (proof != nullptr) {
            proof->addEmptyClause();
        }
        result.unsatisfiable = true;
        formula.clauses.assign(1, std::vector<Literal>{});
    };

    bool changed = true;
    while (changed) {
        changed = false;
        ++result.stats.rounds;

        // --- normalization + unit propagation to fixpoint ------------------
        bool propagated = true;
        std::vector<Literal> original;  // pre-normalization copy for the proof
        while (propagated) {
            propagated = false;
            std::vector<std::vector<Literal>> kept;
            kept.reserve(formula.clauses.size());
            for (auto& clause : formula.clauses) {
                if (proof != nullptr) {
                    original = clause;
                }
                if (!normalizeClause(clause, assignment, result.stats)) {
                    if (proof != nullptr) {
                        proof->deleteClause(original);
                    }
                    changed = true;
                    continue;  // satisfied or tautological
                }
                // A strengthened clause is propagation-derivable from the
                // original plus the facts; log add-then-delete so the
                // proof's propagation strength never dips.
                const bool shrunk = proof != nullptr && clause.size() != original.size();
                if (clause.empty()) {
                    markUnsat();
                    return result;
                }
                if (clause.size() == 1) {
                    if (shrunk) {
                        proof->addClause(clause);
                        proof->deleteClause(original);
                    }
                    if (!assignment.assign(clause[0])) {
                        markUnsat();
                        return result;
                    }
                    result.fixedLiterals.push_back(clause[0]);
                    ++result.stats.propagatedUnits;
                    propagated = true;
                    changed = true;
                    continue;  // consumed as a fact (its clause stays in the proof)
                }
                if (shrunk) {
                    proof->addClause(clause);
                    proof->deleteClause(original);
                }
                kept.push_back(std::move(clause));
            }
            formula.clauses = std::move(kept);
        }

        // --- pure-literal elimination --------------------------------------
        {
            std::vector<char> posSeen(formula.numVariables, 0);
            std::vector<char> negSeen(formula.numVariables, 0);
            for (const auto& clause : formula.clauses) {
                for (Literal l : clause) {
                    (l.sign() ? negSeen : posSeen)[l.var()] = 1;
                }
            }
            for (Var v = 0; v < formula.numVariables; ++v) {
                if (assignment.isAssigned(v) || (posSeen[v] == 0 && negSeen[v] == 0)) {
                    continue;
                }
                if (posSeen[v] == 0 || negSeen[v] == 0) {
                    const Literal pure(v, posSeen[v] == 0);
                    if (assignment.assign(pure)) {
                        if (proof != nullptr) {
                            // No clause contains ~pure, so the unit is a
                            // resolution-candidate-free RAT addition.
                            proof->addClause({pure});
                        }
                        result.pureLiterals.push_back(pure);
                        ++result.stats.eliminatedPureLiterals;
                        changed = true;
                    }
                }
            }
            if (changed) {
                continue;  // re-run normalization with the new assignments
            }
        }

        // --- subsumption and self-subsuming resolution ----------------------
        // Sort by size so potential subsumers come first.
        std::sort(formula.clauses.begin(), formula.clauses.end(),
                  [](const auto& a, const auto& b) { return a.size() < b.size(); });
        std::vector<char> removed(formula.clauses.size(), 0);
        for (std::size_t i = 0; i < formula.clauses.size(); ++i) {
            if (removed[i] != 0) {
                continue;
            }
            for (std::size_t j = i + 1; j < formula.clauses.size(); ++j) {
                if (removed[j] != 0) {
                    continue;
                }
                if (subsumes(formula.clauses[i], formula.clauses[j])) {
                    if (proof != nullptr) {
                        proof->deleteClause(formula.clauses[j]);
                    }
                    removed[j] = 1;
                    ++result.stats.subsumedClauses;
                    changed = true;
                    continue;
                }
                // Self-subsuming resolution: if flipping one literal of the
                // smaller clause makes it a subset of the bigger one, that
                // literal's complement can be removed from the bigger clause.
                for (std::size_t p = 0; p < formula.clauses[i].size(); ++p) {
                    std::vector<Literal> flipped = formula.clauses[i];
                    flipped[p] = ~flipped[p];
                    std::sort(flipped.begin(), flipped.end());
                    if (subsumes(flipped, formula.clauses[j])) {
                        auto& big = formula.clauses[j];
                        if (proof != nullptr) {
                            original = big;
                        }
                        big.erase(std::find(big.begin(), big.end(), ~formula.clauses[i][p]));
                        if (proof != nullptr) {
                            proof->addClause(big);
                            proof->deleteClause(original);
                        }
                        ++result.stats.strengthenedClauses;
                        changed = true;
                        break;
                    }
                }
            }
        }
        std::vector<std::vector<Literal>> kept;
        kept.reserve(formula.clauses.size());
        for (std::size_t i = 0; i < formula.clauses.size(); ++i) {
            if (removed[i] == 0) {
                kept.push_back(std::move(formula.clauses[i]));
            }
        }
        formula.clauses = std::move(kept);
    }
    return result;
}

}  // namespace etcs::sat
