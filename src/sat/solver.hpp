/// \file solver.hpp
/// A conflict-driven clause-learning (CDCL) SAT solver.
///
/// Feature set: two-watched-literal propagation with blockers, first-UIP
/// conflict analysis with deep clause minimization, EVSIDS variable
/// activities, phase saving, Luby restarts, activity-based learned-clause
/// database reduction, and incremental solving under assumptions with
/// failed-assumption core extraction.
///
/// Usage:
///   Solver s;
///   Var a = s.addVariable(), b = s.addVariable();
///   s.addClause({Literal::positive(a), Literal::positive(b)});
///   if (s.solve() == SolveStatus::Sat) { ... s.modelValue(a) ... }
///
/// Clauses may only be added at decision level 0, i.e. before the first
/// solve() or between solve() calls (the solver always returns at level 0).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "sat/clause.hpp"
#include "sat/types.hpp"

namespace etcs::sat {

class ProofWriter;

class Solver {
public:
    Solver() = default;

    // Solver owns large internal state with self-references (the decision
    // heap points at the activity table); it is neither copyable nor movable.
    Solver(const Solver&) = delete;
    Solver& operator=(const Solver&) = delete;
    Solver(Solver&&) = delete;
    Solver& operator=(Solver&&) = delete;

    /// Create a fresh variable and return it.
    Var addVariable();

    [[nodiscard]] int numVariables() const noexcept { return static_cast<int>(assigns_.size()); }
    [[nodiscard]] std::size_t numClauses() const noexcept { return clauses_.size(); }
    [[nodiscard]] std::size_t numLearnedClauses() const noexcept { return learnts_.size(); }

    /// Add a clause. Returns false when the clause system is already
    /// unsatisfiable at the root level (in which case solve() is Unsat).
    bool addClause(std::span<const Literal> literals);
    bool addClause(std::initializer_list<Literal> literals) {
        return addClause(std::span<const Literal>(literals.begin(), literals.size()));
    }

    /// Decide satisfiability under the given assumption literals.
    SolveStatus solve(std::span<const Literal> assumptions);
    SolveStatus solve(std::initializer_list<Literal> assumptions) {
        return solve(std::span<const Literal>(assumptions.begin(), assumptions.size()));
    }
    SolveStatus solve() { return solve(std::span<const Literal>{}); }

    /// Value of a variable/literal in the most recent satisfying model.
    [[nodiscard]] Value modelValue(Var v) const;
    [[nodiscard]] Value modelValue(Literal l) const;

    /// After an Unsat result of solve(assumptions): a subset of the
    /// assumptions that is jointly unsatisfiable with the clauses.
    [[nodiscard]] const std::vector<Literal>& conflictCore() const noexcept {
        return conflictCore_;
    }

    /// False once the clause system is unsatisfiable regardless of assumptions.
    [[nodiscard]] bool okay() const noexcept { return ok_; }

    [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
    [[nodiscard]] SolverOptions& options() noexcept { return options_; }
    [[nodiscard]] const SolverOptions& options() const noexcept { return options_; }

    /// Attach a DRAT proof sink (nullptr to detach; not owned). Every
    /// derived clause (normalized inputs, learnt clauses, units) and every
    /// discarded learnt clause is logged, so an Unsat verdict of solve()
    /// without assumptions can be certified against the original formula
    /// by an independent checker (drat_check.hpp). When no writer is
    /// attached — the default — each logging site costs one branch.
    void setProofWriter(ProofWriter* proof) noexcept { proof_ = proof; }
    [[nodiscard]] ProofWriter* proofWriter() const noexcept { return proof_; }

    /// Rebuild the clause arena without the space of deleted clauses.
    /// Called automatically when a third of the arena is garbage; exposed
    /// so tests (and memory-sensitive embedders) can force a compaction.
    void compactClauseDatabase();

    /// Diversify the decision heuristics for portfolio solving: assign small
    /// pseudo-random initial variable activities derived from `seed` (a
    /// deterministic permutation of the branching order) and, when
    /// `randomizePhases` is set, random saved phases. Soundness is
    /// unaffected. Must be called at the root level, after the variables it
    /// should cover exist; typically once before the first solve().
    void diversify(std::uint64_t seed, bool randomizePhases);

    /// Words currently wasted by deleted clauses (observability for tests).
    [[nodiscard]] std::size_t wastedArenaWords() const noexcept {
        return arena_.wastedWords();
    }

private:
    struct Watcher {
        ClauseRef clause = kInvalidClause;
        Literal blocker;
    };

    /// Indexed max-heap over variable activities (the VSIDS order).
    class VarOrderHeap {
    public:
        explicit VarOrderHeap(const std::vector<double>& activity) : activity_(&activity) {}
        VarOrderHeap(const VarOrderHeap&) = default;
        VarOrderHeap& operator=(const VarOrderHeap&) = default;

        [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
        [[nodiscard]] bool contains(Var v) const noexcept {
            return v < static_cast<Var>(index_.size()) && index_[v] >= 0;
        }
        void grow(Var v) {
            if (v >= static_cast<Var>(index_.size())) {
                index_.resize(v + 1, -1);
            }
        }
        void insert(Var v);
        void increased(Var v);  ///< activity of v increased: restore heap order
        Var removeMax();
        void rebuild(const std::vector<Var>& vars);

    private:
        [[nodiscard]] bool less(Var a, Var b) const noexcept {
            return (*activity_)[a] < (*activity_)[b];
        }
        void percolateUp(int pos);
        void percolateDown(int pos);

        const std::vector<double>* activity_;
        std::vector<Var> heap_;
        std::vector<int> index_;
    };

    [[nodiscard]] Value value(Var v) const noexcept { return assigns_[v]; }
    [[nodiscard]] Value value(Literal l) const noexcept {
        const Value v = assigns_[l.var()];
        return l.sign() ? negate(v) : v;
    }
    [[nodiscard]] int decisionLevel() const noexcept { return static_cast<int>(trailLim_.size()); }

    void newDecisionLevel() { trailLim_.push_back(static_cast<int>(trail_.size())); }
    void uncheckedEnqueue(Literal p, ClauseRef from);
    ClauseRef propagate();
    void cancelUntil(int level);
    Literal pickBranchLiteral();
    void analyze(ClauseRef conflict, std::vector<Literal>& outLearnt, int& outBacktrackLevel);
    bool literalRedundant(Literal p, std::uint32_t abstractLevels);
    void analyzeFinal(Literal failedAssumption);
    SolveStatus search(std::int64_t conflictBudget);
    void exportLearntClause(const std::vector<Literal>& learnt);
    void importSharedClauses();
    void importOneClause(std::span<const Literal> literals);
    void reduceLearnedDb();
    void attachClause(ClauseRef ref);
    void detachClause(ClauseRef ref);
    [[nodiscard]] bool locked(ClauseRef ref) const;
    void bumpVariable(Var v);
    void bumpClause(Clause c);
    void decayVariableActivity() { variableIncrement_ /= options_.variableDecay; }
    void decayClauseActivity() { clauseIncrement_ /= options_.clauseDecay; }
    void rescaleVariableActivity();
    void rescaleClauseActivity();
    [[nodiscard]] std::uint32_t abstractLevel(Var v) const noexcept {
        return 1u << (level_[v] & 31);
    }
    void storeModel();

    SolverOptions options_;
    SolverStats stats_;
    ProofWriter* proof_ = nullptr;  ///< DRAT sink; nullptr = logging disabled

    ClauseArena arena_;
    std::vector<ClauseRef> clauses_;  ///< problem clauses of size >= 2
    std::vector<ClauseRef> learnts_;  ///< learned clauses

    std::vector<std::vector<Watcher>> watches_;  ///< indexed by literal code
    std::vector<Value> assigns_;
    std::vector<int> level_;
    std::vector<ClauseRef> reason_;
    std::vector<Literal> trail_;
    std::vector<int> trailLim_;
    int propagationHead_ = 0;

    std::vector<double> activity_;
    double variableIncrement_ = 1.0;
    double clauseIncrement_ = 1.0;
    VarOrderHeap order_{activity_};
    std::vector<char> polarity_;

    std::vector<Literal> assumptions_;
    std::vector<Literal> conflictCore_;
    std::vector<std::vector<Literal>> importBuffer_;  ///< scratch for onImport polls

    std::vector<char> seen_;
    std::vector<Literal> analyzeStack_;
    std::vector<Literal> analyzeToClear_;

    std::vector<Value> model_;
    bool ok_ = true;
    double maxLearnts_ = 0.0;
    std::uint64_t nextProgressAt_ = 0;  ///< conflict count of the next onProgress call
    bool cancelled_ = false;            ///< onProgress vetoed the current solve
};

}  // namespace etcs::sat
