/// \file types.hpp
/// Fundamental SAT types: variables, literals, truth values.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <ostream>
#include <span>
#include <vector>

namespace etcs::sat {

/// A Boolean variable, numbered from 0.
using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

/// A literal: a variable or its negation, encoded as 2*var + sign.
/// sign() == true means the negated literal.
class Literal {
public:
    constexpr Literal() noexcept = default;
    constexpr Literal(Var v, bool negated) noexcept : code_(2 * v + (negated ? 1 : 0)) {}

    /// The positive literal of `v`.
    [[nodiscard]] static constexpr Literal positive(Var v) noexcept { return Literal(v, false); }
    /// The negative literal of `v`.
    [[nodiscard]] static constexpr Literal negative(Var v) noexcept { return Literal(v, true); }
    /// Rebuild a literal from its integer code (inverse of code()).
    [[nodiscard]] static constexpr Literal fromCode(std::int32_t code) noexcept {
        Literal l;
        l.code_ = code;
        return l;
    }

    [[nodiscard]] constexpr Var var() const noexcept { return code_ >> 1; }
    [[nodiscard]] constexpr bool sign() const noexcept { return (code_ & 1) != 0; }
    /// Dense non-negative index usable for watch lists (2*var + sign).
    [[nodiscard]] constexpr std::int32_t code() const noexcept { return code_; }
    [[nodiscard]] constexpr bool valid() const noexcept { return code_ >= 0; }

    [[nodiscard]] constexpr Literal operator~() const noexcept { return fromCode(code_ ^ 1); }

    friend constexpr auto operator<=>(Literal, Literal) noexcept = default;

private:
    std::int32_t code_ = -2;  // invalid
};

inline constexpr Literal kUndefLiteral{};

inline std::ostream& operator<<(std::ostream& os, Literal l) {
    if (!l.valid()) {
        return os << "undef";
    }
    return os << (l.sign() ? "-" : "") << (l.var() + 1);
}

/// Three-valued logic result of a variable assignment lookup.
enum class Value : std::uint8_t { False = 0, True = 1, Undef = 2 };

[[nodiscard]] constexpr Value negate(Value v) noexcept {
    switch (v) {
        case Value::False: return Value::True;
        case Value::True: return Value::False;
        default: return Value::Undef;
    }
}

[[nodiscard]] constexpr Value fromBool(bool b) noexcept {
    return b ? Value::True : Value::False;
}

/// Result of a solve() call.
enum class SolveStatus : std::uint8_t {
    Sat,      ///< A satisfying assignment was found (model available).
    Unsat,    ///< Proven unsatisfiable under the given assumptions.
    Unknown,  ///< A resource limit was hit before a verdict.
};

inline std::ostream& operator<<(std::ostream& os, SolveStatus s) {
    switch (s) {
        case SolveStatus::Sat: return os << "SAT";
        case SolveStatus::Unsat: return os << "UNSAT";
        default: return os << "UNKNOWN";
    }
}

/// Counters describing the work a solve performed.
struct SolverStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnedClauses = 0;
    std::uint64_t learnedLiterals = 0;
    std::uint64_t minimizedLiterals = 0;
    std::uint64_t removedClauses = 0;
    std::uint64_t garbageCollections = 0;
    std::uint64_t maxDecisionLevel = 0;  ///< deepest decision level ever reached
    std::uint64_t peakLearnts = 0;       ///< largest learnt-DB size ever held
    std::uint64_t exportedClauses = 0;   ///< learnt clauses handed to onLearntExport
    std::uint64_t importedClauses = 0;   ///< foreign clauses attached via onImport
};

/// Snapshot handed to a progress callback during search.
struct SolverProgress {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::size_t learntDbSize = 0;  ///< learned clauses currently held
};

/// Invoked from inside search every SolverOptions::progressInterval
/// conflicts. Return false to cancel the solve cooperatively: the solver
/// backtracks to the root level and returns SolveStatus::Unknown, leaving
/// its state valid for further addClause()/solve() calls.
using ProgressCallback = std::function<bool(const SolverProgress&)>;

/// Export hook for learnt-clause sharing (see sat/portfolio.hpp). Invoked
/// from inside search, before backtracking, for every learnt clause within
/// the configured size/LBD caps. The span is only valid for the duration of
/// the call — receivers must copy.
using LearntExportCallback = std::function<void(std::span<const Literal>, int lbd)>;

/// Import source for learnt-clause sharing. Polled at the root level before
/// the first descent of a solve and at every restart boundary; the callee
/// appends clauses (each implied by the clause database) to the buffer. The
/// buffer is cleared by the solver before every poll.
using ImportCallback = std::function<void(std::vector<std::vector<Literal>>&)>;

/// Tunable solver behaviour; defaults follow MiniSat-era practice.
struct SolverOptions {
    double variableDecay = 0.95;       ///< EVSIDS decay per conflict.
    double clauseDecay = 0.999;        ///< learned-clause activity decay.
    bool phaseSaving = true;           ///< reuse last assigned polarity.
    bool minimizeLearned = true;       ///< conflict-clause minimization.
    bool useRestarts = true;           ///< Luby restarts.
    int restartBase = 100;             ///< conflicts per Luby unit.
    double learntSizeFactor = 0.33;    ///< initial learnt DB limit / #clauses.
    double learntSizeFloor = 1000.0;   ///< minimum learnt DB limit (tests lower
                                       ///< it to force reductions on small inputs).
    double learntSizeIncrement = 1.1;  ///< DB limit growth per reduction.
    std::int64_t conflictLimit = -1;   ///< stop after this many conflicts (<0: off).
    bool defaultPolarity = false;      ///< polarity used before phase saving kicks in.
    std::uint64_t progressInterval = 16384;  ///< conflicts between onProgress calls.
    ProgressCallback onProgress;       ///< progress/cancellation hook (may be empty).

    // Clause sharing (portfolio solving; see sat/portfolio.hpp). Learnt
    // clauses are exported while still at the conflict level, so their LBD is
    // exact; foreign clauses are imported only at the root level.
    int shareMaxSize = 0;              ///< export learnt clauses up to this size (0: off).
    int shareMaxLbd = 0;               ///< extra LBD cap on exports (0: size cap only).
    LearntExportCallback onLearntExport;  ///< receives each exported clause + LBD.
    ImportCallback onImport;           ///< foreign-clause source (may be empty).
};

}  // namespace etcs::sat
