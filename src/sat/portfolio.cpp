#include "sat/portfolio.hpp"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <thread>

#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace etcs::sat {

namespace {

/// Static diversification applied to workers 1..N-1 (worker 0 keeps the
/// library defaults, so a 1-thread portfolio behaves exactly like a plain
/// Solver). The table cycles for portfolios wider than its period.
struct DiversityConfig {
    int restartBase;
    double variableDecay;
    bool defaultPolarity;
    bool phaseSaving;
    bool randomPhases;  ///< also randomize saved phases in diversify()
};

constexpr DiversityConfig kDiversityConfigs[] = {
    {50, 0.95, true, true, false},    // fast Luby restarts, opposite polarity
    {400, 0.85, false, true, true},   // slow restarts, aggressive decay, noisy phases
    {100, 0.99, false, false, false}, // sluggish decay, no phase saving
    {30, 0.90, true, true, true},     // very fast restarts
    {800, 0.95, false, true, false},  // near-monolithic runs between restarts
    {150, 0.80, true, false, true},   // sharp decay, fresh phases each time
    {250, 0.97, false, true, true},
};

}  // namespace

struct PortfolioSolver::Worker {
    int id = 0;
    Solver solver;
    std::mutex inboxMutex;
    std::vector<std::vector<Literal>> inbox;        ///< foreign clauses to import
    std::vector<std::vector<Literal>> exportBuffer; ///< deterministic-mode staging
    std::unique_ptr<MemoryProofWriter> proof;       ///< winner-only DRAT capture
    SolveStatus lastStatus = SolveStatus::Unknown;
    std::uint64_t nextUserProgressAt = 0;
};

PortfolioSolver::PortfolioSolver(PortfolioOptions options) : options_(std::move(options)) {
    int threads = options_.numThreads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads = std::max(threads, 1);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int id = 0; id < threads; ++id) {
        auto worker = std::make_unique<Worker>();
        worker->id = id;
        workers_.push_back(std::move(worker));
    }
}

PortfolioSolver::~PortfolioSolver() = default;

Var PortfolioSolver::addVariable() {
    Var v = kUndefVar;
    for (auto& worker : workers_) {
        v = worker->solver.addVariable();
    }
    return v;
}

int PortfolioSolver::numVariables() const noexcept {
    return workers_.front()->solver.numVariables();
}

bool PortfolioSolver::addClause(std::span<const Literal> literals) {
    ++clausesAdded_;
    bool ok = true;
    for (auto& worker : workers_) {
        ok = worker->solver.addClause(literals) && ok;
    }
    return ok;
}

bool PortfolioSolver::okay() const noexcept {
    return workers_.front()->solver.okay();
}

void PortfolioSolver::setProofWriter(ProofWriter* proof) {
    externalProof_ = proof;
    proofReplayed_ = false;
    for (auto& worker : workers_) {
        if (proof != nullptr) {
            if (!worker->proof) {
                worker->proof = std::make_unique<MemoryProofWriter>();
            }
            worker->solver.setProofWriter(worker->proof.get());
        } else {
            worker->solver.setProofWriter(nullptr);
            worker->proof.reset();
        }
    }
}

void PortfolioSolver::wireWorker(Worker& worker) {
    SolverOptions& opts = worker.solver.options();

    // Clause sharing. Proof capture forces a share-nothing portfolio so the
    // winner's derivation stays self-contained (see docs/PARALLEL.md).
    const bool sharing =
        options_.shareClauses && externalProof_ == nullptr && workers_.size() > 1;
    if (sharing) {
        opts.shareMaxSize = options_.shareMaxSize;
        opts.shareMaxLbd = options_.shareMaxLbd;
        if (options_.deterministic) {
            opts.onLearntExport = [this, &worker](std::span<const Literal> lits, int) {
                if (worker.exportBuffer.size() >= options_.inboxCapacity) {
                    dropped_.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                worker.exportBuffer.emplace_back(lits.begin(), lits.end());
            };
        } else {
            opts.onLearntExport = [this, &worker](std::span<const Literal> lits, int) {
                const std::vector<Literal> copy(lits.begin(), lits.end());
                for (auto& other : workers_) {
                    if (other->id == worker.id) {
                        continue;
                    }
                    const std::lock_guard<std::mutex> lock(other->inboxMutex);
                    if (other->inbox.size() >= options_.inboxCapacity) {
                        dropped_.fetch_add(1, std::memory_order_relaxed);
                        continue;
                    }
                    other->inbox.push_back(copy);
                }
            };
        }
        opts.onImport = [this, &worker](std::vector<std::vector<Literal>>& out) {
            const std::lock_guard<std::mutex> lock(worker.inboxMutex);
            if (worker.inbox.empty()) {
                return;
            }
            if (options_.onImportedClause) {
                for (const auto& clause : worker.inbox) {
                    options_.onImportedClause(worker.id, clause);
                }
            }
            out.swap(worker.inbox);
            worker.inbox.clear();
        };
    } else {
        opts.shareMaxSize = 0;
        opts.shareMaxLbd = 0;
        opts.onLearntExport = nullptr;
        opts.onImport = nullptr;
    }

    // Cancellation and user progress.
    if (options_.deterministic) {
        // Lock-step mode: no asynchronous cancellation; the user hook runs
        // at epoch barriers on the coordinating thread instead.
        opts.onProgress = nullptr;
    } else {
        opts.conflictLimit = -1;  // may be left over from a deterministic run
        opts.progressInterval = std::max<std::uint64_t>(options_.cancelCheckConflicts, 1);
        worker.nextUserProgressAt =
            worker.solver.stats().conflicts +
            std::max<std::uint64_t>(options_.progressInterval, 1);
        opts.onProgress = [this, &worker](const SolverProgress& progress) {
            if (stop_.load(std::memory_order_relaxed)) {
                return false;
            }
            if (worker.id == 0 && options_.onProgress &&
                progress.conflicts >= worker.nextUserProgressAt) {
                worker.nextUserProgressAt =
                    progress.conflicts +
                    std::max<std::uint64_t>(options_.progressInterval, 1);
                if (!options_.onProgress(progress)) {
                    userCancelled_.store(true, std::memory_order_relaxed);
                    stop_.store(true, std::memory_order_relaxed);
                    return false;
                }
            }
            return true;
        };
    }
}

void PortfolioSolver::runWorker(Worker& worker, std::span<const Literal> assumptions) {
    if (options_.onWorkerStart) {
        options_.onWorkerStart(worker.id);
    }
    worker.lastStatus = worker.solver.solve(assumptions);
    if (options_.onWorkerFinish) {
        options_.onWorkerFinish(worker.id, worker.lastStatus, worker.solver.stats());
    }
}

SolveStatus PortfolioSolver::solveRacing(std::span<const Literal> assumptions) {
    stop_.store(false, std::memory_order_relaxed);
    std::atomic<int> firstFinished{-1};

    const auto race = [this, assumptions, &firstFinished](Worker& worker) {
        runWorker(worker, assumptions);
        if (worker.lastStatus != SolveStatus::Unknown) {
            int expected = -1;
            firstFinished.compare_exchange_strong(expected, worker.id,
                                                  std::memory_order_relaxed);
            stop_.store(true, std::memory_order_relaxed);
        }
    };

    if (workers_.size() == 1) {
        race(*workers_.front());
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers_.size());
        for (auto& worker : workers_) {
            threads.emplace_back([&race, &worker] { race(*worker); });
        }
        for (auto& thread : threads) {
            thread.join();
        }
    }

    winner_ = firstFinished.load(std::memory_order_relaxed);
    winnerStatus_ =
        winner_ >= 0 ? workers_[static_cast<std::size_t>(winner_)]->lastStatus
                     : SolveStatus::Unknown;
    return winnerStatus_;
}

void PortfolioSolver::exchangeEpochClauses() {
    // Deterministic exchange: worker order, then emission order. Inboxes are
    // drained at the next epoch's first import poll.
    for (auto& source : workers_) {
        for (auto& clause : source->exportBuffer) {
            for (auto& target : workers_) {
                if (target->id == source->id) {
                    continue;
                }
                const std::lock_guard<std::mutex> lock(target->inboxMutex);
                if (target->inbox.size() >= options_.inboxCapacity) {
                    dropped_.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                target->inbox.push_back(clause);
            }
        }
        source->exportBuffer.clear();
    }
}

SolveStatus PortfolioSolver::solveDeterministic(std::span<const Literal> assumptions) {
    const std::uint64_t epochBudget = std::max<std::uint64_t>(options_.epochConflicts, 1);
    while (true) {
        for (auto& worker : workers_) {
            worker->solver.options().conflictLimit = static_cast<std::int64_t>(
                worker->solver.stats().conflicts + epochBudget);
        }
        if (workers_.size() == 1) {
            runWorker(*workers_.front(), assumptions);
        } else {
            std::vector<std::thread> threads;
            threads.reserve(workers_.size());
            for (auto& worker : workers_) {
                threads.emplace_back(
                    [this, &worker, assumptions] { runWorker(*worker, assumptions); });
            }
            for (auto& thread : threads) {
                thread.join();
            }
        }
        ++stats_.epochs;

        // Lowest-numbered finished worker wins — a deterministic tie-break.
        for (auto& worker : workers_) {
            if (worker->lastStatus != SolveStatus::Unknown) {
                winner_ = worker->id;
                winnerStatus_ = worker->lastStatus;
                return winnerStatus_;
            }
        }

        exchangeEpochClauses();

        if (options_.onProgress) {
            SolverProgress progress;
            for (const auto& worker : workers_) {
                const SolverStats& s = worker->solver.stats();
                progress.conflicts += s.conflicts;
                progress.decisions += s.decisions;
                progress.propagations += s.propagations;
                progress.restarts += s.restarts;
                progress.learntDbSize += worker->solver.numLearnedClauses();
            }
            if (!options_.onProgress(progress)) {
                userCancelled_.store(true, std::memory_order_relaxed);
                winner_ = -1;
                winnerStatus_ = SolveStatus::Unknown;
                return winnerStatus_;
            }
        }
    }
}

void PortfolioSolver::aggregateStats() {
    SolverStats total;
    for (const auto& worker : workers_) {
        const SolverStats& s = worker->solver.stats();
        total.decisions += s.decisions;
        total.propagations += s.propagations;
        total.conflicts += s.conflicts;
        total.restarts += s.restarts;
        total.learnedClauses += s.learnedClauses;
        total.learnedLiterals += s.learnedLiterals;
        total.minimizedLiterals += s.minimizedLiterals;
        total.removedClauses += s.removedClauses;
        total.garbageCollections += s.garbageCollections;
        total.maxDecisionLevel = std::max(total.maxDecisionLevel, s.maxDecisionLevel);
        total.peakLearnts = std::max(total.peakLearnts, s.peakLearnts);
        total.exportedClauses += s.exportedClauses;
        total.importedClauses += s.importedClauses;
    }
    stats_.aggregate = total;
    stats_.exportedClauses = total.exportedClauses;
    stats_.importedClauses = total.importedClauses;
    stats_.droppedClauses = dropped_.load(std::memory_order_relaxed);
}

void PortfolioSolver::finishSolve(std::span<const Literal> assumptions,
                                  SolveStatus status) {
    ++stats_.solves;
    stats_.lastWinner = winner_;
    aggregateStats();
    // Snapshot the winner's failed-assumption core: the worker's solver
    // overwrites its core on the next solve, but consumers (unsat-core
    // attribution, the explanation pipeline) read it after the race ended.
    lastCore_.clear();
    if (status == SolveStatus::Unsat && !assumptions.empty() && winner_ >= 0) {
        const auto& core =
            workers_[static_cast<std::size_t>(winner_)]->solver.conflictCore();
        lastCore_.assign(core.begin(), core.end());
    }
    if (externalProof_ != nullptr && !proofReplayed_ && status == SolveStatus::Unsat &&
        assumptions.empty() && winner_ >= 0) {
        const Worker& worker = *workers_[static_cast<std::size_t>(winner_)];
        if (worker.proof) {
            writeDrat(*externalProof_, worker.proof->proof());
            externalProof_->flush();
            proofReplayed_ = true;
        }
    }
}

SolveStatus PortfolioSolver::solve(std::span<const Literal> assumptions) {
    userCancelled_.store(false, std::memory_order_relaxed);
    winner_ = -1;
    winnerStatus_ = SolveStatus::Unknown;

    if (!diversified_) {
        diversified_ = true;
        for (auto& worker : workers_) {
            if (worker->id == 0) {
                continue;  // worker 0 keeps the library defaults
            }
            const DiversityConfig& config =
                kDiversityConfigs[static_cast<std::size_t>(worker->id - 1) %
                                  std::size(kDiversityConfigs)];
            SolverOptions& opts = worker->solver.options();
            opts.restartBase = config.restartBase;
            opts.variableDecay = config.variableDecay;
            opts.defaultPolarity = config.defaultPolarity;
            opts.phaseSaving = config.phaseSaving;
            worker->solver.diversify(
                options_.seed + static_cast<std::uint64_t>(worker->id) * 0x9e3779b9ULL,
                config.randomPhases);
        }
    }
    for (auto& worker : workers_) {
        wireWorker(*worker);
    }

    const SolveStatus status = options_.deterministic
                                   ? solveDeterministic(assumptions)
                                   : solveRacing(assumptions);
    finishSolve(assumptions, status);
    return status;
}

Value PortfolioSolver::modelValue(Var v) const {
    ETCS_REQUIRE_MSG(winner_ >= 0, "no portfolio verdict available");
    return workers_[static_cast<std::size_t>(winner_)]->solver.modelValue(v);
}

Value PortfolioSolver::modelValue(Literal l) const {
    ETCS_REQUIRE_MSG(winner_ >= 0, "no portfolio verdict available");
    return workers_[static_cast<std::size_t>(winner_)]->solver.modelValue(l);
}

const std::vector<Literal>& PortfolioSolver::conflictCore() const { return lastCore_; }

}  // namespace etcs::sat
