/// \file portfolio.hpp
/// A parallel portfolio over the internal CDCL solver.
///
/// N diversified Solver instances (varying diversification seed, phase
/// polarity, Luby restart base, and VSIDS decay) attack the same formula on
/// std::threads. Short learnt clauses (size/LBD-capped) are exported into
/// the other workers' bounded inboxes and imported at restart boundaries;
/// the first worker to reach a verdict cancels the rest through the
/// cooperative progress hook. Incremental solving under assumptions works
/// exactly as on a single Solver: every worker replays the assumptions, and
/// the winner's model / failed-assumption core is exposed.
///
/// Two execution modes (see docs/PARALLEL.md):
///  * racing (default)  — workers run freely; clause exchange and the winner
///    depend on OS scheduling, so results can vary between runs (all
///    verdicts are sound, only tie-breaking varies);
///  * deterministic     — workers run in lock-step epochs of a fixed
///    conflict budget, clauses are exchanged only at epoch barriers in a
///    fixed order, and the lowest-numbered finished worker wins, so a fixed
///    (threads, seed) pair yields a reproducible verdict, model, and winner.
///
/// Proof logging is winner-only: attaching a ProofWriter disables clause
/// sharing, records each worker's private derivation in memory, and replays
/// the winner's proof into the writer on a terminal (assumption-free) UNSAT.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace etcs::sat {

class ProofWriter;
class Solver;

struct PortfolioOptions {
    /// Worker count; 0 picks std::thread::hardware_concurrency(). Fixed at
    /// construction of the PortfolioSolver.
    int numThreads = 0;
    /// Lock-step epoch mode: reproducible verdict/model/winner for a fixed
    /// (numThreads, seed) pair, at the cost of barrier synchronization.
    bool deterministic = false;
    /// Conflicts each worker may spend per epoch in deterministic mode.
    std::uint64_t epochConflicts = 4096;
    /// Base diversification seed (worker k derives its stream from seed + k).
    std::uint64_t seed = 1;

    // Clause sharing policy.
    bool shareClauses = true;  ///< disable to run a pure (share-nothing) portfolio
    int shareMaxSize = 8;      ///< export learnt clauses up to this many literals
    int shareMaxLbd = 6;       ///< ... and up to this LBD
    std::size_t inboxCapacity = 4096;  ///< per-worker inbox bound; excess is dropped

    /// Conflicts between stop-flag polls in racing mode (cancellation
    /// latency of losing workers).
    std::uint64_t cancelCheckConflicts = 128;

    /// User progress/cancellation hook. Racing mode forwards it from worker
    /// 0 only (single-threaded invocation, every progressInterval of worker
    /// 0's conflicts); deterministic mode invokes it between epochs with
    /// aggregated counters. Returning false cancels the whole portfolio.
    ProgressCallback onProgress;
    std::uint64_t progressInterval = 16384;

    /// Instrumentation: invoked (on the importing worker's thread) for every
    /// clause the worker imports. Used by the clause-sharing soundness tests;
    /// the implementation must be thread-safe in racing mode.
    std::function<void(int worker, std::span<const Literal>)> onImportedClause;

    /// Observability hooks, invoked on the worker's own thread around each
    /// worker's participation in a solve (or in an epoch).
    std::function<void(int worker)> onWorkerStart;
    std::function<void(int worker, SolveStatus, const SolverStats&)> onWorkerFinish;
};

/// Work counters of the portfolio as a whole.
struct PortfolioStats {
    std::uint64_t solves = 0;
    std::uint64_t epochs = 0;            ///< deterministic-mode epochs run
    std::uint64_t exportedClauses = 0;   ///< clauses offered to other workers
    std::uint64_t importedClauses = 0;   ///< clauses actually attached by importers
    std::uint64_t droppedClauses = 0;    ///< exports discarded on full inboxes
    int lastWinner = -1;                 ///< worker that decided the last solve
    SolverStats aggregate;               ///< summed over all workers
};

/// Drop-in parallel replacement for Solver's solve surface (the subset the
/// backends need): variables and clauses are mirrored into every worker,
/// solve() races or lock-steps them, and model/core queries go to the winner.
class PortfolioSolver {
public:
    explicit PortfolioSolver(PortfolioOptions options = {});
    ~PortfolioSolver();

    PortfolioSolver(const PortfolioSolver&) = delete;
    PortfolioSolver& operator=(const PortfolioSolver&) = delete;

    Var addVariable();
    [[nodiscard]] int numVariables() const noexcept;
    [[nodiscard]] std::size_t numClauses() const noexcept { return clausesAdded_; }

    /// Add a clause to every worker. Returns false when the clause system is
    /// already unsatisfiable at the root level.
    bool addClause(std::span<const Literal> literals);
    bool addClause(std::initializer_list<Literal> literals) {
        return addClause(std::span<const Literal>(literals.begin(), literals.size()));
    }

    SolveStatus solve(std::span<const Literal> assumptions);
    SolveStatus solve(std::initializer_list<Literal> assumptions) {
        return solve(std::span<const Literal>(assumptions.begin(), assumptions.size()));
    }
    SolveStatus solve() { return solve(std::span<const Literal>{}); }

    /// Model of the winning worker after a Sat verdict.
    [[nodiscard]] Value modelValue(Var v) const;
    [[nodiscard]] Value modelValue(Literal l) const;

    /// Failed-assumption core of the winning worker after an Unsat verdict
    /// under assumptions. Snapshotted when the solve finishes, so the
    /// reference stays valid (and the core attributable) even after the
    /// winner's solver is reused — consumers feed it to the provenance /
    /// explanation pipeline (core/explain.hpp).
    [[nodiscard]] const std::vector<Literal>& conflictCore() const;

    /// False once the clause system is unsatisfiable regardless of assumptions.
    [[nodiscard]] bool okay() const noexcept;

    [[nodiscard]] int numThreads() const noexcept {
        return static_cast<int>(workers_.size());
    }
    /// Worker id that decided the most recent solve (-1 before any verdict).
    [[nodiscard]] int lastWinner() const noexcept { return winner_; }

    [[nodiscard]] const PortfolioStats& stats() const noexcept { return stats_; }
    /// Summed SolverStats over all workers (backend stats() surface).
    [[nodiscard]] const SolverStats& solverStats() const noexcept {
        return stats_.aggregate;
    }

    /// Live-tunable options (numThreads and seed are fixed at construction).
    [[nodiscard]] PortfolioOptions& options() noexcept { return options_; }
    [[nodiscard]] const PortfolioOptions& options() const noexcept { return options_; }

    /// Winner-only DRAT capture: disables clause sharing, attaches a private
    /// in-memory proof to every worker, and replays the winner's derivation
    /// into `proof` on the first terminal (assumption-free) Unsat. Attach
    /// before adding clauses, like Solver::setProofWriter; nullptr detaches.
    void setProofWriter(ProofWriter* proof);

private:
    struct Worker;

    void wireWorker(Worker& worker);
    void runWorker(Worker& worker, std::span<const Literal> assumptions);
    void exchangeEpochClauses();
    void aggregateStats();
    void finishSolve(std::span<const Literal> assumptions, SolveStatus status);
    SolveStatus solveRacing(std::span<const Literal> assumptions);
    SolveStatus solveDeterministic(std::span<const Literal> assumptions);

    PortfolioOptions options_;
    PortfolioStats stats_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::size_t clausesAdded_ = 0;
    bool diversified_ = false;       ///< workers diversified on first solve
    int winner_ = -1;
    SolveStatus winnerStatus_ = SolveStatus::Unknown;
    ProofWriter* externalProof_ = nullptr;
    bool proofReplayed_ = false;
    std::vector<Literal> lastCore_;  ///< winner's failed-assumption core snapshot

    // Cross-thread coordination (racing mode).
    std::atomic<bool> stop_{false};
    std::atomic<bool> userCancelled_{false};
    std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace etcs::sat
