/// \file preprocess.hpp
/// CNF preprocessing: satisfiability-preserving simplifications applied
/// before handing a formula to the solver.
///
/// Implemented rules (each applied to fixpoint, in rounds):
///  * tautology and duplicate-literal removal,
///  * unit propagation (fixed literals are recorded and removed),
///  * pure-literal elimination (literals occurring in one polarity only),
///  * forward subsumption (drop clauses containing another clause),
///  * self-subsuming resolution (strengthen a clause by removing a literal
///    whose complement-resolvent is subsumed).
///
/// The result is equisatisfiable with the input; models of the simplified
/// formula extend to models of the original via `fixedLiterals` plus the
/// recorded pure-literal assignments.
///
/// When a ProofWriter is supplied, every simplification is logged as DRAT
/// steps (strengthened clauses and propagated units as RUP additions,
/// pure-literal units as RAT additions, removed clauses as deletions), so
/// a solver run on the simplified formula appends to a proof that still
/// checks against the *original* formula.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace etcs::sat {

struct PreprocessStats {
    std::uint64_t removedTautologies = 0;
    std::uint64_t propagatedUnits = 0;
    std::uint64_t eliminatedPureLiterals = 0;
    std::uint64_t subsumedClauses = 0;
    std::uint64_t strengthenedClauses = 0;
    int rounds = 0;
};

struct PreprocessResult {
    bool unsatisfiable = false;          ///< a contradiction was derived
    std::vector<Literal> fixedLiterals;  ///< units propagated (hold in every model)
    std::vector<Literal> pureLiterals;   ///< pure literals assigned true
    PreprocessStats stats;
};

/// Simplify `formula` in place. When `result.unsatisfiable` is set, the
/// remaining clause list contains a single empty clause. `proof`, when
/// non-null, receives the DRAT trace of every simplification.
PreprocessResult preprocess(CnfFormula& formula, ProofWriter* proof = nullptr);

}  // namespace etcs::sat
