/// \file proof.hpp
/// DRAT proof logging for the SAT subsystem.
///
/// A ProofWriter is a sink for clause additions and deletions in the DRAT
/// clausal proof format. The solver and the preprocessor log every clause
/// they derive (learnt clauses, strengthened clauses, propagated units,
/// pure-literal assignments) and every clause they discard (learnt-DB
/// reduction, subsumption), so an UNSAT answer can be certified by an
/// independent checker (see drat_check.hpp) against the original formula.
///
/// Logging is strictly opt-in: components hold a `ProofWriter*` that is
/// null by default, and every logging site is guarded by a single pointer
/// test, so the cost when disabled is one predictable branch.
///
/// Supported encodings:
///  * text DRAT  — one step per line, "1 -2 0" adds, "d 1 -2 0" deletes;
///  * binary DRAT — 'a'/'d' tag byte followed by variable-length-encoded
///    literals (the format accepted by drat-trim's -i switch).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace etcs::sat {

/// One parsed or recorded DRAT proof step.
struct DratStep {
    bool isDeletion = false;
    std::vector<Literal> literals;

    friend bool operator==(const DratStep&, const DratStep&) = default;
};

/// A whole DRAT proof, in emission order.
struct DratProof {
    std::vector<DratStep> steps;
};

/// Sink for DRAT proof steps. Implementations choose the on-the-wire format.
class ProofWriter {
public:
    virtual ~ProofWriter() = default;

    void addClause(std::span<const Literal> literals) {
        ++additions_;
        writeStep(/*isDeletion=*/false, literals);
    }
    void addClause(std::initializer_list<Literal> literals) {
        addClause(std::span<const Literal>(literals.begin(), literals.size()));
    }
    /// Log the empty clause: the formula has been refuted.
    void addEmptyClause() { addClause(std::span<const Literal>{}); }

    void deleteClause(std::span<const Literal> literals) {
        ++deletions_;
        writeStep(/*isDeletion=*/true, literals);
    }
    void deleteClause(std::initializer_list<Literal> literals) {
        deleteClause(std::span<const Literal>(literals.begin(), literals.size()));
    }

    /// Push buffered output to the underlying sink (no-op by default).
    virtual void flush() {}

    [[nodiscard]] std::uint64_t additions() const noexcept { return additions_; }
    [[nodiscard]] std::uint64_t deletions() const noexcept { return deletions_; }

protected:
    virtual void writeStep(bool isDeletion, std::span<const Literal> literals) = 0;

private:
    std::uint64_t additions_ = 0;
    std::uint64_t deletions_ = 0;
};

/// Writes text DRAT ("d " prefix for deletions, DIMACS literal numbering).
class TextDratWriter final : public ProofWriter {
public:
    explicit TextDratWriter(std::ostream& out) : out_(&out) {}
    void flush() override;

protected:
    void writeStep(bool isDeletion, std::span<const Literal> literals) override;

private:
    std::ostream* out_;
};

/// Writes binary DRAT: 'a'/'d' tag, then each literal as a 7-bit
/// variable-length unsigned integer (lit > 0 -> 2*lit, lit < 0 -> 2*|lit|+1),
/// each step terminated by a zero byte.
class BinaryDratWriter final : public ProofWriter {
public:
    explicit BinaryDratWriter(std::ostream& out) : out_(&out) {}
    void flush() override;

protected:
    void writeStep(bool isDeletion, std::span<const Literal> literals) override;

private:
    std::ostream* out_;
};

/// Records steps in memory (tests and in-process certification).
class MemoryProofWriter final : public ProofWriter {
public:
    [[nodiscard]] const DratProof& proof() const noexcept { return proof_; }
    [[nodiscard]] DratProof takeProof() noexcept { return std::move(proof_); }
    void clear() { proof_.steps.clear(); }

protected:
    void writeStep(bool isDeletion, std::span<const Literal> literals) override {
        proof_.steps.push_back(
            DratStep{isDeletion, std::vector<Literal>(literals.begin(), literals.end())});
    }

private:
    DratProof proof_;
};

/// Parse a text DRAT stream. Accepts "c ..." comment lines; throws
/// etcs::InputError on malformed input.
[[nodiscard]] DratProof readDratText(std::istream& in);

/// Parse a binary DRAT stream; throws etcs::InputError on malformed input.
[[nodiscard]] DratProof readDratBinary(std::istream& in);

/// Parse a DRAT stream, sniffing the encoding: a prefix made entirely of
/// text-DRAT characters selects the text parser, anything else the binary
/// parser.
[[nodiscard]] DratProof readDrat(std::istream& in);

/// Serialize a proof through the given writer (format conversion helper).
void writeDrat(ProofWriter& writer, const DratProof& proof);

}  // namespace etcs::sat
