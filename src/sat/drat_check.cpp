#include "sat/drat_check.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace etcs::sat {

namespace {

constexpr int kNoClause = -1;    ///< "no clause" id / reason
constexpr int kAssumption = -2;  ///< reason of a literal assumed by a check

/// A clause as the checker stores it: literals sorted and deduplicated,
/// plus the first literal as written (the RAT pivot position of DRAT).
struct CClause {
    std::vector<Literal> lits;
    Literal pivot;
    int watchA = -1;  ///< positions into lits of the two watched literals
    int watchB = -1;
    bool active = false;
    bool marked = false;
    bool isLemma = false;
    bool tautology = false;
};

/// What the forward pass did at one proof step (for backward undo).
struct StepAction {
    int addedClause = kNoClause;
    int deletedClause = kNoClause;
};

class Checker {
public:
    Checker(const CnfFormula& formula, const DratProof& proof)
        : formula_(formula), proof_(proof) {}

    DratCheckResult run();

private:
    [[nodiscard]] Value value(Literal l) const {
        const Value v = assigns_[static_cast<std::size_t>(l.var())];
        return l.sign() ? negate(v) : v;
    }

    [[nodiscard]] static std::vector<std::int32_t> key(const std::vector<Literal>& lits) {
        std::vector<std::int32_t> codes;
        codes.reserve(lits.size());
        for (Literal l : lits) {
            codes.push_back(l.code());
        }
        return codes;
    }

    int addClauseRecord(std::span<const Literal> literals, bool isLemma);
    int activateUnderTrail(int id);  ///< forward pass; returns conflict id
    void activateBare(int id);       ///< backward reactivation (empty trail)
    void deactivate(int id);
    void enqueue(Literal l, int reason);
    int propagate();
    void markConeFromSeen();
    void undoTrail();
    bool checkRupClause(std::span<const Literal> clauseLits);
    bool verifyLemma(int id, std::string& error);

    const CnfFormula& formula_;
    const DratProof& proof_;

    std::vector<CClause> clauses_;
    std::map<std::vector<std::int32_t>, std::vector<int>> index_;
    std::vector<std::vector<int>> watches_;  ///< literal code -> watching clause ids
    std::vector<int> units_;                 ///< ids of unit clauses (may hold stale entries)
    std::vector<Value> assigns_;
    std::vector<int> reasons_;
    std::vector<Literal> trail_;
    std::size_t head_ = 0;
    std::vector<char> seen_;
    DratCheckStats stats_;
};

int Checker::addClauseRecord(std::span<const Literal> literals, bool isLemma) {
    const int id = static_cast<int>(clauses_.size());
    CClause c;
    c.isLemma = isLemma;
    c.pivot = literals.empty() ? kUndefLiteral : literals.front();
    c.lits.assign(literals.begin(), literals.end());
    std::sort(c.lits.begin(), c.lits.end());
    c.lits.erase(std::unique(c.lits.begin(), c.lits.end()), c.lits.end());
    for (std::size_t i = 0; i + 1 < c.lits.size(); ++i) {
        if (c.lits[i + 1] == ~c.lits[i]) {
            c.tautology = true;
            break;
        }
    }
    index_[key(c.lits)].push_back(id);
    clauses_.push_back(std::move(c));
    return id;
}

int Checker::activateUnderTrail(int id) {
    CClause& c = clauses_[id];
    if (c.tautology) {
        return kNoClause;  // never constrains anything; stays inactive
    }
    c.active = true;
    if (c.lits.empty()) {
        return id;
    }
    if (c.lits.size() == 1) {
        units_.push_back(id);
        const Literal u = c.lits[0];
        const Value v = value(u);
        if (v == Value::False) {
            return id;
        }
        if (v == Value::Undef) {
            enqueue(u, id);
        }
        return kNoClause;
    }
    // Pick watches among the non-false literals under the current trail.
    int first = -1;
    int second = -1;
    for (std::size_t i = 0; i < c.lits.size(); ++i) {
        if (value(c.lits[i]) == Value::False) {
            continue;
        }
        if (first < 0) {
            first = static_cast<int>(i);
        } else {
            second = static_cast<int>(i);
            break;
        }
    }
    if (first < 0) {
        // All literals false: conflicting; watch positions are irrelevant
        // for the forward stop, and fine for later from-scratch checks.
        c.watchA = 0;
        c.watchB = 1;
        watches_[static_cast<std::size_t>((~c.lits[0]).code())].push_back(id);
        watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(id);
        return id;
    }
    if (second < 0) {
        second = (first == 0) ? 1 : 0;  // any distinct position
    }
    c.watchA = first;
    c.watchB = second;
    watches_[static_cast<std::size_t>((~c.lits[first]).code())].push_back(id);
    watches_[static_cast<std::size_t>((~c.lits[second]).code())].push_back(id);
    const Literal watched = c.lits[first];
    bool othersFalse = true;
    for (std::size_t i = 0; i < c.lits.size() && othersFalse; ++i) {
        othersFalse = static_cast<int>(i) == first || value(c.lits[i]) == Value::False;
    }
    if (othersFalse && value(watched) == Value::Undef) {
        enqueue(watched, id);  // clause is unit under the current trail
    }
    return kNoClause;
}

void Checker::activateBare(int id) {
    CClause& c = clauses_[id];
    if (c.tautology) {
        return;
    }
    c.active = true;
    if (c.lits.empty()) {
        return;
    }
    if (c.lits.size() == 1) {
        units_.push_back(id);
        return;
    }
    c.watchA = 0;
    c.watchB = 1;
    watches_[static_cast<std::size_t>((~c.lits[0]).code())].push_back(id);
    watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(id);
}

void Checker::deactivate(int id) {
    CClause& c = clauses_[id];
    if (!c.active) {
        return;
    }
    c.active = false;
    if (c.lits.size() < 2) {
        return;  // units are filtered lazily through the active flag
    }
    for (const int pos : {c.watchA, c.watchB}) {
        auto& list = watches_[static_cast<std::size_t>((~c.lits[pos]).code())];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i] == id) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

void Checker::enqueue(Literal l, int reason) {
    assigns_[static_cast<std::size_t>(l.var())] = l.sign() ? Value::False : Value::True;
    reasons_[static_cast<std::size_t>(l.var())] = reason;
    trail_.push_back(l);
}

int Checker::propagate() {
    while (head_ < trail_.size()) {
        const Literal p = trail_[head_++];
        const Literal falseLit = ~p;
        auto& ws = watches_[static_cast<std::size_t>(p.code())];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const int id = ws[i];
            CClause& c = clauses_[id];
            int* falseSlot = nullptr;
            int otherPos = -1;
            if (c.lits[static_cast<std::size_t>(c.watchA)] == falseLit) {
                falseSlot = &c.watchA;
                otherPos = c.watchB;
            } else {
                falseSlot = &c.watchB;
                otherPos = c.watchA;
            }
            const Literal other = c.lits[static_cast<std::size_t>(otherPos)];
            if (value(other) == Value::True) {
                ws[keep++] = id;
                continue;
            }
            bool moved = false;
            for (std::size_t pos = 0; pos < c.lits.size(); ++pos) {
                if (static_cast<int>(pos) == c.watchA || static_cast<int>(pos) == c.watchB) {
                    continue;
                }
                if (value(c.lits[pos]) != Value::False) {
                    *falseSlot = static_cast<int>(pos);
                    watches_[static_cast<std::size_t>((~c.lits[pos]).code())].push_back(id);
                    moved = true;
                    break;
                }
            }
            if (moved) {
                continue;  // left this watch list
            }
            ws[keep++] = id;
            if (value(other) == Value::False) {
                for (std::size_t r = i + 1; r < ws.size(); ++r) {
                    ws[keep++] = ws[r];
                }
                ws.resize(keep);
                return id;
            }
            enqueue(other, id);
        }
        ws.resize(keep);
    }
    return kNoClause;
}

void Checker::markConeFromSeen() {
    for (int i = static_cast<int>(trail_.size()) - 1; i >= 0; --i) {
        const Var v = trail_[static_cast<std::size_t>(i)].var();
        if (seen_[static_cast<std::size_t>(v)] == 0) {
            continue;
        }
        seen_[static_cast<std::size_t>(v)] = 0;
        const int reason = reasons_[static_cast<std::size_t>(v)];
        if (reason < 0) {
            continue;  // an assumption of the running check
        }
        clauses_[reason].marked = true;
        for (Literal l : clauses_[reason].lits) {
            if (l.var() != v && assigns_[static_cast<std::size_t>(l.var())] != Value::Undef) {
                seen_[static_cast<std::size_t>(l.var())] = 1;
            }
        }
    }
}

void Checker::undoTrail() {
    while (!trail_.empty()) {
        const Var v = trail_.back().var();
        assigns_[static_cast<std::size_t>(v)] = Value::Undef;
        reasons_[static_cast<std::size_t>(v)] = kNoClause;
        trail_.pop_back();
    }
    head_ = 0;
}

bool Checker::checkRupClause(std::span<const Literal> clauseLits) {
    bool trivial = false;
    bool conflicted = false;
    // Assume the negation of the clause.
    for (Literal l : clauseLits) {
        const Literal assumption = ~l;
        const Value v = value(assumption);
        if (v == Value::False) {
            trivial = true;  // complementary pair among the assumptions
            break;
        }
        if (v == Value::Undef) {
            enqueue(assumption, kAssumption);
        }
    }
    if (!trivial) {
        // Seed unit propagation from the active unit clauses.
        for (std::size_t i = 0; i < units_.size() && !conflicted; ++i) {
            const int id = units_[i];
            CClause& c = clauses_[id];
            if (!c.active) {
                continue;
            }
            const Literal u = c.lits[0];
            const Value v = value(u);
            if (v == Value::True) {
                continue;
            }
            if (v == Value::False) {
                c.marked = true;
                seen_[static_cast<std::size_t>(u.var())] = 1;
                markConeFromSeen();
                conflicted = true;
                break;
            }
            enqueue(u, id);
        }
        if (!conflicted) {
            const int conflict = propagate();
            if (conflict != kNoClause) {
                clauses_[conflict].marked = true;
                for (Literal l : clauses_[conflict].lits) {
                    seen_[static_cast<std::size_t>(l.var())] = 1;
                }
                markConeFromSeen();
                conflicted = true;
            }
        }
    }
    undoTrail();
    return trivial || conflicted;
}

bool Checker::verifyLemma(int id, std::string& error) {
    CClause& c = clauses_[id];
    if (checkRupClause(c.lits)) {
        ++stats_.verifiedLemmas;
        return true;
    }
    if (c.lits.empty() || !c.pivot.valid()) {
        error = "empty lemma is not propagation-derivable";
        return false;
    }
    // Fall back to RAT on the pivot (the lemma's first literal as written).
    const Literal pivot = c.pivot;
    const Literal negPivot = ~pivot;
    std::vector<Literal> resolvent;
    for (std::size_t d = 0; d < clauses_.size(); ++d) {
        CClause& other = clauses_[d];
        if (!other.active ||
            !std::binary_search(other.lits.begin(), other.lits.end(), negPivot)) {
            continue;
        }
        other.marked = true;  // every resolution candidate supports the lemma
        resolvent.clear();
        for (Literal l : c.lits) {
            if (l != pivot) {
                resolvent.push_back(l);
            }
        }
        for (Literal l : other.lits) {
            if (l != negPivot) {
                resolvent.push_back(l);
            }
        }
        std::sort(resolvent.begin(), resolvent.end());
        resolvent.erase(std::unique(resolvent.begin(), resolvent.end()), resolvent.end());
        bool tautology = false;
        for (std::size_t i = 0; i + 1 < resolvent.size(); ++i) {
            if (resolvent[i + 1] == ~resolvent[i]) {
                tautology = true;
                break;
            }
        }
        if (tautology) {
            continue;
        }
        if (!checkRupClause(resolvent)) {
            error = "lemma is neither RUP nor RAT on its first literal";
            return false;
        }
    }
    ++stats_.verifiedLemmas;
    ++stats_.ratLemmas;
    return true;
}

DratCheckResult Checker::run() {
    DratCheckResult result;

    // Size the variable-indexed structures over formula and proof.
    Var maxVar = static_cast<Var>(formula_.numVariables) - 1;
    for (const auto& clause : formula_.clauses) {
        for (Literal l : clause) {
            maxVar = std::max(maxVar, l.var());
        }
    }
    for (const DratStep& step : proof_.steps) {
        for (Literal l : step.literals) {
            maxVar = std::max(maxVar, l.var());
        }
    }
    const std::size_t numVars = static_cast<std::size_t>(maxVar) + 1;
    assigns_.assign(numVars, Value::Undef);
    reasons_.assign(numVars, kNoClause);
    seen_.assign(numVars, 0);
    watches_.assign(2 * numVars, {});

    // Load the formula; a conflict here means UP alone refutes it.
    int conflictSource = kNoClause;
    for (const auto& clause : formula_.clauses) {
        const int id = addClauseRecord(clause, /*isLemma=*/false);
        const int conflict = activateUnderTrail(id);
        if (conflict != kNoClause && conflictSource == kNoClause) {
            conflictSource = conflict;
        }
    }
    if (conflictSource == kNoClause) {
        conflictSource = propagate();
    }

    // Forward pass: replay steps until the active set is UP-inconsistent.
    std::vector<StepAction> actions(proof_.steps.size());
    int conflictAtStep = -1;
    for (std::size_t s = 0; s < proof_.steps.size() && conflictSource == kNoClause; ++s) {
        const DratStep& step = proof_.steps[s];
        ++stats_.proofSteps;
        if (step.isDeletion) {
            std::vector<Literal> sorted(step.literals.begin(), step.literals.end());
            std::sort(sorted.begin(), sorted.end());
            sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
            int target = kNoClause;
            if (const auto it = index_.find(key(sorted)); it != index_.end()) {
                for (const int id : it->second) {
                    if (clauses_[id].active) {
                        target = id;
                        break;
                    }
                }
            }
            if (target == kNoClause) {
                ++stats_.skippedDeletions;
                continue;
            }
            // Never delete the justification of a trail literal (the
            // standard accommodation for solvers that drop reason clauses
            // of root-level implications) — unless an active unit clause
            // can take over as the reason.
            Literal implied = kUndefLiteral;
            for (Literal l : clauses_[target].lits) {
                if (value(l) == Value::True &&
                    reasons_[static_cast<std::size_t>(l.var())] == target) {
                    implied = l;
                    break;
                }
            }
            if (implied.valid()) {
                int substitute = kNoClause;
                for (const int id : units_) {
                    if (id != target && clauses_[id].active && clauses_[id].lits[0] == implied) {
                        substitute = id;
                        break;
                    }
                }
                if (substitute == kNoClause) {
                    ++stats_.skippedDeletions;
                    continue;
                }
                reasons_[static_cast<std::size_t>(implied.var())] = substitute;
            }
            deactivate(target);
            actions[s].deletedClause = target;
            continue;
        }
        const int id = addClauseRecord(step.literals, /*isLemma=*/true);
        actions[s].addedClause = id;
        int conflict = activateUnderTrail(id);
        if (conflict == kNoClause) {
            conflict = propagate();
        }
        if (conflict != kNoClause) {
            conflictSource = conflict;
            conflictAtStep = static_cast<int>(s);
        }
    }

    if (conflictSource == kNoClause) {
        result.error = "proof does not derive a conflict (no empty clause reached)";
        result.stats = stats_;
        return result;
    }

    // An empty clause already present in the input formula is its own proof.
    if (!clauses_[conflictSource].isLemma && clauses_[conflictSource].lits.empty()) {
        clauses_[conflictSource].marked = true;
        stats_.coreClauses = 1;
        // Original clauses are recorded in formula order, so a non-lemma
        // record id doubles as the clause's index into formula_.clauses.
        result.coreClauseIndices.push_back(static_cast<std::size_t>(conflictSource));
        result.verified = true;
        result.stats = stats_;
        return result;
    }

    // The backward phase re-derives everything from scratch per check.
    undoTrail();

    // Terminal check: the empty clause must be RUP against the active set.
    // (This also defeats proofs that merely *assert* "0" without deriving
    // it — the empty clause itself takes no part in propagation.)
    if (!checkRupClause({})) {
        result.error = "terminal conflict is not derivable by unit propagation";
        result.stats = stats_;
        return result;
    }

    // Backward pass.
    for (int s = conflictAtStep; s >= 0; --s) {
        const StepAction action = actions[static_cast<std::size_t>(s)];
        if (action.deletedClause != kNoClause) {
            activateBare(action.deletedClause);
            continue;
        }
        if (action.addedClause == kNoClause) {
            continue;  // a skipped deletion
        }
        const int id = action.addedClause;
        deactivate(id);
        CClause& c = clauses_[id];
        if (c.lits.empty()) {
            continue;  // the terminal empty clause; covered by the check above
        }
        if (!c.marked || c.tautology) {
            ++stats_.skippedLemmas;
            continue;
        }
        std::string error;
        if (!verifyLemma(id, error)) {
            result.error = "proof step " + std::to_string(s + 1) + ": " + error;
            result.stats = stats_;
            return result;
        }
    }

    // Original clauses were added first and in formula order, so a non-lemma
    // record's id is exactly its index into formula_.clauses.
    for (std::size_t id = 0; id < clauses_.size(); ++id) {
        const CClause& c = clauses_[id];
        if (!c.isLemma && c.marked) {
            ++stats_.coreClauses;
            result.coreClauseIndices.push_back(id);
        }
    }
    result.verified = true;
    result.stats = stats_;
    return result;
}

}  // namespace

DratCheckResult checkDrat(const CnfFormula& formula, const DratProof& proof) {
    return Checker(formula, proof).run();
}

}  // namespace etcs::sat
