/// \file dimacs.hpp
/// Reading and writing CNF formulas in DIMACS format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace etcs::sat {

/// A plain CNF formula: a variable count plus clauses of literals.
struct CnfFormula {
    int numVariables = 0;
    std::vector<std::vector<Literal>> clauses;
};

/// Parse a DIMACS CNF stream ("c" comments, "p cnf V C" header, clauses
/// terminated by 0). Throws etcs::InputError on malformed input.
[[nodiscard]] CnfFormula readDimacs(std::istream& in);

/// Write a formula in DIMACS CNF format.
void writeDimacs(std::ostream& out, const CnfFormula& formula);

/// Write a formula to `path`, the single emit path every tool shares (so
/// header variable/clause counts cannot drift between emitters). Flushes
/// and verifies the stream; on failure the partial file is removed and
/// false is returned.
[[nodiscard]] bool writeDimacsFile(const std::string& path, const CnfFormula& formula);

}  // namespace etcs::sat
