#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sat/proof.hpp"

namespace etcs::sat {

namespace {

/// Finite Luby sequence value for index i (1-based): 1,1,2,1,1,2,4,...
double luby(double base, int i) {
    int size = 1;
    int seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::pow(2.0, seq) * base;
}

}  // namespace

// ---------------------------------------------------------------- heap ----

void Solver::VarOrderHeap::insert(Var v) {
    grow(v);
    if (index_[v] >= 0) {
        return;
    }
    index_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    percolateUp(index_[v]);
}

void Solver::VarOrderHeap::increased(Var v) {
    if (contains(v)) {
        percolateUp(index_[v]);
    }
}

Var Solver::VarOrderHeap::removeMax() {
    const Var top = heap_.front();
    heap_.front() = heap_.back();
    index_[heap_.front()] = 0;
    heap_.pop_back();
    index_[top] = -1;
    if (!heap_.empty()) {
        percolateDown(0);
    }
    return top;
}

void Solver::VarOrderHeap::rebuild(const std::vector<Var>& vars) {
    for (Var v : heap_) {
        index_[v] = -1;
    }
    heap_.clear();
    for (Var v : vars) {
        insert(v);
    }
}

void Solver::VarOrderHeap::percolateUp(int pos) {
    const Var v = heap_[pos];
    while (pos > 0) {
        const int parent = (pos - 1) >> 1;
        if (!less(heap_[parent], v)) {
            break;
        }
        heap_[pos] = heap_[parent];
        index_[heap_[pos]] = pos;
        pos = parent;
    }
    heap_[pos] = v;
    index_[v] = pos;
}

void Solver::VarOrderHeap::percolateDown(int pos) {
    const Var v = heap_[pos];
    const int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * pos + 1;
        if (child >= n) {
            break;
        }
        if (child + 1 < n && less(heap_[child], heap_[child + 1])) {
            ++child;
        }
        if (!less(v, heap_[child])) {
            break;
        }
        heap_[pos] = heap_[child];
        index_[heap_[pos]] = pos;
        pos = child;
    }
    heap_[pos] = v;
    index_[v] = pos;
}

// -------------------------------------------------------------- solver ----

Var Solver::addVariable() {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(Value::Undef);
    level_.push_back(0);
    reason_.push_back(kInvalidClause);
    activity_.push_back(0.0);
    polarity_.push_back(options_.defaultPolarity ? 1 : 0);
    seen_.push_back(0);
    watches_.emplace_back();  // positive literal
    watches_.emplace_back();  // negative literal
    order_.insert(v);
    return v;
}

bool Solver::addClause(std::span<const Literal> literals) {
    ETCS_REQUIRE_MSG(decisionLevel() == 0, "clauses may only be added at the root level");
    if (!ok_) {
        return false;
    }

    // Normalize: sort, deduplicate, drop root-false literals, detect
    // tautologies and root-satisfied clauses.
    std::vector<Literal> lits(literals.begin(), literals.end());
    std::sort(lits.begin(), lits.end());
    Literal previous = kUndefLiteral;
    std::size_t out = 0;
    for (Literal l : lits) {
        ETCS_REQUIRE_MSG(l.valid() && l.var() < numVariables(), "literal references unknown variable");
        if (value(l) == Value::True || l == ~previous) {
            return true;  // satisfied at root / tautology
        }
        if (value(l) == Value::False || l == previous) {
            continue;  // falsified at root / duplicate
        }
        lits[out++] = l;
        previous = l;
    }
    lits.resize(out);

    // The normalized clause is propagation-derivable from the input plus
    // the root-level facts, so logging it keeps the proof checkable.
    if (proof_ != nullptr && lits.size() != literals.size()) {
        proof_->addClause(lits);
    }

    if (lits.empty()) {
        ok_ = false;
        return false;
    }
    if (lits.size() == 1) {
        uncheckedEnqueue(lits[0], kInvalidClause);
        ok_ = (propagate() == kInvalidClause);
        if (!ok_ && proof_ != nullptr) {
            proof_->addEmptyClause();
        }
        return ok_;
    }
    const ClauseRef ref = arena_.allocate(lits, /*learnt=*/false);
    clauses_.push_back(ref);
    attachClause(ref);
    return true;
}

void Solver::attachClause(ClauseRef ref) {
    const Clause c = arena_.view(ref);
    watches_[(~c[0]).code()].push_back(Watcher{ref, c[1]});
    watches_[(~c[1]).code()].push_back(Watcher{ref, c[0]});
}

void Solver::detachClause(ClauseRef ref) {
    const Clause c = arena_.view(ref);
    for (Literal w : {~c[0], ~c[1]}) {
        auto& list = watches_[w.code()];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].clause == ref) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

bool Solver::locked(ClauseRef ref) const {
    const Clause c = arena_.view(ref);
    const Literal first = c[0];
    return value(first) == Value::True && reason_[first.var()] == ref &&
           level_[first.var()] > 0;
}

void Solver::uncheckedEnqueue(Literal p, ClauseRef from) {
    assigns_[p.var()] = fromBool(!p.sign());
    level_[p.var()] = decisionLevel();
    reason_[p.var()] = from;
    trail_.push_back(p);
}

ClauseRef Solver::propagate() {
    ClauseRef conflict = kInvalidClause;
    while (propagationHead_ < static_cast<int>(trail_.size())) {
        const Literal p = trail_[propagationHead_++];
        ++stats_.propagations;
        auto& ws = watches_[p.code()];
        std::size_t keep = 0;
        std::size_t i = 0;
        const std::size_t n = ws.size();
        for (; i < n; ++i) {
            const Watcher w = ws[i];
            if (value(w.blocker) == Value::True) {
                ws[keep++] = w;
                continue;
            }
            Clause c = arena_.view(w.clause);
            // Ensure the falsified literal ~p sits at position 1.
            const Literal notP = ~p;
            if (c[0] == notP) {
                c.setLiteral(0, c[1]);
                c.setLiteral(1, notP);
            }
            const Literal first = c[0];
            if (first != w.blocker && value(first) == Value::True) {
                ws[keep++] = Watcher{w.clause, first};
                continue;
            }
            // Look for a replacement watch.
            bool foundWatch = false;
            const std::uint32_t size = c.size();
            for (std::uint32_t k = 2; k < size; ++k) {
                if (value(c[k]) != Value::False) {
                    c.setLiteral(1, c[k]);
                    c.setLiteral(k, notP);
                    watches_[(~c[1]).code()].push_back(Watcher{w.clause, first});
                    foundWatch = true;
                    break;
                }
            }
            if (foundWatch) {
                continue;
            }
            // Clause is unit or conflicting.
            ws[keep++] = Watcher{w.clause, first};
            if (value(first) == Value::False) {
                conflict = w.clause;
                propagationHead_ = static_cast<int>(trail_.size());
                // Copy the remaining watchers back.
                for (std::size_t r = i + 1; r < n; ++r) {
                    ws[keep++] = ws[r];
                }
                break;
            }
            uncheckedEnqueue(first, w.clause);
        }
        ws.resize(keep);
        if (conflict != kInvalidClause) {
            break;
        }
    }
    return conflict;
}

void Solver::cancelUntil(int level) {
    if (decisionLevel() <= level) {
        return;
    }
    for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[level]; --i) {
        const Var v = trail_[i].var();
        assigns_[v] = Value::Undef;
        reason_[v] = kInvalidClause;
        if (options_.phaseSaving) {
            polarity_[v] = trail_[i].sign() ? 1 : 0;
        }
        order_.insert(v);
    }
    trail_.resize(trailLim_[level]);
    trailLim_.resize(level);
    propagationHead_ = static_cast<int>(trail_.size());
}

Literal Solver::pickBranchLiteral() {
    while (!order_.empty()) {
        // Peek via removeMax; skip assigned variables.
        const Var v = order_.removeMax();
        if (value(v) == Value::Undef) {
            return Literal(v, polarity_[v] != 0);
        }
    }
    return kUndefLiteral;
}

void Solver::bumpVariable(Var v) {
    activity_[v] += variableIncrement_;
    if (activity_[v] > 1e100) {
        rescaleVariableActivity();
    }
    order_.increased(v);
}

void Solver::rescaleVariableActivity() {
    for (double& a : activity_) {
        a *= 1e-100;
    }
    variableIncrement_ *= 1e-100;
}

void Solver::bumpClause(Clause c) {
    c.setActivity(static_cast<float>(c.activity() + clauseIncrement_));
    if (c.activity() > 1e20f) {
        rescaleClauseActivity();
    }
}

void Solver::rescaleClauseActivity() {
    for (ClauseRef ref : learnts_) {
        Clause c = arena_.view(ref);
        c.setActivity(c.activity() * 1e-20f);
    }
    clauseIncrement_ *= 1e-20;
}

void Solver::analyze(ClauseRef conflict, std::vector<Literal>& outLearnt,
                     int& outBacktrackLevel) {
    int counter = 0;
    Literal p = kUndefLiteral;
    outLearnt.clear();
    outLearnt.push_back(kUndefLiteral);  // placeholder for the asserting literal
    int index = static_cast<int>(trail_.size()) - 1;

    ClauseRef reasonRef = conflict;
    do {
        Clause c = arena_.view(reasonRef);
        if (c.learnt()) {
            bumpClause(c);
        }
        const std::uint32_t start = (p == kUndefLiteral) ? 0 : 1;
        for (std::uint32_t j = start; j < c.size(); ++j) {
            const Literal q = c[j];
            const Var v = q.var();
            if (seen_[v] == 0 && level_[v] > 0) {
                bumpVariable(v);
                seen_[v] = 1;
                if (level_[v] >= decisionLevel()) {
                    ++counter;
                } else {
                    outLearnt.push_back(q);
                }
            }
        }
        // Select the next literal on the current level to resolve on.
        while (seen_[trail_[index--].var()] == 0) {
        }
        p = trail_[index + 1];
        reasonRef = reason_[p.var()];
        seen_[p.var()] = 0;
        --counter;
    } while (counter > 0);
    outLearnt[0] = ~p;

    // Conflict-clause minimization: drop literals implied by the rest.
    analyzeToClear_.assign(outLearnt.begin(), outLearnt.end());
    std::size_t kept = 1;
    if (options_.minimizeLearned) {
        std::uint32_t abstractLevels = 0;
        for (std::size_t i = 1; i < outLearnt.size(); ++i) {
            abstractLevels |= abstractLevel(outLearnt[i].var());
        }
        for (std::size_t i = 1; i < outLearnt.size(); ++i) {
            const Literal q = outLearnt[i];
            if (reason_[q.var()] == kInvalidClause || !literalRedundant(q, abstractLevels)) {
                outLearnt[kept++] = q;
            } else {
                ++stats_.minimizedLiterals;
            }
        }
    } else {
        kept = outLearnt.size();
    }
    outLearnt.resize(kept);

    // Find the backtrack level: the highest level among the non-asserting
    // literals, which must be placed at position 1 (second watch).
    if (outLearnt.size() == 1) {
        outBacktrackLevel = 0;
    } else {
        std::size_t maxIndex = 1;
        for (std::size_t i = 2; i < outLearnt.size(); ++i) {
            if (level_[outLearnt[i].var()] > level_[outLearnt[maxIndex].var()]) {
                maxIndex = i;
            }
        }
        std::swap(outLearnt[1], outLearnt[maxIndex]);
        outBacktrackLevel = level_[outLearnt[1].var()];
    }

    for (Literal l : analyzeToClear_) {
        if (l.valid()) {
            seen_[l.var()] = 0;
        }
    }
    stats_.learnedLiterals += outLearnt.size();
}

bool Solver::literalRedundant(Literal p, std::uint32_t abstractLevels) {
    analyzeStack_.clear();
    analyzeStack_.push_back(p);
    const std::size_t clearTop = analyzeToClear_.size();
    while (!analyzeStack_.empty()) {
        const Literal q = analyzeStack_.back();
        analyzeStack_.pop_back();
        const ClauseRef reasonRef = reason_[q.var()];
        // Redundancy candidates always have a reason clause.
        const Clause c = arena_.view(reasonRef);
        for (std::uint32_t j = 1; j < c.size(); ++j) {
            const Literal r = c[j];
            const Var v = r.var();
            if (seen_[v] != 0 || level_[v] == 0) {
                continue;
            }
            if (reason_[v] == kInvalidClause || (abstractLevel(v) & abstractLevels) == 0) {
                // Reached a decision or a level outside the learnt clause:
                // p is not redundant. Undo the marks made in this walk.
                for (std::size_t k = clearTop; k < analyzeToClear_.size(); ++k) {
                    seen_[analyzeToClear_[k].var()] = 0;
                }
                analyzeToClear_.resize(clearTop);
                return false;
            }
            seen_[v] = 1;
            analyzeStack_.push_back(r);
            analyzeToClear_.push_back(r);
        }
    }
    return true;
}

void Solver::analyzeFinal(Literal failedAssumption) {
    conflictCore_.clear();
    conflictCore_.push_back(failedAssumption);
    if (decisionLevel() == 0) {
        return;
    }
    const Var failedVar = failedAssumption.var();
    seen_[failedVar] = 1;
    for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[0]; --i) {
        const Var v = trail_[i].var();
        if (seen_[v] == 0) {
            continue;
        }
        if (reason_[v] == kInvalidClause) {
            // A decision inside the assumption prefix is an assumption. Note
            // that this can be ~failedAssumption itself when the assumption
            // set contains a complementary pair.
            conflictCore_.push_back(trail_[i]);
        } else {
            const Clause c = arena_.view(reason_[v]);
            for (std::uint32_t j = 1; j < c.size(); ++j) {
                if (level_[c[j].var()] > 0) {
                    seen_[c[j].var()] = 1;
                }
            }
        }
        seen_[v] = 0;
    }
    seen_[failedVar] = 0;
}

void Solver::reduceLearnedDb() {
    // Keep binary and high-activity clauses; drop the low-activity half.
    std::sort(learnts_.begin(), learnts_.end(), [this](ClauseRef a, ClauseRef b) {
        const Clause ca = arena_.view(a);
        const Clause cb = arena_.view(b);
        if ((ca.size() > 2) != (cb.size() > 2)) {
            return ca.size() > 2;  // long clauses first (removal candidates)
        }
        return ca.activity() < cb.activity();
    });
    const double threshold = clauseIncrement_ / std::max<std::size_t>(learnts_.size(), 1);
    std::size_t kept = 0;
    std::vector<Literal> scratch;
    for (std::size_t i = 0; i < learnts_.size(); ++i) {
        const ClauseRef ref = learnts_[i];
        const Clause c = arena_.view(ref);
        const bool removable = c.size() > 2 && !locked(ref) &&
                               (i < learnts_.size() / 2 || c.activity() < threshold);
        if (removable) {
            if (proof_ != nullptr) {
                // A clause justifying a root-level implication must leave
                // that fact derivable: emit the unit before deleting.
                const Literal first = c[0];
                if (value(first) == Value::True && level_[first.var()] == 0 &&
                    reason_[first.var()] == ref) {
                    proof_->addClause({first});
                    reason_[first.var()] = kInvalidClause;
                }
                scratch.clear();
                for (std::uint32_t j = 0; j < c.size(); ++j) {
                    scratch.push_back(c[j]);
                }
                proof_->deleteClause(scratch);
            }
            detachClause(ref);
            arena_.markFreed(ref);
            ++stats_.removedClauses;
        } else {
            learnts_[kept++] = ref;
        }
    }
    learnts_.resize(kept);
}

void Solver::compactClauseDatabase() {
    ++stats_.garbageCollections;
    ClauseArena fresh;
    std::unordered_map<ClauseRef, ClauseRef> relocated;
    std::vector<Literal> scratch;
    auto move = [&](ClauseRef& ref) {
        const auto it = relocated.find(ref);
        if (it != relocated.end()) {
            ref = it->second;
            return;
        }
        const Clause c = arena_.view(ref);
        scratch.clear();
        for (std::uint32_t i = 0; i < c.size(); ++i) {
            scratch.push_back(c[i]);
        }
        const ClauseRef moved = fresh.allocate(scratch, c.learnt());
        if (c.learnt()) {
            fresh.view(moved).setActivity(c.activity());
        }
        relocated.emplace(ref, moved);
        ref = moved;
    };

    for (ClauseRef& ref : clauses_) {
        move(ref);
    }
    for (ClauseRef& ref : learnts_) {
        move(ref);
    }
    // Watch lists only reference attached (live) clauses.
    for (auto& watchers : watches_) {
        for (Watcher& w : watchers) {
            move(w.clause);
        }
    }
    // Reasons of assignments above level 0 are locked (live). Root-level
    // implications never have their reasons inspected again, so drop them
    // rather than keeping possibly-freed clauses alive.
    for (Var v = 0; v < numVariables(); ++v) {
        if (assigns_[v] == Value::Undef || reason_[v] == kInvalidClause) {
            continue;
        }
        if (level_[v] == 0) {
            reason_[v] = kInvalidClause;
        } else {
            move(reason_[v]);
        }
    }
    arena_ = std::move(fresh);
}

void Solver::diversify(std::uint64_t seed, bool randomizePhases) {
    ETCS_REQUIRE_MSG(decisionLevel() == 0, "diversify only at the root level");
    // SplitMix64: cheap, deterministic, good bit diffusion for tiny streams.
    const auto next = [&seed]() {
        seed += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = seed;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    std::vector<Var> vars;
    vars.reserve(assigns_.size());
    for (Var v = 0; v < numVariables(); ++v) {
        // Activities stay far below the bump increment, so the noise only
        // breaks ties until real conflicts take over.
        activity_[v] = static_cast<double>(next() % 1024) * 1e-9;
        if (randomizePhases) {
            polarity_[v] = (next() & 1) != 0 ? 1 : 0;
        }
        vars.push_back(v);
    }
    order_.rebuild(vars);
}

void Solver::exportLearntClause(const std::vector<Literal>& learnt) {
    if (learnt.size() > static_cast<std::size_t>(options_.shareMaxSize)) {
        return;
    }
    // Exact LBD: the number of distinct decision levels in the clause,
    // computed before backtracking while level_ is still valid. Clauses are
    // short (<= shareMaxSize), so the quadratic distinct-count is cheap.
    int lbd = 0;
    for (std::size_t i = 0; i < learnt.size(); ++i) {
        const int level = level_[learnt[i].var()];
        bool fresh = true;
        for (std::size_t j = 0; j < i; ++j) {
            if (level_[learnt[j].var()] == level) {
                fresh = false;
                break;
            }
        }
        if (fresh) {
            ++lbd;
        }
    }
    if (options_.shareMaxLbd > 0 && lbd > options_.shareMaxLbd) {
        return;
    }
    ++stats_.exportedClauses;
    options_.onLearntExport(learnt, lbd);
}

void Solver::importSharedClauses() {
    importBuffer_.clear();
    options_.onImport(importBuffer_);
    for (const auto& clause : importBuffer_) {
        if (!ok_) {
            return;
        }
        importOneClause(clause);
    }
}

void Solver::importOneClause(std::span<const Literal> literals) {
    // Same normalization as addClause, but the clause is attached as a
    // learnt clause: it is implied by the problem clauses (every CDCL learnt
    // clause is a resolvent), so it may be dropped again by DB reduction
    // without affecting soundness.
    std::vector<Literal> lits(literals.begin(), literals.end());
    std::sort(lits.begin(), lits.end());
    Literal previous = kUndefLiteral;
    std::size_t out = 0;
    for (Literal l : lits) {
        if (!l.valid() || l.var() >= numVariables()) {
            return;  // foreign clause references a variable we do not have yet
        }
        if (value(l) == Value::True || l == ~previous) {
            return;  // satisfied at root / tautology
        }
        if (value(l) == Value::False || l == previous) {
            continue;  // falsified at root / duplicate
        }
        lits[out++] = l;
        previous = l;
    }
    lits.resize(out);
    ++stats_.importedClauses;
    // Imported clauses are not re-derivable by the importer's own proof, so
    // they are only logged when a writer is attached anyway (the portfolio
    // disables sharing under proof logging; see docs/PARALLEL.md).
    if (proof_ != nullptr) {
        proof_->addClause(lits);
    }
    if (lits.empty()) {
        ok_ = false;
        return;
    }
    if (lits.size() == 1) {
        uncheckedEnqueue(lits[0], kInvalidClause);
        ok_ = (propagate() == kInvalidClause);
        if (!ok_ && proof_ != nullptr) {
            proof_->addEmptyClause();
        }
        return;
    }
    const ClauseRef ref = arena_.allocate(lits, /*learnt=*/true);
    learnts_.push_back(ref);
    attachClause(ref);
    bumpClause(arena_.view(ref));
}

SolveStatus Solver::search(std::int64_t conflictBudget) {
    std::int64_t conflictsThisRestart = 0;
    std::vector<Literal> learntClause;
    while (true) {
        const ClauseRef conflict = propagate();
        if (conflict != kInvalidClause) {
            ++stats_.conflicts;
            ++conflictsThisRestart;
            if (options_.onProgress && stats_.conflicts >= nextProgressAt_) {
                nextProgressAt_ = stats_.conflicts + std::max<std::uint64_t>(
                                                         options_.progressInterval, 1);
                const SolverProgress progress{stats_.conflicts, stats_.decisions,
                                              stats_.propagations, stats_.restarts,
                                              learnts_.size()};
                if (!options_.onProgress(progress)) {
                    cancelled_ = true;
                    cancelUntil(0);
                    return SolveStatus::Unknown;
                }
            }
            if (decisionLevel() == 0) {
                ok_ = false;
                if (proof_ != nullptr) {
                    proof_->addEmptyClause();
                }
                return SolveStatus::Unsat;
            }
            int backtrackLevel = 0;
            analyze(conflict, learntClause, backtrackLevel);
            if (proof_ != nullptr) {
                proof_->addClause(learntClause);
            }
            if (options_.onLearntExport && options_.shareMaxSize > 0) {
                exportLearntClause(learntClause);
            }
            cancelUntil(backtrackLevel);
            if (learntClause.size() == 1) {
                uncheckedEnqueue(learntClause[0], kInvalidClause);
            } else {
                const ClauseRef ref = arena_.allocate(learntClause, /*learnt=*/true);
                learnts_.push_back(ref);
                attachClause(ref);
                bumpClause(arena_.view(ref));
                uncheckedEnqueue(learntClause[0], ref);
                stats_.peakLearnts = std::max<std::uint64_t>(stats_.peakLearnts,
                                                             learnts_.size());
            }
            ++stats_.learnedClauses;
            decayVariableActivity();
            decayClauseActivity();
            if (options_.conflictLimit >= 0 &&
                stats_.conflicts >= static_cast<std::uint64_t>(options_.conflictLimit)) {
                cancelUntil(0);
                return SolveStatus::Unknown;
            }
            continue;
        }

        if (options_.useRestarts && conflictBudget >= 0 && conflictsThisRestart >= conflictBudget) {
            cancelUntil(0);
            ++stats_.restarts;
            return SolveStatus::Unknown;  // restart
        }
        if (static_cast<double>(learnts_.size()) - static_cast<double>(trail_.size()) >=
            maxLearnts_) {
            reduceLearnedDb();
            maxLearnts_ *= options_.learntSizeIncrement;
            if (arena_.wastedWords() * 3 > arena_.totalWords()) {
                compactClauseDatabase();
            }
        }

        // Assumption decisions come first, in order.
        Literal next = kUndefLiteral;
        while (decisionLevel() < static_cast<int>(assumptions_.size())) {
            const Literal p = assumptions_[decisionLevel()];
            if (value(p) == Value::True) {
                newDecisionLevel();  // already implied; keep levels aligned
            } else if (value(p) == Value::False) {
                analyzeFinal(p);
                return SolveStatus::Unsat;
            } else {
                next = p;
                break;
            }
        }
        if (next == kUndefLiteral) {
            next = pickBranchLiteral();
            if (next == kUndefLiteral) {
                storeModel();
                return SolveStatus::Sat;
            }
            ++stats_.decisions;
        }
        newDecisionLevel();
        stats_.maxDecisionLevel =
            std::max<std::uint64_t>(stats_.maxDecisionLevel, decisionLevel());
        uncheckedEnqueue(next, kInvalidClause);
    }
}

SolveStatus Solver::solve(std::span<const Literal> assumptions) {
    conflictCore_.clear();
    if (!ok_) {
        return SolveStatus::Unsat;
    }
    cancelled_ = false;
    nextProgressAt_ =
        stats_.conflicts + std::max<std::uint64_t>(options_.progressInterval, 1);
    assumptions_.assign(assumptions.begin(), assumptions.end());
    for (Literal l : assumptions_) {
        ETCS_REQUIRE_MSG(l.valid() && l.var() < numVariables(),
                         "assumption references unknown variable");
    }
    if (maxLearnts_ <= 0.0) {
        maxLearnts_ = std::max(options_.learntSizeFloor,
                               static_cast<double>(clauses_.size()) * options_.learntSizeFactor);
    }

    SolveStatus status = SolveStatus::Unknown;
    for (int restart = 0; status == SolveStatus::Unknown; ++restart) {
        // Foreign clauses enter only here, at the root level: before the
        // first descent and at every restart boundary.
        if (options_.onImport) {
            importSharedClauses();
            if (!ok_) {
                cancelUntil(0);
                return SolveStatus::Unsat;
            }
        }
        const std::int64_t budget =
            options_.useRestarts
                ? static_cast<std::int64_t>(luby(options_.restartBase, restart))
                : -1;
        status = search(budget);
        if (cancelled_) {
            break;  // progress callback requested cancellation
        }
        if (options_.conflictLimit >= 0 &&
            stats_.conflicts >= static_cast<std::uint64_t>(options_.conflictLimit) &&
            status == SolveStatus::Unknown) {
            break;
        }
    }
    cancelUntil(0);
    return status;
}

void Solver::storeModel() {
    model_.resize(assigns_.size());
    for (std::size_t v = 0; v < assigns_.size(); ++v) {
        // Unassigned variables (none reachable from any clause) default to false.
        model_[v] = assigns_[v] == Value::Undef ? Value::False : assigns_[v];
    }
}

Value Solver::modelValue(Var v) const {
    ETCS_REQUIRE_MSG(v >= 0 && static_cast<std::size_t>(v) < model_.size(),
                     "no model available for this variable");
    return model_[v];
}

Value Solver::modelValue(Literal l) const {
    const Value v = modelValue(l.var());
    return l.sign() ? negate(v) : v;
}

}  // namespace etcs::sat
