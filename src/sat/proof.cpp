#include "sat/proof.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace etcs::sat {

namespace {

/// DIMACS integer of a literal (variable numbering starts at 1).
long long dimacsLiteral(Literal l) {
    const long long magnitude = static_cast<long long>(l.var()) + 1;
    return l.sign() ? -magnitude : magnitude;
}

Literal fromDimacs(long long value) {
    return Literal(static_cast<Var>(std::abs(value)) - 1, value < 0);
}

/// Binary-DRAT unsigned mapping: lit > 0 -> 2*lit, lit < 0 -> 2*|lit|+1.
std::uint64_t binaryCode(Literal l) {
    const std::uint64_t magnitude = static_cast<std::uint64_t>(l.var()) + 1;
    return 2 * magnitude + (l.sign() ? 1 : 0);
}

void writeVarint(std::ostream& out, std::uint64_t value) {
    while (value >= 0x80) {
        out.put(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    out.put(static_cast<char>(value));
}

}  // namespace

void TextDratWriter::writeStep(bool isDeletion, std::span<const Literal> literals) {
    if (isDeletion) {
        *out_ << "d ";
    }
    for (Literal l : literals) {
        *out_ << dimacsLiteral(l) << ' ';
    }
    *out_ << "0\n";
}

void TextDratWriter::flush() { out_->flush(); }

void BinaryDratWriter::writeStep(bool isDeletion, std::span<const Literal> literals) {
    out_->put(isDeletion ? 'd' : 'a');
    for (Literal l : literals) {
        writeVarint(*out_, binaryCode(l));
    }
    out_->put('\0');
}

void BinaryDratWriter::flush() { out_->flush(); }

DratProof readDratText(std::istream& in) {
    DratProof proof;
    DratStep current;
    bool inStep = false;
    std::string token;
    while (in >> token) {
        if (token == "c") {
            // Comment: skip to end of line.
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        if (token == "d") {
            if (inStep) {
                throw InputError("DRAT 'd' marker inside a clause");
            }
            current.isDeletion = true;
            inStep = true;
            continue;
        }
        long long value = 0;
        try {
            std::size_t consumed = 0;
            value = std::stoll(token, &consumed);
            if (consumed != token.size()) {
                throw InputError("malformed DRAT literal: " + token);
            }
        } catch (const std::logic_error&) {
            throw InputError("malformed DRAT literal: " + token);
        }
        if (value == 0) {
            proof.steps.push_back(std::move(current));
            current = DratStep{};
            inStep = false;
            continue;
        }
        current.literals.push_back(fromDimacs(value));
        inStep = true;
    }
    if (inStep) {
        throw InputError("DRAT input ends inside a step (missing trailing 0)");
    }
    return proof;
}

DratProof readDratBinary(std::istream& in) {
    DratProof proof;
    int tag = 0;
    while ((tag = in.get()) != std::istream::traits_type::eof()) {
        DratStep step;
        if (tag == 'd') {
            step.isDeletion = true;
        } else if (tag != 'a') {
            throw InputError("binary DRAT step must start with 'a' or 'd'");
        }
        while (true) {
            std::uint64_t value = 0;
            int shift = 0;
            int byte = 0;
            do {
                byte = in.get();
                if (byte == std::istream::traits_type::eof()) {
                    throw InputError("binary DRAT input ends inside a step");
                }
                if (shift >= 63) {
                    throw InputError("binary DRAT literal overflows");
                }
                value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
                shift += 7;
            } while ((byte & 0x80) != 0);
            if (value == 0) {
                break;
            }
            if (value < 2) {
                throw InputError("binary DRAT literal code out of range");
            }
            step.literals.push_back(
                Literal(static_cast<Var>(value / 2) - 1, (value & 1) != 0));
        }
        proof.steps.push_back(std::move(step));
    }
    return proof;
}

DratProof readDrat(std::istream& in) {
    // Sniff: text DRAT uses only digits, signs, 'd', 'c' comments, and
    // whitespace. A binary proof almost always contains something else in
    // its first few bytes ('a' tags, high bytes, or NUL terminators).
    std::string prefix;
    for (int i = 0; i < 256; ++i) {
        const int byte = in.get();
        if (byte == std::istream::traits_type::eof()) {
            break;
        }
        prefix.push_back(static_cast<char>(byte));
    }
    bool looksText = true;
    bool commented = false;
    for (char c : prefix) {
        if (c == '\n') {
            commented = false;
            continue;
        }
        if (commented) {
            continue;  // anything goes inside a comment line
        }
        if (c == 'c') {
            commented = true;
            continue;
        }
        const bool textByte = (std::isdigit(static_cast<unsigned char>(c)) != 0) ||
                              c == '-' || c == 'd' || c == ' ' || c == '\t' || c == '\r';
        if (!textByte) {
            looksText = false;
            break;
        }
    }
    // Re-assemble the full stream from the sniffed prefix plus the rest.
    std::string contents = prefix;
    contents.append(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    std::istringstream whole(contents);
    return looksText ? readDratText(whole) : readDratBinary(whole);
}

void writeDrat(ProofWriter& writer, const DratProof& proof) {
    for (const DratStep& step : proof.steps) {
        if (step.isDeletion) {
            writer.deleteClause(step.literals);
        } else {
            writer.addClause(step.literals);
        }
    }
    writer.flush();
}

}  // namespace etcs::sat
