#include "sat/dimacs.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace etcs::sat {

CnfFormula readDimacs(std::istream& in) {
    CnfFormula formula;
    bool sawHeader = false;
    std::size_t declaredClauses = 0;
    std::vector<Literal> current;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c') {
            continue;
        }
        std::istringstream ls(line);
        if (line[0] == 'p') {
            std::string p;
            std::string fmt;
            std::size_t vars = 0;
            if (!(ls >> p >> fmt >> vars >> declaredClauses) || fmt != "cnf") {
                throw InputError("malformed DIMACS header: " + line);
            }
            formula.numVariables = static_cast<int>(vars);
            sawHeader = true;
            continue;
        }
        if (!sawHeader) {
            throw InputError("DIMACS clause before 'p cnf' header");
        }
        long long value = 0;
        while (true) {
            if (!(ls >> value)) {
                if (!ls.eof()) {
                    throw InputError("non-numeric token in DIMACS clause line: " + line);
                }
                break;
            }
            if (value == 0) {
                formula.clauses.push_back(current);
                current.clear();
                continue;
            }
            const Var v = static_cast<Var>(std::abs(value)) - 1;
            if (v >= formula.numVariables) {
                throw InputError("DIMACS literal exceeds declared variable count: " +
                                 std::to_string(value));
            }
            current.push_back(Literal(v, value < 0));
        }
    }
    if (!sawHeader) {
        throw InputError("missing DIMACS 'p cnf' header");
    }
    if (!current.empty()) {
        throw InputError("DIMACS input ends inside a clause (missing trailing 0)");
    }
    if (declaredClauses != formula.clauses.size()) {
        throw InputError("DIMACS clause count mismatch: declared " +
                         std::to_string(declaredClauses) + ", found " +
                         std::to_string(formula.clauses.size()));
    }
    return formula;
}

void writeDimacs(std::ostream& out, const CnfFormula& formula) {
    out << "p cnf " << formula.numVariables << ' ' << formula.clauses.size() << '\n';
    for (const auto& clause : formula.clauses) {
        for (Literal l : clause) {
            out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
        }
        out << "0\n";
    }
}

bool writeDimacsFile(const std::string& path, const CnfFormula& formula) {
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    writeDimacs(out, formula);
    out.flush();
    if (!out) {
        out.close();
        std::remove(path.c_str());  // never leave a truncated instance behind
        return false;
    }
    return true;
}

}  // namespace etcs::sat
