/// \file clause.hpp
/// Arena-allocated clause storage.
///
/// Clauses live in one contiguous std::uint32_t arena and are addressed by
/// ClauseRef offsets, which keeps watcher lists compact and makes garbage
/// collection a linear copy.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "util/error.hpp"

namespace etcs::sat {

/// Offset of a clause inside the ClauseArena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kInvalidClause = 0xFFFFFFFFu;

/// A non-owning view of a clause stored in a ClauseArena.
///
/// Layout in the arena:
///   word 0: (size << 1) | learnt
///   word 1: activity as float bits (learnt clauses only)
///   word 2...: literal codes
class Clause {
public:
    Clause(std::uint32_t* base) noexcept : base_(base) {}

    [[nodiscard]] std::uint32_t size() const noexcept { return base_[0] >> 1; }
    [[nodiscard]] bool learnt() const noexcept { return (base_[0] & 1) != 0; }

    [[nodiscard]] Literal operator[](std::uint32_t i) const noexcept {
        return Literal::fromCode(static_cast<std::int32_t>(lits()[i]));
    }
    void setLiteral(std::uint32_t i, Literal l) noexcept {
        lits()[i] = static_cast<std::uint32_t>(l.code());
    }

    /// Drop the literal at position i by swapping in the last literal.
    void removeLiteral(std::uint32_t i) noexcept {
        lits()[i] = lits()[size() - 1];
        base_[0] -= 2;  // size -= 1, learnt flag preserved
    }

    [[nodiscard]] float activity() const noexcept {
        return std::bit_cast<float>(base_[1]);
    }
    void setActivity(float a) noexcept { base_[1] = std::bit_cast<std::uint32_t>(a); }

    /// Words needed to store a clause of `size` literals.
    [[nodiscard]] static std::uint32_t words(std::uint32_t size, bool learnt) noexcept {
        return 1 + (learnt ? 1 : 0) + size;
    }

private:
    [[nodiscard]] std::uint32_t* lits() const noexcept { return base_ + 1 + (learnt() ? 1 : 0); }

    std::uint32_t* base_;
};

/// Bump allocator for clauses with mark-and-copy garbage collection support.
class ClauseArena {
public:
    /// Allocate a clause; returns its reference.
    ClauseRef allocate(std::span<const Literal> lits, bool learnt) {
        ETCS_REQUIRE(lits.size() >= 2);
        const auto need = Clause::words(static_cast<std::uint32_t>(lits.size()), learnt);
        const ClauseRef ref = static_cast<ClauseRef>(storage_.size());
        storage_.resize(storage_.size() + need);
        std::uint32_t* base = storage_.data() + ref;
        base[0] = (static_cast<std::uint32_t>(lits.size()) << 1) | (learnt ? 1u : 0u);
        std::uint32_t* out = base + 1;
        if (learnt) {
            *out++ = std::bit_cast<std::uint32_t>(0.0f);
        }
        for (Literal l : lits) {
            *out++ = static_cast<std::uint32_t>(l.code());
        }
        ++liveClauses_;
        return ref;
    }

    [[nodiscard]] Clause view(ClauseRef ref) noexcept { return Clause(storage_.data() + ref); }
    [[nodiscard]] Clause view(ClauseRef ref) const noexcept {
        // Clause only mutates through non-const methods; this const overload
        // is used for read-only inspection.
        return Clause(const_cast<std::uint32_t*>(storage_.data() + ref));
    }

    void markFreed(ClauseRef ref) noexcept {
        wasted_ += Clause::words(view(ref).size(), view(ref).learnt());
        --liveClauses_;
    }

    [[nodiscard]] std::size_t wastedWords() const noexcept { return wasted_; }
    [[nodiscard]] std::size_t totalWords() const noexcept { return storage_.size(); }
    [[nodiscard]] std::size_t liveClauses() const noexcept { return liveClauses_; }

private:
    std::vector<std::uint32_t> storage_;
    std::size_t wasted_ = 0;
    std::size_t liveClauses_ = 0;
};

}  // namespace etcs::sat
