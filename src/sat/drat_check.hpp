/// \file drat_check.hpp
/// An independent backward RUP/RAT checker for DRAT proofs.
///
/// Given a CNF formula and a DRAT proof (see proof.hpp), the checker
/// certifies that the proof derives the empty clause — i.e. that the
/// formula is unsatisfiable. It is implemented from first principles,
/// deliberately sharing no propagation or clause-storage code with the
/// solver it audits.
///
/// Algorithm (the drat-trim scheme):
///  1. Forward pass: replay the proof, maintaining the active clause set
///     and a persistent unit-propagation trail, until a conflict (or an
///     explicit empty clause) is reached. Steps after that point are
///     ignored.
///  2. The clauses involved in the terminal conflict are marked.
///  3. Backward pass: walk the proof in reverse, deactivating each lemma
///     before its check so it cannot justify itself. Every *marked* lemma
///     must have the RUP property (unit propagation on its negation
///     yields a conflict) or, failing that, the RAT property on its first
///     literal. The clauses each check uses are marked in turn; unmarked
///     lemmas are skipped — the backward-checking optimization.
///
/// Deletions of clauses that currently justify a trail literal are skipped
/// (the standard drat-trim accommodation for MiniSat-style solvers); the
/// skip count is reported in the stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/proof.hpp"

namespace etcs::sat {

struct DratCheckStats {
    std::size_t proofSteps = 0;       ///< steps inspected (through the conflict)
    std::size_t verifiedLemmas = 0;   ///< additions proven RUP or RAT
    std::size_t ratLemmas = 0;        ///< of those, lemmas needing a RAT check
    std::size_t skippedLemmas = 0;    ///< unmarked additions (backward-skipped)
    std::size_t skippedDeletions = 0; ///< deletions ignored (reason/unmatched)
    std::size_t coreClauses = 0;      ///< original clauses in the unsat core
};

struct DratCheckResult {
    bool verified = false;
    std::string error;  ///< human-readable reason when !verified
    DratCheckStats stats;
    /// Indices into `formula.clauses` of the original clauses the certified
    /// refutation depends on (the extracted UNSAT core), in increasing
    /// order. Empty unless verified. stats.coreClauses == size(). Consumers
    /// map these back to domain entities via core::ProvenanceTable.
    std::vector<std::size_t> coreClauseIndices;
};

/// Check that `proof` certifies the unsatisfiability of `formula`.
/// Never throws on invalid proofs — failures are reported in the result.
[[nodiscard]] DratCheckResult checkDrat(const CnfFormula& formula, const DratProof& proof);

}  // namespace etcs::sat
