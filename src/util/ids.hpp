/// \file ids.hpp
/// Strongly typed index identifiers.
///
/// Raw integer indices invite mixing up, say, a node index with a segment
/// index.  Id<Tag> is a zero-overhead wrapper that makes each index space a
/// distinct type while still being usable as a vector index via get().
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace etcs {

/// A strongly typed integer identifier. Tag is an empty struct naming the
/// index space. Default-constructed ids are invalid.
template <typename Tag>
class Id {
public:
    using underlying_type = std::uint32_t;
    static constexpr underlying_type kInvalid = std::numeric_limits<underlying_type>::max();

    constexpr Id() noexcept = default;
    constexpr explicit Id(underlying_type value) noexcept : value_(value) {}
    constexpr explicit Id(std::size_t value) noexcept
        : value_(static_cast<underlying_type>(value)) {}

    [[nodiscard]] constexpr underlying_type get() const noexcept { return value_; }
    [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

    friend constexpr auto operator<=>(Id, Id) noexcept = default;

    /// Advance to the next id in the index space (useful for iteration).
    constexpr Id& operator++() noexcept {
        ++value_;
        return *this;
    }

private:
    underlying_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
    if (id.valid()) {
        return os << id.get();
    }
    return os << "<invalid>";
}

// Index spaces used across the library.
struct NodeTag {};
struct TrackTag {};
struct TtdTag {};
struct StationTag {};
struct SegmentTag {};
struct SegNodeTag {};
struct TrainTag {};

/// A connection point in the physical network (endpoint, switch, joint).
using NodeId = Id<NodeTag>;
/// A physical track between two nodes.
using TrackId = Id<TrackTag>;
/// A trackside-train-detection section (a set of tracks).
using TtdId = Id<TtdTag>;
/// A named station position on a track.
using StationId = Id<StationTag>;
/// A segment (edge) of the discretized graph; the paper's e in E.
using SegmentId = Id<SegmentTag>;
/// A node of the discretized graph; the paper's v in V (candidate VSS border).
using SegNodeId = Id<SegNodeTag>;
/// A train.
using TrainId = Id<TrainTag>;

}  // namespace etcs

template <typename Tag>
struct std::hash<etcs::Id<Tag>> {
    std::size_t operator()(etcs::Id<Tag> id) const noexcept {
        return std::hash<typename etcs::Id<Tag>::underlying_type>{}(id.get());
    }
};
