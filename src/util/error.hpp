/// \file error.hpp
/// Error types and precondition checking for the etcs-vss library.
///
/// All recoverable failures are reported as exceptions derived from
/// etcs::Error.  Precondition violations (programming errors at API
/// boundaries) use ETCS_REQUIRE which throws etcs::PreconditionError with the
/// violated condition and its source location.
#pragma once

#include <stdexcept>
#include <string>

namespace etcs {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
public:
    using Error::Error;
};

/// Input data (network/schedule files, malformed models, ...) is invalid.
class InputError : public Error {
public:
    using Error::Error;
};

namespace detail {
[[noreturn]] inline void throwPrecondition(const char* condition, const char* file, int line,
                                           const std::string& message) {
    std::string what = std::string("precondition failed: ") + condition + " at " + file + ":" +
                       std::to_string(line);
    if (!message.empty()) {
        what += " (" + message + ")";
    }
    throw PreconditionError(what);
}
}  // namespace detail

}  // namespace etcs

/// Check a precondition; throws etcs::PreconditionError when violated.
#define ETCS_REQUIRE(cond)                                                        \
    do {                                                                          \
        if (!(cond)) {                                                            \
            ::etcs::detail::throwPrecondition(#cond, __FILE__, __LINE__, "");     \
        }                                                                         \
    } while (false)

/// Check a precondition with an explanatory message.
#define ETCS_REQUIRE_MSG(cond, msg)                                               \
    do {                                                                          \
        if (!(cond)) {                                                            \
            ::etcs::detail::throwPrecondition(#cond, __FILE__, __LINE__, (msg));  \
        }                                                                         \
    } while (false)
