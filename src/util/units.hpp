/// \file units.hpp
/// Physical quantities with exact integer arithmetic.
///
/// The encoding discretizes space by a spatial resolution r_s and time by a
/// temporal resolution r_t (paper Sec. III-A).  To keep discretization exact
/// and reproducible we store lengths in metres, durations in seconds and
/// speeds in metres per hour, all as 64-bit integers, and provide the two
/// roundings the paper uses:
///   * train length  -> ceil(l / r_s) segments,
///   * travel per step -> floor(s * r_t / r_s) segments.
#pragma once

#include <cstdint>
#include <compare>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace etcs {

/// A length in whole metres.
class Meters {
public:
    constexpr Meters() noexcept = default;
    constexpr explicit Meters(std::int64_t metres) noexcept : metres_(metres) {}

    [[nodiscard]] static constexpr Meters fromKilometers(double km) noexcept {
        return Meters(static_cast<std::int64_t>(km * 1000.0 + 0.5));
    }

    [[nodiscard]] constexpr std::int64_t count() const noexcept { return metres_; }
    [[nodiscard]] constexpr double kilometers() const noexcept {
        return static_cast<double>(metres_) / 1000.0;
    }

    friend constexpr auto operator<=>(Meters, Meters) noexcept = default;
    friend constexpr Meters operator+(Meters a, Meters b) noexcept {
        return Meters(a.metres_ + b.metres_);
    }
    friend constexpr Meters operator-(Meters a, Meters b) noexcept {
        return Meters(a.metres_ - b.metres_);
    }

private:
    std::int64_t metres_ = 0;
};

/// A duration in whole seconds.
class Seconds {
public:
    constexpr Seconds() noexcept = default;
    constexpr explicit Seconds(std::int64_t seconds) noexcept : seconds_(seconds) {}

    [[nodiscard]] static constexpr Seconds fromMinutes(double minutes) noexcept {
        return Seconds(static_cast<std::int64_t>(minutes * 60.0 + 0.5));
    }

    /// Parse the paper's clock notation: "h:mm" or "h:mm:ss"
    /// (e.g. "0:01" -> 60 s, "0:04:30" -> 270 s). A bare number is minutes.
    [[nodiscard]] static Seconds parse(const std::string& clock);

    [[nodiscard]] constexpr std::int64_t count() const noexcept { return seconds_; }
    [[nodiscard]] constexpr double minutes() const noexcept {
        return static_cast<double>(seconds_) / 60.0;
    }

    /// Format as h:mm (or h:mm:ss when seconds are present), mirroring the
    /// paper's tables; parse(clock()) round-trips.
    [[nodiscard]] std::string clock() const;

    friend constexpr auto operator<=>(Seconds, Seconds) noexcept = default;
    friend constexpr Seconds operator+(Seconds a, Seconds b) noexcept {
        return Seconds(a.seconds_ + b.seconds_);
    }

private:
    std::int64_t seconds_ = 0;
};

/// A speed stored exactly as metres per hour.
class Speed {
public:
    constexpr Speed() noexcept = default;

    [[nodiscard]] static constexpr Speed fromKmPerHour(std::int64_t kmh) noexcept {
        Speed s;
        s.metresPerHour_ = kmh * 1000;
        return s;
    }

    [[nodiscard]] constexpr std::int64_t metresPerHour() const noexcept { return metresPerHour_; }
    [[nodiscard]] constexpr double kmPerHour() const noexcept {
        return static_cast<double>(metresPerHour_) / 1000.0;
    }

    /// Distance covered in the given duration, rounded down to whole metres.
    [[nodiscard]] constexpr Meters distanceIn(Seconds dt) const noexcept {
        return Meters(metresPerHour_ * dt.count() / 3600);
    }

    friend constexpr auto operator<=>(Speed, Speed) noexcept = default;

private:
    std::int64_t metresPerHour_ = 0;
};

/// The pair (r_s, r_t) of paper Sec. III-A together with the discretization
/// roundings used throughout the encoding.
struct Resolution {
    Meters spatial;    ///< r_s: the smallest section length considered.
    Seconds temporal;  ///< r_t: the smallest amount of time considered.

    /// Number of r_s segments a track of length `l` is partitioned into
    /// (at least 1; partial trailing segments round up).
    [[nodiscard]] int segmentsOf(Meters l) const {
        ETCS_REQUIRE_MSG(spatial.count() > 0, "spatial resolution must be positive");
        ETCS_REQUIRE_MSG(l.count() > 0, "track length must be positive");
        return static_cast<int>((l.count() + spatial.count() - 1) / spatial.count());
    }

    /// l*_tr = ceil(l_tr / r_s): segments occupied by a train of length `l`.
    [[nodiscard]] int trainLengthSegments(Meters l) const {
        ETCS_REQUIRE_MSG(l.count() > 0, "train length must be positive");
        return segmentsOf(l);
    }

    /// Segments a train of speed `s` can advance in one time step
    /// (floor(s * r_t / r_s); may be 0 for very slow trains/coarse grids).
    [[nodiscard]] int segmentsPerStep(Speed s) const {
        ETCS_REQUIRE_MSG(spatial.count() > 0, "spatial resolution must be positive");
        return static_cast<int>(s.distanceIn(temporal).count() / spatial.count());
    }

    /// Time step index of a wall-clock instant (floor(t / r_t)).
    [[nodiscard]] int stepOf(Seconds t) const {
        ETCS_REQUIRE_MSG(temporal.count() > 0, "temporal resolution must be positive");
        return static_cast<int>(t.count() / temporal.count());
    }

    /// Wall-clock time of a step index.
    [[nodiscard]] Seconds timeOf(int step) const {
        return Seconds(temporal.count() * step);
    }
};

inline std::ostream& operator<<(std::ostream& os, Meters m) { return os << m.count() << " m"; }
inline std::ostream& operator<<(std::ostream& os, Seconds s) { return os << s.count() << " s"; }
inline std::ostream& operator<<(std::ostream& os, Speed s) { return os << s.kmPerHour() << " km/h"; }

inline Seconds Seconds::parse(const std::string& clock) {
    std::int64_t parts[3] = {0, 0, 0};
    int n = 0;
    std::int64_t current = 0;
    bool sawDigit = false;
    for (char c : clock) {
        if (c >= '0' && c <= '9') {
            current = current * 10 + (c - '0');
            sawDigit = true;
        } else if (c == ':') {
            if (n >= 2 || !sawDigit) {
                throw InputError("malformed clock value: " + clock);
            }
            parts[n++] = current;
            current = 0;
            sawDigit = false;
        } else {
            throw InputError("malformed clock value: " + clock);
        }
    }
    if (!sawDigit) {
        throw InputError("malformed clock value: " + clock);
    }
    parts[n++] = current;
    if (n == 1) {
        return Seconds(parts[0] * 60);  // bare minutes, e.g. "5"
    }
    if (n == 2) {
        return Seconds(parts[0] * 3600 + parts[1] * 60);  // h:mm
    }
    return Seconds(parts[0] * 3600 + parts[1] * 60 + parts[2]);  // h:mm:ss
}

inline std::string Seconds::clock() const {
    std::int64_t total = seconds_;
    const std::int64_t h = total / 3600;
    total %= 3600;
    const std::int64_t m = total / 60;
    const std::int64_t s = total % 60;
    auto two = [](std::int64_t v) {
        std::string out = std::to_string(v);
        return out.size() < 2 ? "0" + out : out;
    };
    if (s != 0) {
        return std::to_string(h) + ":" + two(m) + ":" + two(s);
    }
    return std::to_string(h) + ":" + two(m);
}

}  // namespace etcs
