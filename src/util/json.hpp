/// \file json.hpp
/// A minimal recursive-descent JSON parser for the library's own output
/// formats (metrics registry dumps, explanation reports, BENCH_*.json).
/// Header-only and dependency-free; not a general-purpose JSON library —
/// no streaming, no \uXXXX surrogate pairs beyond the BMP, numbers parsed
/// as double. Throws etcs::InputError on malformed input with a byte
/// offset, which is what the test suites assert against.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace etcs::util {

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;                              ///< Array
    std::vector<std::pair<std::string, JsonValue>> members;    ///< Object, in input order

    [[nodiscard]] bool isObject() const noexcept { return type == Type::Object; }
    [[nodiscard]] bool isArray() const noexcept { return type == Type::Array; }
    [[nodiscard]] bool isNumber() const noexcept { return type == Type::Number; }
    [[nodiscard]] bool isString() const noexcept { return type == Type::String; }

    /// Member lookup on an object; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
        if (type != Type::Object) {
            return nullptr;
        }
        for (const auto& [name, value] : members) {
            if (name == key) {
                return &value;
            }
        }
        return nullptr;
    }
};

namespace detail {

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue parse() {
        JsonValue value = parseValue();
        skipWhitespace();
        require(pos_ == text_.size(), "trailing characters after JSON value");
        return value;
    }

private:
    void require(bool condition, const char* message) const {
        if (!condition) {
            throw InputError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                             message);
        }
    }

    void skipWhitespace() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    [[nodiscard]] char peek() {
        skipWhitespace();
        require(pos_ < text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        require(peek() == c, "unexpected character");
        ++pos_;
    }

    bool consumeLiteral(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) == literal) {
            pos_ += literal.size();
            return true;
        }
        return false;
    }

    JsonValue parseValue() {
        switch (peek()) {
            case '{': return parseObject();
            case '[': return parseArray();
            case '"': {
                JsonValue v;
                v.type = JsonValue::Type::String;
                v.text = parseString();
                return v;
            }
            case 't':
            case 'f': {
                JsonValue v;
                v.type = JsonValue::Type::Bool;
                v.boolean = consumeLiteral("true");
                require(v.boolean || consumeLiteral("false"), "invalid literal");
                return v;
            }
            case 'n': {
                require(consumeLiteral("null"), "invalid literal");
                return JsonValue{};
            }
            default: return parseNumber();
        }
    }

    JsonValue parseObject() {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            require(peek() == '"', "object key must be a string");
            std::string key = parseString();
            expect(':');
            v.members.emplace_back(std::move(key), parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray() {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            require(pos_ < text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                require(static_cast<unsigned char>(c) >= 0x20, "raw control character");
                out.push_back(c);
                continue;
            }
            require(pos_ < text_.size(), "unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4U;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            require(false, "invalid \\u escape digit");
                        }
                    }
                    // UTF-8 encode (BMP only; lone surrogates pass through).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
                        out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                    } else {
                        out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
                        out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
                        out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                    }
                    break;
                }
                default: require(false, "unknown escape character");
            }
        }
    }

    JsonValue parseNumber() {
        skipWhitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        require(pos_ > start, "expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        require(end != nullptr && *end == '\0' && end != token.c_str(), "invalid number");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = value;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse one JSON document. Throws etcs::InputError on malformed input.
[[nodiscard]] inline JsonValue parseJson(std::string_view text) {
    return detail::JsonParser(text).parse();
}

}  // namespace etcs::util
