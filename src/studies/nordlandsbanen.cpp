#include "studies/studies.hpp"

#include <string>

namespace etcs::studies {

using rail::Network;
using rail::TimedStop;
using rail::TrainRun;

/// Real-life example inspired by the Nordlandsbanen (Trondheim--Bodo):
/// 58 stations spread over 822 km of single track.  Ten of the stations are
/// crossing stations with two-track passing loops (2 TTDs each); the 31
/// single-track line blocks between/around them make up the rest:
/// 20 + 31 = 51 TTD sections.  The remaining simple halts sit directly on
/// the line blocks.
///
/// The scenario sends two day-train pairs towards each other, each pair
/// running ten minutes apart.  The pairs meet around the middle of the
/// line: with tight deadlines the trailing train of each pair has to tuck
/// into the same passing loop as its leader while the opposing pair sweeps
/// by -- possible only when a virtual subsection splits the loop track.  A
/// slow freight rounds off the northern end.
///
/// The published model's exact geometry is unavailable; this reconstruction
/// follows the paper's headline figures (58 stations, 822 km, r_t = 5 min,
/// r_s = 5 km, 48 time steps) -- see DESIGN.md section 3.
CaseStudy nordlandsbanen() {
    CaseStudy study;
    study.name = "Nordlandsbanen";
    study.resolution = Resolution{Meters::fromKilometers(5.0), Seconds::fromMinutes(5.0)};

    Network network("nordlandsbanen");
    const Meters loopLength = Meters::fromKilometers(10.0);

    // 10 crossing stations split the line into 11 long blocks; the blocks
    // are themselves divided into 31 line TTDs of roughly 26 km.
    constexpr int kCrossings = 10;
    constexpr int kLineTtds = 31;
    constexpr int kBlocks = kCrossings + 1;
    const std::int64_t lineMeters = 822000 - kCrossings * loopLength.count();
    int ttdsPerBlock[kBlocks];
    for (int i = 0; i < kBlocks; ++i) {
        ttdsPerBlock[i] = kLineTtds / kBlocks + (i < kLineTtds % kBlocks ? 1 : 0);
    }

    std::vector<TrackId> lineTracks;  // for placing simple halts
    NodeId cursor = network.addNode("Trondheim");
    int lineIndex = 0;
    const std::int64_t metersPerLineTtd = lineMeters / kLineTtds;
    for (int block = 0; block < kBlocks; ++block) {
        for (int piece = 0; piece < ttdsPerBlock[block]; ++piece) {
            const std::string id = "line" + std::to_string(lineIndex);
            const bool last = (block == kBlocks - 1) && (piece == ttdsPerBlock[block] - 1);
            const std::int64_t length =
                last ? lineMeters - metersPerLineTtd * (kLineTtds - 1) : metersPerLineTtd;
            const NodeId next = network.addNode("j" + std::to_string(lineIndex));
            const TrackId track = network.addTrack(id, cursor, next, Meters(length));
            network.addTtd("T_" + id, {track});
            lineTracks.push_back(track);
            cursor = next;
            ++lineIndex;
        }
        if (block < kCrossings) {
            const std::string id = "x" + std::to_string(block);
            const NodeId out = network.addNode("n_" + id);
            const TrackId main = network.addTrack(id + "a", cursor, out, loopLength);
            const TrackId loop = network.addTrack(id + "b", cursor, out, loopLength);
            network.addTtd("T_" + id + "a", {main});
            network.addTtd("T_" + id + "b", {loop});
            network.addStation("X" + std::to_string(block + 1), main, Meters(0));
            network.addStation("X" + std::to_string(block + 1) + "loop", loop, Meters(0));
            cursor = out;
        }
    }

    // 58 numbered halts spread along the line blocks.
    for (int halt = 0; halt < 58; ++halt) {
        const std::size_t track = (static_cast<std::size_t>(halt) * lineTracks.size()) / 58;
        const std::string name =
            "St" + std::string(halt < 9 ? "0" : "") + std::to_string(halt + 1);
        network.addStation(name, lineTracks[track], Meters(0));
    }

    study.network = std::move(network);

    const auto dn = study.trains.addTrain("Day-North", Speed::fromKmPerHour(180), Meters(250));
    const auto ds = study.trains.addTrain("Day-South", Speed::fromKmPerHour(180), Meters(250));
    const auto rn = study.trains.addTrain("Rel-North", Speed::fromKmPerHour(180), Meters(150));
    const auto rs = study.trains.addTrain("Rel-South", Speed::fromKmPerHour(180), Meters(150));
    const auto fn = study.trains.addTrain("Frt-North", Speed::fromKmPerHour(90), Meters(450));

    const StationId st01 = *study.network.findStation("St01");
    const StationId st58 = *study.network.findStation("St58");
    const StationId st36 = *study.network.findStation("St36");
    const StationId st22 = *study.network.findStation("St22");
    const StationId st08 = *study.network.findStation("St08");

    struct RunSpec {
        TrainId train;
        StationId from;
        StationId to;
        const char* dep;
        const char* arr;
    };
    const RunSpec specs[] = {
        {dn, st01, st36, "0:00", "3:05"},  // northbound day train past the middle
        {ds, st58, st22, "0:00", "3:20"},  // southbound day train past the middle
        {rn, st01, st36, "0:10", "3:25"},  // relief train ten minutes behind
        {rs, st58, st22, "0:10", "3:40"},  // relief train ten minutes behind
        {fn, st01, st08, "0:40", "2:45"},  // slow freight on the northern end
    };
    for (const RunSpec& spec : specs) {
        TrainRun timed;
        timed.train = spec.train;
        timed.origin = spec.from;
        timed.departure = Seconds::parse(spec.dep);
        timed.stops.push_back(TimedStop{spec.to, Seconds::parse(spec.arr)});
        study.timedSchedule.addRun(timed);

        TrainRun open = timed;
        open.stops.back().arrival.reset();
        study.openSchedule.addRun(open);
    }
    // The paper considers the Nordlandsbanen scenario over 48 time steps.
    study.timedSchedule.setHorizon(Seconds::parse("3:55"));
    study.openSchedule.setHorizon(Seconds::parse("3:55"));
    return study;
}

}  // namespace etcs::studies
