/// \file studies.hpp
/// The paper's four case-study networks and schedules (Sec. IV), plus a
/// parametric corridor generator for scaling experiments.
///
/// The exact geometry of the paper's networks is unpublished; these are
/// reconstructions from the figures and prose that preserve the qualitative
/// behaviour of Table I (see DESIGN.md §3 and EXPERIMENTS.md).
#pragma once

#include <string>

#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"
#include "util/units.hpp"

namespace etcs::studies {

/// A self-contained scenario: network, trains, and the schedule in both its
/// fully timed form (verification/generation tasks) and its open form with
/// arrivals released (optimization task).
struct CaseStudy {
    std::string name;
    rail::Network network;
    rail::TrainSet trains;
    rail::Schedule timedSchedule;  ///< all arrivals pinned (Fig. 1b style)
    rail::Schedule openSchedule;   ///< departures only; horizon = timed horizon
    Resolution resolution;         ///< the (r_t, r_s) pair used in Table I
};

/// Fig. 1/2/3: two stations A and B joined by a 4-TTD line with a passing
/// area holding station C; four trains (r_t = 0.5 min, r_s = 0.5 km).
[[nodiscard]] CaseStudy runningExample();

/// Fig. 4a: three stations stacked vertically, 10 TTDs
/// (r_t = 1 min, r_s = 0.5 km).
[[nodiscard]] CaseStudy simpleLayout();

/// Fig. 4b: six stations connected in a partially meshed arrangement,
/// 22 TTDs (r_t = 3 min, r_s = 1 km).
[[nodiscard]] CaseStudy complexLayout();

/// Real-life example inspired by the Norwegian Nordlandsbanen
/// (Trondheim--Bodo): 58 stations over 822 km of single track with passing
/// loops (r_t = 5 min, r_s = 5 km).
[[nodiscard]] CaseStudy nordlandsbanen();

/// Parametric single-track corridor with `numStations` passing-loop stations
/// and `numTrains` alternating-direction trains, for scaling studies.
[[nodiscard]] CaseStudy corridor(int numStations, int numTrains, Meters stationSpacing,
                                 Resolution resolution);

}  // namespace etcs::studies
