#include "studies/studies.hpp"

namespace etcs::studies {

using rail::Network;
using rail::TimedStop;
using rail::TrainRun;

/// Fig. 4a: three stations stacked on one single-track line.
///
///   (St1)  u1 =s1a/s1b= d1   -- l1a -- m1 -- l1b --   u2 =s2a/s2b= d2
///          -- l2a -- m2 -- l2b --   u3 =s3a/s3b= d3  (St3)
///
/// Every station has two parallel platform tracks (its passing loop); the
/// connecting single-track lines are cut into two TTD blocks each by an
/// axle counter at their midpoint: 3*2 + 2*2 = 10 TTD sections.
CaseStudy simpleLayout() {
    CaseStudy study;
    study.name = "Simple Layout";
    study.resolution = Resolution{Meters::fromKilometers(0.5), Seconds::fromMinutes(1.0)};

    Network network("simple_layout");
    const auto u1 = network.addNode("u1");
    const auto d1 = network.addNode("d1");
    const auto m1 = network.addNode("m1");
    const auto u2 = network.addNode("u2");
    const auto d2 = network.addNode("d2");
    const auto m2 = network.addNode("m2");
    const auto u3 = network.addNode("u3");
    const auto d3 = network.addNode("d3");

    const Meters platform = Meters::fromKilometers(1.5);
    const Meters halfLine = Meters::fromKilometers(4.0);

    const auto s1a = network.addTrack("s1a", u1, d1, platform);
    const auto s1b = network.addTrack("s1b", u1, d1, platform);
    const auto l1a = network.addTrack("l1a", d1, m1, halfLine);
    const auto l1b = network.addTrack("l1b", m1, u2, halfLine);
    const auto s2a = network.addTrack("s2a", u2, d2, platform);
    const auto s2b = network.addTrack("s2b", u2, d2, platform);
    const auto l2a = network.addTrack("l2a", d2, m2, halfLine);
    const auto l2b = network.addTrack("l2b", m2, u3, halfLine);
    const auto s3a = network.addTrack("s3a", u3, d3, platform);
    const auto s3b = network.addTrack("s3b", u3, d3, platform);

    for (const auto& [name, track] :
         {std::pair{"T_s1a", s1a}, {"T_s1b", s1b}, {"T_l1a", l1a}, {"T_l1b", l1b},
          {"T_s2a", s2a}, {"T_s2b", s2b}, {"T_l2a", l2a}, {"T_l2b", l2b},
          {"T_s3a", s3a}, {"T_s3b", s3b}}) {
        network.addTtd(name, {track});
    }

    const auto st1 = network.addStation("St1", s1a, Meters(0));
    const auto st1Loop = network.addStation("St1loop", s1b, Meters(0));
    const auto st2 = network.addStation("St2", s2a, Meters(0));
    const auto st2Loop = network.addStation("St2loop", s2b, Meters(0));
    const auto st3 = network.addStation("St3", s3a, Meters(0));
    const auto st3Loop = network.addStation("St3loop", s3b, Meters(0));
    (void)st1Loop;
    (void)st3Loop;
    (void)st2Loop;
    study.network = std::move(network);

    // Two southbound and two northbound trains whose meet overloads the
    // two-platform middle station (four trains, two platform tracks), plus a
    // trailing local. Virtual subsections inside the 1.5 km platforms let
    // two trains share one platform track, which the pure TTD layout cannot.
    const auto a = study.trains.addTrain("IC-A", Speed::fromKmPerHour(120), Meters(200));
    const auto b = study.trains.addTrain("IC-B", Speed::fromKmPerHour(120), Meters(200));
    const auto c = study.trains.addTrain("IC-C", Speed::fromKmPerHour(120), Meters(400));
    const auto d = study.trains.addTrain("IC-D", Speed::fromKmPerHour(120), Meters(200));
    const auto e = study.trains.addTrain("Local-E", Speed::fromKmPerHour(120), Meters(100));

    struct RunSpec {
        TrainId train;
        StationId from;
        StationId to;
        const char* dep;
        const char* arr;
    };
    const RunSpec specs[] = {
        {a, st1, st3, "0:00", "0:12"}, {b, st1, st3, "0:02", "0:14"},
        {c, st3, st1, "0:00", "0:12"}, {d, st3, st1, "0:02", "0:14"},
        {e, st2, st1, "0:11", "0:18"},
    };
    for (const RunSpec& spec : specs) {
        TrainRun timed;
        timed.train = spec.train;
        timed.origin = spec.from;
        timed.departure = Seconds::parse(spec.dep);
        timed.stops.push_back(TimedStop{spec.to, Seconds::parse(spec.arr)});
        study.timedSchedule.addRun(timed);

        TrainRun open = timed;
        open.stops.back().arrival.reset();
        study.openSchedule.addRun(open);
    }
    study.openSchedule.setHorizon(study.timedSchedule.horizon());
    return study;
}

}  // namespace etcs::studies
