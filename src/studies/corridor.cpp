#include "studies/studies.hpp"

#include <string>

#include "util/error.hpp"

namespace etcs::studies {

using rail::Network;
using rail::TimedStop;
using rail::TrainRun;

/// Parametric single-track corridor: `numStations` passing-loop stations
/// joined by single-track line blocks of `stationSpacing`.  Trains alternate
/// directions, departing in waves.  Used by the scaling benchmarks (S1) and
/// the property tests.
CaseStudy corridor(int numStations, int numTrains, Meters stationSpacing,
                   Resolution resolution) {
    ETCS_REQUIRE_MSG(numStations >= 2, "a corridor needs at least two stations");
    ETCS_REQUIRE_MSG(numTrains >= 1, "a corridor needs at least one train");

    CaseStudy study;
    study.name = "Corridor-" + std::to_string(numStations) + "x" + std::to_string(numTrains);
    study.resolution = resolution;

    Network network("corridor");
    const Meters loopLength = resolution.spatial;  // one-segment platforms

    std::vector<StationId> stations;
    NodeId cursor = network.addNode("w0");
    for (int i = 0; i < numStations; ++i) {
        const std::string id = std::to_string(i);
        const NodeId out = network.addNode("e" + id);
        const TrackId main = network.addTrack("s" + id + "a", cursor, out, loopLength);
        const TrackId loop = network.addTrack("s" + id + "b", cursor, out, loopLength);
        network.addTtd("T_s" + id + "a", {main});
        network.addTtd("T_s" + id + "b", {loop});
        stations.push_back(network.addStation("St" + id, main, Meters(0)));
        network.addStation("St" + id + "loop", loop, Meters(0));
        cursor = out;
        if (i + 1 < numStations) {
            const NodeId next = network.addNode("w" + std::to_string(i + 1));
            const TrackId line = network.addTrack("l" + id, cursor, next, stationSpacing);
            network.addTtd("T_l" + id, {line});
            cursor = next;
        }
    }
    study.network = std::move(network);

    // Travel-time estimate for generous arrival deadlines: every crossing or
    // overtaking can cost up to a full corridor traversal, so each train gets
    // one extra traversal of slack per opposing train plus wave staggering.
    const Speed speed = Speed::fromKmPerHour(120);
    const std::int64_t corridorMeters =
        (numStations - 1) * stationSpacing.count() + numStations * loopLength.count();
    const std::int64_t travelSeconds = corridorMeters * 3600 / speed.metresPerHour();
    const std::int64_t waveGap = 2 * resolution.temporal.count();

    for (int i = 0; i < numTrains; ++i) {
        const bool eastbound = (i % 2 == 0);
        const TrainId train = study.trains.addTrain("Tr" + std::to_string(i), speed, Meters(150));
        TrainRun timed;
        timed.train = train;
        timed.origin = eastbound ? stations.front() : stations.back();
        timed.departure = Seconds((i / 2) * waveGap);
        const Seconds arrival = Seconds(timed.departure.count() +
                                        (1 + numTrains) * travelSeconds +
                                        numTrains * waveGap);
        timed.stops.push_back(
            TimedStop{eastbound ? stations.back() : stations.front(), arrival});
        study.timedSchedule.addRun(timed);

        TrainRun open = timed;
        open.stops.back().arrival.reset();
        study.openSchedule.addRun(open);
    }
    study.openSchedule.setHorizon(study.timedSchedule.horizon());
    return study;
}

}  // namespace etcs::studies
