#include "studies/studies.hpp"

namespace etcs::studies {

using rail::Network;
using rail::TrainRun;

/// The running example of Fig. 1:
///
///   A ===TTD1=== S1 ===TTD2(main)=== S2 ===TTD4=== B
///                 \\===TTD3(side, station C)===//
///
/// Four TTD sections; the side track through the passing area carries
/// station C.  The schedule of Fig. 1b deadlocks on the pure TTD layout
/// (after all four trains have departed, all four TTDs are blocked), works
/// with a single additional virtual border on the side track, and completes
/// considerably faster with a richer VSS layout (Fig. 2).
CaseStudy runningExample() {
    CaseStudy study;
    study.name = "Running Example";
    study.resolution = Resolution{Meters::fromKilometers(0.5), Seconds::fromMinutes(0.5)};

    Network network("running_example");
    const auto a = network.addNode("A");
    const auto s1 = network.addNode("S1");
    const auto s2 = network.addNode("S2");
    const auto b = network.addNode("B");

    const auto entry = network.addTrack("entry", a, s1, Meters::fromKilometers(1.5));
    const auto main = network.addTrack("main", s1, s2, Meters::fromKilometers(1.0));
    const auto side = network.addTrack("side", s1, s2, Meters::fromKilometers(1.0));
    const auto exit = network.addTrack("exit", s2, b, Meters::fromKilometers(2.0));

    network.addTtd("TTD1", {entry});
    network.addTtd("TTD2", {main});
    network.addTtd("TTD3", {side});
    network.addTtd("TTD4", {exit});

    const auto stationA = network.addStation("StA", entry, Meters(0));
    const auto stationB = network.addStation("StB", exit, Meters::fromKilometers(2.0));
    const auto stationC = network.addStation("StC", side, Meters(0));
    study.network = std::move(network);

    // Fig. 1b: Train | Start | Goal | Speed | Length | Departure | Arrival
    const auto t1 = study.trains.addTrain("Train1", Speed::fromKmPerHour(180), Meters(400));
    const auto t2 = study.trains.addTrain("Train2", Speed::fromKmPerHour(120), Meters(700));
    const auto t3 = study.trains.addTrain("Train3", Speed::fromKmPerHour(120), Meters(100));
    const auto t4 = study.trains.addTrain("Train4", Speed::fromKmPerHour(180), Meters(250));

    auto makeRun = [](TrainId train, StationId from, StationId to, const char* dep,
                      const char* arr) {
        TrainRun run;
        run.train = train;
        run.origin = from;
        run.departure = Seconds::parse(dep);
        run.stops.push_back(rail::TimedStop{
            to, arr == nullptr ? std::nullopt : std::optional(Seconds::parse(arr))});
        return run;
    };

    study.timedSchedule.addRun(makeRun(t1, stationA, stationB, "0:00", "0:04:30"));
    study.timedSchedule.addRun(makeRun(t2, stationB, stationA, "0:00", "0:04:00"));
    study.timedSchedule.addRun(makeRun(t3, stationA, stationC, "0:01", "0:03:00"));
    study.timedSchedule.addRun(makeRun(t4, stationB, stationA, "0:01", "0:05:00"));

    study.openSchedule.addRun(makeRun(t1, stationA, stationB, "0:00", nullptr));
    study.openSchedule.addRun(makeRun(t2, stationB, stationA, "0:00", nullptr));
    study.openSchedule.addRun(makeRun(t3, stationA, stationC, "0:01", nullptr));
    study.openSchedule.addRun(makeRun(t4, stationB, stationA, "0:01", nullptr));
    study.openSchedule.setHorizon(study.timedSchedule.horizon());

    return study;
}

}  // namespace etcs::studies
