#include "studies/studies.hpp"

namespace etcs::studies {

using rail::Network;
using rail::TimedStop;
using rail::TrainRun;

/// Fig. 4b: six stations connected in a partially meshed arrangement.
///
///          St5            St6
///           |              |
///   St1 -- St2 ---------- St3 -- St4
///
/// Each station has a two-track passing loop (12 TTDs); the five connecting
/// single-track lines are cut into two TTD blocks each (10 TTDs): 22 total.
CaseStudy complexLayout() {
    CaseStudy study;
    study.name = "Complex Layout";
    study.resolution = Resolution{Meters::fromKilometers(1.0), Seconds::fromMinutes(3.0)};

    Network network("complex_layout");
    const Meters platform = Meters::fromKilometers(3.0);
    const Meters halfLine = Meters::fromKilometers(9.0);

    // Station loops: nodes uX (one throat) and dX (other throat).
    struct StationNodes {
        NodeId u;
        NodeId d;
        StationId station;
    };
    std::vector<StationNodes> stations;
    for (int i = 1; i <= 6; ++i) {
        const std::string id = std::to_string(i);
        const auto u = network.addNode("u" + id);
        const auto d = network.addNode("d" + id);
        const auto main = network.addTrack("s" + id + "a", u, d, platform);
        const auto loop = network.addTrack("s" + id + "b", u, d, platform);
        network.addTtd("T_s" + id + "a", {main});
        network.addTtd("T_s" + id + "b", {loop});
        const auto station = network.addStation("St" + id, main, Meters(0));
        network.addStation("St" + id + "loop", loop, Meters(0));
        stations.push_back(StationNodes{u, d, station});
    }

    // Connecting lines, each split into two TTD blocks at a midpoint joint.
    auto addLine = [&](const std::string& name, NodeId from, NodeId to) {
        const auto mid = network.addNode("m" + name);
        const auto first = network.addTrack("l" + name + "a", from, mid, halfLine);
        const auto second = network.addTrack("l" + name + "b", mid, to, halfLine);
        network.addTtd("T_l" + name + "a", {first});
        network.addTtd("T_l" + name + "b", {second});
    };
    addLine("12", stations[0].d, stations[1].u);  // St1 -- St2
    addLine("23", stations[1].d, stations[2].u);  // St2 -- St3
    addLine("34", stations[2].d, stations[3].u);  // St3 -- St4 (freight spur)
    addLine("25", stations[1].u, stations[4].d);  // St2 -- St5 (branch)
    addLine("36", stations[2].u, stations[5].d);  // St3 -- St6 (branch)

    study.network = std::move(network);

    // Six trains. Two crossing pairs converge on the St2 hub with tight
    // deadlines: four trains contend for its two 3 km platform tracks, so
    // the pure TTD layout deadlocks while virtual subsections let two
    // trains share one platform (the Fig. 1 mechanism at network scale).
    // Two branch locals exercise the St5/St6 spurs after the crunch.
    const auto a = study.trains.addTrain("IC-A", Speed::fromKmPerHour(120), Meters(300));
    const auto b = study.trains.addTrain("IC-B", Speed::fromKmPerHour(120), Meters(300));
    const auto e = study.trains.addTrain("IC-E", Speed::fromKmPerHour(120), Meters(600));
    const auto f = study.trains.addTrain("IC-F", Speed::fromKmPerHour(120), Meters(600));
    const auto c = study.trains.addTrain("Loc-C", Speed::fromKmPerHour(120), Meters(200));
    const auto d = study.trains.addTrain("Loc-D", Speed::fromKmPerHour(120), Meters(200));

    const StationId st1 = stations[0].station;
    const StationId st2 = stations[1].station;
    const StationId st3 = stations[2].station;
    const StationId st5 = stations[4].station;
    const StationId st6 = stations[5].station;

    struct RunSpec {
        TrainId train;
        StationId from;
        StationId to;
        const char* dep;
        const char* arr;
    };
    const RunSpec specs[] = {
        {a, st1, st3, "0:00", "0:30"},  // eastbound leader
        {b, st3, st1, "0:00", "0:30"},  // westbound leader (meets A at St2)
        {e, st1, st3, "0:06", "0:36"},  // eastbound follower into the crunch
        {f, st3, st1, "0:06", "0:36"},  // westbound follower into the crunch
        {c, st5, st2, "0:24", "0:39"},  // branch local through the hub
        {d, st6, st3, "0:27", "0:45"},  // branch local, after St3 clears
    };
    for (const RunSpec& spec : specs) {
        TrainRun timed;
        timed.train = spec.train;
        timed.origin = spec.from;
        timed.departure = Seconds::parse(spec.dep);
        timed.stops.push_back(TimedStop{spec.to, Seconds::parse(spec.arr)});
        study.timedSchedule.addRun(timed);

        TrainRun open = timed;
        open.stops.back().arrival.reset();
        study.openSchedule.addRun(open);
    }
    study.openSchedule.setHorizon(study.timedSchedule.horizon());
    return study;
}

}  // namespace etcs::studies
