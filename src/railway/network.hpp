/// \file network.hpp
/// The physical railway network: nodes (connection points), tracks, TTD
/// sections and stations.
///
/// This is the model the paper starts from in Sec. III-A: tracks between
/// switches/axle counters, grouped into trackside-train-detection (TTD)
/// sections, with named stations located at points along tracks.  The
/// discretizer (segment_graph.hpp) turns it into the segment graph G=(V,E).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs::rail {

/// A connection point between tracks (switch, endpoint, or plain joint; the
/// kind follows from the degree).
struct Node {
    std::string name;
};

/// A physical track between two nodes.
struct Track {
    std::string name;
    NodeId from;
    NodeId to;
    Meters length;
};

/// A trackside-train-detection section: a set of tracks whose occupation is
/// observed jointly by physical axle counters.
struct TtdSection {
    std::string name;
    std::vector<TrackId> tracks;
};

/// A named stopping position: a point at `offset` from the `from`-node of a
/// track.
struct Station {
    std::string name;
    TrackId track;
    Meters offset;
};

/// An immutable-after-validation railway network.
///
/// Build it up with the add* methods, then call validate() once; the
/// discretizer and all algorithms require a validated network.
class Network {
public:
    explicit Network(std::string name = "network") : name_(std::move(name)) {}

    NodeId addNode(std::string name);
    TrackId addTrack(std::string name, NodeId from, NodeId to, Meters length);
    TtdId addTtd(std::string name, std::vector<TrackId> tracks);
    StationId addStation(std::string name, TrackId track, Meters offset);

    /// Check structural invariants; throws InputError on violation:
    /// every track belongs to exactly one TTD, station offsets lie on their
    /// track, names are unique, and the network is connected.
    void validate() const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t numNodes() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t numTracks() const noexcept { return tracks_.size(); }
    [[nodiscard]] std::size_t numTtds() const noexcept { return ttds_.size(); }
    [[nodiscard]] std::size_t numStations() const noexcept { return stations_.size(); }

    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id.get()); }
    [[nodiscard]] const Track& track(TrackId id) const { return tracks_.at(id.get()); }
    [[nodiscard]] const TtdSection& ttd(TtdId id) const { return ttds_.at(id.get()); }
    [[nodiscard]] const Station& station(StationId id) const { return stations_.at(id.get()); }

    [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
    [[nodiscard]] std::span<const Track> tracks() const noexcept { return tracks_; }
    [[nodiscard]] std::span<const TtdSection> ttds() const noexcept { return ttds_; }
    [[nodiscard]] std::span<const Station> stations() const noexcept { return stations_; }

    /// TTD a track belongs to (invalid id before the TTD was declared).
    [[nodiscard]] TtdId ttdOfTrack(TrackId id) const { return ttdOfTrack_.at(id.get()); }

    /// Number of tracks incident to a node.
    [[nodiscard]] int degree(NodeId id) const;

    [[nodiscard]] std::optional<NodeId> findNode(std::string_view name) const;
    [[nodiscard]] std::optional<TrackId> findTrack(std::string_view name) const;
    [[nodiscard]] std::optional<StationId> findStation(std::string_view name) const;
    [[nodiscard]] std::optional<TtdId> findTtd(std::string_view name) const;

    /// Total length of all tracks.
    [[nodiscard]] Meters totalLength() const;

private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Track> tracks_;
    std::vector<TtdSection> ttds_;
    std::vector<Station> stations_;
    std::vector<TtdId> ttdOfTrack_;
    std::unordered_map<std::string, NodeId> nodeByName_;
    std::unordered_map<std::string, TrackId> trackByName_;
    std::unordered_map<std::string, TtdId> ttdByName_;
    std::unordered_map<std::string, StationId> stationByName_;
};

}  // namespace etcs::rail
