/// \file segment_graph.hpp
/// The discretized segment graph G=(V,E) of paper Sec. III-A and the graph
/// algorithms the encoding needs: chains(l), reachable(e,tr), paths(e,f,tr),
/// between(e,f), and VSS section decomposition.
///
/// Every track of the physical network is partitioned into segments of (at
/// most) the spatial resolution r_s.  Segment-graph nodes are the candidate
/// VSS borders; nodes at TTD boundaries, switches and network endpoints are
/// *fixed* borders (they carry physical axle counters).
#pragma once

#include <span>
#include <vector>

#include "railway/network.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs::rail {

/// An edge of the discretized graph: one r_s-sized piece of a track.
struct Segment {
    SegNodeId a;      ///< one end (towards the track's from-node)
    SegNodeId b;      ///< other end (towards the track's to-node)
    TrackId track;    ///< physical track this segment belongs to
    int indexInTrack; ///< 0-based position along the track
    TtdId ttd;        ///< TTD section of the track
};

/// A node of the discretized graph: a candidate VSS border.
struct SegNode {
    NodeId source;     ///< originating network node; invalid for split joints
    bool fixedBorder;  ///< true: always a VSS border (axle counter present)
};

/// A connected sequence of segments (the paper's chains(l)); node-simple.
using Chain = std::vector<SegmentId>;

/// A node-simple segment path including both end segments.
using SegmentPath = std::vector<SegmentId>;

class SegmentGraph {
public:
    /// Discretize a validated network at spatial resolution `resolution.spatial`.
    SegmentGraph(const Network& network, Resolution resolution);

    [[nodiscard]] const Network& network() const noexcept { return *network_; }
    [[nodiscard]] Resolution resolution() const noexcept { return resolution_; }

    [[nodiscard]] std::size_t numSegments() const noexcept { return segments_.size(); }
    [[nodiscard]] std::size_t numNodes() const noexcept { return nodes_.size(); }

    [[nodiscard]] const Segment& segment(SegmentId id) const { return segments_.at(id.get()); }
    [[nodiscard]] const SegNode& node(SegNodeId id) const { return nodes_.at(id.get()); }
    [[nodiscard]] std::span<const Segment> segments() const noexcept { return segments_; }
    [[nodiscard]] std::span<const SegNode> nodes() const noexcept { return nodes_; }

    /// Segments incident to a node.
    [[nodiscard]] std::span<const SegmentId> segmentsAt(SegNodeId id) const {
        return incidence_.at(id.get());
    }
    /// Segments of a TTD section.
    [[nodiscard]] std::span<const SegmentId> segmentsOfTtd(TtdId id) const {
        return ttdSegments_.at(id.get());
    }
    /// The segment containing a station's point position.
    [[nodiscard]] SegmentId segmentOfStation(StationId id) const {
        return stationSegment_.at(id.get());
    }

    /// Node shared by two adjacent segments (invalid id if not adjacent).
    [[nodiscard]] SegNodeId sharedNode(SegmentId x, SegmentId y) const;

    /// Human-readable segment label, e.g. "main[2]".
    [[nodiscard]] std::string segmentLabel(SegmentId id) const;

    // ----- algorithms used by the encoder --------------------------------

    /// All node-simple chains of exactly `length` segments (the paper's
    /// chains(l)). Each chain is reported once (direction-canonical).
    [[nodiscard]] std::vector<Chain> chains(int length) const;

    /// All segments within `maxDistance` segment-hops of `from`, including
    /// `from` itself (the paper's reachable(e, tr) with maxDistance =
    /// segments-per-step of the train).
    [[nodiscard]] std::vector<SegmentId> reachableWithin(SegmentId from, int maxDistance) const;

    /// All node-simple paths from `from` to `to` with at most `maxLength`
    /// segments, both endpoints included (the paper's paths(e, f, tr)).
    [[nodiscard]] std::vector<SegmentPath> simplePaths(SegmentId from, SegmentId to,
                                                       int maxLength) const;

    /// For two distinct segments of the same TTD: for every node-simple path
    /// between them inside that TTD, the set of nodes separating consecutive
    /// path segments (the paper's between(e, f), one set per path).
    [[nodiscard]] std::vector<std::vector<SegNodeId>> betweenNodeSets(SegmentId e,
                                                                      SegmentId f) const;

    /// Decompose the graph into VSS sections for a given border assignment
    /// (indexed by SegNodeId). Fixed borders are borders regardless of the
    /// flag vector. Returns the list of sections as segment sets.
    [[nodiscard]] std::vector<std::vector<SegmentId>> sections(
        const std::vector<bool>& borderByNode) const;

    /// Number of sections (TTD/VSS column of Table I) for a border assignment.
    [[nodiscard]] int countSections(const std::vector<bool>& borderByNode) const {
        return static_cast<int>(sections(borderByNode).size());
    }

    /// Shortest hop distance between two segments (-1 if disconnected).
    [[nodiscard]] int distance(SegmentId from, SegmentId to) const;

    /// A shortest segment path between two segments (empty if disconnected);
    /// used by the simulator for route construction.
    [[nodiscard]] SegmentPath shortestPath(SegmentId from, SegmentId to) const;

private:
    void pathsDfs(SegNodeId head, SegmentId target, int maxLength, std::vector<SegmentId>& path,
                  std::vector<char>& nodeUsed, std::vector<SegmentPath>& out,
                  const std::vector<char>* allowedSegments) const;

    const Network* network_;
    Resolution resolution_;
    std::vector<Segment> segments_;
    std::vector<SegNode> nodes_;
    std::vector<std::vector<SegmentId>> incidence_;
    std::vector<std::vector<SegmentId>> ttdSegments_;
    std::vector<SegmentId> stationSegment_;
};

}  // namespace etcs::rail
