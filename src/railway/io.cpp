#include "railway/io.hpp"

#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace etcs::rail {

namespace {

/// Split a line into whitespace-separated tokens; empty for comments.
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
        if (token[0] == '#') {
            break;
        }
        tokens.push_back(token);
    }
    return tokens;
}

std::optional<std::int64_t> tryParseInt(const std::string& token) {
    try {
        std::size_t consumed = 0;
        const std::int64_t value = std::stoll(token, &consumed);
        if (consumed != token.size()) {
            return std::nullopt;
        }
        return value;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

std::optional<Seconds> tryParseClock(const std::string& token) {
    try {
        return Seconds::parse(token);
    } catch (const Error&) {
        return std::nullopt;
    }
}

/// Routes parse problems either to an issue handler (lenient mode; the
/// caller skips the offending line and continues) or into an InputError
/// (strict mode).
class IssueSink {
public:
    explicit IssueSink(const ParseIssueHandler* handler) : handler_(handler) {}

    /// Report one problem. Returns normally only in lenient mode.
    void report(int line, const char* code, std::string entity, std::string message,
                std::string hint = {}) const {
        if (handler_ != nullptr) {
            (*handler_)(ParseIssue{line, code, std::move(entity), std::move(message),
                                   std::move(hint)});
            return;
        }
        throw InputError("line " + std::to_string(line) + ": " + message);
    }

private:
    const ParseIssueHandler* handler_;
};

Network parseNetwork(std::istream& in, const IssueSink& sink) {
    Network network;
    bool named = false;
    std::string line;
    int lineNumber = 0;
    while (std::getline(in, line)) {
        ++lineNumber;
        const auto tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        const std::string& keyword = tokens[0];
        if (keyword == "network") {
            if (tokens.size() != 2 || named) {
                sink.report(lineNumber, "L001", "network",
                            "expected a single 'network <name>' line");
                continue;
            }
            network = Network(tokens[1]);
            named = true;
        } else if (keyword == "node") {
            if (tokens.size() != 2) {
                sink.report(lineNumber, "L001", "node", "expected 'node <name>'");
                continue;
            }
            if (network.findNode(tokens[1])) {
                sink.report(lineNumber, "L002", "node " + tokens[1],
                            "duplicate node name: " + tokens[1], "rename one of the nodes");
                continue;
            }
            network.addNode(tokens[1]);
        } else if (keyword == "track") {
            if (tokens.size() != 5) {
                sink.report(lineNumber, "L001", "track",
                            "expected 'track <name> <nodeA> <nodeB> <length_m>'");
                continue;
            }
            if (network.findTrack(tokens[1])) {
                sink.report(lineNumber, "L002", "track " + tokens[1],
                            "duplicate track name: " + tokens[1], "rename one of the tracks");
                continue;
            }
            const auto a = network.findNode(tokens[2]);
            const auto b = network.findNode(tokens[3]);
            if (!a || !b) {
                sink.report(lineNumber, "L003", "track " + tokens[1],
                            "track references unknown node: " + (!a ? tokens[2] : tokens[3]),
                            "declare the node before the track");
                continue;
            }
            if (*a == *b) {
                sink.report(lineNumber, "L001", "track " + tokens[1],
                            "self-loop tracks are not supported");
                continue;
            }
            const auto length = tryParseInt(tokens[4]);
            if (!length) {
                sink.report(lineNumber, "L001", "track " + tokens[1],
                            "malformed integer: " + tokens[4]);
                continue;
            }
            if (*length <= 0) {
                sink.report(lineNumber, "L004", "track " + tokens[1],
                            "track length must be positive, got " + tokens[4],
                            "give the track a positive length in metres");
                continue;
            }
            network.addTrack(tokens[1], *a, *b, Meters(*length));
        } else if (keyword == "ttd") {
            if (tokens.size() < 3) {
                sink.report(lineNumber, "L001", "ttd", "expected 'ttd <name> <track>...'");
                continue;
            }
            if (network.findTtd(tokens[1])) {
                sink.report(lineNumber, "L002", "ttd " + tokens[1],
                            "duplicate TTD name: " + tokens[1], "rename one of the TTDs");
                continue;
            }
            std::vector<TrackId> tracks;
            bool ok = true;
            for (std::size_t i = 2; ok && i < tokens.size(); ++i) {
                const auto t = network.findTrack(tokens[i]);
                if (!t) {
                    sink.report(lineNumber, "L003", "ttd " + tokens[1],
                                "ttd references unknown track: " + tokens[i],
                                "declare the track before the TTD");
                    ok = false;
                    break;
                }
                if (network.ttdOfTrack(*t).valid()) {
                    sink.report(lineNumber, "L002", "ttd " + tokens[1],
                                "track " + tokens[i] + " already belongs to a TTD",
                                "list every track in exactly one TTD");
                    ok = false;
                    break;
                }
                tracks.push_back(*t);
            }
            if (ok) {
                network.addTtd(tokens[1], std::move(tracks));
            }
        } else if (keyword == "station") {
            if (tokens.size() != 4) {
                sink.report(lineNumber, "L001", "station",
                            "expected 'station <name> <track> <offset_m>'");
                continue;
            }
            if (network.findStation(tokens[1])) {
                sink.report(lineNumber, "L002", "station " + tokens[1],
                            "duplicate station name: " + tokens[1],
                            "rename one of the stations");
                continue;
            }
            const auto t = network.findTrack(tokens[2]);
            if (!t) {
                sink.report(lineNumber, "L003", "station " + tokens[1],
                            "station references unknown track: " + tokens[2],
                            "declare the track before the station");
                continue;
            }
            const auto offset = tryParseInt(tokens[3]);
            if (!offset) {
                sink.report(lineNumber, "L001", "station " + tokens[1],
                            "malformed integer: " + tokens[3]);
                continue;
            }
            if (*offset < 0 || Meters(*offset) > network.track(*t).length) {
                sink.report(lineNumber, "L005", "station " + tokens[1],
                            "station offset " + tokens[3] + " lies outside track " +
                                tokens[2] + " (length " +
                                std::to_string(network.track(*t).length.count()) + " m)",
                            "move the station onto the track");
                continue;
            }
            network.addStation(tokens[1], *t, Meters(*offset));
        } else {
            sink.report(lineNumber, "L001", keyword, "unknown keyword: " + keyword);
        }
    }
    return network;
}

Scenario parseScenario(std::istream& in, const Network& network, const IssueSink& sink) {
    Scenario scenario;
    std::string line;
    int lineNumber = 0;
    while (std::getline(in, line)) {
        ++lineNumber;
        const auto tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        const std::string& keyword = tokens[0];
        if (keyword == "scenario") {
            if (tokens.size() != 2) {
                sink.report(lineNumber, "L001", "scenario", "expected 'scenario <name>'");
                continue;
            }
            scenario.name = tokens[1];
        } else if (keyword == "horizon") {
            if (tokens.size() != 2) {
                sink.report(lineNumber, "L001", "horizon", "expected 'horizon <clock>'");
                continue;
            }
            const auto clock = tryParseClock(tokens[1]);
            if (!clock) {
                sink.report(lineNumber, "L001", "horizon",
                            "malformed clock value: " + tokens[1]);
                continue;
            }
            scenario.schedule.setHorizon(*clock);
        } else if (keyword == "train") {
            if (tokens.size() != 4) {
                sink.report(lineNumber, "L001", "train",
                            "expected 'train <name> <speed_kmh> <length_m>'");
                continue;
            }
            if (scenario.trains.findTrain(tokens[1])) {
                sink.report(lineNumber, "L002", "train " + tokens[1],
                            "duplicate train name: " + tokens[1],
                            "rename one of the trains");
                continue;
            }
            const auto speed = tryParseInt(tokens[2]);
            const auto length = tryParseInt(tokens[3]);
            if (!speed || !length) {
                sink.report(lineNumber, "L001", "train " + tokens[1],
                            "malformed integer: " + (!speed ? tokens[2] : tokens[3]));
                continue;
            }
            if (*speed <= 0 || *length <= 0) {
                sink.report(lineNumber, "L004", "train " + tokens[1],
                            "train speed and length must be positive",
                            "give the train a positive speed and length");
                continue;
            }
            scenario.trains.addTrain(tokens[1], Speed::fromKmPerHour(*speed),
                                     Meters(*length));
        } else if (keyword == "run") {
            // run <train> from <station> dep <clock>
            //     [via <station> [arr <clock>]]... to <station> [arr <clock>]
            if (tokens.size() < 8 || tokens[2] != "from" || tokens[4] != "dep") {
                sink.report(lineNumber, "L001", "run",
                            "expected 'run <train> from <station> dep <clock> ...'");
                continue;
            }
            TrainRun run;
            const auto train = scenario.trains.findTrain(tokens[1]);
            if (!train) {
                sink.report(lineNumber, "L003", "run " + tokens[1],
                            "run references unknown train: " + tokens[1],
                            "declare the train before its run");
                continue;
            }
            run.train = *train;
            const auto origin = network.findStation(tokens[3]);
            if (!origin) {
                sink.report(lineNumber, "L003", "run " + tokens[1],
                            "run references unknown station: " + tokens[3]);
                continue;
            }
            run.origin = *origin;
            const auto departure = tryParseClock(tokens[5]);
            if (!departure) {
                sink.report(lineNumber, "L001", "run " + tokens[1],
                            "malformed clock value: " + tokens[5]);
                continue;
            }
            run.departure = *departure;
            std::size_t i = 6;
            bool sawDestination = false;
            bool ok = true;
            while (ok && i < tokens.size()) {
                const std::string& kind = tokens[i];
                if (kind != "via" && kind != "to") {
                    sink.report(lineNumber, "L001", "run " + tokens[1],
                                "expected 'via' or 'to', got: " + kind);
                    ok = false;
                    break;
                }
                if (i + 1 >= tokens.size()) {
                    sink.report(lineNumber, "L001", "run " + tokens[1],
                                "missing station after '" + kind + "'");
                    ok = false;
                    break;
                }
                const auto station = network.findStation(tokens[i + 1]);
                if (!station) {
                    sink.report(lineNumber, "L003", "run " + tokens[1],
                                "run references unknown station: " + tokens[i + 1]);
                    ok = false;
                    break;
                }
                TimedStop stop{*station, std::nullopt, Seconds{}};
                i += 2;
                if (i < tokens.size() && tokens[i] == "arr") {
                    if (i + 1 >= tokens.size()) {
                        sink.report(lineNumber, "L001", "run " + tokens[1],
                                    "missing clock after 'arr'");
                        ok = false;
                        break;
                    }
                    const auto arrival = tryParseClock(tokens[i + 1]);
                    if (!arrival) {
                        sink.report(lineNumber, "L001", "run " + tokens[1],
                                    "malformed clock value: " + tokens[i + 1]);
                        ok = false;
                        break;
                    }
                    stop.arrival = *arrival;
                    i += 2;
                }
                if (i < tokens.size() && tokens[i] == "dwell") {
                    if (i + 1 >= tokens.size()) {
                        sink.report(lineNumber, "L001", "run " + tokens[1],
                                    "missing clock after 'dwell'");
                        ok = false;
                        break;
                    }
                    const auto dwell = tryParseClock(tokens[i + 1]);
                    if (!dwell) {
                        sink.report(lineNumber, "L001", "run " + tokens[1],
                                    "malformed clock value: " + tokens[i + 1]);
                        ok = false;
                        break;
                    }
                    stop.dwell = *dwell;
                    i += 2;
                }
                run.stops.push_back(stop);
                if (kind == "to") {
                    sawDestination = true;
                    break;
                }
            }
            if (!ok) {
                continue;
            }
            if (!sawDestination || i != tokens.size()) {
                sink.report(lineNumber, "L001", "run " + tokens[1],
                            "run must end with 'to <station> [arr <clock>]'");
                continue;
            }
            scenario.schedule.addRun(std::move(run));
        } else {
            sink.report(lineNumber, "L001", keyword, "unknown keyword: " + keyword);
        }
    }
    return scenario;
}

}  // namespace

Network readNetwork(std::istream& in) {
    Network network = parseNetwork(in, IssueSink(nullptr));
    network.validate();
    return network;
}

Network readNetworkLenient(std::istream& in, const ParseIssueHandler& onIssue) {
    ETCS_REQUIRE_MSG(static_cast<bool>(onIssue), "lenient parsing needs an issue handler");
    return parseNetwork(in, IssueSink(&onIssue));
}

Scenario readScenario(std::istream& in, const Network& network) {
    return parseScenario(in, network, IssueSink(nullptr));
}

Scenario readScenarioLenient(std::istream& in, const Network& network,
                             const ParseIssueHandler& onIssue) {
    ETCS_REQUIRE_MSG(static_cast<bool>(onIssue), "lenient parsing needs an issue handler");
    return parseScenario(in, network, IssueSink(&onIssue));
}

void writeNetwork(std::ostream& out, const Network& network) {
    out << "network " << network.name() << '\n';
    for (const Node& node : network.nodes()) {
        out << "node " << node.name << '\n';
    }
    for (const Track& track : network.tracks()) {
        out << "track " << track.name << ' ' << network.node(track.from).name << ' '
            << network.node(track.to).name << ' ' << track.length.count() << '\n';
    }
    for (const TtdSection& ttd : network.ttds()) {
        out << "ttd " << ttd.name;
        for (TrackId t : ttd.tracks) {
            out << ' ' << network.track(t).name;
        }
        out << '\n';
    }
    for (const Station& station : network.stations()) {
        out << "station " << station.name << ' ' << network.track(station.track).name << ' '
            << station.offset.count() << '\n';
    }
}

void writeScenario(std::ostream& out, const Scenario& scenario, const Network& network) {
    out << "scenario " << (scenario.name.empty() ? "unnamed" : scenario.name) << '\n';
    if (!scenario.schedule.fullyTimed()) {
        out << "horizon " << scenario.schedule.horizon().clock() << '\n';
    }
    for (const Train& train : scenario.trains.trains()) {
        out << "train " << train.name << ' ' << static_cast<std::int64_t>(train.maxSpeed.kmPerHour())
            << ' ' << train.length.count() << '\n';
    }
    for (const TrainRun& run : scenario.schedule.runs()) {
        out << "run " << scenario.trains.train(run.train).name << " from "
            << network.station(run.origin).name << " dep " << run.departure.clock();
        for (std::size_t i = 0; i < run.stops.size(); ++i) {
            const bool last = (i + 1 == run.stops.size());
            out << (last ? " to " : " via ") << network.station(run.stops[i].station).name;
            if (run.stops[i].arrival) {
                out << " arr " << run.stops[i].arrival->clock();
            }
            if (run.stops[i].dwell.count() > 0) {
                out << " dwell " << run.stops[i].dwell.clock();
            }
        }
        out << '\n';
    }
}

}  // namespace etcs::rail
