#include "railway/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace etcs::rail {

namespace {

/// Split a line into whitespace-separated tokens; empty for comments.
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
        if (token[0] == '#') {
            break;
        }
        tokens.push_back(token);
    }
    return tokens;
}

[[noreturn]] void fail(int lineNumber, const std::string& message) {
    throw InputError("line " + std::to_string(lineNumber) + ": " + message);
}

std::int64_t parseInt(const std::string& token, int lineNumber) {
    try {
        std::size_t consumed = 0;
        const std::int64_t value = std::stoll(token, &consumed);
        if (consumed != token.size()) {
            fail(lineNumber, "malformed integer: " + token);
        }
        return value;
    } catch (const std::exception&) {
        fail(lineNumber, "malformed integer: " + token);
    }
}

}  // namespace

Network readNetwork(std::istream& in) {
    Network network;
    bool named = false;
    std::string line;
    int lineNumber = 0;
    while (std::getline(in, line)) {
        ++lineNumber;
        const auto tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        const std::string& keyword = tokens[0];
        if (keyword == "network") {
            if (tokens.size() != 2 || named) {
                fail(lineNumber, "expected a single 'network <name>' line");
            }
            network = Network(tokens[1]);
            named = true;
        } else if (keyword == "node") {
            if (tokens.size() != 2) {
                fail(lineNumber, "expected 'node <name>'");
            }
            network.addNode(tokens[1]);
        } else if (keyword == "track") {
            if (tokens.size() != 5) {
                fail(lineNumber, "expected 'track <name> <nodeA> <nodeB> <length_m>'");
            }
            const auto a = network.findNode(tokens[2]);
            const auto b = network.findNode(tokens[3]);
            if (!a || !b) {
                fail(lineNumber, "track references unknown node");
            }
            network.addTrack(tokens[1], *a, *b, Meters(parseInt(tokens[4], lineNumber)));
        } else if (keyword == "ttd") {
            if (tokens.size() < 3) {
                fail(lineNumber, "expected 'ttd <name> <track>...'");
            }
            std::vector<TrackId> tracks;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                const auto t = network.findTrack(tokens[i]);
                if (!t) {
                    fail(lineNumber, "ttd references unknown track: " + tokens[i]);
                }
                tracks.push_back(*t);
            }
            network.addTtd(tokens[1], std::move(tracks));
        } else if (keyword == "station") {
            if (tokens.size() != 4) {
                fail(lineNumber, "expected 'station <name> <track> <offset_m>'");
            }
            const auto t = network.findTrack(tokens[2]);
            if (!t) {
                fail(lineNumber, "station references unknown track: " + tokens[2]);
            }
            network.addStation(tokens[1], *t, Meters(parseInt(tokens[3], lineNumber)));
        } else {
            fail(lineNumber, "unknown keyword: " + keyword);
        }
    }
    network.validate();
    return network;
}

void writeNetwork(std::ostream& out, const Network& network) {
    out << "network " << network.name() << '\n';
    for (const Node& node : network.nodes()) {
        out << "node " << node.name << '\n';
    }
    for (const Track& track : network.tracks()) {
        out << "track " << track.name << ' ' << network.node(track.from).name << ' '
            << network.node(track.to).name << ' ' << track.length.count() << '\n';
    }
    for (const TtdSection& ttd : network.ttds()) {
        out << "ttd " << ttd.name;
        for (TrackId t : ttd.tracks) {
            out << ' ' << network.track(t).name;
        }
        out << '\n';
    }
    for (const Station& station : network.stations()) {
        out << "station " << station.name << ' ' << network.track(station.track).name << ' '
            << station.offset.count() << '\n';
    }
}

Scenario readScenario(std::istream& in, const Network& network) {
    Scenario scenario;
    std::string line;
    int lineNumber = 0;
    while (std::getline(in, line)) {
        ++lineNumber;
        const auto tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        const std::string& keyword = tokens[0];
        if (keyword == "scenario") {
            if (tokens.size() != 2) {
                fail(lineNumber, "expected 'scenario <name>'");
            }
            scenario.name = tokens[1];
        } else if (keyword == "horizon") {
            if (tokens.size() != 2) {
                fail(lineNumber, "expected 'horizon <clock>'");
            }
            scenario.schedule.setHorizon(Seconds::parse(tokens[1]));
        } else if (keyword == "train") {
            if (tokens.size() != 4) {
                fail(lineNumber, "expected 'train <name> <speed_kmh> <length_m>'");
            }
            scenario.trains.addTrain(tokens[1],
                                     Speed::fromKmPerHour(parseInt(tokens[2], lineNumber)),
                                     Meters(parseInt(tokens[3], lineNumber)));
        } else if (keyword == "run") {
            // run <train> from <station> dep <clock>
            //     [via <station> [arr <clock>]]... to <station> [arr <clock>]
            if (tokens.size() < 8 || tokens[2] != "from" || tokens[4] != "dep") {
                fail(lineNumber, "expected 'run <train> from <station> dep <clock> ...'");
            }
            TrainRun run;
            const auto train = scenario.trains.findTrain(tokens[1]);
            if (!train) {
                fail(lineNumber, "run references unknown train: " + tokens[1]);
            }
            run.train = *train;
            const auto origin = network.findStation(tokens[3]);
            if (!origin) {
                fail(lineNumber, "run references unknown station: " + tokens[3]);
            }
            run.origin = *origin;
            run.departure = Seconds::parse(tokens[5]);
            std::size_t i = 6;
            bool sawDestination = false;
            while (i < tokens.size()) {
                const std::string& kind = tokens[i];
                if (kind != "via" && kind != "to") {
                    fail(lineNumber, "expected 'via' or 'to', got: " + kind);
                }
                if (i + 1 >= tokens.size()) {
                    fail(lineNumber, "missing station after '" + kind + "'");
                }
                const auto station = network.findStation(tokens[i + 1]);
                if (!station) {
                    fail(lineNumber, "run references unknown station: " + tokens[i + 1]);
                }
                TimedStop stop{*station, std::nullopt};
                i += 2;
                if (i < tokens.size() && tokens[i] == "arr") {
                    if (i + 1 >= tokens.size()) {
                        fail(lineNumber, "missing clock after 'arr'");
                    }
                    stop.arrival = Seconds::parse(tokens[i + 1]);
                    i += 2;
                }
                if (i < tokens.size() && tokens[i] == "dwell") {
                    if (i + 1 >= tokens.size()) {
                        fail(lineNumber, "missing clock after 'dwell'");
                    }
                    stop.dwell = Seconds::parse(tokens[i + 1]);
                    i += 2;
                }
                run.stops.push_back(stop);
                if (kind == "to") {
                    sawDestination = true;
                    break;
                }
            }
            if (!sawDestination || i != tokens.size()) {
                fail(lineNumber, "run must end with 'to <station> [arr <clock>]'");
            }
            scenario.schedule.addRun(std::move(run));
        } else {
            fail(lineNumber, "unknown keyword: " + keyword);
        }
    }
    return scenario;
}

void writeScenario(std::ostream& out, const Scenario& scenario, const Network& network) {
    out << "scenario " << (scenario.name.empty() ? "unnamed" : scenario.name) << '\n';
    if (!scenario.schedule.fullyTimed()) {
        out << "horizon " << scenario.schedule.horizon().clock() << '\n';
    }
    for (const Train& train : scenario.trains.trains()) {
        out << "train " << train.name << ' ' << static_cast<std::int64_t>(train.maxSpeed.kmPerHour())
            << ' ' << train.length.count() << '\n';
    }
    for (const TrainRun& run : scenario.schedule.runs()) {
        out << "run " << scenario.trains.train(run.train).name << " from "
            << network.station(run.origin).name << " dep " << run.departure.clock();
        for (std::size_t i = 0; i < run.stops.size(); ++i) {
            const bool last = (i + 1 == run.stops.size());
            out << (last ? " to " : " via ") << network.station(run.stops[i].station).name;
            if (run.stops[i].arrival) {
                out << " arr " << run.stops[i].arrival->clock();
            }
            if (run.stops[i].dwell.count() > 0) {
                out << " dwell " << run.stops[i].dwell.clock();
            }
        }
        out << '\n';
    }
}

}  // namespace etcs::rail
