#include "railway/network.hpp"

#include <algorithm>

namespace etcs::rail {

NodeId Network::addNode(std::string name) {
    ETCS_REQUIRE_MSG(!nodeByName_.contains(name), "duplicate node name: " + name);
    const NodeId id(nodes_.size());
    nodeByName_.emplace(name, id);
    nodes_.push_back(Node{std::move(name)});
    return id;
}

TrackId Network::addTrack(std::string name, NodeId from, NodeId to, Meters length) {
    ETCS_REQUIRE_MSG(!trackByName_.contains(name), "duplicate track name: " + name);
    ETCS_REQUIRE_MSG(from.get() < nodes_.size() && to.get() < nodes_.size(),
                     "track endpoints must be existing nodes");
    ETCS_REQUIRE_MSG(from != to, "self-loop tracks are not supported");
    ETCS_REQUIRE_MSG(length.count() > 0, "track length must be positive");
    const TrackId id(tracks_.size());
    trackByName_.emplace(name, id);
    tracks_.push_back(Track{std::move(name), from, to, length});
    ttdOfTrack_.push_back(TtdId{});
    return id;
}

TtdId Network::addTtd(std::string name, std::vector<TrackId> trackIds) {
    ETCS_REQUIRE_MSG(!ttdByName_.contains(name), "duplicate TTD name: " + name);
    ETCS_REQUIRE_MSG(!trackIds.empty(), "a TTD must contain at least one track");
    const TtdId id(ttds_.size());
    for (TrackId t : trackIds) {
        ETCS_REQUIRE_MSG(t.get() < tracks_.size(), "TTD references unknown track");
        ETCS_REQUIRE_MSG(!ttdOfTrack_[t.get()].valid(),
                         "track " + tracks_[t.get()].name + " already belongs to a TTD");
        ttdOfTrack_[t.get()] = id;
    }
    ttdByName_.emplace(name, id);
    ttds_.push_back(TtdSection{std::move(name), std::move(trackIds)});
    return id;
}

StationId Network::addStation(std::string name, TrackId track, Meters offset) {
    ETCS_REQUIRE_MSG(!stationByName_.contains(name), "duplicate station name: " + name);
    ETCS_REQUIRE_MSG(track.get() < tracks_.size(), "station references unknown track");
    ETCS_REQUIRE_MSG(offset.count() >= 0 && offset <= tracks_[track.get()].length,
                     "station offset outside its track");
    const StationId id(stations_.size());
    stationByName_.emplace(name, id);
    stations_.push_back(Station{std::move(name), track, offset});
    return id;
}

int Network::degree(NodeId id) const {
    int d = 0;
    for (const Track& t : tracks_) {
        if (t.from == id || t.to == id) {
            ++d;
        }
    }
    return d;
}

void Network::validate() const {
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        if (!ttdOfTrack_[i].valid()) {
            throw InputError("track " + tracks_[i].name + " does not belong to any TTD");
        }
    }
    if (nodes_.empty() || tracks_.empty()) {
        throw InputError("network must have at least one track");
    }
    // Connectivity check (BFS over nodes).
    std::vector<char> seen(nodes_.size(), 0);
    std::vector<NodeId> queue{NodeId(std::size_t{0})};
    seen[0] = 1;
    while (!queue.empty()) {
        const NodeId current = queue.back();
        queue.pop_back();
        for (const Track& t : tracks_) {
            NodeId next;
            if (t.from == current) {
                next = t.to;
            } else if (t.to == current) {
                next = t.from;
            } else {
                continue;
            }
            if (seen[next.get()] == 0) {
                seen[next.get()] = 1;
                queue.push_back(next);
            }
        }
    }
    if (std::any_of(seen.begin(), seen.end(), [](char c) { return c == 0; })) {
        throw InputError("network is not connected");
    }
}

std::optional<NodeId> Network::findNode(std::string_view name) const {
    const auto it = nodeByName_.find(std::string(name));
    return it == nodeByName_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<TrackId> Network::findTrack(std::string_view name) const {
    const auto it = trackByName_.find(std::string(name));
    return it == trackByName_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<StationId> Network::findStation(std::string_view name) const {
    const auto it = stationByName_.find(std::string(name));
    return it == stationByName_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<TtdId> Network::findTtd(std::string_view name) const {
    const auto it = ttdByName_.find(std::string(name));
    return it == ttdByName_.end() ? std::nullopt : std::optional(it->second);
}

Meters Network::totalLength() const {
    Meters total{};
    for (const Track& t : tracks_) {
        total = total + t.length;
    }
    return total;
}

}  // namespace etcs::rail
