/// \file schedule.hpp
/// Train schedules: per-train runs with departure, stops and arrivals.
///
/// Arrival times are optional: the verification and generation tasks pin
/// them (paper Sec. III-C, triples (tr, e, t_i)); the optimization task
/// leaves them open and lets the solver minimize completion time.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "railway/train.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs::rail {

/// A stop of a run: the station, optionally the required arrival time, and
/// optionally a minimum dwell (the train must stand at the stop at least
/// this long before continuing).
struct TimedStop {
    StationId station;
    std::optional<Seconds> arrival;
    Seconds dwell{};
};

/// One train's run through the network.
struct TrainRun {
    TrainId train;
    StationId origin;              ///< where the train enters the network
    Seconds departure;             ///< when it appears at the origin
    std::vector<TimedStop> stops;  ///< visited in order; back() is the destination

    [[nodiscard]] const TimedStop& destination() const {
        ETCS_REQUIRE_MSG(!stops.empty(), "a run needs at least a destination stop");
        return stops.back();
    }
};

/// A scenario's schedule: one run per participating train.
class Schedule {
public:
    void addRun(TrainRun run) {
        ETCS_REQUIRE_MSG(!run.stops.empty(), "a run needs at least a destination stop");
        runs_.push_back(std::move(run));
    }

    [[nodiscard]] std::span<const TrainRun> runs() const noexcept { return runs_; }
    [[nodiscard]] std::size_t size() const noexcept { return runs_.size(); }

    /// Force a specific scenario length (needed when arrivals are open).
    void setHorizon(Seconds horizon) { explicitHorizon_ = horizon; }

    /// Scenario length: the explicit horizon if set, otherwise the latest
    /// required arrival among all stops.
    [[nodiscard]] Seconds horizon() const {
        if (explicitHorizon_) {
            return *explicitHorizon_;
        }
        Seconds latest{};
        for (const TrainRun& run : runs_) {
            latest = std::max(latest, run.departure);
            for (const TimedStop& stop : run.stops) {
                if (stop.arrival) {
                    latest = std::max(latest, *stop.arrival);
                }
            }
        }
        return latest;
    }

    /// True when every stop of every run carries a required arrival time.
    [[nodiscard]] bool fullyTimed() const {
        return std::all_of(runs_.begin(), runs_.end(), [](const TrainRun& run) {
            return std::all_of(run.stops.begin(), run.stops.end(),
                               [](const TimedStop& s) { return s.arrival.has_value(); });
        });
    }

private:
    std::vector<TrainRun> runs_;
    std::optional<Seconds> explicitHorizon_;
};

}  // namespace etcs::rail
