/// \file train.hpp
/// Trains and the train roster.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs::rail {

/// A train as the paper models it: a maximum speed s_tr and a length l_tr.
struct Train {
    std::string name;
    Speed maxSpeed;
    Meters length;

    /// l*_tr: number of segments the train occupies at resolution `r`.
    [[nodiscard]] int lengthSegments(Resolution r) const { return r.trainLengthSegments(length); }
    /// Segments the train can advance per time step at resolution `r`.
    [[nodiscard]] int speedSegments(Resolution r) const { return r.segmentsPerStep(maxSpeed); }
};

/// The roster of trains taking part in a scenario.
class TrainSet {
public:
    TrainId addTrain(std::string name, Speed maxSpeed, Meters length) {
        ETCS_REQUIRE_MSG(!byName_.contains(name), "duplicate train name: " + name);
        ETCS_REQUIRE_MSG(length.count() > 0, "train length must be positive");
        ETCS_REQUIRE_MSG(maxSpeed.metresPerHour() > 0, "train speed must be positive");
        const TrainId id(trains_.size());
        byName_.emplace(name, id);
        trains_.push_back(Train{std::move(name), maxSpeed, length});
        return id;
    }

    [[nodiscard]] const Train& train(TrainId id) const { return trains_.at(id.get()); }
    [[nodiscard]] std::span<const Train> trains() const noexcept { return trains_; }
    [[nodiscard]] std::size_t size() const noexcept { return trains_.size(); }

    [[nodiscard]] std::optional<TrainId> findTrain(std::string_view name) const {
        const auto it = byName_.find(std::string(name));
        return it == byName_.end() ? std::nullopt : std::optional(it->second);
    }

private:
    std::vector<Train> trains_;
    std::unordered_map<std::string, TrainId> byName_;
};

}  // namespace etcs::rail
