#include "railway/segment_graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace etcs::rail {

SegmentGraph::SegmentGraph(const Network& network, Resolution resolution)
    : network_(&network), resolution_(resolution) {
    network.validate();

    // Determine which physical nodes are fixed borders: endpoints, switches,
    // and joints between tracks of different TTDs (axle-counter positions).
    std::vector<std::vector<TrackId>> tracksAtNode(network.numNodes());
    for (std::size_t t = 0; t < network.numTracks(); ++t) {
        const Track& track = network.track(TrackId(t));
        tracksAtNode[track.from.get()].push_back(TrackId(t));
        tracksAtNode[track.to.get()].push_back(TrackId(t));
    }

    std::vector<SegNodeId> segNodeOfNode(network.numNodes());
    for (std::size_t n = 0; n < network.numNodes(); ++n) {
        const auto& incident = tracksAtNode[n];
        bool fixed = incident.size() != 2;
        if (!fixed) {
            fixed = network.ttdOfTrack(incident[0]) != network.ttdOfTrack(incident[1]);
        }
        segNodeOfNode[n] = SegNodeId(nodes_.size());
        nodes_.push_back(SegNode{NodeId(n), fixed});
    }

    // Split each track into segments joined by (non-fixed) joint nodes.
    ttdSegments_.resize(network.numTtds());
    std::vector<std::vector<SegmentId>> trackSegments(network.numTracks());
    for (std::size_t t = 0; t < network.numTracks(); ++t) {
        const Track& track = network.track(TrackId(t));
        const int pieces = resolution.segmentsOf(track.length);
        SegNodeId previous = segNodeOfNode[track.from.get()];
        for (int i = 0; i < pieces; ++i) {
            SegNodeId next;
            if (i + 1 == pieces) {
                next = segNodeOfNode[track.to.get()];
            } else {
                next = SegNodeId(nodes_.size());
                nodes_.push_back(SegNode{NodeId{}, false});
            }
            const SegmentId seg(segments_.size());
            const TtdId ttd = network.ttdOfTrack(TrackId(t));
            segments_.push_back(Segment{previous, next, TrackId(t), i, ttd});
            ttdSegments_[ttd.get()].push_back(seg);
            trackSegments[t].push_back(seg);
            previous = next;
        }
    }

    incidence_.resize(nodes_.size());
    for (std::size_t s = 0; s < segments_.size(); ++s) {
        incidence_[segments_[s].a.get()].push_back(SegmentId(s));
        incidence_[segments_[s].b.get()].push_back(SegmentId(s));
    }

    // Locate stations: the segment containing the station's point.
    stationSegment_.reserve(network.numStations());
    for (std::size_t st = 0; st < network.numStations(); ++st) {
        const Station& station = network.station(StationId(st));
        const auto& segs = trackSegments[station.track.get()];
        auto index = static_cast<std::size_t>(station.offset.count() /
                                              resolution.spatial.count());
        index = std::min(index, segs.size() - 1);
        stationSegment_.push_back(segs[index]);
    }
}

SegNodeId SegmentGraph::sharedNode(SegmentId x, SegmentId y) const {
    const Segment& sx = segment(x);
    const Segment& sy = segment(y);
    if (sx.a == sy.a || sx.a == sy.b) {
        return sx.a;
    }
    if (sx.b == sy.a || sx.b == sy.b) {
        return sx.b;
    }
    return SegNodeId{};
}

std::string SegmentGraph::segmentLabel(SegmentId id) const {
    const Segment& s = segment(id);
    return network_->track(s.track).name + "[" + std::to_string(s.indexInTrack) + "]";
}

std::vector<Chain> SegmentGraph::chains(int length) const {
    ETCS_REQUIRE_MSG(length >= 1, "chain length must be at least 1");
    std::vector<Chain> result;
    if (length == 1) {
        result.reserve(segments_.size());
        for (std::size_t s = 0; s < segments_.size(); ++s) {
            result.push_back({SegmentId(s)});
        }
        return result;
    }
    // Depth-first extension of directed walks; a chain of k segments visits
    // k+1 pairwise distinct nodes. Each undirected chain is found once per
    // direction; keep the canonical one (front id < back id).
    std::vector<char> nodeUsed(nodes_.size(), 0);
    std::vector<SegmentId> current;
    auto extend = [&](auto&& self, SegNodeId head) -> void {
        if (static_cast<int>(current.size()) == length) {
            if (current.front().get() < current.back().get()) {
                result.push_back(current);
            }
            return;
        }
        for (SegmentId next : incidence_[head.get()]) {
            const Segment& ns = segment(next);
            const SegNodeId tail = (ns.a == head) ? ns.b : ns.a;
            if (nodeUsed[tail.get()] != 0) {
                continue;
            }
            nodeUsed[tail.get()] = 1;
            current.push_back(next);
            self(self, tail);
            current.pop_back();
            nodeUsed[tail.get()] = 0;
        }
    };
    for (std::size_t s = 0; s < segments_.size(); ++s) {
        const Segment& seg = segments_[s];
        for (const auto& [first, second] : {std::pair{seg.a, seg.b}, std::pair{seg.b, seg.a}}) {
            nodeUsed[first.get()] = 1;
            nodeUsed[second.get()] = 1;
            current.assign(1, SegmentId(s));
            extend(extend, second);
            nodeUsed[first.get()] = 0;
            nodeUsed[second.get()] = 0;
        }
    }
    return result;
}

std::vector<SegmentId> SegmentGraph::reachableWithin(SegmentId from, int maxDistance) const {
    std::vector<int> dist(segments_.size(), -1);
    std::deque<SegmentId> queue{from};
    dist[from.get()] = 0;
    std::vector<SegmentId> result{from};
    while (!queue.empty()) {
        const SegmentId current = queue.front();
        queue.pop_front();
        if (dist[current.get()] == maxDistance) {
            continue;
        }
        const Segment& cs = segment(current);
        for (SegNodeId end : {cs.a, cs.b}) {
            for (SegmentId next : incidence_[end.get()]) {
                if (dist[next.get()] >= 0) {
                    continue;
                }
                dist[next.get()] = dist[current.get()] + 1;
                queue.push_back(next);
                result.push_back(next);
            }
        }
    }
    return result;
}

void SegmentGraph::pathsDfs(SegNodeId head, SegmentId target, int maxLength,
                            std::vector<SegmentId>& path, std::vector<char>& nodeUsed,
                            std::vector<SegmentPath>& out,
                            const std::vector<char>* allowedSegments) const {
    // Invariant: all endpoints of all path segments are marked in nodeUsed;
    // `head` is the free end of the last segment, from which we extend.
    if (path.back() == target) {
        out.push_back(path);
        return;
    }
    if (static_cast<int>(path.size()) >= maxLength) {
        return;
    }
    for (SegmentId next : incidence_[head.get()]) {
        if (next == path.back()) {
            continue;
        }
        if (allowedSegments != nullptr && (*allowedSegments)[next.get()] == 0) {
            continue;
        }
        const Segment& ns = segment(next);
        const SegNodeId far = (ns.a == head) ? ns.b : ns.a;
        if (nodeUsed[far.get()] != 0) {
            continue;  // strict node-simplicity, including the tail node
        }
        nodeUsed[far.get()] = 1;
        path.push_back(next);
        pathsDfs(far, target, maxLength, path, nodeUsed, out, allowedSegments);
        path.pop_back();
        nodeUsed[far.get()] = 0;
    }
}

std::vector<SegmentPath> SegmentGraph::simplePaths(SegmentId from, SegmentId to,
                                                   int maxLength) const {
    std::vector<SegmentPath> result;
    if (from == to) {
        result.push_back({from});
        return result;
    }
    std::vector<char> nodeUsed(nodes_.size(), 0);
    const Segment& fs = segment(from);
    nodeUsed[fs.a.get()] = 1;
    nodeUsed[fs.b.get()] = 1;
    std::vector<SegmentId> path{from};
    // Two direction choices: extend from either end of the start segment.
    pathsDfs(fs.a, to, maxLength, path, nodeUsed, result, nullptr);
    pathsDfs(fs.b, to, maxLength, path, nodeUsed, result, nullptr);
    return result;
}

std::vector<std::vector<SegNodeId>> SegmentGraph::betweenNodeSets(SegmentId e,
                                                                  SegmentId f) const {
    ETCS_REQUIRE_MSG(e != f, "between(e, f) requires distinct segments");
    const TtdId ttd = segment(e).ttd;
    ETCS_REQUIRE_MSG(segment(f).ttd == ttd, "between(e, f) requires segments of one TTD");

    std::vector<char> allowed(segments_.size(), 0);
    for (SegmentId s : ttdSegments_[ttd.get()]) {
        allowed[s.get()] = 1;
    }
    std::vector<SegmentPath> paths;
    std::vector<char> nodeUsed(nodes_.size(), 0);
    const Segment& es = segment(e);
    nodeUsed[es.a.get()] = 1;
    nodeUsed[es.b.get()] = 1;
    std::vector<SegmentId> path{e};
    const int maxLength = static_cast<int>(ttdSegments_[ttd.get()].size());
    pathsDfs(es.a, f, maxLength, path, nodeUsed, paths, &allowed);
    pathsDfs(es.b, f, maxLength, path, nodeUsed, paths, &allowed);

    std::vector<std::vector<SegNodeId>> result;
    result.reserve(paths.size());
    for (const SegmentPath& p : paths) {
        std::vector<SegNodeId> between;
        between.reserve(p.size() - 1);
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
            between.push_back(sharedNode(p[i], p[i + 1]));
        }
        result.push_back(std::move(between));
    }
    return result;
}

std::vector<std::vector<SegmentId>> SegmentGraph::sections(
    const std::vector<bool>& borderByNode) const {
    ETCS_REQUIRE_MSG(borderByNode.size() == nodes_.size(),
                     "border vector must have one entry per segment-graph node");
    // Union-find over segments; merge across every non-border node.
    std::vector<std::size_t> parent(segments_.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (nodes_[n].fixedBorder || borderByNode[n]) {
            continue;
        }
        const auto& incident = incidence_[n];
        for (std::size_t i = 1; i < incident.size(); ++i) {
            parent[find(incident[i].get())] = find(incident[0].get());
        }
    }
    std::vector<std::vector<SegmentId>> result;
    std::vector<int> sectionOf(segments_.size(), -1);
    for (std::size_t s = 0; s < segments_.size(); ++s) {
        const std::size_t root = find(s);
        if (sectionOf[root] < 0) {
            sectionOf[root] = static_cast<int>(result.size());
            result.emplace_back();
        }
        result[sectionOf[root]].push_back(SegmentId(s));
    }
    return result;
}

int SegmentGraph::distance(SegmentId from, SegmentId to) const {
    if (from == to) {
        return 0;
    }
    std::vector<int> dist(segments_.size(), -1);
    std::deque<SegmentId> queue{from};
    dist[from.get()] = 0;
    while (!queue.empty()) {
        const SegmentId current = queue.front();
        queue.pop_front();
        const Segment& cs = segment(current);
        for (SegNodeId end : {cs.a, cs.b}) {
            for (SegmentId next : incidence_[end.get()]) {
                if (dist[next.get()] >= 0) {
                    continue;
                }
                dist[next.get()] = dist[current.get()] + 1;
                if (next == to) {
                    return dist[next.get()];
                }
                queue.push_back(next);
            }
        }
    }
    return -1;
}

SegmentPath SegmentGraph::shortestPath(SegmentId from, SegmentId to) const {
    if (from == to) {
        return {from};
    }
    std::vector<SegmentId> previous(segments_.size());
    std::vector<char> seen(segments_.size(), 0);
    std::deque<SegmentId> queue{from};
    seen[from.get()] = 1;
    while (!queue.empty()) {
        const SegmentId current = queue.front();
        queue.pop_front();
        const Segment& cs = segment(current);
        for (SegNodeId end : {cs.a, cs.b}) {
            for (SegmentId next : incidence_[end.get()]) {
                if (seen[next.get()] != 0) {
                    continue;
                }
                seen[next.get()] = 1;
                previous[next.get()] = current;
                if (next == to) {
                    SegmentPath path{next};
                    SegmentId back = next;
                    while (back != from) {
                        back = previous[back.get()];
                        path.push_back(back);
                    }
                    std::reverse(path.begin(), path.end());
                    return path;
                }
                queue.push_back(next);
            }
        }
    }
    return {};
}

}  // namespace etcs::rail
