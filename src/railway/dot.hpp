/// \file dot.hpp
/// Graphviz (DOT) export of networks and segment graphs, so generated VSS
/// layouts can be inspected visually (mirrors the paper's Fig. 1/2 drawings).
#pragma once

#include <iosfwd>
#include <vector>

#include "railway/network.hpp"
#include "railway/segment_graph.hpp"

namespace etcs::rail {

/// Render the physical network; TTD sections become colored clusters.
void writeDot(std::ostream& out, const Network& network);

/// Render the segment graph. When `borderByNode` is given, border nodes are
/// drawn as filled boxes and each VSS section gets its own color class.
void writeDot(std::ostream& out, const SegmentGraph& graph,
              const std::vector<bool>* borderByNode = nullptr);

}  // namespace etcs::rail
