#include "railway/dot.hpp"

#include <array>
#include <ostream>

namespace etcs::rail {

namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759",
    "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
};

}  // namespace

void writeDot(std::ostream& out, const Network& network) {
    out << "graph \"" << network.name() << "\" {\n"
        << "  layout=neato;\n  node [shape=point];\n";
    for (const Node& node : network.nodes()) {
        out << "  \"" << node.name << "\" [xlabel=\"" << node.name << "\"];\n";
    }
    for (std::size_t t = 0; t < network.numTracks(); ++t) {
        const Track& track = network.track(TrackId(t));
        const TtdId ttd = network.ttdOfTrack(TrackId(t));
        out << "  \"" << network.node(track.from).name << "\" -- \""
            << network.node(track.to).name << "\" [label=\"" << track.name << " ("
            << track.length.kilometers() << " km)\", color=\""
            << kPalette[ttd.get() % kPalette.size()] << "\", penwidth=2];\n";
    }
    for (const Station& station : network.stations()) {
        const Track& track = network.track(station.track);
        out << "  \"st_" << station.name << "\" [shape=house, label=\"" << station.name
            << "\"];\n"
            << "  \"st_" << station.name << "\" -- \"" << network.node(track.from).name
            << "\" [style=dotted];\n";
    }
    out << "}\n";
}

void writeDot(std::ostream& out, const SegmentGraph& graph,
              const std::vector<bool>* borderByNode) {
    out << "graph \"" << graph.network().name() << "_segments\" {\n"
        << "  rankdir=LR;\n  node [shape=point, width=0.08];\n";
    std::vector<int> sectionOfSegment(graph.numSegments(), 0);
    if (borderByNode != nullptr) {
        const auto sections = graph.sections(*borderByNode);
        for (std::size_t i = 0; i < sections.size(); ++i) {
            for (SegmentId s : sections[i]) {
                sectionOfSegment[s.get()] = static_cast<int>(i);
            }
        }
    }
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        const SegNode& node = graph.node(SegNodeId(n));
        const bool isBorder =
            node.fixedBorder || (borderByNode != nullptr && (*borderByNode)[n]);
        out << "  n" << n << " [";
        if (node.source.valid()) {
            out << "xlabel=\"" << graph.network().node(node.source).name << "\", ";
        }
        if (isBorder) {
            out << "shape=box, width=0.12, style=filled, fillcolor=black";
        } else {
            out << "shape=point";
        }
        out << "];\n";
    }
    for (std::size_t s = 0; s < graph.numSegments(); ++s) {
        const Segment& seg = graph.segment(SegmentId(s));
        const int section = sectionOfSegment[s];
        out << "  n" << seg.a.get() << " -- n" << seg.b.get() << " [label=\""
            << graph.segmentLabel(SegmentId(s)) << "\", color=\""
            << kPalette[static_cast<std::size_t>(section) % kPalette.size()]
            << "\", penwidth=2];\n";
    }
    out << "}\n";
}

}  // namespace etcs::rail
