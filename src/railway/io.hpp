/// \file io.hpp
/// Text formats for networks and scenarios.
///
/// Network file (.rail):
///   network <name>
///   node <name>
///   track <name> <nodeA> <nodeB> <length_m>
///   ttd <name> <track> [<track> ...]
///   station <name> <track> <offset_m>
///
/// Scenario file (.sched):
///   scenario <name>
///   horizon <clock>                       (optional; needed for open arrivals)
///   train <name> <speed_kmh> <length_m>
///   run <train> from <station> dep <clock> [via <station> [arr <clock>]]...
///       to <station> [arr <clock>]
///
/// Lines starting with '#' are comments. Clock values use the paper's
/// notation (m:ss or h:mm:ss).
#pragma once

#include <iosfwd>
#include <string>

#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"

namespace etcs::rail {

/// A named scenario: the trains plus their schedule on some network.
struct Scenario {
    std::string name;
    TrainSet trains;
    Schedule schedule;
};

[[nodiscard]] Network readNetwork(std::istream& in);
void writeNetwork(std::ostream& out, const Network& network);

/// Parse a scenario; stations are resolved against `network`.
[[nodiscard]] Scenario readScenario(std::istream& in, const Network& network);
void writeScenario(std::ostream& out, const Scenario& scenario, const Network& network);

}  // namespace etcs::rail
