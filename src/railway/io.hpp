/// \file io.hpp
/// Text formats for networks and scenarios.
///
/// Network file (.rail):
///   network <name>
///   node <name>
///   track <name> <nodeA> <nodeB> <length_m>
///   ttd <name> <track> [<track> ...]
///   station <name> <track> <offset_m>
///
/// Scenario file (.sched):
///   scenario <name>
///   horizon <clock>                       (optional; needed for open arrivals)
///   train <name> <speed_kmh> <length_m>
///   run <train> from <station> dep <clock> [via <station> [arr <clock>]]...
///       to <station> [arr <clock>]
///
/// Lines starting with '#' are comments. Clock values use the paper's
/// notation (m:ss or h:mm:ss).
///
/// Two parsing modes share one grammar:
///   * strict (readNetwork/readScenario): throws etcs::InputError on the
///     first problem; readNetwork additionally validates the network.
///   * lenient (readNetworkLenient/readScenarioLenient): reports each
///     problem to a ParseIssueHandler with its lint diagnostic code and
///     source line, skips the offending line, and keeps parsing. The
///     result is *not* validated — run the structural linter
///     (lint/rail_lint.hpp) over it instead.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"

namespace etcs::rail {

/// A named scenario: the trains plus their schedule on some network.
struct Scenario {
    std::string name;
    TrainSet trains;
    Schedule schedule;
};

/// One recoverable problem found while parsing leniently. `code` is the
/// lint diagnostic code (L001..L005, see docs/LINTING.md); `line` is the
/// 1-based source line.
struct ParseIssue {
    int line = 0;
    std::string code;
    std::string entity;
    std::string message;
    std::string hint;
};

using ParseIssueHandler = std::function<void(const ParseIssue&)>;

[[nodiscard]] Network readNetwork(std::istream& in);
void writeNetwork(std::ostream& out, const Network& network);

/// Parse a scenario; stations are resolved against `network`.
[[nodiscard]] Scenario readScenario(std::istream& in, const Network& network);
void writeScenario(std::ostream& out, const Scenario& scenario, const Network& network);

/// Lenient variants: report problems instead of throwing, skip the
/// offending lines, and return the (possibly partial, unvalidated) result.
[[nodiscard]] Network readNetworkLenient(std::istream& in, const ParseIssueHandler& onIssue);
[[nodiscard]] Scenario readScenarioLenient(std::istream& in, const Network& network,
                                           const ParseIssueHandler& onIssue);

}  // namespace etcs::rail
