/// \file backend.hpp
/// Solver-agnostic interface for building and solving CNF formulas.
///
/// All encoders in this library target SatBackend, so the same encoding can
/// run on the built-in CDCL solver (InternalBackend) or, when available, on
/// Z3 (Z3Backend) for cross-validation.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sat/portfolio.hpp"
#include "sat/types.hpp"

namespace etcs::sat {
class ProofWriter;
}

namespace etcs::cnf {

using sat::Literal;
using sat::SolveStatus;
using sat::Var;

class SatBackend {
public:
    virtual ~SatBackend() = default;

    /// Create a fresh Boolean variable.
    virtual Var addVariable() = 0;
    [[nodiscard]] virtual int numVariables() const = 0;
    [[nodiscard]] virtual std::size_t numClauses() const = 0;

    /// Add a clause (disjunction of literals) to the formula.
    virtual void addClause(std::span<const Literal> literals) = 0;
    void addClause(std::initializer_list<Literal> literals) {
        addClause(std::span<const Literal>(literals.begin(), literals.size()));
    }
    void addUnit(Literal l) { addClause({l}); }

    /// Decide satisfiability under the given assumptions.
    virtual SolveStatus solve(std::span<const Literal> assumptions) = 0;
    SolveStatus solve(std::initializer_list<Literal> assumptions) {
        return solve(std::span<const Literal>(assumptions.begin(), assumptions.size()));
    }
    SolveStatus solve() { return solve(std::span<const Literal>{}); }

    /// True iff the literal holds in the most recent satisfying model.
    [[nodiscard]] virtual bool modelValue(Literal l) const = 0;
    [[nodiscard]] bool modelValue(Var v) const { return modelValue(Literal::positive(v)); }

    /// After Unsat under assumptions: a subset of the assumptions that is
    /// jointly unsatisfiable with the formula.
    [[nodiscard]] virtual std::vector<Literal> conflictCore() const = 0;

    /// Solver work counters accumulated over every solve() so far. The
    /// internal backend exposes its CDCL counters directly; other backends
    /// fill in what their solver reports (unavailable entries stay 0).
    [[nodiscard]] virtual const sat::SolverStats& stats() const = 0;

    /// Install a cooperative progress/cancellation hook, invoked every
    /// `everyConflicts` conflicts during each solve (see sat::ProgressCallback;
    /// returning false makes solve() return SolveStatus::Unknown). Returns
    /// false when the backend cannot support progress reporting, in which
    /// case the callback is never invoked. Pass an empty callback to clear.
    virtual bool setProgressCallback(sat::ProgressCallback callback,
                                     std::uint64_t everyConflicts = 16384) {
        (void)callback;
        (void)everyConflicts;
        return false;
    }

    /// Attach a DRAT proof sink (see sat/proof.hpp; nullptr detaches, not
    /// owned). Returns false when the backend cannot log proofs — e.g. the
    /// Z3 cross-check backend — in which case nothing is ever written.
    virtual bool setProofWriter(sat::ProofWriter* proof) {
        (void)proof;
        return false;
    }

    /// Human-readable backend name (for reports and logs).
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Create the built-in CDCL backend.
[[nodiscard]] std::unique_ptr<SatBackend> makeInternalBackend();

/// Create the parallel portfolio backend (see sat/portfolio.hpp and
/// docs/PARALLEL.md): `threads` diversified CDCL workers with clause sharing
/// and first-winner cancellation. threads <= 0 picks the hardware
/// concurrency; `deterministic` selects the reproducible lock-step mode.
[[nodiscard]] std::unique_ptr<SatBackend> makePortfolioBackend(int threads,
                                                               bool deterministic = false);

/// Portfolio backend with full control over the portfolio policy.
[[nodiscard]] std::unique_ptr<SatBackend> makePortfolioBackend(
    sat::PortfolioOptions options);

#ifdef ETCS_HAVE_Z3
/// Create the Z3 cross-check backend (only compiled when libz3 is found).
[[nodiscard]] std::unique_ptr<SatBackend> makeZ3Backend();
#endif

}  // namespace etcs::cnf
