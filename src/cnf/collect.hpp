/// \file collect.hpp
/// A SatBackend that records the formula instead of solving it — used to
/// export encodings (e.g. to DIMACS) and to inspect formulas in tests and
/// benchmarks.
#pragma once

#include "cnf/backend.hpp"
#include "sat/dimacs.hpp"

namespace etcs::cnf {

/// Records every variable and clause; solve() always reports Unknown.
class CollectingBackend final : public SatBackend {
public:
    using SatBackend::addClause;  // keep the initializer_list conveniences
    using SatBackend::solve;

    Var addVariable() override { return numVariables_++; }
    [[nodiscard]] int numVariables() const override { return numVariables_; }
    [[nodiscard]] std::size_t numClauses() const override { return clauses_.size(); }

    void addClause(std::span<const Literal> literals) override {
        clauses_.emplace_back(literals.begin(), literals.end());
    }

    SolveStatus solve(std::span<const Literal>) override { return SolveStatus::Unknown; }
    [[nodiscard]] bool modelValue(Literal) const override { return false; }
    [[nodiscard]] std::vector<Literal> conflictCore() const override { return {}; }
    [[nodiscard]] const sat::SolverStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "collector"; }

    /// The recorded formula, ready for sat::writeDimacs or a real solver.
    [[nodiscard]] sat::CnfFormula formula() const {
        sat::CnfFormula f;
        f.numVariables = numVariables_;
        f.clauses = clauses_;
        return f;
    }

    /// Move the recorded formula out (avoids the copy for large encodings);
    /// the backend is empty afterwards except for the variable count.
    [[nodiscard]] sat::CnfFormula takeFormula() {
        sat::CnfFormula f;
        f.numVariables = numVariables_;
        f.clauses = std::move(clauses_);
        clauses_.clear();
        return f;
    }

    [[nodiscard]] const std::vector<std::vector<Literal>>& clauses() const noexcept {
        return clauses_;
    }

private:
    Var numVariables_ = 0;
    std::vector<std::vector<Literal>> clauses_;
    sat::SolverStats stats_;  ///< collector never solves; all counters stay 0
};

}  // namespace etcs::cnf
