#include "cnf/amo.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace etcs::cnf {

namespace {

void addPairwise(SatBackend& backend, std::span<const Literal> lits) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
        for (std::size_t j = i + 1; j < lits.size(); ++j) {
            backend.addClause({~lits[i], ~lits[j]});
        }
    }
}

/// Sinz sequential encoding: s_i means "one of lits[0..i] is true".
void addSequential(SatBackend& backend, std::span<const Literal> lits) {
    const std::size_t n = lits.size();
    if (n <= 3) {
        addPairwise(backend, lits);
        return;
    }
    std::vector<Literal> s;
    s.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        s.push_back(Literal::positive(backend.addVariable()));
    }
    backend.addClause({~lits[0], s[0]});
    for (std::size_t i = 1; i + 1 < n; ++i) {
        backend.addClause({~lits[i], s[i]});
        backend.addClause({~s[i - 1], s[i]});
        backend.addClause({~lits[i], ~s[i - 1]});
    }
    backend.addClause({~lits[n - 1], ~s[n - 2]});
}

/// Commander encoding with group size 3; recursively constrains commanders.
void addCommander(SatBackend& backend, std::span<const Literal> lits) {
    constexpr std::size_t kGroup = 3;
    if (lits.size() <= kGroup + 1) {
        addPairwise(backend, lits);
        return;
    }
    std::vector<Literal> commanders;
    for (std::size_t begin = 0; begin < lits.size(); begin += kGroup) {
        const std::size_t end = std::min(begin + kGroup, lits.size());
        const auto group = lits.subspan(begin, end - begin);
        addPairwise(backend, group);
        const Literal commander = Literal::positive(backend.addVariable());
        for (Literal l : group) {
            backend.addClause({~l, commander});  // member -> commander
        }
        commanders.push_back(commander);
    }
    addCommander(backend, commanders);
}

/// Product encoding: lay literals on a rows x columns grid and constrain the
/// row/column indicator vectors instead.
void addProduct(SatBackend& backend, std::span<const Literal> lits) {
    const std::size_t n = lits.size();
    if (n <= 4) {
        addPairwise(backend, lits);
        return;
    }
    const auto rows = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    const std::size_t cols = (n + rows - 1) / rows;
    std::vector<Literal> rowVars;
    std::vector<Literal> colVars;
    rowVars.reserve(rows);
    colVars.reserve(cols);
    for (std::size_t r = 0; r < rows; ++r) {
        rowVars.push_back(Literal::positive(backend.addVariable()));
    }
    for (std::size_t c = 0; c < cols; ++c) {
        colVars.push_back(Literal::positive(backend.addVariable()));
    }
    for (std::size_t i = 0; i < n; ++i) {
        backend.addClause({~lits[i], rowVars[i / cols]});
        backend.addClause({~lits[i], colVars[i % cols]});
    }
    addProduct(backend, rowVars);
    addProduct(backend, colVars);
}

}  // namespace

std::string_view toString(AmoEncoding encoding) {
    switch (encoding) {
        case AmoEncoding::Pairwise: return "pairwise";
        case AmoEncoding::Sequential: return "sequential";
        case AmoEncoding::Commander: return "commander";
        case AmoEncoding::Product: return "product";
    }
    return "unknown";
}

void addAtMostOne(SatBackend& backend, std::span<const Literal> literals, AmoEncoding encoding) {
    if (literals.size() <= 1) {
        return;
    }
    switch (encoding) {
        case AmoEncoding::Pairwise: addPairwise(backend, literals); break;
        case AmoEncoding::Sequential: addSequential(backend, literals); break;
        case AmoEncoding::Commander: addCommander(backend, literals); break;
        case AmoEncoding::Product: addProduct(backend, literals); break;
    }
}

void addExactlyOne(SatBackend& backend, std::span<const Literal> literals, AmoEncoding encoding) {
    ETCS_REQUIRE_MSG(!literals.empty(), "exactly-one over an empty set is unsatisfiable");
    backend.addClause(literals);
    addAtMostOne(backend, literals, encoding);
}

}  // namespace etcs::cnf
