#include "cnf/cardinality.hpp"

#include "util/error.hpp"

namespace etcs::cnf {

namespace {

/// Merge two child sums into a parent sum, emitting both implication
/// directions:
///   (>=i of A) & (>=j of B)  ->  (>=i+j of R)
///   (<i+1 of A) & (<j+1 of B) ->  (<i+j+2 of R)   i.e.  A_{i+1} | B_{j+1} | ~R_{i+j+1}
std::vector<Literal> mergeSums(SatBackend& backend, const std::vector<Literal>& a,
                               const std::vector<Literal>& b) {
    const std::size_t na = a.size();
    const std::size_t nb = b.size();
    std::vector<Literal> result;
    result.reserve(na + nb);
    for (std::size_t i = 0; i < na + nb; ++i) {
        result.push_back(Literal::positive(backend.addVariable()));
    }
    // Direction 1: lower bounds propagate up.
    for (std::size_t i = 0; i <= na; ++i) {
        for (std::size_t j = 0; j <= nb; ++j) {
            if (i + j == 0) {
                continue;
            }
            std::vector<Literal> clause;
            if (i > 0) {
                clause.push_back(~a[i - 1]);
            }
            if (j > 0) {
                clause.push_back(~b[j - 1]);
            }
            clause.push_back(result[i + j - 1]);
            backend.addClause(clause);
        }
    }
    // Direction 2: upper bounds propagate up.
    for (std::size_t i = 0; i <= na; ++i) {
        for (std::size_t j = 0; j <= nb; ++j) {
            if (i + j == na + nb) {
                continue;
            }
            std::vector<Literal> clause;
            if (i < na) {
                clause.push_back(a[i]);
            }
            if (j < nb) {
                clause.push_back(b[j]);
            }
            clause.push_back(~result[i + j]);
            backend.addClause(clause);
        }
    }
    return result;
}

std::vector<Literal> buildTree(SatBackend& backend, std::span<const Literal> inputs) {
    if (inputs.size() == 1) {
        return {inputs[0]};
    }
    const std::size_t half = inputs.size() / 2;
    const auto left = buildTree(backend, inputs.subspan(0, half));
    const auto right = buildTree(backend, inputs.subspan(half));
    return mergeSums(backend, left, right);
}

}  // namespace

Totalizer::Totalizer(SatBackend& backend, std::span<const Literal> inputs) {
    ETCS_REQUIRE_MSG(!inputs.empty(), "totalizer over an empty input set");
    outputs_ = buildTree(backend, inputs);
}

void addAtMostK(SatBackend& backend, std::span<const Literal> literals, std::size_t k) {
    const std::size_t n = literals.size();
    if (k >= n) {
        return;  // trivially satisfied
    }
    if (k == 0) {
        for (Literal l : literals) {
            backend.addUnit(~l);
        }
        return;
    }
    // Sinz LTn,k: registers s[i][j] ("at least j+1 of the first i+1 literals").
    std::vector<std::vector<Literal>> s(n - 1, std::vector<Literal>(k));
    for (auto& row : s) {
        for (auto& lit : row) {
            lit = Literal::positive(backend.addVariable());
        }
    }
    backend.addClause({~literals[0], s[0][0]});
    for (std::size_t j = 1; j < k; ++j) {
        backend.addUnit(~s[0][j]);
    }
    for (std::size_t i = 1; i + 1 < n; ++i) {
        backend.addClause({~literals[i], s[i][0]});
        backend.addClause({~s[i - 1][0], s[i][0]});
        for (std::size_t j = 1; j < k; ++j) {
            backend.addClause({~literals[i], ~s[i - 1][j - 1], s[i][j]});
            backend.addClause({~s[i - 1][j], s[i][j]});
        }
        backend.addClause({~literals[i], ~s[i - 1][k - 1]});
    }
    backend.addClause({~literals[n - 1], ~s[n - 2][k - 1]});
}

}  // namespace etcs::cnf
