/// \file cardinality.hpp
/// Cardinality constraints: totalizer and sequential-counter encodings.
///
/// The Totalizer is the workhorse of the optimization engine: its monotone
/// output literals let the MaxSAT search tighten "at most k" bounds purely
/// through solver assumptions, keeping all learned clauses valid across
/// iterations.
#pragma once

#include <span>
#include <vector>

#include "cnf/backend.hpp"

namespace etcs::cnf {

/// Bailleux-Boutsidis totalizer over a set of input literals.
///
/// After construction, output(i) is a literal that is true iff at least i+1
/// of the inputs are true (both implication directions are encoded, so the
/// outputs are exact and usable for at-most and at-least bounds alike).
class Totalizer {
public:
    /// Build the totalizer tree; adds O(n log n) variables/clauses.
    Totalizer(SatBackend& backend, std::span<const Literal> inputs);

    [[nodiscard]] std::size_t numInputs() const noexcept { return outputs_.size(); }

    /// Literal that is true iff >= count+1 inputs are true.
    [[nodiscard]] Literal output(std::size_t count) const { return outputs_.at(count); }
    [[nodiscard]] const std::vector<Literal>& outputs() const noexcept { return outputs_; }

    /// Assumption literal enforcing "at most k inputs are true".
    /// k must be < numInputs() (at most n is trivially true).
    [[nodiscard]] Literal atMostAssumption(std::size_t k) const { return ~outputs_.at(k); }

    /// Assumption literal enforcing "at least k inputs are true" (k >= 1).
    [[nodiscard]] Literal atLeastAssumption(std::size_t k) const { return outputs_.at(k - 1); }

    /// Permanently add "at most k" as a hard constraint.
    void addAtMost(SatBackend& backend, std::size_t k) const {
        backend.addUnit(atMostAssumption(k));
    }

private:
    std::vector<Literal> outputs_;
};

/// Sinz sequential-counter "at most k" encoding (LTn,k). One-shot: the bound
/// is baked into the clauses. Provided as an ablation alternative to the
/// totalizer.
void addAtMostK(SatBackend& backend, std::span<const Literal> literals, std::size_t k);

}  // namespace etcs::cnf
