#include "cnf/backend.hpp"
#include "sat/solver.hpp"

namespace etcs::cnf {

namespace {

/// SatBackend implementation on top of the built-in CDCL solver.
class InternalBackend final : public SatBackend {
public:
    Var addVariable() override { return solver_.addVariable(); }
    int numVariables() const override { return solver_.numVariables(); }
    std::size_t numClauses() const override { return clausesAdded_; }

    void addClause(std::span<const Literal> literals) override {
        ++clausesAdded_;
        solver_.addClause(literals);
    }

    SolveStatus solve(std::span<const Literal> assumptions) override {
        return solver_.solve(assumptions);
    }

    bool modelValue(Literal l) const override {
        return solver_.modelValue(l) == sat::Value::True;
    }

    std::vector<Literal> conflictCore() const override { return solver_.conflictCore(); }

    std::string name() const override { return "internal-cdcl"; }

private:
    sat::Solver solver_;
    std::size_t clausesAdded_ = 0;
};

}  // namespace

std::unique_ptr<SatBackend> makeInternalBackend() {
    return std::make_unique<InternalBackend>();
}

}  // namespace etcs::cnf
