#include "cnf/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"

#include <chrono>

namespace etcs::cnf {

namespace {

/// SatBackend implementation on top of the built-in CDCL solver.
class InternalBackend final : public SatBackend {
public:
    Var addVariable() override { return solver_.addVariable(); }
    int numVariables() const override { return solver_.numVariables(); }
    std::size_t numClauses() const override { return clausesAdded_; }

    void addClause(std::span<const Literal> literals) override {
        ++clausesAdded_;
        solver_.addClause(literals);
    }

    SolveStatus solve(std::span<const Literal> assumptions) override {
        const obs::Span span("sat.solve");
        const sat::SolverStats before = solver_.stats();
        const auto start = std::chrono::steady_clock::now();
        const SolveStatus status = solver_.solve(assumptions);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        recordSolveMetrics(before, seconds, status);
        return status;
    }

    bool modelValue(Literal l) const override {
        return solver_.modelValue(l) == sat::Value::True;
    }

    std::vector<Literal> conflictCore() const override { return solver_.conflictCore(); }

    const sat::SolverStats& stats() const override { return solver_.stats(); }

    bool setProgressCallback(sat::ProgressCallback callback,
                             std::uint64_t everyConflicts) override {
        solver_.options().onProgress = std::move(callback);
        solver_.options().progressInterval = std::max<std::uint64_t>(everyConflicts, 1);
        return true;
    }

    bool setProofWriter(sat::ProofWriter* proof) override {
        solver_.setProofWriter(proof);
        return true;
    }

    std::string name() const override { return "internal-cdcl"; }

private:
    void recordSolveMetrics(const sat::SolverStats& before, double seconds,
                            SolveStatus status) {
        const sat::SolverStats& after = solver_.stats();
        auto& registry = obs::Registry::global();
        registry.counter("etcs.sat.solves").increment();
        registry.counter("etcs.sat.conflicts").add(after.conflicts - before.conflicts);
        registry.counter("etcs.sat.propagations")
            .add(after.propagations - before.propagations);
        registry.counter("etcs.sat.decisions").add(after.decisions - before.decisions);
        registry.counter("etcs.sat.restarts").add(after.restarts - before.restarts);
        registry.histogram("etcs.sat.solve_seconds").observe(seconds);
        if (obs::tracingEnabled()) {
            obs::Tracer::counterValue("sat.conflicts", static_cast<double>(after.conflicts));
            obs::Tracer::counterValue("sat.learnt_db",
                                      static_cast<double>(solver_.numLearnedClauses()));
        }
        if (obs::logEnabled(obs::LogLevel::Debug)) {
            std::string fields = ",\"status\":\"";
            fields += status == SolveStatus::Sat     ? "sat"
                      : status == SolveStatus::Unsat ? "unsat"
                                                     : "unknown";
            fields += "\",\"seconds\":" + std::to_string(seconds);
            fields += ",\"conflicts\":" + std::to_string(after.conflicts - before.conflicts);
            fields +=
                ",\"propagations\":" + std::to_string(after.propagations - before.propagations);
            obs::log(obs::LogLevel::Debug, "sat", "solve finished", fields);
        }
    }

    sat::Solver solver_;
    std::size_t clausesAdded_ = 0;
};

}  // namespace

std::unique_ptr<SatBackend> makeInternalBackend() {
    return std::make_unique<InternalBackend>();
}

}  // namespace etcs::cnf
