/// \file formula.hpp
/// Small formula-construction helpers (implications, Tseitin gates) on top of
/// a SatBackend.
#pragma once

#include <span>
#include <vector>

#include "cnf/backend.hpp"

namespace etcs::cnf {

/// antecedent -> consequent
inline void addImplication(SatBackend& backend, Literal antecedent, Literal consequent) {
    backend.addClause({~antecedent, consequent});
}

/// antecedent -> (d1 | d2 | ...)
inline void addImplicationToDisjunction(SatBackend& backend, Literal antecedent,
                                        std::span<const Literal> disjunction) {
    std::vector<Literal> clause;
    clause.reserve(disjunction.size() + 1);
    clause.push_back(~antecedent);
    clause.insert(clause.end(), disjunction.begin(), disjunction.end());
    backend.addClause(clause);
}

/// (a1 & a2 & ...) -> (d1 | d2 | ...)
inline void addConjunctionImpliesDisjunction(SatBackend& backend,
                                             std::span<const Literal> conjunction,
                                             std::span<const Literal> disjunction) {
    std::vector<Literal> clause;
    clause.reserve(conjunction.size() + disjunction.size());
    for (Literal a : conjunction) {
        clause.push_back(~a);
    }
    clause.insert(clause.end(), disjunction.begin(), disjunction.end());
    backend.addClause(clause);
}

/// a <-> b
inline void addEquivalence(SatBackend& backend, Literal a, Literal b) {
    backend.addClause({~a, b});
    backend.addClause({a, ~b});
}

/// At least one of the literals holds.
inline void addAtLeastOne(SatBackend& backend, std::span<const Literal> literals) {
    backend.addClause(literals);
}

/// Tseitin AND gate: returns y with y <-> (l1 & l2 & ...).
inline Literal makeAnd(SatBackend& backend, std::span<const Literal> inputs) {
    const Literal y = Literal::positive(backend.addVariable());
    std::vector<Literal> longClause;
    longClause.reserve(inputs.size() + 1);
    longClause.push_back(y);
    for (Literal l : inputs) {
        backend.addClause({~y, l});  // y -> l
        longClause.push_back(~l);    // (&inputs) -> y
    }
    backend.addClause(longClause);
    return y;
}

/// Tseitin OR gate: returns y with y <-> (l1 | l2 | ...).
inline Literal makeOr(SatBackend& backend, std::span<const Literal> inputs) {
    const Literal y = Literal::positive(backend.addVariable());
    std::vector<Literal> longClause;
    longClause.reserve(inputs.size() + 1);
    longClause.push_back(~y);
    for (Literal l : inputs) {
        backend.addClause({~l, y});  // l -> y
        longClause.push_back(l);     // y -> (|inputs)
    }
    backend.addClause(longClause);
    return y;
}

}  // namespace etcs::cnf
