/// \file amo.hpp
/// At-most-one and exactly-one constraint encodings.
///
/// Several encodings are provided because their clause/auxiliary-variable
/// trade-offs differ; `bench/ablation_encodings` compares them on the ETCS
/// chain-selector groups where they are used.
#pragma once

#include <span>
#include <string_view>

#include "cnf/backend.hpp"

namespace etcs::cnf {

enum class AmoEncoding {
    Pairwise,    ///< O(n^2) clauses, no auxiliaries; best for tiny groups.
    Sequential,  ///< Sinz commander chain: 3n clauses, n auxiliaries.
    Commander,   ///< recursive group commanders (group size 3).
    Product,     ///< 2D product encoding (rows x columns).
};

[[nodiscard]] std::string_view toString(AmoEncoding encoding);

/// Add clauses enforcing that at most one of `literals` is true.
void addAtMostOne(SatBackend& backend, std::span<const Literal> literals,
                  AmoEncoding encoding = AmoEncoding::Sequential);

/// Add clauses enforcing that exactly one of `literals` is true.
void addExactlyOne(SatBackend& backend, std::span<const Literal> literals,
                   AmoEncoding encoding = AmoEncoding::Sequential);

}  // namespace etcs::cnf
