// Z3 cross-check backend; compiled only when libz3 is available.
#ifdef ETCS_HAVE_Z3

#include <z3++.h>

#include <unordered_map>

#include "cnf/backend.hpp"
#include "util/error.hpp"

namespace etcs::cnf {

namespace {

class Z3Backend final : public SatBackend {
public:
    Z3Backend() : solver_(context_) {}

    Var addVariable() override {
        const Var v = static_cast<Var>(vars_.size());
        vars_.push_back(context_.bool_const(("v" + std::to_string(v)).c_str()));
        return v;
    }

    int numVariables() const override { return static_cast<int>(vars_.size()); }
    std::size_t numClauses() const override { return clausesAdded_; }

    void addClause(std::span<const Literal> literals) override {
        ++clausesAdded_;
        z3::expr_vector disjuncts(context_);
        for (Literal l : literals) {
            disjuncts.push_back(toExpr(l));
        }
        solver_.add(z3::mk_or(disjuncts));
    }

    SolveStatus solve(std::span<const Literal> assumptions) override {
        z3::expr_vector assumptionExprs(context_);
        lastAssumptions_.clear();
        for (Literal l : assumptions) {
            assumptionExprs.push_back(toExpr(l));
            lastAssumptions_.emplace(toExpr(l).id(), l);
        }
        const z3::check_result verdict = solver_.check(assumptionExprs);
        harvestStatistics();
        switch (verdict) {
            case z3::sat: {
                model_ = std::make_unique<z3::model>(solver_.get_model());
                return SolveStatus::Sat;
            }
            case z3::unsat:
                return SolveStatus::Unsat;
            default:
                return SolveStatus::Unknown;
        }
    }

    const sat::SolverStats& stats() const override { return stats_; }

    bool modelValue(Literal l) const override {
        ETCS_REQUIRE_MSG(model_ != nullptr, "no model available");
        const z3::expr value = model_->eval(vars_[l.var()], /*model_completion=*/true);
        const bool varTrue = value.is_true();
        return l.sign() ? !varTrue : varTrue;
    }

    std::vector<Literal> conflictCore() const override {
        std::vector<Literal> core;
        for (const z3::expr& e : solver_.unsat_core()) {
            const auto it = lastAssumptions_.find(e.id());
            if (it != lastAssumptions_.end()) {
                core.push_back(it->second);
            }
        }
        return core;
    }

    std::string name() const override { return "z3"; }

private:
    z3::expr toExpr(Literal l) {
        ETCS_REQUIRE_MSG(l.var() >= 0 && l.var() < numVariables(),
                         "literal references unknown variable");
        return l.sign() ? !vars_[l.var()] : vars_[l.var()];
    }

    /// Map Z3's self-reported statistics onto SolverStats (best effort; Z3
    /// reports cumulative values, and key names vary between tactics, so
    /// anything unrecognized simply stays 0).
    void harvestStatistics() {
        const z3::stats statistics = solver_.statistics();
        for (unsigned i = 0; i < statistics.size(); ++i) {
            const std::string key = statistics.key(i);
            if (!statistics.is_uint(i)) {
                continue;
            }
            const std::uint64_t value = statistics.uint_value(i);
            if (key == "conflicts" || key == "sat conflicts") {
                stats_.conflicts = value;
            } else if (key == "propagations" || key == "sat propagations 2ary" ||
                       key == "propagations 2ary") {
                stats_.propagations = value;
            } else if (key == "decisions" || key == "sat decisions") {
                stats_.decisions = value;
            } else if (key == "restarts" || key == "sat restarts") {
                stats_.restarts = value;
            }
        }
    }

    z3::context context_;
    z3::solver solver_;
    std::vector<z3::expr> vars_;
    std::unique_ptr<z3::model> model_;
    std::unordered_map<unsigned, Literal> lastAssumptions_;
    std::size_t clausesAdded_ = 0;
    sat::SolverStats stats_;
};

}  // namespace

std::unique_ptr<SatBackend> makeZ3Backend() {
    return std::make_unique<Z3Backend>();
}

}  // namespace etcs::cnf

#endif  // ETCS_HAVE_Z3
