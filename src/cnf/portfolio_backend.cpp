#include "cnf/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/portfolio.hpp"

#include <chrono>
#include <string>

namespace etcs::cnf {

namespace {

/// SatBackend implementation on top of the parallel portfolio solver.
/// Observability: every solve is wrapped in a "sat.portfolio.solve" span,
/// each worker's participation in a "sat.portfolio.worker" span on its own
/// thread (the Chrome trace tid separates the tracks), and the
/// etcs.sat.portfolio.* metrics described in docs/OBSERVABILITY.md are
/// updated per solve.
class PortfolioBackend final : public SatBackend {
public:
    explicit PortfolioBackend(sat::PortfolioOptions options)
        : solver_([&options]() {
              options.onWorkerStart = [](int worker) {
                  if (obs::tracingEnabled()) {
                      obs::Tracer::begin("sat.portfolio.worker",
                                         "{\"worker\":" + std::to_string(worker) + "}");
                  }
              };
              options.onWorkerFinish = [](int worker, SolveStatus status,
                                          const sat::SolverStats& stats) {
                  if (obs::tracingEnabled()) {
                      obs::Tracer::counterValue(
                          ("sat.portfolio.worker" + std::to_string(worker) + ".conflicts")
                              .c_str(),
                          static_cast<double>(stats.conflicts));
                      obs::Tracer::end("sat.portfolio.worker");
                  }
                  (void)status;
              };
              return options;
          }()) {}

    Var addVariable() override { return solver_.addVariable(); }
    int numVariables() const override { return solver_.numVariables(); }
    std::size_t numClauses() const override { return solver_.numClauses(); }

    void addClause(std::span<const Literal> literals) override {
        solver_.addClause(literals);
    }

    SolveStatus solve(std::span<const Literal> assumptions) override {
        const obs::Span span("sat.portfolio.solve");
        const sat::SolverStats before = solver_.solverStats();
        const sat::PortfolioStats sharingBefore = solver_.stats();
        const auto start = std::chrono::steady_clock::now();
        const SolveStatus status = solver_.solve(assumptions);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        recordSolveMetrics(before, sharingBefore, seconds, status);
        return status;
    }

    bool modelValue(Literal l) const override {
        return solver_.modelValue(l) == sat::Value::True;
    }

    std::vector<Literal> conflictCore() const override { return solver_.conflictCore(); }

    const sat::SolverStats& stats() const override { return solver_.solverStats(); }

    bool setProgressCallback(sat::ProgressCallback callback,
                             std::uint64_t everyConflicts) override {
        solver_.options().onProgress = std::move(callback);
        solver_.options().progressInterval = std::max<std::uint64_t>(everyConflicts, 1);
        return true;
    }

    bool setProofWriter(sat::ProofWriter* proof) override {
        solver_.setProofWriter(proof);
        return true;
    }

    std::string name() const override {
        return "portfolio-cdcl(" + std::to_string(solver_.numThreads()) +
               (solver_.options().deterministic ? ",deterministic)" : ")");
    }

    [[nodiscard]] const sat::PortfolioSolver& portfolio() const noexcept {
        return solver_;
    }

private:
    void recordSolveMetrics(const sat::SolverStats& before,
                            const sat::PortfolioStats& sharingBefore, double seconds,
                            SolveStatus status) {
        const sat::SolverStats& after = solver_.solverStats();
        const sat::PortfolioStats& sharing = solver_.stats();
        auto& registry = obs::Registry::global();
        registry.counter("etcs.sat.solves").increment();
        registry.counter("etcs.sat.conflicts").add(after.conflicts - before.conflicts);
        registry.counter("etcs.sat.propagations")
            .add(after.propagations - before.propagations);
        registry.counter("etcs.sat.decisions").add(after.decisions - before.decisions);
        registry.counter("etcs.sat.restarts").add(after.restarts - before.restarts);
        registry.histogram("etcs.sat.solve_seconds").observe(seconds);

        registry.counter("etcs.sat.portfolio.solves").increment();
        registry.counter("etcs.sat.portfolio.exported")
            .add(sharing.exportedClauses - sharingBefore.exportedClauses);
        registry.counter("etcs.sat.portfolio.imported")
            .add(sharing.importedClauses - sharingBefore.importedClauses);
        registry.counter("etcs.sat.portfolio.dropped")
            .add(sharing.droppedClauses - sharingBefore.droppedClauses);
        registry.gauge("etcs.sat.portfolio.threads")
            .set(static_cast<double>(solver_.numThreads()));
        registry.gauge("etcs.sat.portfolio.last_winner")
            .set(static_cast<double>(sharing.lastWinner));
        registry.histogram("etcs.sat.portfolio.solve_seconds").observe(seconds);
        if (sharing.lastWinner >= 0) {
            registry
                .counter("etcs.sat.portfolio.wins.worker" +
                         std::to_string(sharing.lastWinner))
                .increment();
        }
        if (status == SolveStatus::Unsat) {
            // Size of the winner's snapshotted failed-assumption core (0 for
            // terminal, assumption-free UNSAT) — feeds core attribution.
            const double coreSize = static_cast<double>(solver_.conflictCore().size());
            registry.gauge("etcs.sat.portfolio.core_size").set(coreSize);
            registry.histogram("etcs.sat.portfolio.core_sizes").observe(coreSize);
        }
        if (obs::logEnabled(obs::LogLevel::Debug)) {
            std::string fields = ",\"status\":\"";
            fields += status == SolveStatus::Sat     ? "sat"
                      : status == SolveStatus::Unsat ? "unsat"
                                                     : "unknown";
            fields += "\",\"seconds\":" + std::to_string(seconds);
            fields += ",\"threads\":" + std::to_string(solver_.numThreads());
            fields += ",\"winner\":" + std::to_string(sharing.lastWinner);
            fields += ",\"imported\":" +
                      std::to_string(sharing.importedClauses -
                                     sharingBefore.importedClauses);
            obs::log(obs::LogLevel::Debug, "sat", "portfolio solve finished", fields);
        }
    }

    sat::PortfolioSolver solver_;
};

}  // namespace

std::unique_ptr<SatBackend> makePortfolioBackend(sat::PortfolioOptions options) {
    return std::make_unique<PortfolioBackend>(std::move(options));
}

std::unique_ptr<SatBackend> makePortfolioBackend(int threads, bool deterministic) {
    sat::PortfolioOptions options;
    options.numThreads = threads;
    options.deterministic = deterministic;
    return makePortfolioBackend(std::move(options));
}

}  // namespace etcs::cnf
