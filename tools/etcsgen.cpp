/// \file etcsgen.cpp
/// Emit parameterized, seed-deterministic benchmark scenarios.
///
/// Usage:
///   etcsgen --family <f|all> --seed <n> [--size <n>] [--trains <n>]
///           [--schedule <feasible|tight|infeasible|all>]
///           [--rs <metres>] [--rt <seconds>] [--out <dir>] [--dimacs]
///
/// For every selected (family, schedule-kind) combination one instance is
/// generated and written as three files under --out (default "."):
///   <name>.rail   the network (strict readNetwork round-trips it),
///   <name>.sched  the trains + fully timed schedule,
///   <name>.json   a manifest with seed + parameters for exact reproduction.
/// With --dimacs additionally <name>.cnf: the verification encoding on the
/// finest layout, through the same shared DIMACS writer as gencnf.
///
/// Identical parameters produce byte-identical files on every platform (the
/// generator draws raw mt19937_64 outputs; see docs/GENERATOR.md).
/// Exit code: 0 = all instances written, 2 = usage or I/O error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "gen/generator.hpp"
#include "railway/io.hpp"
#include "sat/dimacs.hpp"

namespace {

void printUsage(std::ostream& os) {
    os << "usage: etcsgen --family <f|all> --seed <n> [--size <n>] [--trains <n>]\n"
          "               [--schedule <feasible|tight|infeasible|all>]\n"
          "               [--rs <metres>] [--rt <seconds>] [--out <dir>] [--dimacs]\n"
          "  families: corridor station junction ring single_track network\n";
}

bool parseInt(const std::string& text, long long& out) {
    try {
        std::size_t used = 0;
        out = std::stoll(text, &used);
        return used == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

}  // namespace

int main(int argc, char** argv) {
    using etcs::gen::Family;
    using etcs::gen::GenParams;
    using etcs::gen::ScheduleKind;

    std::vector<Family> families;
    std::vector<ScheduleKind> kinds;
    GenParams base;
    std::string outDir = ".";
    bool dimacs = false;
    bool sawFamily = false;
    bool sawSeed = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::optional<std::string> {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " expects a value\n";
                return std::nullopt;
            }
            return std::string(argv[++i]);
        };
        long long number = 0;
        if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--family") {
            const auto v = value("--family");
            if (!v) {
                return 2;
            }
            sawFamily = true;
            if (*v == "all") {
                families.assign(etcs::gen::allFamilies().begin(),
                                etcs::gen::allFamilies().end());
            } else if (const auto family = etcs::gen::parseFamily(*v)) {
                families.push_back(*family);
            } else {
                std::cerr << "error: unknown family '" << *v << "'\n";
                printUsage(std::cerr);
                return 2;
            }
        } else if (arg == "--schedule") {
            const auto v = value("--schedule");
            if (!v) {
                return 2;
            }
            if (*v == "all") {
                kinds.assign(etcs::gen::allScheduleKinds().begin(),
                             etcs::gen::allScheduleKinds().end());
            } else if (const auto kind = etcs::gen::parseScheduleKind(*v)) {
                kinds.push_back(*kind);
            } else {
                std::cerr << "error: unknown schedule kind '" << *v << "'\n";
                printUsage(std::cerr);
                return 2;
            }
        } else if (arg == "--seed") {
            const auto v = value("--seed");
            if (!v || !parseInt(*v, number) || number < 0) {
                std::cerr << "error: --seed expects a nonnegative integer\n";
                return 2;
            }
            base.seed = static_cast<std::uint64_t>(number);
            sawSeed = true;
        } else if (arg == "--size") {
            const auto v = value("--size");
            if (!v || !parseInt(*v, number) || number < 1) {
                std::cerr << "error: --size expects a positive integer\n";
                return 2;
            }
            base.size = static_cast<int>(number);
        } else if (arg == "--trains") {
            const auto v = value("--trains");
            if (!v || !parseInt(*v, number) || number < 0) {
                std::cerr << "error: --trains expects a nonnegative integer\n";
                return 2;
            }
            base.trains = static_cast<int>(number);
        } else if (arg == "--rs") {
            const auto v = value("--rs");
            if (!v || !parseInt(*v, number) || number < 1) {
                std::cerr << "error: --rs expects a positive metre count\n";
                return 2;
            }
            base.resolution.spatial = etcs::Meters(number);
        } else if (arg == "--rt") {
            const auto v = value("--rt");
            if (!v || !parseInt(*v, number) || number < 1) {
                std::cerr << "error: --rt expects a positive second count\n";
                return 2;
            }
            base.resolution.temporal = etcs::Seconds(number);
        } else if (arg == "--out") {
            const auto v = value("--out");
            if (!v) {
                return 2;
            }
            outDir = *v;
        } else if (arg == "--dimacs") {
            dimacs = true;
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n";
            printUsage(std::cerr);
            return 2;
        }
    }
    if (!sawFamily || !sawSeed) {
        printUsage(std::cerr);
        return 2;
    }
    if (kinds.empty()) {
        kinds.push_back(base.schedule);
    }

    try {
        for (Family family : families) {
            for (ScheduleKind kind : kinds) {
                GenParams params = base;
                params.family = family;
                params.schedule = kind;
                const auto scenario = etcs::gen::generate(params);
                const std::string stem = outDir + "/" + scenario.name;

                auto writeText = [&](const std::string& path, auto&& writer) {
                    std::ofstream out(path);
                    if (out) {
                        writer(out);
                        out.flush();
                    }
                    if (!out) {
                        std::cerr << "error: cannot write " << path << "\n";
                        return false;
                    }
                    return true;
                };
                const bool ok =
                    writeText(stem + ".rail",
                              [&](std::ostream& out) {
                                  etcs::rail::writeNetwork(out, scenario.network);
                              }) &&
                    writeText(stem + ".sched",
                              [&](std::ostream& out) {
                                  etcs::rail::writeScenario(
                                      out,
                                      etcs::rail::Scenario{scenario.name, scenario.trains,
                                                           scenario.schedule},
                                      scenario.network);
                              }) &&
                    writeText(stem + ".json", [&](std::ostream& out) {
                        out << etcs::gen::manifestJson(scenario);
                    });
                if (!ok) {
                    return 2;
                }

                std::string note;
                if (dimacs) {
                    const etcs::core::Instance instance(scenario.network, scenario.trains,
                                                        scenario.schedule, params.resolution);
                    etcs::cnf::CollectingBackend backend;
                    etcs::core::Encoder encoder(backend, instance);
                    const auto finest = etcs::core::VssLayout::finest(instance.graph());
                    encoder.encode(&finest);
                    const auto formula = backend.takeFormula();
                    if (!etcs::sat::writeDimacsFile(stem + ".cnf", formula)) {
                        std::cerr << "error: writing " << stem
                                  << ".cnf failed; partial output removed\n";
                        return 2;
                    }
                    note = ", " + std::to_string(formula.numVariables) + " vars, " +
                           std::to_string(formula.clauses.size()) + " clauses";
                }
                std::cout << scenario.name << ": " << scenario.network.numTracks()
                          << " tracks, " << scenario.schedule.size() << " runs" << note
                          << " -> " << stem << ".{rail,sched,json"
                          << (dimacs ? ",cnf" : "") << "}\n";
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
