/// \file gencnf.cpp
/// Export an ETCS verification encoding as a DIMACS CNF file.
///
/// Usage: gencnf <running|simple> [--unsat] output.cnf
///
/// Encodes the named case study's timed schedule on the finest VSS layout.
/// With --unsat, additionally pins "all trains done" one step before the
/// completion lower bound, which makes the formula unsatisfiable — the
/// resulting (formula, proof) pairs exercise the proof pipeline in CI.
#include <iostream>
#include <string>
#include <vector>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "sat/dimacs.hpp"
#include "studies/studies.hpp"

namespace {

void printUsage(std::ostream& os) {
    os << "usage: gencnf <running|simple> [--unsat] output.cnf\n"
          "  --unsat   pin completion before its lower bound (UNSAT instance)\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool unsat = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--unsat") {
            unsat = true;
        } else if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        printUsage(std::cerr);
        return 2;
    }

    try {
        etcs::studies::CaseStudy study;
        if (positional[0] == "running") {
            study = etcs::studies::runningExample();
        } else if (positional[0] == "simple") {
            study = etcs::studies::simpleLayout();
        } else {
            std::cerr << "error: unknown study '" << positional[0] << "'\n";
            printUsage(std::cerr);
            return 2;
        }

        const etcs::core::Instance instance(study.network, study.trains, study.timedSchedule,
                                            study.resolution);
        etcs::cnf::CollectingBackend backend;
        etcs::core::Encoder encoder(backend, instance);
        const auto finest = etcs::core::VssLayout::finest(instance.graph());
        encoder.encode(&finest);
        if (unsat) {
            const int bound = encoder.completionLowerBound();
            if (bound < 1) {
                std::cerr << "error: completion lower bound is 0; cannot pin earlier\n";
                return 2;
            }
            backend.addUnit(encoder.doneAllLiteral(bound - 1));
        }

        const etcs::sat::CnfFormula formula = backend.formula();
        if (!etcs::sat::writeDimacsFile(positional[1], formula)) {
            std::cerr << "error: writing " << positional[1]
                      << " failed; partial output removed\n";
            return 2;
        }
        std::cout << "c " << study.name << (unsat ? " (UNSAT pin)" : "") << ": "
                  << formula.numVariables << " vars, " << formula.clauses.size()
                  << " clauses -> " << positional[1] << "\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
