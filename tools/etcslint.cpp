/// \file etcslint.cpp
/// Static analysis front-end for layouts, schedules and encodings.
///
/// Usage: etcslint [options] <network.rail> [scenario.sched] [formula.cnf|.dimacs]
///
/// Runs the instance linter (structural network checks, schedule feasibility
/// lower bounds) over the given files and, when a DIMACS file is present, the
/// CNF linter over the formula. Error-severity schedule findings are proofs
/// of unsatisfiability: the tool reports "schedule proven infeasible" without
/// ever invoking a SAT solver. See docs/LINTING.md for the code catalogue.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/cnf_lint.hpp"
#include "lint/diagnostics.hpp"
#include "lint/rail_lint.hpp"
#include "lint/reach.hpp"
#include "railway/segment_graph.hpp"
#include "sat/dimacs.hpp"
#include "util/units.hpp"

namespace {

using etcs::lint::LintReport;

void printUsage(std::ostream& os) {
    os << "usage: etcslint [options] <network.rail> [scenario.sched] [formula.cnf]\n"
          "  --rs <meters>    spatial resolution r_s for discretization (default 500)\n"
          "  --rt <seconds>   temporal resolution r_t for discretization (default 30)\n"
          "  --reach          run the reachability analysis (R-codes) and report\n"
          "                   per-stop time windows (see docs/REACHABILITY.md)\n"
          "  --json           machine-readable JSON report instead of text\n"
          "  --codes          list every diagnostic code and exit\n"
          "  -h, --help       show this help\n"
          "Files are classified by extension: .rail network, .sched scenario,\n"
          ".cnf/.dimacs DIMACS formula. Exit code 0 when clean (warnings allowed),\n"
          "1 when any error-severity diagnostic was found, 2 on usage/IO errors.\n";
}

/// Deterministic window report for `etcslint --reach`: one entry per analyzed
/// run with the interval hull at the origin and every stop. Text and JSON
/// renderings share the same traversal so their contents always agree.
void writeReachReport(std::ostream& os, bool json, const etcs::rail::SegmentGraph& graph,
                      const etcs::rail::TrainSet& trains, const etcs::rail::Schedule& schedule,
                      const etcs::lint::ScheduleReach& reach) {
    if (json) {
        os << "{\"analyzed\":" << (reach.analysis ? "true" : "false");
    }
    if (!reach.analysis) {
        if (json) {
            os << ",\"runs\":[]}";
        } else {
            os << "reach: analysis skipped (no positive horizon)\n";
        }
        return;
    }
    const etcs::lint::ReachAnalysis& analysis = *reach.analysis;
    const etcs::rail::Network& network = graph.network();
    if (json) {
        os << ",\"horizon_steps\":" << analysis.horizonSteps()
           << ",\"iterations\":" << analysis.iterations()
           << ",\"violations\":" << analysis.violations().size()
           << ",\"provably_infeasible\":" << (analysis.provablyInfeasible() ? "true" : "false")
           << ",\"runs\":[";
    }
    for (std::size_t run = 0; run < analysis.numRuns(); ++run) {
        const etcs::lint::ReachRun& r = analysis.run(run);
        const etcs::rail::TrainRun& scheduleRun =
            schedule.runs()[reach.scheduleRunIndex[run]];
        const std::string& train = trains.train(scheduleRun.train).name;
        const auto window = [&](etcs::SegmentId segment) {
            return analysis.window(run, segment);
        };
        if (json) {
            os << (run > 0 ? "," : "") << "{\"train\":\"" << train
               << "\",\"schedule_run\":" << reach.scheduleRunIndex[run]
               << ",\"cutoff_step\":" << analysis.runCutoffStep(run)
               << ",\"prompt_cutoff\":" << (analysis.promptCutoff(run) ? "true" : "false")
               << ",\"windows\":[";
            const etcs::lint::StepWindow origin = window(r.originSegment);
            os << "{\"station\":\"" << network.station(scheduleRun.origin).name
               << "\",\"role\":\"origin\",\"earliest\":" << origin.earliest
               << ",\"latest\":" << origin.latest << "}";
            for (std::size_t j = 0; j < r.stops.size(); ++j) {
                const etcs::lint::StepWindow w = window(r.stops[j].segment);
                os << ",{\"station\":\""
                   << network.station(scheduleRun.stops[j].station).name << "\",\"role\":\""
                   << (r.stops[j].arrivalStep ? "pinned" : "open") << "\"";
                if (r.stops[j].arrivalStep) {
                    os << ",\"arrival_step\":" << *r.stops[j].arrivalStep;
                }
                os << ",\"dwell_steps\":" << r.stops[j].dwellSteps
                   << ",\"earliest\":" << w.earliest << ",\"latest\":" << w.latest << "}";
            }
            os << "]}";
        } else {
            const auto hull = [](const etcs::lint::StepWindow& w) {
                return w.empty() ? std::string("[empty]")
                                 : "[" + std::to_string(w.earliest) + "," +
                                       std::to_string(w.latest) + "]";
            };
            os << "reach: train " << train << ": origin "
               << network.station(scheduleRun.origin).name << " "
               << hull(window(r.originSegment));
            for (std::size_t j = 0; j < r.stops.size(); ++j) {
                os << "; " << network.station(scheduleRun.stops[j].station).name << " "
                   << hull(window(r.stops[j].segment));
                if (r.stops[j].arrivalStep) {
                    os << " pinned@" << *r.stops[j].arrivalStep;
                }
            }
            os << "; cutoff " << analysis.runCutoffStep(run)
               << (analysis.promptCutoff(run) ? " (prompt)" : "") << "\n";
        }
    }
    if (json) {
        os << "]}";
    }
}

[[nodiscard]] bool endsWith(const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] std::optional<long> parseLong(const std::string& text) {
    try {
        std::size_t pos = 0;
        const long value = std::stol(text, &pos);
        if (pos != text.size()) {
            return std::nullopt;
        }
        return value;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

}  // namespace

int main(int argc, char** argv) {
    long spatialMeters = 500;
    long temporalSeconds = 30;
    bool json = false;
    bool reachMode = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--codes") {
            for (const etcs::lint::CodeInfo& info : etcs::lint::knownCodes()) {
                std::cout << info.code << "  " << etcs::lint::severityName(info.severity)
                          << "  " << info.summary << "\n";
            }
            return 0;
        }
        if (arg == "--json") {
            json = true;
            continue;
        }
        if (arg == "--reach") {
            reachMode = true;
            continue;
        }
        if (arg == "--rs" || arg == "--rt") {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                return 2;
            }
            const auto value = parseLong(argv[++i]);
            if (!value || *value <= 0) {
                std::cerr << "error: " << arg << " needs a positive integer, got '"
                          << argv[i] << "'\n";
                return 2;
            }
            (arg == "--rs" ? spatialMeters : temporalSeconds) = *value;
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::cerr << "error: unknown option '" << arg << "'\n";
            printUsage(std::cerr);
            return 2;
        }
        files.push_back(arg);
    }
    if (files.empty()) {
        printUsage(std::cerr);
        return 2;
    }

    std::string networkFile;
    std::string scenarioFile;
    std::string cnfFile;
    for (const std::string& file : files) {
        std::string* slot = nullptr;
        if (endsWith(file, ".rail")) {
            slot = &networkFile;
        } else if (endsWith(file, ".sched")) {
            slot = &scenarioFile;
        } else if (endsWith(file, ".cnf") || endsWith(file, ".dimacs")) {
            slot = &cnfFile;
        } else {
            std::cerr << "error: cannot classify '" << file
                      << "' (expected .rail, .sched, .cnf or .dimacs)\n";
            return 2;
        }
        if (!slot->empty()) {
            std::cerr << "error: more than one " << file.substr(file.rfind('.'))
                      << " file given\n";
            return 2;
        }
        *slot = file;
    }
    if (networkFile.empty() && !scenarioFile.empty()) {
        std::cerr << "error: a scenario needs its network (.rail) file\n";
        return 2;
    }

    const etcs::Resolution resolution{etcs::Meters(spatialMeters),
                                      etcs::Seconds(temporalSeconds)};
    bool provenInfeasible = false;
    bool anyErrors = false;
    bool first = true;
    if (json) {
        std::cout << "{\"reports\":[";
    }
    auto show = [&](const std::string& file, const LintReport& report,
                    const std::string& reachJson = std::string()) {
        anyErrors = anyErrors || report.hasErrors();
        if (json) {
            if (!first) {
                std::cout << ",";
            }
            std::cout << "{\"file\":\"" << file << "\",\"report\":";
            report.writeJson(std::cout);
            if (!reachJson.empty()) {
                std::cout << ",\"reach\":" << reachJson;
            }
            std::cout << "}";
        } else {
            if (report.empty()) {
                std::cout << file << ": no diagnostics\n";
            } else {
                report.write(std::cout, file);
            }
        }
        first = false;
    };

    try {
        std::optional<etcs::rail::Network> network;
        if (!networkFile.empty()) {
            std::ifstream in(networkFile);
            if (!in) {
                std::cerr << "error: cannot open " << networkFile << "\n";
                return 2;
            }
            LintReport report;
            network = etcs::lint::lintNetworkFile(in, report);
            if (scenarioFile.empty()) {
                etcs::lint::lintNetwork(*network, report);
            }
            show(networkFile, report);
        }
        if (!scenarioFile.empty()) {
            std::ifstream in(scenarioFile);
            if (!in) {
                if (json) {
                    std::cout << "]}\n";
                }
                std::cerr << "error: cannot open " << scenarioFile << "\n";
                return 2;
            }
            LintReport report;
            const etcs::rail::Scenario scenario =
                etcs::lint::lintScenarioFile(in, *network, report);
            etcs::lint::lintScenario(*network, scenario.trains, scenario.schedule,
                                     resolution, report);
            std::string reachJson;
            std::string reachText;
            if (reachMode) {
                // The reachability fixpoint needs a well-formed network for
                // the segment graph; skip it when structural lints failed.
                LintReport structural;
                etcs::lint::lintNetwork(*network, structural);
                if (!structural.hasErrors()) {
                    const etcs::rail::SegmentGraph graph(*network, resolution);
                    etcs::lint::lintReachability(graph, scenario.trains, scenario.schedule,
                                                 report);
                    const etcs::lint::ScheduleReach reach = etcs::lint::analyzeSchedule(
                        graph, scenario.trains, scenario.schedule);
                    std::ostringstream os;
                    writeReachReport(os, json, graph, scenario.trains, scenario.schedule,
                                     reach);
                    (json ? reachJson : reachText) = os.str();
                }
            }
            for (const char* code : {"L020", "L021", "L022", "L023", "L024", "L025",
                                     "L026", "L027", "R001", "R002"}) {
                provenInfeasible = provenInfeasible || report.has(code);
            }
            show(scenarioFile, report, reachJson);
            if (!reachText.empty()) {
                std::cout << reachText;
            }
        }
        if (!cnfFile.empty()) {
            std::ifstream in(cnfFile);
            if (!in) {
                if (json) {
                    std::cout << "]}\n";
                }
                std::cerr << "error: cannot open " << cnfFile << "\n";
                return 2;
            }
            const etcs::sat::CnfFormula formula = etcs::sat::readDimacs(in);
            const etcs::lint::CnfLintResult result = etcs::lint::lintFormula(formula);
            show(cnfFile, result.report);
        }
    } catch (const std::exception& e) {
        if (json) {
            std::cout << "]}\n";
        }
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    if (json) {
        std::cout << "],\"errors\":" << (anyErrors ? "true" : "false")
                  << ",\"proven_infeasible\":" << (provenInfeasible ? "true" : "false")
                  << "}\n";
    } else {
        if (provenInfeasible) {
            std::cout << "schedule proven infeasible (no SAT solver required)\n";
        }
        if (!anyErrors) {
            std::cout << "clean: no error-severity findings\n";
        }
    }
    return anyErrors ? 1 : 0;
}
