/// \file etcslint.cpp
/// Static analysis front-end for layouts, schedules and encodings.
///
/// Usage: etcslint [options] <network.rail> [scenario.sched] [formula.cnf|.dimacs]
///
/// Runs the instance linter (structural network checks, schedule feasibility
/// lower bounds) over the given files and, when a DIMACS file is present, the
/// CNF linter over the formula. Error-severity schedule findings are proofs
/// of unsatisfiability: the tool reports "schedule proven infeasible" without
/// ever invoking a SAT solver. See docs/LINTING.md for the code catalogue.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "lint/cnf_lint.hpp"
#include "lint/diagnostics.hpp"
#include "lint/rail_lint.hpp"
#include "sat/dimacs.hpp"
#include "util/units.hpp"

namespace {

using etcs::lint::LintReport;

void printUsage(std::ostream& os) {
    os << "usage: etcslint [options] <network.rail> [scenario.sched] [formula.cnf]\n"
          "  --rs <meters>    spatial resolution r_s for discretization (default 500)\n"
          "  --rt <seconds>   temporal resolution r_t for discretization (default 30)\n"
          "  --json           machine-readable JSON report instead of text\n"
          "  --codes          list every diagnostic code and exit\n"
          "  -h, --help       show this help\n"
          "Files are classified by extension: .rail network, .sched scenario,\n"
          ".cnf/.dimacs DIMACS formula. Exit code 0 when clean (warnings allowed),\n"
          "1 when any error-severity diagnostic was found, 2 on usage/IO errors.\n";
}

[[nodiscard]] bool endsWith(const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] std::optional<long> parseLong(const std::string& text) {
    try {
        std::size_t pos = 0;
        const long value = std::stol(text, &pos);
        if (pos != text.size()) {
            return std::nullopt;
        }
        return value;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

}  // namespace

int main(int argc, char** argv) {
    long spatialMeters = 500;
    long temporalSeconds = 30;
    bool json = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--codes") {
            for (const etcs::lint::CodeInfo& info : etcs::lint::knownCodes()) {
                std::cout << info.code << "  " << etcs::lint::severityName(info.severity)
                          << "  " << info.summary << "\n";
            }
            return 0;
        }
        if (arg == "--json") {
            json = true;
            continue;
        }
        if (arg == "--rs" || arg == "--rt") {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                return 2;
            }
            const auto value = parseLong(argv[++i]);
            if (!value || *value <= 0) {
                std::cerr << "error: " << arg << " needs a positive integer, got '"
                          << argv[i] << "'\n";
                return 2;
            }
            (arg == "--rs" ? spatialMeters : temporalSeconds) = *value;
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::cerr << "error: unknown option '" << arg << "'\n";
            printUsage(std::cerr);
            return 2;
        }
        files.push_back(arg);
    }
    if (files.empty()) {
        printUsage(std::cerr);
        return 2;
    }

    std::string networkFile;
    std::string scenarioFile;
    std::string cnfFile;
    for (const std::string& file : files) {
        std::string* slot = nullptr;
        if (endsWith(file, ".rail")) {
            slot = &networkFile;
        } else if (endsWith(file, ".sched")) {
            slot = &scenarioFile;
        } else if (endsWith(file, ".cnf") || endsWith(file, ".dimacs")) {
            slot = &cnfFile;
        } else {
            std::cerr << "error: cannot classify '" << file
                      << "' (expected .rail, .sched, .cnf or .dimacs)\n";
            return 2;
        }
        if (!slot->empty()) {
            std::cerr << "error: more than one " << file.substr(file.rfind('.'))
                      << " file given\n";
            return 2;
        }
        *slot = file;
    }
    if (networkFile.empty() && !scenarioFile.empty()) {
        std::cerr << "error: a scenario needs its network (.rail) file\n";
        return 2;
    }

    const etcs::Resolution resolution{etcs::Meters(spatialMeters),
                                      etcs::Seconds(temporalSeconds)};
    bool provenInfeasible = false;
    bool anyErrors = false;
    bool first = true;
    if (json) {
        std::cout << "{\"reports\":[";
    }
    auto show = [&](const std::string& file, const LintReport& report) {
        anyErrors = anyErrors || report.hasErrors();
        if (json) {
            if (!first) {
                std::cout << ",";
            }
            std::cout << "{\"file\":\"" << file << "\",\"report\":";
            report.writeJson(std::cout);
            std::cout << "}";
        } else {
            report.write(std::cout, file);
        }
        first = false;
    };

    try {
        std::optional<etcs::rail::Network> network;
        if (!networkFile.empty()) {
            std::ifstream in(networkFile);
            if (!in) {
                std::cerr << "error: cannot open " << networkFile << "\n";
                return 2;
            }
            LintReport report;
            network = etcs::lint::lintNetworkFile(in, report);
            if (scenarioFile.empty()) {
                etcs::lint::lintNetwork(*network, report);
            }
            show(networkFile, report);
        }
        if (!scenarioFile.empty()) {
            std::ifstream in(scenarioFile);
            if (!in) {
                if (json) {
                    std::cout << "]}\n";
                }
                std::cerr << "error: cannot open " << scenarioFile << "\n";
                return 2;
            }
            LintReport report;
            const etcs::rail::Scenario scenario =
                etcs::lint::lintScenarioFile(in, *network, report);
            etcs::lint::lintScenario(*network, scenario.trains, scenario.schedule,
                                     resolution, report);
            for (const char* code : {"L020", "L021", "L022", "L023", "L024", "L025",
                                     "L026", "L027"}) {
                provenInfeasible = provenInfeasible || report.has(code);
            }
            show(scenarioFile, report);
        }
        if (!cnfFile.empty()) {
            std::ifstream in(cnfFile);
            if (!in) {
                if (json) {
                    std::cout << "]}\n";
                }
                std::cerr << "error: cannot open " << cnfFile << "\n";
                return 2;
            }
            const etcs::sat::CnfFormula formula = etcs::sat::readDimacs(in);
            const etcs::lint::CnfLintResult result = etcs::lint::lintFormula(formula);
            show(cnfFile, result.report);
        }
    } catch (const std::exception& e) {
        if (json) {
            std::cout << "]}\n";
        }
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    if (json) {
        std::cout << "],\"errors\":" << (anyErrors ? "true" : "false")
                  << ",\"proven_infeasible\":" << (provenInfeasible ? "true" : "false")
                  << "}\n";
    } else {
        if (provenInfeasible) {
            std::cout << "schedule proven infeasible (no SAT solver required)\n";
        }
        if (!anyErrors) {
            std::cout << "clean: no error-severity findings\n";
        }
    }
    return anyErrors ? 1 : 0;
}
