/// \file dratcheck.cpp
/// Standalone DRAT proof checker for (DIMACS, proof) pairs.
///
/// Usage: dratcheck [-q] formula.cnf proof.drat
///
/// The proof may be text DRAT or binary DRAT (auto-detected). Prints
/// VERIFIED and exits 0 when the proof derives the empty clause from the
/// formula; prints NOT VERIFIED with a reason and exits 1 otherwise.
/// Exit code 2 signals a usage or input error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"

namespace {

void printUsage(std::ostream& os) {
    os << "usage: dratcheck [-q] formula.cnf proof.drat\n"
          "  -q, --quiet   suppress the statistics line\n"
          "Checks that the DRAT proof (text or binary, auto-detected)\n"
          "derives the empty clause from the DIMACS formula.\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quiet = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        printUsage(std::cerr);
        return 2;
    }

    try {
        std::ifstream cnfIn(paths[0]);
        if (!cnfIn) {
            std::cerr << "error: cannot open " << paths[0] << "\n";
            return 2;
        }
        const etcs::sat::CnfFormula formula = etcs::sat::readDimacs(cnfIn);

        std::ifstream proofIn(paths[1], std::ios::binary);
        if (!proofIn) {
            std::cerr << "error: cannot open " << paths[1] << "\n";
            return 2;
        }
        const etcs::sat::DratProof proof = etcs::sat::readDrat(proofIn);

        const etcs::sat::DratCheckResult result = etcs::sat::checkDrat(formula, proof);
        if (!quiet) {
            std::cout << "c formula: " << formula.numVariables << " vars, "
                      << formula.clauses.size() << " clauses\n"
                      << "c proof: " << result.stats.proofSteps << " steps, "
                      << result.stats.verifiedLemmas << " lemmas verified ("
                      << result.stats.ratLemmas << " RAT), " << result.stats.skippedLemmas
                      << " skipped, core " << result.stats.coreClauses << " clauses\n";
        }
        if (result.verified) {
            std::cout << "VERIFIED\n";
            return 0;
        }
        std::cout << "NOT VERIFIED: " << result.error << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
