/// \file etcs_explain.cpp
/// Domain-level infeasibility explanations for ETCS L3 scenarios.
///
///   etcs_explain <network.rail> <scenario.sched> --rs <m> --rt <s>
///                [--pure] [--no-shrink] [--json] [--out <file>]
///                [--cnf-out <file>] [--proof-out <file>]
///
/// Encodes the scenario with clause provenance, solves it with DRAT
/// logging, certifies an UNSAT verdict with the independent proof checker,
/// and maps the certified core back to trains, TTD sections and time steps
/// (see docs/EXPLAIN.md). --cnf-out / --proof-out export the formula and
/// proof so the certification can be replayed externally with dratcheck.
///
/// Exit code: 0 = feasible (nothing to explain),
///            1 = proven infeasible (report written),
///            2 = usage, input, or pipeline error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/explain.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "railway/io.hpp"
#include "sat/dimacs.hpp"
#include "sat/proof.hpp"

using namespace etcs;

namespace {

struct Options {
    std::string networkFile;
    std::string scenarioFile;
    Meters spatial{};
    Seconds temporal{};
    bool pureLayout = false;
    bool shrink = true;
    bool json = false;
    std::optional<std::string> outFile;
    std::optional<std::string> cnfFile;
    std::optional<std::string> proofFile;
};

void usage() {
    std::cerr << "usage: etcs_explain <network.rail> <scenario.sched> --rs <meters> "
                 "--rt <seconds> [--pure] [--no-shrink] [--json] [--out <file>] "
                 "[--cnf-out <file>] [--proof-out <file>]\n";
}

std::optional<Options> parseArguments(int argc, char** argv) {
    if (argc < 3) {
        return std::nullopt;
    }
    Options options;
    options.networkFile = argv[1];
    options.scenarioFile = argv[2];
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pure") == 0) {
            options.pureLayout = true;
            continue;
        }
        if (std::strcmp(argv[i], "--no-shrink") == 0) {
            options.shrink = false;
            continue;
        }
        if (std::strcmp(argv[i], "--json") == 0) {
            options.json = true;
            continue;
        }
        if (i + 1 >= argc) {
            return std::nullopt;
        }
        if (std::strcmp(argv[i], "--rs") == 0) {
            options.spatial = Meters(std::atoll(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--rt") == 0) {
            options.temporal = Seconds(std::atoll(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--out") == 0) {
            options.outFile = argv[i + 1];
        } else if (std::strcmp(argv[i], "--cnf-out") == 0) {
            options.cnfFile = argv[i + 1];
        } else if (std::strcmp(argv[i], "--proof-out") == 0) {
            options.proofFile = argv[i + 1];
        } else {
            return std::nullopt;
        }
        ++i;
    }
    if (options.spatial.count() <= 0 || options.temporal.count() <= 0) {
        std::cerr << "error: --rs and --rt are required and must be positive\n";
        return std::nullopt;
    }
    return options;
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = parseArguments(argc, argv);
    if (!options) {
        usage();
        return 2;
    }
    try {
        std::ifstream networkIn(options->networkFile);
        if (!networkIn) {
            std::cerr << "error: cannot open " << options->networkFile << "\n";
            return 2;
        }
        const rail::Network network = rail::readNetwork(networkIn);

        std::ifstream scenarioIn(options->scenarioFile);
        if (!scenarioIn) {
            std::cerr << "error: cannot open " << options->scenarioFile << "\n";
            return 2;
        }
        const rail::Scenario scenario = rail::readScenario(scenarioIn, network);

        const Resolution resolution{options->spatial, options->temporal};
        const core::Instance instance(network, scenario.trains, scenario.schedule,
                                      resolution);

        core::ExplainOptions explainOptions;
        explainOptions.shrinkCore = options->shrink;
        const core::VssLayout pure(instance.graph());
        const core::ExplainResult result = core::explainInfeasibility(
            instance, options->pureLayout ? &pure : nullptr, explainOptions);

        if (options->cnfFile) {
            if (!sat::writeDimacsFile(*options->cnfFile, result.formula)) {
                std::cerr << "error: cannot write " << *options->cnfFile << "\n";
                return 2;
            }
        }
        if (options->proofFile) {
            std::ofstream out(*options->proofFile);
            if (!out) {
                std::cerr << "error: cannot write " << *options->proofFile << "\n";
                return 2;
            }
            sat::TextDratWriter writer(out);
            sat::writeDrat(writer, result.proof);
            writer.flush();
        }

        std::ostream* os = &std::cout;
        std::ofstream file;
        if (options->outFile) {
            file.open(*options->outFile);
            if (!file) {
                std::cerr << "error: cannot write " << *options->outFile << "\n";
                return 2;
            }
            os = &file;
        }
        if (options->json) {
            core::writeExplanationJson(*os, result);
        } else {
            core::writeExplanationText(*os, result);
        }

        if (result.feasible) {
            return 0;
        }
        if (!result.error.empty()) {
            std::cerr << "error: " << result.error << "\n";
            return 2;
        }
        return 1;
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
