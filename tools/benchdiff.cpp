/// \file benchdiff.cpp
/// Diff two benchmark metric dumps (BENCH_*.json, the Registry::writeJson
/// format) and flag regressions.
///
///   benchdiff [--threshold <fraction>] [--pattern <substr>]... old.json new.json
///
/// Every numeric metric is flattened to a dotted key (counters.<name>,
/// gauges.<name>, histograms.<name>.<field>) and compared. Keys matching a
/// regression pattern (substring match; default: seconds, runtime,
/// conflicts, propagations) count as a regression when the new value exceeds
/// the old one by more than the threshold fraction (default 0.25). --pattern
/// replaces the default pattern set.
///
/// Exit code: 0 = no regressions, 1 = regressions found, 2 = usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using etcs::util::JsonValue;

void flatten(const JsonValue& value, const std::string& prefix,
             std::map<std::string, double>& out) {
    switch (value.type) {
        case JsonValue::Type::Number: out[prefix] = value.number; break;
        case JsonValue::Type::Object:
            for (const auto& [name, member] : value.members) {
                flatten(member, prefix.empty() ? name : prefix + "." + name, out);
            }
            break;
        case JsonValue::Type::Array: {
            std::size_t index = 0;
            for (const JsonValue& item : value.items) {
                flatten(item, prefix + "." + std::to_string(index++), out);
            }
            break;
        }
        default: break;  // strings/bools/nulls are not comparable metrics
    }
}

std::map<std::string, double> loadMetrics(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw etcs::InputError("cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::map<std::string, double> out;
    flatten(etcs::util::parseJson(buffer.str()), "", out);
    return out;
}

bool matchesAny(const std::string& key, const std::vector<std::string>& patterns) {
    for (const std::string& pattern : patterns) {
        if (key.find(pattern) != std::string::npos) {
            return true;
        }
    }
    return false;
}

std::string formatNumber(double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
}

void usage() {
    std::cerr << "usage: benchdiff [--threshold <fraction>] [--pattern <substr>]... "
                 "<old.json> <new.json>\n";
}

}  // namespace

int main(int argc, char** argv) {
    double threshold = 0.25;
    std::vector<std::string> patterns;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            threshold = std::atof(argv[++i]);
            if (!(threshold >= 0.0)) {
                std::cerr << "error: --threshold expects a nonnegative fraction\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--pattern") == 0 && i + 1 < argc) {
            patterns.emplace_back(argv[++i]);
        } else if (argv[i][0] == '-') {
            usage();
            return 2;
        } else {
            files.emplace_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        usage();
        return 2;
    }
    if (patterns.empty()) {
        patterns = {"seconds", "runtime", "conflicts", "propagations"};
    }

    try {
        const auto oldMetrics = loadMetrics(files[0]);
        const auto newMetrics = loadMetrics(files[1]);

        int changed = 0;
        int regressions = 0;
        for (const auto& [key, newValue] : newMetrics) {
            const auto it = oldMetrics.find(key);
            if (it == oldMetrics.end()) {
                continue;  // new metric: informational only
            }
            const double oldValue = it->second;
            const double delta = newValue - oldValue;
            if (std::fabs(delta) < 1e-9) {
                continue;
            }
            ++changed;
            const bool watched = matchesAny(key, patterns);
            // Relative increase against the old value; a 0 -> positive jump
            // on a watched metric is always a regression.
            const bool regressed =
                watched && delta > 0.0 &&
                (oldValue <= 0.0 || delta / oldValue > threshold);
            if (regressed) {
                ++regressions;
            }
            std::cout << (regressed ? "REGRESSION " : "           ") << key << ": "
                      << formatNumber(oldValue) << " -> " << formatNumber(newValue)
                      << " (delta " << formatNumber(delta);
            if (oldValue != 0.0) {
                std::cout << ", " << formatNumber(100.0 * delta / oldValue) << "%";
            }
            std::cout << ")\n";
        }
        for (const auto& [key, oldValue] : oldMetrics) {
            if (newMetrics.find(key) == newMetrics.end()) {
                std::cout << "           " << key << ": removed (was "
                          << formatNumber(oldValue) << ")\n";
            }
        }
        std::cout << changed << " metric(s) changed, " << regressions
                  << " regression(s) beyond threshold " << formatNumber(threshold) << "\n";
        return regressions > 0 ? 1 : 0;
    } catch (const etcs::Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
