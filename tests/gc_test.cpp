// Clause-database compaction tests: solving behaviour must be unchanged by
// garbage collection, and the automatic trigger must reclaim arena space.
#include <gtest/gtest.h>

#include <random>

#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(Var v) { return Literal::positive(v); }
Literal neg(Var v) { return Literal::negative(v); }

void addPigeonhole(Solver& solver, int pigeons, int holes) {
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p) {
        std::vector<Literal> atLeast;
        for (Var& v : row) {
            v = solver.addVariable();
            atLeast.push_back(pos(v));
        }
        solver.addClause(atLeast);
    }
    for (int j = 0; j < holes; ++j) {
        for (int i = 0; i < pigeons; ++i) {
            for (int k = i + 1; k < pigeons; ++k) {
                solver.addClause({neg(p[i][j]), neg(p[k][j])});
            }
        }
    }
}

TEST(GarbageCollection, ManualCompactionPreservesResults) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> varDist(0, 11);
    std::bernoulli_distribution signDist(0.5);
    for (int round = 0; round < 10; ++round) {
        Solver compacted;
        Solver reference;
        for (int v = 0; v < 12; ++v) {
            compacted.addVariable();
            reference.addVariable();
        }
        for (int c = 0; c < 48; ++c) {
            std::vector<Literal> clause;
            for (int k = 0; k < 3; ++k) {
                clause.push_back(Literal(varDist(rng), signDist(rng)));
            }
            compacted.addClause(clause);
            reference.addClause(clause);
        }
        // Interleave solving under assumptions with forced compactions.
        for (int probe = 0; probe < 6; ++probe) {
            const Literal assumption(varDist(rng), signDist(rng));
            const auto a = compacted.solve({assumption});
            const auto b = reference.solve({assumption});
            EXPECT_EQ(a, b) << "round " << round << " probe " << probe;
            compacted.compactClauseDatabase();
        }
        EXPECT_EQ(compacted.solve(), reference.solve()) << "round " << round;
    }
}

TEST(GarbageCollection, CompactionReclaimsWastedWords) {
    Solver solver;
    // Aggressive clause-DB reduction so clauses get freed.
    solver.options().learntSizeFactor = 0.001;
    solver.options().learntSizeIncrement = 1.01;
    addPigeonhole(solver, 8, 7);
    ASSERT_EQ(solver.solve(), SolveStatus::Unsat);
    // Either the automatic trigger already compacted, or waste remains and a
    // manual compaction removes it.
    if (solver.stats().garbageCollections == 0) {
        const std::size_t before = solver.wastedArenaWords();
        solver.compactClauseDatabase();
        EXPECT_LE(solver.wastedArenaWords(), before);
    }
    EXPECT_EQ(solver.wastedArenaWords(), 0u);
}

TEST(GarbageCollection, AutomaticTriggerFiresOnHardInstances) {
    Solver solver;
    solver.options().learntSizeFactor = 0.001;
    solver.options().learntSizeIncrement = 1.0;
    addPigeonhole(solver, 9, 8);
    ASSERT_EQ(solver.solve(), SolveStatus::Unsat);
    EXPECT_GT(solver.stats().removedClauses, 0u);
    EXPECT_GT(solver.stats().garbageCollections, 0u);
}

TEST(GarbageCollection, SolvingContinuesAfterCompactionMidSearch) {
    // Compaction between incremental calls with a model check afterwards.
    Solver solver;
    std::vector<Var> x;
    for (int i = 0; i < 20; ++i) {
        x.push_back(solver.addVariable());
    }
    for (int i = 0; i + 1 < 20; i += 2) {
        solver.addClause({pos(x[i]), pos(x[i + 1])});
        solver.addClause({neg(x[i]), neg(x[i + 1])});
    }
    ASSERT_EQ(solver.solve({pos(x[0])}), SolveStatus::Sat);
    solver.compactClauseDatabase();
    ASSERT_EQ(solver.solve({neg(x[0])}), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(x[1]), Value::True);
    solver.addClause({pos(x[0])});
    solver.compactClauseDatabase();
    EXPECT_EQ(solver.solve({neg(x[0])}), SolveStatus::Unsat);
}

}  // namespace
}  // namespace etcs::sat
