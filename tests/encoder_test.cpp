// Encoder behaviour on small hand-built instances: each constraint family
// is exercised in isolation as far as possible.
#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/validator.hpp"

namespace etcs::core {
namespace {

using rail::Network;
using rail::Schedule;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

constexpr Resolution kRes{Meters(500), Seconds(30)};

/// A single 6-segment, 3 km line in one TTD with stations at both ends.
struct LineWorld {
    Network network{"encline"};
    TrainSet trains;

    LineWorld() {
        const auto a = network.addNode("A");
        const auto b = network.addNode("B");
        const auto t = network.addTrack("t", a, b, Meters(3000));
        network.addTtd("T", {t});
        network.addStation("StA", t, Meters(0));
        network.addStation("StB", t, Meters(3000));
    }

    [[nodiscard]] TrainRun run(TrainId train, const char* from, const char* to, int depSteps,
                               std::optional<int> arrSteps) const {
        TrainRun r;
        r.train = train;
        r.origin = *network.findStation(from);
        r.departure = Seconds(depSteps * 30);
        r.stops.push_back(TimedStop{
            *network.findStation(to),
            arrSteps ? std::optional(Seconds(*arrSteps * 30)) : std::nullopt});
        return r;
    }
};

TEST(Encoder, SingleTrainFeasibleTrip) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 0, 8));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    const VssLayout layout(instance.graph());
    encoder.encode(&layout);
    ASSERT_EQ(backend->solve(), cnf::SolveStatus::Sat);
    const Solution solution = encoder.decode();
    EXPECT_TRUE(validateSolution(instance, solution).empty());
}

TEST(Encoder, MovementSpeedLimitMakesTightArrivalInfeasible) {
    LineWorld w;
    // 120 km/h = 2 segments/step, distance 5 -> at least 3 steps.
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule tooTight;
    tooTight.addRun(w.run(t, "StA", "StB", 0, 2));
    const Instance instance(w.network, w.trains, tooTight, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    const VssLayout layout(instance.graph());
    encoder.encode(&layout);
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Unsat);
}

TEST(Encoder, ExactMinimalTravelTimeIsFeasible) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule justRight;
    justRight.addRun(w.run(t, "StA", "StB", 0, 3));  // ceil(5/2) = 3
    const Instance instance(w.network, w.trains, justRight, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    const VssLayout layout(instance.graph());
    encoder.encode(&layout);
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Sat);
}

TEST(Encoder, LongTrainOccupiesChain) {
    LineWorld w;
    const auto t = w.trains.addTrain("Long", Speed::fromKmPerHour(120), Meters(1400));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 0, 8));
    const Instance instance(w.network, w.trains, s, kRes);
    ASSERT_EQ(instance.runs()[0].lengthSegments, 3);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    const VssLayout layout(instance.graph());
    encoder.encode(&layout);
    ASSERT_EQ(backend->solve(), cnf::SolveStatus::Sat);
    const Solution solution = encoder.decode();
    EXPECT_TRUE(validateSolution(instance, solution).empty());
    for (int step = 0; step <= 8; ++step) {
        const auto& occupied = solution.traces[0].occupied[static_cast<std::size_t>(step)];
        if (!occupied.empty()) {
            EXPECT_EQ(occupied.size(), 3u) << "step " << step;
        }
    }
}

TEST(Encoder, TwoTrainsOneTtdSameTimeIsInfeasibleOnPureLayout) {
    LineWorld w;
    const auto t1 = w.trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    const auto t2 = w.trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    // Both trains on the single-TTD line at overlapping times (same
    // direction, well separated in space -- still the same TTD).
    s.addRun(w.run(t1, "StA", "StB", 0, 8));
    s.addRun(w.run(t2, "StA", "StB", 4, 12));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    const VssLayout pure(instance.graph());
    encoder.encode(&pure);
    // T1 is still on the line at step 4 (it cannot have vanished: its pinned
    // arrival is step 8), so T2 cannot enter the single VSS.
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Unsat);
}

TEST(Encoder, TwoTrainsSeparatedByVirtualBorder) {
    LineWorld w;
    const auto t1 = w.trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    const auto t2 = w.trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t1, "StA", "StB", 0, 8));
    s.addRun(w.run(t2, "StA", "StB", 4, 12));
    const Instance instance(w.network, w.trains, s, kRes);

    // Free layout: the generation task can place borders -> feasible.
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    ASSERT_EQ(backend->solve(), cnf::SolveStatus::Sat);
    const Solution solution = encoder.decode();
    EXPECT_TRUE(validateSolution(instance, solution).empty());
    EXPECT_GT(solution.sectionCount, 1);
}

TEST(Encoder, OppositeTrainsCannotPassOnSingleTrack) {
    LineWorld w;
    const auto t1 = w.trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    const auto t2 = w.trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t1, "StA", "StB", 0, 10));
    s.addRun(w.run(t2, "StB", "StA", 0, 10));
    const Instance instance(w.network, w.trains, s, kRes);
    // Even with every border available, two opposing trains cannot swap
    // sides of a single track (C4, no pass-through).
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Unsat);
}

TEST(Encoder, DisablingPassThroughAllowsTheUnphysicalSwap) {
    // Ablation sanity check: without C4 the swap becomes (wrongly) feasible,
    // which is exactly why the constraint exists.
    LineWorld w;
    const auto t1 = w.trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    const auto t2 = w.trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t1, "StA", "StB", 0, 10));
    s.addRun(w.run(t2, "StB", "StA", 0, 10));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    EncoderOptions options;
    options.encodePassThrough = false;
    Encoder encoder(*backend, instance, options);
    encoder.encode(nullptr);
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Sat);
}

TEST(Encoder, UnreachablePinnedStopYieldsUnsat) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 5, 6));  // 1 step for 5 segments at v=2
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    EXPECT_EQ(backend->solve(), cnf::SolveStatus::Unsat);
}

TEST(Encoder, ConesDoNotChangeVerdicts) {
    LineWorld w;
    const auto t1 = w.trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    const auto t2 = w.trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(700));
    Schedule s;
    s.addRun(w.run(t1, "StA", "StB", 0, 6));
    s.addRun(w.run(t2, "StA", "StB", 4, 12));
    const Instance instance(w.network, w.trains, s, kRes);
    for (const bool freeLayout : {false, true}) {
        cnf::SolveStatus withCones;
        cnf::SolveStatus withoutCones;
        {
            const auto backend = cnf::makeInternalBackend();
            Encoder encoder(*backend, instance);
            const VssLayout pure(instance.graph());
            encoder.encode(freeLayout ? nullptr : &pure);
            withCones = backend->solve();
        }
        {
            const auto backend = cnf::makeInternalBackend();
            EncoderOptions options;
            options.pruneWithCones = false;
            Encoder encoder(*backend, instance, options);
            const VssLayout pure(instance.graph());
            encoder.encode(freeLayout ? nullptr : &pure);
            withoutCones = backend->solve();
        }
        EXPECT_EQ(withCones, withoutCones) << "freeLayout=" << freeLayout;
    }
}

TEST(Encoder, ConesShrinkTheFormula) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 0, 5));
    const Instance instance(w.network, w.trains, s, kRes);
    // Window pruning off in both encoders so the comparison isolates the
    // cone restriction (the window analysis subsumes cones on this line).
    const auto pruned = cnf::makeInternalBackend();
    {
        EncoderOptions options;
        options.pruneUnreachable = false;
        Encoder encoder(*pruned, instance, options);
        encoder.encode(nullptr);
    }
    const auto full = cnf::makeInternalBackend();
    {
        EncoderOptions options;
        options.pruneWithCones = false;
        options.pruneUnreachable = false;
        Encoder encoder(*full, instance, options);
        encoder.encode(nullptr);
    }
    EXPECT_LT(pruned->numVariables(), full->numVariables());
}

TEST(Encoder, DoneAllLiteralForcesCompletion) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 0, std::nullopt));
    s.setHorizon(Seconds(10 * 30));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    // Minimum: 3 steps of travel, done one step later.
    EXPECT_EQ(encoder.completionLowerBound(), 4);
    EXPECT_EQ(backend->solve({encoder.doneAllLiteral(3)}), cnf::SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({encoder.doneAllLiteral(4)}), cnf::SolveStatus::Sat);
    EXPECT_EQ(backend->solve({encoder.doneAllLiteral(9)}), cnf::SolveStatus::Sat);
}

TEST(Encoder, EncodeTwiceIsRejected) {
    LineWorld w;
    const auto t = w.trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    Schedule s;
    s.addRun(w.run(t, "StA", "StB", 0, 8));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    EXPECT_THROW(encoder.encode(nullptr), PreconditionError);
}

}  // namespace
}  // namespace etcs::core
