// Weighted minimization and scoped (always-assume) search tests.
#include <gtest/gtest.h>

#include "cnf/backend.hpp"
#include "opt/minimize.hpp"
#include "util/error.hpp"

namespace etcs::opt {
namespace {

using cnf::SolveStatus;

std::vector<Literal> makeInputs(SatBackend& backend, int n) {
    std::vector<Literal> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(Literal::positive(backend.addVariable()));
    }
    return inputs;
}

class WeightedStrategyTest : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(WeightedStrategyTest, PrefersCheapCover) {
    // Demand x0 | x1 with w(x0) = 5, w(x1) = 1 -> optimum 1 via x1.
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 2);
    backend->addClause({soft[0], soft[1]});
    const int weights[] = {5, 1};
    const auto result = minimizeWeightedTrueLiterals(*backend, soft, weights, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.optimum, 1);
    EXPECT_FALSE(backend->modelValue(soft[0]));
    EXPECT_TRUE(backend->modelValue(soft[1]));
}

TEST_P(WeightedStrategyTest, TradesManyCheapForOneExpensive) {
    // Force (x0) | (x1 & x2 & x3): x0 costs 4, the trio costs 3.
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 4);
    backend->addClause({soft[0], soft[1]});
    backend->addClause({soft[0], soft[2]});
    backend->addClause({soft[0], soft[3]});
    const int weights[] = {4, 1, 1, 1};
    const auto result = minimizeWeightedTrueLiterals(*backend, soft, weights, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.optimum, 3);
    EXPECT_FALSE(backend->modelValue(soft[0]));
}

TEST_P(WeightedStrategyTest, MatchesUnweightedWithUnitWeights) {
    const auto backend1 = cnf::makeInternalBackend();
    const auto backend2 = cnf::makeInternalBackend();
    const auto soft1 = makeInputs(*backend1, 6);
    const auto soft2 = makeInputs(*backend2, 6);
    for (int i = 0; i < 3; ++i) {
        backend1->addClause({soft1[2 * i], soft1[2 * i + 1]});
        backend2->addClause({soft2[2 * i], soft2[2 * i + 1]});
    }
    const int weights[] = {1, 1, 1, 1, 1, 1};
    const auto weighted = minimizeWeightedTrueLiterals(*backend1, soft1, weights, GetParam());
    const auto plain = minimizeTrueLiterals(*backend2, soft2, GetParam());
    ASSERT_TRUE(weighted.feasible);
    ASSERT_TRUE(plain.feasible);
    EXPECT_EQ(weighted.optimum, plain.optimum);
}

TEST_P(WeightedStrategyTest, InfeasibleReported) {
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 2);
    backend->addClause({soft[0]});
    backend->addClause({~soft[0]});
    const int weights[] = {1, 1};
    EXPECT_FALSE(minimizeWeightedTrueLiterals(*backend, soft, weights, GetParam()).feasible);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, WeightedStrategyTest,
                         ::testing::Values(SearchStrategy::LinearDown,
                                           SearchStrategy::LinearUp, SearchStrategy::Binary),
                         [](const ::testing::TestParamInfo<SearchStrategy>& info) {
                             std::string name(toString(info.param));
                             for (char& c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(WeightedMinimize, RejectsMismatchedWeights) {
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 3);
    const int weights[] = {1, 2};
    EXPECT_THROW(
        (void)minimizeWeightedTrueLiterals(*backend, soft, weights),
        PreconditionError);
}

TEST(WeightedMinimize, RejectsNonPositiveWeights) {
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 2);
    const int weights[] = {1, 0};
    EXPECT_THROW(
        (void)minimizeWeightedTrueLiterals(*backend, soft, weights),
        PreconditionError);
}

TEST(ScopedMinimize, AlwaysAssumeRestrictsTheSearch) {
    // Without scope: optimum 0. Scoped to y: the demand y -> (x0 | x1)
    // activates and the optimum becomes 1.
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 2);
    const Literal y = Literal::positive(backend->addVariable());
    backend->addClause({~y, soft[0], soft[1]});
    const auto unscoped = minimizeTrueLiterals(*backend, soft);
    ASSERT_TRUE(unscoped.feasible);
    EXPECT_EQ(unscoped.optimum, 0);
    const Literal scope[] = {y};
    const auto scoped = minimizeTrueLiterals(*backend, soft, SearchStrategy::LinearDown, {},
                                             scope);
    ASSERT_TRUE(scoped.feasible);
    EXPECT_EQ(scoped.optimum, 1);
}

TEST(ScopedMinimize, AlwaysAssumeAppliesToIndexSearch) {
    // Monotone chain y0 -> y1 -> ... with a scope literal that forbids the
    // first three indices.
    const auto backend = cnf::makeInternalBackend();
    const auto y = makeInputs(*backend, 6);
    for (int t = 0; t + 1 < 6; ++t) {
        backend->addClause({~y[t], y[t + 1]});
    }
    const Literal scope = Literal::positive(backend->addVariable());
    backend->addClause({~scope, ~y[2]});  // scope -> indices <= 2 infeasible
    const Literal scopeArr[] = {scope};
    const auto scoped = smallestFeasibleIndex(
        *backend, [&](int t) { return y[t]; }, 0, 5, SearchStrategy::Binary, scopeArr);
    ASSERT_TRUE(scoped.feasible);
    EXPECT_EQ(scoped.index, 3);
    const auto unscoped =
        smallestFeasibleIndex(*backend, [&](int t) { return y[t]; }, 0, 5);
    ASSERT_TRUE(unscoped.feasible);
    EXPECT_EQ(unscoped.index, 0);
}

}  // namespace
}  // namespace etcs::opt
