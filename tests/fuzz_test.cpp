// Randomized end-to-end property tests: random networks, random schedules —
// every decoded solution must validate, and task relationships must hold.
#include <gtest/gtest.h>

#include <random>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"
#include "support/test_seed.hpp"

namespace etcs::core {
namespace {

struct RandomWorld {
    rail::Network network{"fuzz"};
    rail::TrainSet trains;
    rail::Schedule schedule;
    Resolution resolution{Meters(500), Seconds(60)};
};

/// Build a random connected network: a random tree over `numNodes` nodes
/// plus a few parallel tracks (passing loops), one TTD per track, stations
/// scattered over the tracks.
RandomWorld makeRandomWorld(std::mt19937& rng) {
    RandomWorld world;
    std::uniform_int_distribution<int> nodeCount(4, 8);
    const int numNodes = nodeCount(rng);

    std::vector<NodeId> nodes;
    for (int i = 0; i < numNodes; ++i) {
        nodes.push_back(world.network.addNode("n" + std::to_string(i)));
    }

    std::uniform_int_distribution<int> lengthDist(1, 4);  // x 500 m
    int trackIndex = 0;
    auto addTrack = [&](NodeId a, NodeId b) {
        const std::string name = "t" + std::to_string(trackIndex++);
        const TrackId track =
            world.network.addTrack(name, a, b, Meters(500 * lengthDist(rng)));
        world.network.addTtd("T" + name, {track});
        return track;
    };

    // Random tree: node i attaches to a random earlier node.
    std::vector<TrackId> tracks;
    for (int i = 1; i < numNodes; ++i) {
        std::uniform_int_distribution<int> parent(0, i - 1);
        tracks.push_back(addTrack(nodes[static_cast<std::size_t>(parent(rng))],
                                  nodes[static_cast<std::size_t>(i)]));
    }
    // A couple of parallel tracks to create passing opportunities.
    std::uniform_int_distribution<int> extraCount(1, 2);
    std::uniform_int_distribution<int> pick(0, numNodes - 1);
    for (int e = extraCount(rng); e > 0; --e) {
        const int a = pick(rng);
        int b = pick(rng);
        if (a == b) {
            b = (b + 1) % numNodes;
        }
        tracks.push_back(
            addTrack(nodes[static_cast<std::size_t>(a)], nodes[static_cast<std::size_t>(b)]));
    }

    // Stations on distinct tracks.
    std::vector<StationId> stations;
    std::uniform_int_distribution<std::size_t> trackPick(0, tracks.size() - 1);
    std::vector<char> used(tracks.size(), 0);
    for (int s = 0; s < 4; ++s) {
        std::size_t track = trackPick(rng);
        for (std::size_t probe = 0; probe < tracks.size() && used[track] != 0; ++probe) {
            track = (track + 1) % tracks.size();
        }
        if (used[track] != 0) {
            break;
        }
        used[track] = 1;
        stations.push_back(world.network.addStation("S" + std::to_string(s), tracks[track],
                                                    Meters(0)));
    }
    world.network.validate();

    // Trains between random distinct stations, staggered by 2 steps, with
    // deadlines generous enough that single-track meets are schedulable.
    std::uniform_int_distribution<int> trainCount(1, 3);
    std::uniform_int_distribution<std::size_t> stationPick(0, stations.size() - 1);
    const int numTrains = trainCount(rng);
    for (int i = 0; i < numTrains; ++i) {
        const TrainId train = world.trains.addTrain(
            "tr" + std::to_string(i), Speed::fromKmPerHour(60 + 30 * (i % 3)), Meters(200));
        std::size_t from = stationPick(rng);
        std::size_t to = stationPick(rng);
        if (from == to) {
            to = (to + 1) % stations.size();
        }
        rail::TrainRun run;
        run.train = train;
        run.origin = stations[from];
        run.departure = Seconds(60 * 2 * i);
        // Deadline: total network length at slowest speed, once per train.
        const std::int64_t slack =
            world.network.totalLength().count() * 3600 / 60000 * (i + 1) + 600;
        run.stops.push_back(rail::TimedStop{stations[to],
                                            Seconds(run.departure.count() + slack)});
        world.schedule.addRun(run);
    }
    return world;
}

class FuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzTest, EndToEndProperties) {
    const unsigned seed = etcs::test::effectiveSeed(GetParam());
    std::mt19937 rng(seed);
    for (int round = 0; round < 5; ++round) {
        const RandomWorld world = makeRandomWorld(rng);
        const Instance timed(world.network, world.trains, world.schedule, world.resolution);
        SCOPED_TRACE(etcs::test::seedTrace(seed) + " round " + std::to_string(round));

        // Property 1: generation feasible <=> verification on finest layout.
        const auto finest = VssLayout::finest(timed.graph());
        const auto onFinest = verifySchedule(timed, finest);
        const auto generation = generateLayout(timed);
        EXPECT_EQ(onFinest.feasible, generation.feasible);

        if (!generation.feasible) {
            continue;
        }
        // Property 2: every decoded solution validates.
        EXPECT_TRUE(validateSolution(timed, *generation.solution).empty());
        EXPECT_TRUE(validateSolution(timed, *onFinest.solution).empty());

        // Property 3: the generated layout passes verification.
        const auto reverify = verifySchedule(timed, generation.solution->layout);
        EXPECT_TRUE(reverify.feasible);

        // Property 4: generated layout is minimal-or-equal vs finest.
        EXPECT_LE(generation.sectionCount, finest.sectionCount(timed.graph()));

        // Property 5: open-schedule optimization (same horizon) is feasible
        // and at least as fast as the timed schedule's span.
        rail::Schedule open;
        for (const auto& run : world.schedule.runs()) {
            rail::TrainRun openRun = run;
            openRun.stops.back().arrival.reset();
            open.addRun(openRun);
        }
        open.setHorizon(world.schedule.horizon());
        const Instance openInstance(world.network, world.trains, open, world.resolution);
        const auto optimization = optimizeSchedule(openInstance);
        ASSERT_TRUE(optimization.feasible);
        EXPECT_LE(optimization.completionSteps, openInstance.horizonSteps());
        EXPECT_TRUE(validateSolution(openInstance, *optimization.solution).empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace etcs::core
