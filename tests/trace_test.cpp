// Tracer tests: the Chrome trace file is valid JSON with balanced B/E
// events, log level parsing round-trips, and everything is a no-op when
// tracing is off.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace etcs::obs {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Minimal recursive-descent JSON validator — enough to certify that the
/// emitted trace parses. Accepts objects, arrays, strings (with escapes),
/// numbers, and the three literals.
class JsonValidator {
public:
    explicit JsonValidator(std::string_view text) : text_(text) {}

    bool valid() {
        skipSpace();
        return value() && (skipSpace(), pos_ == text_.size());
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skipSpace();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipSpace();
            if (!string()) return false;
            skipSpace();
            if (peek() != ':') return false;
            ++pos_;
            skipSpace();
            if (!value()) return false;
            skipSpace();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skipSpace();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipSpace();
            if (!value()) return false;
            skipSpace();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) return false;
                ++pos_;  // accept any escaped character (incl. \uXXXX prefix)
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;  // raw control character — must be escaped
            }
        }
        return false;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }
    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skipSpace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

std::size_t countOccurrences(const std::string& text, const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
        ++count;
    }
    return count;
}

class TraceFixture : public ::testing::Test {
protected:
    void TearDown() override {
        Tracer::stop();
        std::remove(path_.c_str());
    }
    std::string path_ = ::testing::TempDir() + "etcs_trace_test.json";
};

TEST_F(TraceFixture, DisabledByDefaultAndSpansAreNoops) {
    ASSERT_FALSE(tracingEnabled());
    {
        const Span span("never.recorded");
        Tracer::instant("also.never");
    }
    EXPECT_FALSE(tracingEnabled());
}

TEST_F(TraceFixture, ProducesValidJsonWithBalancedSpans) {
    ASSERT_TRUE(Tracer::start(path_));
    EXPECT_TRUE(tracingEnabled());
    {
        const Span outer("outer", R"({"k":1})");
        {
            const Span inner("inner");
            Tracer::instant("tick", R"({"n":"quote \" and backslash \\"})");
        }
        Tracer::counterValue("gauge", 42.5);
    }
    Tracer::stop();
    EXPECT_FALSE(tracingEnabled());

    const std::string text = slurp(path_);
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"B\""), countOccurrences(text, "\"ph\":\"E\""));
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"C\""), 1u);
    EXPECT_NE(text.find("\"outer\""), std::string::npos);
    EXPECT_NE(text.find("\"inner\""), std::string::npos);
}

TEST_F(TraceFixture, StopIsIdempotentAndEmptyTraceIsValid) {
    ASSERT_TRUE(Tracer::start(path_));
    Tracer::stop();
    Tracer::stop();
    const std::string text = slurp(path_);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
}

TEST_F(TraceFixture, RestartReplacesTraceFile) {
    ASSERT_TRUE(Tracer::start(path_));
    { const Span span("first"); }
    const std::string second = ::testing::TempDir() + "etcs_trace_test2.json";
    ASSERT_TRUE(Tracer::start(second));
    { const Span span("second"); }
    Tracer::stop();
    // The first file was finalized when the second was opened.
    const std::string firstText = slurp(path_);
    const std::string secondText = slurp(second);
    std::remove(second.c_str());
    EXPECT_TRUE(JsonValidator(firstText).valid()) << firstText;
    EXPECT_TRUE(JsonValidator(secondText).valid()) << secondText;
    EXPECT_NE(firstText.find("\"first\""), std::string::npos);
    EXPECT_EQ(firstText.find("\"second\""), std::string::npos);
    EXPECT_NE(secondText.find("\"second\""), std::string::npos);
}

TEST_F(TraceFixture, StartFailsOnUnwritablePath) {
    EXPECT_FALSE(Tracer::start("/nonexistent-dir-xyz/trace.json"));
    EXPECT_FALSE(tracingEnabled());
}

TEST(LogLevelTest, ParseRoundTrip) {
    EXPECT_EQ(parseLogLevel("trace"), LogLevel::Trace);
    EXPECT_EQ(parseLogLevel("DEBUG"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("Info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("bogus"), LogLevel::Off);
    for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error}) {
        EXPECT_EQ(parseLogLevel(toString(level)), level);
    }
}

TEST(LogLevelTest, ThresholdFiltering) {
    Tracer::setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    Tracer::setLogLevel(LogLevel::Off);
    EXPECT_FALSE(logEnabled(LogLevel::Error));
}

TEST(LogLevelTest, LogRecordsGoToFileAsJsonl) {
    const std::string path = ::testing::TempDir() + "etcs_log_test.jsonl";
    ASSERT_TRUE(Tracer::setLogFile(path));
    Tracer::setLogLevel(LogLevel::Info);
    log(LogLevel::Info, "test", "hello \"world\"", R"(,"n":3)");
    log(LogLevel::Debug, "test", "filtered out");
    Tracer::setLogLevel(LogLevel::Off);
    Tracer::setLogFile("");

    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++lines;
        EXPECT_TRUE(JsonValidator(line).valid()) << line;
        EXPECT_NE(line.find("\"component\":\"test\""), std::string::npos);
        EXPECT_NE(line.find("\"n\":3"), std::string::npos);
    }
    EXPECT_EQ(lines, 1u);
    std::remove(path.c_str());
}

TEST(JsonEscapeTest, EscapesSpecials) {
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    const std::string escaped = jsonEscape(std::string("a\x01") + "b");
    EXPECT_EQ(escaped.find('\x01'), std::string::npos);
}

}  // namespace
}  // namespace etcs::obs
