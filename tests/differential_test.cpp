// Differential correctness harness for the SAT core.
//
// Every instance is pushed through several independently implemented
// pipelines — the internal CDCL solver, the preprocessor + solver
// combination, and (when compiled in) Z3 — and the verdicts are
// cross-checked. SAT verdicts are validated by evaluating the model against
// the original formula; UNSAT verdicts are certified by checking the
// emitted DRAT proof with the independent backward checker, including runs
// with preprocessing and forced clause-database reductions.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "cnf/backend.hpp"
#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "sat/dimacs.hpp"
#include "sat/drat_check.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "studies/studies.hpp"
#include "support/formula_helpers.hpp"
#include "support/test_seed.hpp"

namespace etcs::sat {
namespace {

using etcs::test::makeRandomFormula;
using etcs::test::modelSatisfies;
using etcs::test::pigeonhole;
using etcs::test::proofCertifies;

struct PipelineResult {
    SolveStatus status = SolveStatus::Unknown;
    std::vector<Value> model;  ///< populated on Sat, indexed by variable
    DratProof proof;           ///< populated when a proof writer was attached
};

/// Pipeline A: the solver alone, logging a DRAT proof.
PipelineResult solvePlain(const CnfFormula& f, const SolverOptions* options = nullptr) {
    PipelineResult result;
    MemoryProofWriter proof;
    Solver solver;
    if (options != nullptr) {
        solver.options() = *options;
    }
    solver.setProofWriter(&proof);
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    result.status = solver.solve();
    if (result.status == SolveStatus::Sat) {
        result.model.resize(static_cast<std::size_t>(f.numVariables));
        for (Var v = 0; v < f.numVariables; ++v) {
            result.model[static_cast<std::size_t>(v)] = solver.modelValue(v);
        }
    }
    result.proof = proof.takeProof();
    return result;
}

/// Pipeline B: preprocessor + solver sharing one proof, model re-extended
/// with the preprocessor's fixed and pure literals.
PipelineResult solvePreprocessed(const CnfFormula& original) {
    PipelineResult result;
    MemoryProofWriter proof;
    CnfFormula simplified = original;
    const PreprocessResult pre = preprocess(simplified, &proof);
    if (pre.unsatisfiable) {
        result.status = SolveStatus::Unsat;
        result.proof = proof.takeProof();
        return result;
    }
    Solver solver;
    solver.setProofWriter(&proof);
    for (int v = 0; v < original.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : simplified.clauses) {
        solver.addClause(clause);
    }
    result.status = solver.solve();
    if (result.status == SolveStatus::Sat) {
        result.model.resize(static_cast<std::size_t>(original.numVariables));
        for (Var v = 0; v < original.numVariables; ++v) {
            result.model[static_cast<std::size_t>(v)] = solver.modelValue(v);
        }
        for (Literal l : pre.fixedLiterals) {
            result.model[static_cast<std::size_t>(l.var())] =
                l.sign() ? Value::False : Value::True;
        }
        for (Literal l : pre.pureLiterals) {
            result.model[static_cast<std::size_t>(l.var())] =
                l.sign() ? Value::False : Value::True;
        }
    }
    result.proof = proof.takeProof();
    return result;
}

#ifdef ETCS_HAVE_Z3
/// Pipeline C: Z3, a fully independent solver implementation.
SolveStatus solveZ3(const CnfFormula& f) {
    const auto backend = cnf::makeZ3Backend();
    for (int v = 0; v < f.numVariables; ++v) {
        backend->addVariable();
    }
    for (const auto& clause : f.clauses) {
        backend->addClause(clause);
    }
    return backend->solve();
}
#endif

/// (variables, clauses, clause size, seed) — one batch of the sweep.
using DiffCase = std::tuple<int, int, int, unsigned>;

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, PipelinesAgreeAndVerdictsAreCertified) {
    const auto [numVariables, numClauses, clauseSize, baseSeed] = GetParam();
    const unsigned seed = etcs::test::effectiveSeed(baseSeed);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);

    int satCount = 0;
    int unsatCount = 0;
    for (int round = 0; round < 25; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const CnfFormula f = makeRandomFormula(rng, numVariables, numClauses, clauseSize);

        const PipelineResult plain = solvePlain(f);
        const PipelineResult preprocessed = solvePreprocessed(f);
        ASSERT_NE(plain.status, SolveStatus::Unknown);
        ASSERT_EQ(plain.status, preprocessed.status);
#ifdef ETCS_HAVE_Z3
        ASSERT_EQ(plain.status, solveZ3(f));
#endif

        if (plain.status == SolveStatus::Sat) {
            ++satCount;
            EXPECT_TRUE(modelSatisfies(f, plain.model));
            EXPECT_TRUE(modelSatisfies(f, preprocessed.model));
        } else {
            ++unsatCount;
            EXPECT_TRUE(proofCertifies(f, plain.proof));
            EXPECT_TRUE(proofCertifies(f, preprocessed.proof));
        }
    }
    // The sweep spans under- and over-constrained densities; every batch
    // must actually exercise at least one of the two verdict paths.
    EXPECT_GT(satCount + unsatCount, 0);
}

// 8 batches x 25 instances = 200 randomized instances per run, spanning
// 2-SAT and 3/4-SAT below, at, and above the satisfiability threshold.
INSTANTIATE_TEST_SUITE_P(
    DensitySweep, DifferentialTest,
    ::testing::Values(DiffCase{12, 51, 3, 9001},   // ~4.3 (critical)
                      DiffCase{12, 72, 3, 9002},   // 6.0 (mostly UNSAT)
                      DiffCase{16, 68, 3, 9003},   // ~4.3
                      DiffCase{20, 100, 3, 9004},  // 5.0
                      DiffCase{10, 20, 2, 9005},   // 2-SAT mixed
                      DiffCase{10, 35, 2, 9006},   // 2-SAT mostly UNSAT
                      DiffCase{25, 107, 3, 9007},  // ~4.3, larger
                      DiffCase{30, 135, 4, 9008}   // 4-SAT under-threshold
                      ));

TEST(DifferentialProofs, SurviveForcedClauseDbReduction) {
    // A tiny learnt-DB ceiling forces reduceLearnedDb to fire constantly,
    // so the proof is full of deletion steps (and re-derived units for
    // dropped root reasons). The checker must still certify it.
    SolverOptions options;
    options.learntSizeFactor = 0.01;
    options.learntSizeFloor = 2.0;

    const CnfFormula php = pigeonhole(7, 6);
    MemoryProofWriter proof;
    Solver solver;
    solver.options() = options;
    solver.setProofWriter(&proof);
    for (int v = 0; v < php.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : php.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), SolveStatus::Unsat);
    ASSERT_GT(solver.stats().removedClauses, 0u)
        << "test misconfigured: no clause-DB reduction happened";
    EXPECT_GT(proof.deletions(), 0u);
    EXPECT_TRUE(proofCertifies(php, proof.proof()));
}

TEST(DifferentialProofs, RandomInstancesWithForcedReduction) {
    const unsigned seed = etcs::test::effectiveSeed(7777);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    SolverOptions options;
    options.learntSizeFactor = 0.01;
    options.learntSizeFloor = 2.0;

    int certified = 0;
    for (int round = 0; round < 20; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const CnfFormula f = makeRandomFormula(rng, 20, 120, 3);  // density 6: UNSAT-heavy
        const PipelineResult result = solvePlain(f, &options);
        if (result.status != SolveStatus::Unsat) {
            continue;
        }
        EXPECT_TRUE(proofCertifies(f, result.proof));
        ++certified;
    }
    EXPECT_GT(certified, 0);
}

// ------------------------------------------------------- ETCS instances --

struct EncodedInstance {
    CnfFormula sat;    ///< verification on the finest layout (feasible)
    CnfFormula unsat;  ///< same, plus completion pinned before its bound
};

EncodedInstance encodeStudy(const studies::CaseStudy& study) {
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    EncodedInstance out;
    {
        cnf::CollectingBackend backend;
        core::Encoder encoder(backend, instance);
        const auto finest = core::VssLayout::finest(instance.graph());
        encoder.encode(&finest);
        out.sat = backend.formula();
    }
    {
        cnf::CollectingBackend backend;
        core::Encoder encoder(backend, instance);
        const auto finest = core::VssLayout::finest(instance.graph());
        encoder.encode(&finest);
        const int bound = encoder.completionLowerBound();
        EXPECT_GE(bound, 1);
        backend.addUnit(encoder.doneAllLiteral(std::max(bound - 1, 0)));
        out.unsat = backend.formula();
    }
    return out;
}

class EncoderDifferentialTest
    : public ::testing::TestWithParam<studies::CaseStudy (*)()> {};

TEST_P(EncoderDifferentialTest, VerdictsMatchAndProofsCertify) {
    const studies::CaseStudy study = GetParam()();
    SCOPED_TRACE(study.name);
    const EncodedInstance encoded = encodeStudy(study);

    // The timed schedule is feasible on the finest layout: SAT, and the
    // model must satisfy the exported formula.
    const PipelineResult sat = solvePlain(encoded.sat);
    ASSERT_EQ(sat.status, SolveStatus::Sat);
    EXPECT_TRUE(modelSatisfies(encoded.sat, sat.model));

    // Pinning completion below its lower bound is UNSAT — and every
    // pipeline's refutation must be certified by the checker.
    const PipelineResult plain = solvePlain(encoded.unsat);
    ASSERT_EQ(plain.status, SolveStatus::Unsat);
    EXPECT_TRUE(proofCertifies(encoded.unsat, plain.proof));

    const PipelineResult preprocessed = solvePreprocessed(encoded.unsat);
    ASSERT_EQ(preprocessed.status, SolveStatus::Unsat);
    EXPECT_TRUE(proofCertifies(encoded.unsat, preprocessed.proof));

    // With forced clause-DB reductions on top.
    SolverOptions options;
    options.learntSizeFactor = 0.01;
    options.learntSizeFloor = 2.0;
    const PipelineResult reduced = solvePlain(encoded.unsat, &options);
    ASSERT_EQ(reduced.status, SolveStatus::Unsat);
    EXPECT_TRUE(proofCertifies(encoded.unsat, reduced.proof));
}

INSTANTIATE_TEST_SUITE_P(PaperLayouts, EncoderDifferentialTest,
                         ::testing::Values(&studies::runningExample,
                                           &studies::simpleLayout));

}  // namespace
}  // namespace etcs::sat
