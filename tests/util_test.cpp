// Tests for the utility foundation: strong ids, units, discretization.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace etcs {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
    NodeId id;
    EXPECT_FALSE(id.valid());
}

TEST(Ids, ValueRoundTrip) {
    NodeId id(7u);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.get(), 7u);
}

TEST(Ids, Ordering) {
    EXPECT_LT(NodeId(1u), NodeId(2u));
    EXPECT_EQ(NodeId(3u), NodeId(3u));
    EXPECT_NE(NodeId(3u), NodeId(4u));
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<NodeId, TrackId>);
    static_assert(!std::is_same_v<SegmentId, SegNodeId>);
}

TEST(Ids, Hashable) {
    std::unordered_set<TrainId> set;
    set.insert(TrainId(1u));
    set.insert(TrainId(2u));
    set.insert(TrainId(1u));
    EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, Increment) {
    SegmentId id(0u);
    ++id;
    EXPECT_EQ(id.get(), 1u);
}

TEST(Ids, StreamOutput) {
    std::ostringstream os;
    os << NodeId(5u) << " " << NodeId();
    EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(Units, MetersFromKilometers) {
    EXPECT_EQ(Meters::fromKilometers(1.5).count(), 1500);
    EXPECT_EQ(Meters::fromKilometers(0.5).kilometers(), 0.5);
}

TEST(Units, MetersArithmetic) {
    EXPECT_EQ((Meters(200) + Meters(300)).count(), 500);
    EXPECT_EQ((Meters(500) - Meters(200)).count(), 300);
    EXPECT_LT(Meters(100), Meters(200));
}

TEST(Units, SecondsFromMinutes) {
    EXPECT_EQ(Seconds::fromMinutes(0.5).count(), 30);
    EXPECT_EQ(Seconds::fromMinutes(5).count(), 300);
}

TEST(Units, ClockParseHoursMinutes) {
    EXPECT_EQ(Seconds::parse("0:01").count(), 60);
    EXPECT_EQ(Seconds::parse("0:04:30").count(), 270);
    EXPECT_EQ(Seconds::parse("1:00").count(), 3600);
    EXPECT_EQ(Seconds::parse("3:25").count(), 3 * 3600 + 25 * 60);
    EXPECT_EQ(Seconds::parse("5").count(), 300);  // bare minutes
}

TEST(Units, ClockParseRejectsGarbage) {
    EXPECT_THROW((void)Seconds::parse(""), InputError);
    EXPECT_THROW((void)Seconds::parse("abc"), InputError);
    EXPECT_THROW((void)Seconds::parse("1:2:3:4"), InputError);
    EXPECT_THROW((void)Seconds::parse("1::2"), InputError);
}

TEST(Units, ClockFormatRoundTrips) {
    for (const char* clock : {"0:00", "0:01", "0:04:30", "1:00", "3:25", "12:59:59"}) {
        const Seconds parsed = Seconds::parse(clock);
        EXPECT_EQ(Seconds::parse(parsed.clock()), parsed) << clock;
    }
    EXPECT_EQ(Seconds::parse("0:04:30").clock(), "0:04:30");
    EXPECT_EQ(Seconds::parse("0:01").clock(), "0:01");
}

TEST(Units, SpeedDistance) {
    const Speed s = Speed::fromKmPerHour(120);
    EXPECT_EQ(s.metresPerHour(), 120000);
    EXPECT_EQ(s.distanceIn(Seconds(30)).count(), 1000);
    EXPECT_EQ(s.distanceIn(Seconds(3600)).count(), 120000);
}

TEST(Resolution, SegmentsOfRoundsUp) {
    const Resolution r{Meters(500), Seconds(30)};
    EXPECT_EQ(r.segmentsOf(Meters(500)), 1);
    EXPECT_EQ(r.segmentsOf(Meters(501)), 2);
    EXPECT_EQ(r.segmentsOf(Meters(1500)), 3);
    EXPECT_EQ(r.segmentsOf(Meters(1)), 1);
}

TEST(Resolution, TrainLengthCeil) {
    const Resolution r{Meters(500), Seconds(30)};
    EXPECT_EQ(r.trainLengthSegments(Meters(400)), 1);
    EXPECT_EQ(r.trainLengthSegments(Meters(700)), 2);
    EXPECT_EQ(r.trainLengthSegments(Meters(100)), 1);
}

TEST(Resolution, SegmentsPerStepFloors) {
    const Resolution r{Meters(500), Seconds(30)};
    // 180 km/h = 1500 m per 30 s = 3 segments.
    EXPECT_EQ(r.segmentsPerStep(Speed::fromKmPerHour(180)), 3);
    // 120 km/h = 1000 m per 30 s = 2 segments.
    EXPECT_EQ(r.segmentsPerStep(Speed::fromKmPerHour(120)), 2);
    // 110 km/h = 916 m per 30 s -> floors to 1 segment.
    EXPECT_EQ(r.segmentsPerStep(Speed::fromKmPerHour(110)), 1);
}

TEST(Resolution, StepConversions) {
    const Resolution r{Meters(500), Seconds(30)};
    EXPECT_EQ(r.stepOf(Seconds(0)), 0);
    EXPECT_EQ(r.stepOf(Seconds(30)), 1);
    EXPECT_EQ(r.stepOf(Seconds(270)), 9);
    EXPECT_EQ(r.timeOf(9).count(), 270);
}

TEST(Resolution, RejectsNonPositiveInputs) {
    const Resolution r{Meters(500), Seconds(30)};
    EXPECT_THROW((void)r.segmentsOf(Meters(0)), PreconditionError);
    EXPECT_THROW((void)r.trainLengthSegments(Meters(-5)), PreconditionError);
    const Resolution bad{Meters(0), Seconds(30)};
    EXPECT_THROW((void)bad.segmentsOf(Meters(100)), PreconditionError);
}

TEST(Error, RequireMacroThrowsWithContext) {
    try {
        ETCS_REQUIRE_MSG(1 == 2, "math is broken");
        FAIL() << "expected a PreconditionError";
    } catch (const PreconditionError& e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    }
}

}  // namespace
}  // namespace etcs
