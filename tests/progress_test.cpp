// Progress-callback tests: the solver reports conflict-interval progress,
// a false return cancels the search with SolveStatus::Unknown, and the
// solver state stays valid for subsequent solve() calls.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(Var v) { return Literal::positive(v); }
Literal neg(Var v) { return Literal::negative(v); }

/// Pigeonhole instance PHP(pigeons, holes): UNSAT iff pigeons > holes, and
/// (for pigeons > holes) requires exponentially many conflicts — guaranteed
/// progress-callback traffic at a small interval.
std::vector<std::vector<Var>> addPigeonhole(Solver& s, int pigeons, int holes) {
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p) {
        std::vector<Literal> atLeastOne;
        for (Var& v : row) {
            v = s.addVariable();
            atLeastOne.push_back(pos(v));
        }
        s.addClause(atLeastOne);
    }
    for (int j = 0; j < holes; ++j) {
        for (int i = 0; i < pigeons; ++i) {
            for (int k = i + 1; k < pigeons; ++k) {
                s.addClause({neg(p[i][j]), neg(p[k][j])});
            }
        }
    }
    return p;
}

TEST(Progress, CallbackObservesMonotoneCounters) {
    Solver s;
    addPigeonhole(s, 8, 7);
    s.options().progressInterval = 16;
    std::vector<SolverProgress> reports;
    s.options().onProgress = [&reports](const SolverProgress& p) {
        reports.push_back(p);
        return true;  // keep going
    };
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
    ASSERT_GT(reports.size(), 1u);
    for (std::size_t i = 1; i < reports.size(); ++i) {
        EXPECT_GE(reports[i].conflicts, reports[i - 1].conflicts + 16);
        EXPECT_GE(reports[i].propagations, reports[i - 1].propagations);
        EXPECT_GE(reports[i].decisions, reports[i - 1].decisions);
    }
    EXPECT_GT(reports.back().propagations, 0u);
    EXPECT_GT(reports.back().decisions, 0u);
}

TEST(Progress, CancellationReturnsUnknown) {
    Solver s;
    addPigeonhole(s, 8, 7);
    s.options().progressInterval = 8;
    int calls = 0;
    s.options().onProgress = [&calls](const SolverProgress&) {
        ++calls;
        return calls < 3;  // cancel on the third report
    };
    EXPECT_EQ(s.solve(), SolveStatus::Unknown);
    EXPECT_EQ(calls, 3);
}

TEST(Progress, SolverStateSurvivesCancellationUnsatCase) {
    Solver s;
    addPigeonhole(s, 7, 6);
    s.options().progressInterval = 4;
    s.options().onProgress = [](const SolverProgress&) { return false; };
    ASSERT_EQ(s.solve(), SolveStatus::Unknown);
    EXPECT_TRUE(s.okay());

    // Clearing the callback and re-solving must reach the true verdict.
    s.options().onProgress = nullptr;
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(Progress, SolverStateSurvivesCancellationSatCase) {
    Solver s;
    // Satisfiable: as many holes as pigeons, plus a hard UNSAT-free core
    // that still generates conflicts on the way to a model.
    const auto p = addPigeonhole(s, 6, 6);
    s.options().progressInterval = 1;
    int calls = 0;
    s.options().onProgress = [&calls](const SolverProgress&) {
        ++calls;
        return false;
    };
    const SolveStatus first = s.solve();
    // A very easy instance may finish before the first report; both verdicts
    // are legal, but after clearing the callback we must always get Sat.
    EXPECT_TRUE(first == SolveStatus::Unknown || first == SolveStatus::Sat);

    s.options().onProgress = nullptr;
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    // The model is a real assignment: every pigeon sits somewhere, no hole
    // holds two pigeons.
    for (const auto& row : p) {
        int seated = 0;
        for (Var v : row) {
            seated += s.modelValue(v) == Value::True ? 1 : 0;
        }
        EXPECT_GE(seated, 1);
    }
    for (std::size_t j = 0; j < p[0].size(); ++j) {
        int occupants = 0;
        for (const auto& row : p) {
            occupants += s.modelValue(row[j]) == Value::True ? 1 : 0;
        }
        EXPECT_LE(occupants, 1);
    }
}

TEST(Progress, CancellationComposesWithAssumptions) {
    Solver s;
    addPigeonhole(s, 7, 6);
    const Var guard = s.addVariable();
    s.options().progressInterval = 4;
    s.options().onProgress = [](const SolverProgress&) { return false; };
    ASSERT_EQ(s.solve({pos(guard)}), SolveStatus::Unknown);

    s.options().onProgress = nullptr;
    EXPECT_EQ(s.solve({pos(guard)}), SolveStatus::Unsat);
    // The core must not blame the irrelevant assumption... it may, since a
    // core is any unsat subset, but the solve verdict itself must be exact.
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(Progress, LearntDbSizeReportedAndPeakTracked) {
    Solver s;
    addPigeonhole(s, 8, 7);
    s.options().progressInterval = 32;
    std::size_t maxReported = 0;
    s.options().onProgress = [&maxReported](const SolverProgress& p) {
        maxReported = std::max(maxReported, p.learntDbSize);
        return true;
    };
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
    EXPECT_GT(maxReported, 0u);
    EXPECT_GE(s.stats().peakLearnts, maxReported);
    EXPECT_GT(s.stats().maxDecisionLevel, 0u);
}

}  // namespace
}  // namespace etcs::sat
