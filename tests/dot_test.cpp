// Graphviz export smoke tests: the DOT output must be structurally complete
// (every node, track and border accounted for).
#include <gtest/gtest.h>

#include <sstream>

#include "core/layout.hpp"
#include "railway/dot.hpp"
#include "studies/studies.hpp"

namespace etcs::rail {
namespace {

std::size_t countOccurrences(const std::string& haystack, const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(Dot, NetworkExportMentionsEveryElement) {
    const auto study = studies::runningExample();
    std::ostringstream out;
    writeDot(out, study.network);
    const std::string dot = out.str();
    EXPECT_NE(dot.find("graph \"running_example\""), std::string::npos);
    for (const Node& node : study.network.nodes()) {
        EXPECT_NE(dot.find("\"" + node.name + "\""), std::string::npos) << node.name;
    }
    for (const Track& track : study.network.tracks()) {
        EXPECT_NE(dot.find(track.name), std::string::npos) << track.name;
    }
    for (const Station& station : study.network.stations()) {
        EXPECT_NE(dot.find("st_" + station.name), std::string::npos) << station.name;
    }
}

TEST(Dot, SegmentGraphExportHasOneEdgePerSegment) {
    const auto study = studies::runningExample();
    const SegmentGraph graph(study.network, study.resolution);
    std::ostringstream out;
    writeDot(out, graph);
    const std::string dot = out.str();
    EXPECT_EQ(countOccurrences(dot, " -- "), graph.numSegments());
}

TEST(Dot, BordersRenderedAsBoxes) {
    const auto study = studies::runningExample();
    const SegmentGraph graph(study.network, study.resolution);
    core::VssLayout layout(graph);
    // Count fixed borders, then raise one extra virtual border.
    std::size_t fixed = 0;
    SegNodeId candidate;
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (graph.node(SegNodeId(n)).fixedBorder) {
            ++fixed;
        } else if (!candidate.valid()) {
            candidate = SegNodeId(n);
        }
    }
    ASSERT_TRUE(candidate.valid());
    layout.setBorder(candidate, true);
    std::ostringstream out;
    writeDot(out, graph, &layout.flags());
    EXPECT_EQ(countOccurrences(out.str(), "shape=box"), fixed + 1);
}

TEST(Dot, OutputIsBalanced) {
    const auto study = studies::simpleLayout();
    const SegmentGraph graph(study.network, study.resolution);
    std::ostringstream out;
    writeDot(out, graph);
    const std::string dot = out.str();
    EXPECT_EQ(countOccurrences(dot, "{"), countOccurrences(dot, "}"));
    EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace etcs::rail
