// Tests for the design-space analyses: trade-off curves, delay robustness,
// and cost-weighted layout generation.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct AnalysisFixture : ::testing::Test {
    studies::CaseStudy study = studies::runningExample();
    Instance timed{study.network, study.trains, study.timedSchedule, study.resolution};
    Instance open{study.network, study.trains, study.openSchedule, study.resolution};
};

TEST_F(AnalysisFixture, TradeoffCurveIsMonotoneNonIncreasing) {
    const auto curve = tradeoffCurve(open, 5);
    ASSERT_GE(curve.size(), 2u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (curve[i - 1].feasible) {
            ASSERT_TRUE(curve[i].feasible) << "feasibility must be monotone in the budget";
            EXPECT_LE(curve[i].completionSteps, curve[i - 1].completionSteps);
        }
    }
}

TEST_F(AnalysisFixture, TradeoffCurveEndpointsMatchBaseTasks) {
    const auto curve = tradeoffCurve(open, 8);
    // Budget 0 = pure TTD layout: must match optimizeScheduleOnLayout.
    const VssLayout pure(open.graph());
    const auto onPure = optimizeScheduleOnLayout(open, pure);
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.front().feasible, onPure.feasible);
    if (onPure.feasible) {
        EXPECT_EQ(curve.front().completionSteps, onPure.completionSteps);
    }
    // Large budget: must match the unconstrained optimization.
    const auto free = optimizeSchedule(open);
    ASSERT_TRUE(free.feasible);
    const auto& last = curve.back();
    ASSERT_TRUE(last.feasible);
    EXPECT_EQ(last.completionSteps, free.completionSteps);
}

TEST_F(AnalysisFixture, TradeoffSectionCountRespectsBudget) {
    const auto curve = tradeoffCurve(open, 4);
    const int ttdSections = VssLayout(open.graph()).sectionCount(open.graph());
    for (const auto& point : curve) {
        if (point.feasible) {
            EXPECT_LE(point.sectionCount, ttdSections + point.extraBorders);
        }
    }
}

TEST_F(AnalysisFixture, RobustnessOnGeneratedLayout) {
    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    const auto report = delayRobustness(timed, generation.solution->layout, 3);
    ASSERT_EQ(report.feasible.size(), timed.numRuns());
    ASSERT_EQ(report.toleranceSteps.size(), timed.numRuns());
    for (std::size_t r = 0; r < timed.numRuns(); ++r) {
        ASSERT_EQ(report.feasible[r].size(), 3u);
        // Tolerance is consistent with the feasibility prefix.
        int prefix = 0;
        while (prefix < 3 && report.feasible[r][static_cast<std::size_t>(prefix)]) {
            ++prefix;
        }
        EXPECT_EQ(report.toleranceSteps[r], prefix);
    }
}

TEST_F(AnalysisFixture, RobustnessOnFinestLayoutIsNoWorse) {
    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    const auto onGenerated = delayRobustness(timed, generation.solution->layout, 2);
    const auto onFinest = delayRobustness(timed, VssLayout::finest(timed.graph()), 2);
    for (std::size_t r = 0; r < timed.numRuns(); ++r) {
        EXPECT_GE(onFinest.toleranceSteps[r], onGenerated.toleranceSteps[r]);
    }
}

TEST_F(AnalysisFixture, RobustnessWithoutArrivalShiftIsTighter) {
    // Keeping original deadlines while departing late can only be harder.
    const auto finest = VssLayout::finest(timed.graph());
    const auto shifted = delayRobustness(timed, finest, 2, /*shiftArrivals=*/true);
    const auto strict = delayRobustness(timed, finest, 2, /*shiftArrivals=*/false);
    for (std::size_t r = 0; r < timed.numRuns(); ++r) {
        EXPECT_LE(strict.toleranceSteps[r], shifted.toleranceSteps[r]);
    }
}

TEST_F(AnalysisFixture, WeightedGenerationWithUniformCostsMatchesPlain) {
    const auto plain = generateLayout(timed);
    const auto weighted = generateLayoutWeighted(timed, [](SegNodeId) { return 1; });
    ASSERT_TRUE(plain.feasible);
    ASSERT_TRUE(weighted.feasible);
    EXPECT_EQ(weighted.sectionCount, plain.sectionCount);
    EXPECT_TRUE(validateSolution(timed, *weighted.solution).empty());
}

TEST_F(AnalysisFixture, WeightedGenerationAvoidsExpensiveBorders) {
    // Make the border the plain generator picks (on the side track)
    // expensive; the weighted generator must place cheaper borders instead
    // (possibly more of them) or pay up -- either way total cost <= plain
    // plan's cost under the same weights.
    const auto plain = generateLayout(timed);
    ASSERT_TRUE(plain.feasible);
    const auto& graph = timed.graph();
    // Identify the plain solution's virtual borders.
    std::vector<bool> plainBorders = plain.solution->layout.flags();
    auto cost = [&](SegNodeId node) { return plainBorders[node.get()] ? 10 : 1; };
    const auto weighted = generateLayoutWeighted(timed, cost);
    ASSERT_TRUE(weighted.feasible);
    EXPECT_TRUE(validateSolution(timed, *weighted.solution).empty());
    int weightedCost = 0;
    int plainCost = 0;
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (graph.node(SegNodeId(n)).fixedBorder) {
            continue;
        }
        if (weighted.solution->layout.flags()[n]) {
            weightedCost += cost(SegNodeId(n));
        }
        if (plainBorders[n]) {
            plainCost += cost(SegNodeId(n));
        }
    }
    EXPECT_LE(weightedCost, plainCost);
}

TEST_F(AnalysisFixture, WeightedGenerationRejectsNonPositiveCosts) {
    EXPECT_THROW((void)generateLayoutWeighted(timed, [](SegNodeId) { return 0; }),
                 PreconditionError);
}

TEST_F(AnalysisFixture, TradeoffRejectsNegativeBudget) {
    EXPECT_THROW((void)tradeoffCurve(open, -1), PreconditionError);
}

TEST_F(AnalysisFixture, RobustnessRequiresTimedSchedule) {
    const VssLayout pure(open.graph());
    EXPECT_THROW((void)delayRobustness(open, pure, 2), PreconditionError);
}

TEST_F(AnalysisFixture, SlackOnFinestLayoutMatchesPhysicalBounds) {
    const auto finest = VssLayout::finest(timed.graph());
    const auto report = scheduleSlack(timed, finest);
    ASSERT_EQ(report.slackSteps.size(), timed.numRuns());
    for (std::size_t r = 0; r < timed.numRuns(); ++r) {
        // The schedule is feasible on the finest layout, so every run gets a
        // tightest arrival, bounded below by its unimpeded travel time.
        ASSERT_GE(report.tightestArrivalStep[r], 0);
        const auto& run = timed.runs()[r];
        const int travel = timed.segmentDistance(run.originSegment,
                                                 run.destination().segment);
        const int bound = run.departureStep +
                          (travel + run.speedSegments - 1) / run.speedSegments;
        EXPECT_GE(report.tightestArrivalStep[r], bound);
        EXPECT_LE(report.tightestArrivalStep[r], *run.destination().arrivalStep);
        EXPECT_EQ(report.slackSteps[r],
                  *run.destination().arrivalStep - report.tightestArrivalStep[r]);
    }
}

TEST_F(AnalysisFixture, SlackTightenedScheduleStaysFeasible) {
    // Re-verify with one run's arrival replaced by its tightest value.
    const auto finest = VssLayout::finest(timed.graph());
    const auto report = scheduleSlack(timed, finest);
    ASSERT_GE(report.tightestArrivalStep[0], 0);
    rail::Schedule tightened;
    for (std::size_t r = 0; r < study.timedSchedule.size(); ++r) {
        rail::TrainRun run = study.timedSchedule.runs()[r];
        if (r == 0) {
            run.stops.back().arrival =
                Seconds(study.resolution.temporal.count() * report.tightestArrivalStep[0]);
        }
        tightened.addRun(std::move(run));
    }
    tightened.setHorizon(study.timedSchedule.horizon());
    const Instance tightInstance(study.network, study.trains, tightened, study.resolution);
    EXPECT_TRUE(verifySchedule(tightInstance, finest).feasible);
}

TEST_F(AnalysisFixture, SlackOnInfeasibleLayoutIsMinusOne) {
    const VssLayout pure(timed.graph());  // schedule infeasible on pure TTD
    const auto report = scheduleSlack(timed, pure);
    for (std::size_t r = 0; r < timed.numRuns(); ++r) {
        EXPECT_EQ(report.tightestArrivalStep[r], -1);
        EXPECT_EQ(report.slackSteps[r], -1);
    }
}

TEST_F(AnalysisFixture, SlackRequiresTimedSchedule) {
    const auto finest = VssLayout::finest(open.graph());
    EXPECT_THROW((void)scheduleSlack(open, finest), PreconditionError);
}

TEST_F(AnalysisFixture, IndividualArrivalsRespectPriority) {
    const auto result = optimizeIndividualArrivals(open);
    ASSERT_TRUE(result.feasible);
    ASSERT_TRUE(result.solution.has_value());
    EXPECT_TRUE(validateSolution(open, *result.solution).empty());
    // The priority train's done step is a true minimum: one step earlier is
    // infeasible even before any other train is constrained.
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, open);
    encoder.encode(nullptr);
    const cnf::Literal everyone[] = {
        encoder.doneAllLiteral(open.horizonSteps() - 1)};
    const cnf::Literal oneEarlier = encoder.doneLiteral(0, result.doneSteps[0] - 1);
    std::vector<cnf::Literal> assumptions(everyone, everyone + 1);
    if (oneEarlier.valid()) {
        assumptions.push_back(oneEarlier);
        EXPECT_EQ(backend->solve(assumptions), cnf::SolveStatus::Unsat);
    }
}

TEST_F(AnalysisFixture, IndividualArrivalsWithReversedPriority) {
    std::vector<std::size_t> reversed(open.numRuns());
    for (std::size_t i = 0; i < reversed.size(); ++i) {
        reversed[i] = open.numRuns() - 1 - i;
    }
    const auto result = optimizeIndividualArrivals(open, reversed);
    ASSERT_TRUE(result.feasible);
    // The now-top-priority train (last run) can only improve or match its
    // done step from the default order.
    const auto defaultOrder = optimizeIndividualArrivals(open);
    ASSERT_TRUE(defaultOrder.feasible);
    EXPECT_LE(result.doneSteps.back(), defaultOrder.doneSteps.back());
}

TEST_F(AnalysisFixture, IndividualArrivalsRejectBadPriority) {
    EXPECT_THROW((void)optimizeIndividualArrivals(open, {0, 1}), PreconditionError);
}

}  // namespace
}  // namespace etcs::core
