/// \file cnf_lint_test.cpp
/// CNF linter: each seeded formula defect must produce its exact C0xx code,
/// the component decomposition must be correct, and the real encoder output
/// must be free of trivially-UNSAT defects.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "lint/cnf_lint.hpp"
#include "sat/dimacs.hpp"
#include "sat/types.hpp"
#include "studies/studies.hpp"

namespace etcs {
namespace {

using lint::CnfLintResult;
using lint::lintFormula;
using lint::Severity;
using sat::CnfFormula;
using sat::Literal;

Literal pos(int var1Based) { return Literal::positive(var1Based - 1); }
Literal neg(int var1Based) { return Literal::negative(var1Based - 1); }

TEST(CnfLint, CleanFormulaHasNoFindings) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), pos(2)}, {neg(1), neg(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_TRUE(result.report.empty());
    EXPECT_EQ(result.components.numComponents, 1u);
}

TEST(CnfLint, TautologyIsC001) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), neg(1), pos(2)}, {neg(2), pos(1)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C001"), 1u);
    EXPECT_FALSE(result.report.hasErrors());
}

TEST(CnfLint, DuplicateLiteralIsC002) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), pos(1), pos(2)}, {neg(1), neg(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C002"), 1u);
}

TEST(CnfLint, DuplicateClauseIsC003EvenReordered) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), pos(2)}, {pos(2), pos(1)}, {neg(1), neg(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C003"), 1u);
}

TEST(CnfLint, ContradictoryUnitsAreC004) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1)}, {neg(1)}, {pos(2), pos(1)}, {neg(2), pos(1)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C004"), 1u);
    EXPECT_TRUE(result.report.hasErrors());
}

TEST(CnfLint, UnreferencedVariableIsC005) {
    CnfFormula f;
    f.numVariables = 3;
    f.clauses = {{pos(1), pos(2)}, {neg(1), neg(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C005"), 1u);
}

TEST(CnfLint, PureLiteralIsC006Info) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), pos(2)}, {pos(1), neg(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C006"), 1u);
    EXPECT_EQ(result.report.count(Severity::Info), 1u);
}

TEST(CnfLint, EmptyClauseIsC007) {
    CnfFormula f;
    f.numVariables = 1;
    f.clauses = {{}, {pos(1)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C007"), 1u);
    EXPECT_TRUE(result.report.hasErrors());
}

TEST(CnfLint, OutOfRangeLiteralIsC008) {
    CnfFormula f;
    f.numVariables = 2;
    f.clauses = {{pos(1), pos(5)}, {neg(1), pos(2)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.report.countOf("C008"), 1u);
}

TEST(CnfLint, ComponentDecompositionIsC010) {
    CnfFormula f;
    f.numVariables = 5;
    // Two independent blocks: {1,2,3} and {4,5}.
    f.clauses = {{pos(1), pos(2)}, {neg(2), pos(3)}, {pos(4), neg(5)}, {neg(4), pos(5)}};
    const CnfLintResult result = lintFormula(f);
    EXPECT_EQ(result.components.numComponents, 2u);
    ASSERT_EQ(result.components.componentVariables.size(), 2u);
    EXPECT_EQ(result.components.componentVariables[0], 3u);
    EXPECT_EQ(result.components.componentVariables[1], 2u);
    EXPECT_EQ(result.report.countOf("C010"), 1u);
}

TEST(CnfLint, PerCodeCapFoldsOverflowIntoSummary) {
    CnfFormula f;
    f.numVariables = 1;
    for (int i = 0; i < 5; ++i) {
        f.clauses.push_back({pos(1), pos(1)});  // C002 every time
    }
    lint::CnfLintOptions options;
    options.maxDiagnosticsPerCode = 2;
    const CnfLintResult result = lintFormula(f, options);
    // 2 direct findings plus 1 capped-summary line, all carrying C002.
    EXPECT_EQ(result.report.countOf("C002"), 3u);
    bool sawSummary = false;
    for (const auto& d : result.report.diagnostics()) {
        sawSummary = sawSummary || d.message.find("capped") != std::string::npos;
    }
    EXPECT_TRUE(sawSummary);
}

/// The real encoder must never produce trivially-UNSAT structures on a
/// feasible instance: no empty clauses, no contradictory units, no literals
/// beyond the declared variable count.
TEST(CnfLint, EncoderOutputHasNoTrivialUnsatDefects) {
    const studies::CaseStudy study = studies::simpleLayout();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    cnf::CollectingBackend backend;
    core::Encoder encoder(backend, instance);
    const auto finest = core::VssLayout::finest(instance.graph());
    encoder.encode(&finest);
    const CnfLintResult result = lintFormula(backend.formula());
    EXPECT_FALSE(result.report.has("C004"));
    EXPECT_FALSE(result.report.has("C007"));
    EXPECT_FALSE(result.report.has("C008"));
    EXPECT_GE(result.components.numComponents, 1u);
}

}  // namespace
}  // namespace etcs
