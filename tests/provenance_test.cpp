// ProvenanceTable unit behaviour plus the attribution-soundness contract of
// the encoder's clause tagging: every clause of an encoding is covered by at
// most one span, and every clause of a certified UNSAT core maps to exactly
// one provenance record (or is provably untagged structural glue).
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/provenance.hpp"
#include "obs/metrics.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace etcs::core {
namespace {

using rail::Network;
using rail::Schedule;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

constexpr Resolution kRes{Meters(500), Seconds(30)};

// ------------------------------------------------------- table behaviour --

TEST(ProvenanceTable, TagsAClauseRange) {
    ProvenanceTable table;
    const ClauseProvenance record{"movement", 0, -1, 3, -1, -1};
    table.open(0, record);
    table.close(3);

    ASSERT_EQ(table.numSpans(), 1u);
    EXPECT_EQ(table.taggedClauses(), 3u);
    for (std::size_t clause = 0; clause < 3; ++clause) {
        ASSERT_NE(table.lookup(clause), nullptr);
        EXPECT_EQ(*table.lookup(clause), record);
        EXPECT_EQ(table.spanOf(clause), 0);
    }
    EXPECT_EQ(table.lookup(3), nullptr);
    EXPECT_EQ(table.spanOf(3), -1);
}

TEST(ProvenanceTable, GapsBetweenSpansStayUntagged) {
    ProvenanceTable table;
    table.open(2, ClauseProvenance{"movement", 0});
    table.close(4);
    table.open(7, ClauseProvenance{"schedule_pins", 1});
    table.close(8);

    ASSERT_EQ(table.numSpans(), 2u);
    EXPECT_EQ(table.taggedClauses(), 3u);
    for (const std::size_t untagged : {0u, 1u, 4u, 5u, 6u, 8u, 100u}) {
        EXPECT_EQ(table.lookup(untagged), nullptr) << "clause " << untagged;
        EXPECT_EQ(table.spanOf(untagged), -1) << "clause " << untagged;
    }
    EXPECT_EQ(table.spanOf(2), 0);
    EXPECT_EQ(table.spanOf(3), 0);
    EXPECT_EQ(table.spanOf(7), 1);
    EXPECT_EQ(table.record(1).family, "schedule_pins");
}

TEST(ProvenanceTable, EmptyContextIsDiscarded) {
    ProvenanceTable table;
    table.open(5, ClauseProvenance{"movement", 0});
    table.close(5);
    EXPECT_EQ(table.numSpans(), 0u);
    EXPECT_EQ(table.taggedClauses(), 0u);
}

TEST(ProvenanceTable, ReopenImplicitlyClosesThePreviousContext) {
    ProvenanceTable table;
    table.open(0, ClauseProvenance{"movement", 0});
    table.open(2, ClauseProvenance{"vss_separation", 0, 1});
    table.close(4);

    ASSERT_EQ(table.numSpans(), 2u);
    EXPECT_EQ(table.spanFirstClause(0), 0u);
    EXPECT_EQ(table.spanClauseCount(0), 2u);
    EXPECT_EQ(table.record(0).family, "movement");
    EXPECT_EQ(table.spanFirstClause(1), 2u);
    EXPECT_EQ(table.spanClauseCount(1), 2u);
    EXPECT_EQ(table.record(1).run2, 1);
}

TEST(ProvenanceTable, AdjacentIdenticalContextsMerge) {
    ProvenanceTable table;
    const ClauseProvenance record{"chain_occupancy", 2};
    table.open(0, record);
    table.close(3);
    table.open(3, record);
    table.close(5);

    ASSERT_EQ(table.numSpans(), 1u);
    EXPECT_EQ(table.spanClauseCount(0), 5u);
    EXPECT_EQ(table.taggedClauses(), 5u);
}

TEST(ProvenanceToString, RendersOnlySetFields) {
    EXPECT_EQ(toString(ClauseProvenance{"movement", 1, -1, 4, -1, -1}),
              "movement run=1 step=4");
    EXPECT_EQ(toString(ClauseProvenance{"vss_separation", 0, 1, 2, 3, 7}),
              "vss_separation run=0 run2=1 step=2 ttd=3 segment=7");
    EXPECT_EQ(toString(ClauseProvenance{"done_all_selectors"}), "done_all_selectors");
}

// ------------------------------------------------------- encoder tagging --

/// The corridor from tests/fixtures: three 1000 m tracks in three TTDs,
/// stations at both ends (graph distance 5 segments at 500 m resolution).
struct CorridorWorld {
    Network network{"corridor"};
    TrainSet trains;
    TrainId train;

    CorridorWorld() {
        const auto n0 = network.addNode("n0");
        const auto n1 = network.addNode("n1");
        const auto n2 = network.addNode("n2");
        const auto n3 = network.addNode("n3");
        const auto a = network.addTrack("a", n0, n1, Meters(1000));
        const auto b = network.addTrack("b", n1, n2, Meters(1000));
        const auto c = network.addTrack("c", n2, n3, Meters(1000));
        network.addTtd("T1", {a});
        network.addTtd("T2", {b});
        network.addTtd("T3", {c});
        network.addStation("SA", a, Meters(0));
        network.addStation("SB", c, Meters(1000));
        train = trains.addTrain("T", Speed::fromKmPerHour(120), Meters(200));
    }

    [[nodiscard]] Schedule schedule(int departureStep, std::optional<int> arrivalStep) const {
        TrainRun run;
        run.train = train;
        run.origin = *network.findStation("SA");
        run.departure = Seconds(departureStep * 30);
        run.stops.push_back(TimedStop{
            *network.findStation("SB"),
            arrivalStep ? std::optional(Seconds(*arrivalStep * 30)) : std::nullopt});
        Schedule schedule;
        schedule.addRun(run);
        return schedule;
    }
};

TEST(EncoderProvenance, DisabledByDefault) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(0, 6), kRes);
    cnf::CollectingBackend backend;
    Encoder encoder(backend, instance);
    encoder.encode(nullptr);
    EXPECT_EQ(encoder.provenance(), nullptr);
}

TEST(EncoderProvenance, EveryClauseHasAtMostOneSpan) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(0, 6), kRes);

    cnf::CollectingBackend backend;
    EncoderOptions options;
    options.trackProvenance = true;
    Encoder encoder(backend, instance, options);
    const VssLayout pure(instance.graph());
    encoder.encode(&pure);

    const ProvenanceTable* table = encoder.provenance();
    ASSERT_NE(table, nullptr);
    EXPECT_GT(table->numSpans(), 0u);

    std::size_t tagged = 0;
    for (std::size_t clause = 0; clause < backend.numClauses(); ++clause) {
        const int span = table->spanOf(clause);
        const ClauseProvenance* record = table->lookup(clause);
        // spanOf and lookup agree, and a tagged clause resolves to exactly
        // the record of its (unique) span.
        ASSERT_EQ(span >= 0, record != nullptr) << "clause " << clause;
        if (record != nullptr) {
            ++tagged;
            EXPECT_EQ(*record, table->record(static_cast<std::size_t>(span)));
            EXPECT_FALSE(record->family.empty());
        }
    }
    EXPECT_EQ(tagged, table->taggedClauses());
    EXPECT_LE(table->taggedClauses(), backend.numClauses());
    // The encoding is dominated by domain constraints; tagging must cover
    // the bulk of it, not just a token family.
    EXPECT_GT(table->taggedClauses(), backend.numClauses() / 2);
}

TEST(EncoderProvenance, RecordsPerEntityMetrics) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(0, 6), kRes);

    auto& registry = obs::Registry::global();
    const auto spansBefore = registry.counter("etcs.provenance.spans").value();
    const auto taggedBefore = registry.counter("etcs.provenance.clauses.tagged").value();

    cnf::CollectingBackend backend;
    EncoderOptions options;
    options.trackProvenance = true;
    Encoder encoder(backend, instance, options);
    encoder.encode(nullptr);

    const ProvenanceTable* table = encoder.provenance();
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(registry.counter("etcs.provenance.spans").value() - spansBefore,
              table->numSpans());
    EXPECT_EQ(registry.counter("etcs.provenance.clauses.tagged").value() - taggedBefore,
              table->taggedClauses());
}

// -------------------------------------------- core attribution roundtrip --

/// Solve a collected formula with DRAT logging and return the certified
/// core's original-clause indices.
std::vector<std::size_t> certifiedCore(const sat::CnfFormula& formula) {
    sat::MemoryProofWriter proof;
    sat::Solver solver;
    solver.setProofWriter(&proof);
    for (int v = 0; v < formula.numVariables; ++v) {
        solver.addVariable();
    }
    bool consistent = true;
    for (const auto& clause : formula.clauses) {
        consistent = solver.addClause(clause) && consistent;
    }
    if (consistent) {
        EXPECT_EQ(solver.solve(), sat::SolveStatus::Unsat);
    }
    const sat::DratCheckResult check = sat::checkDrat(formula, proof.proof());
    EXPECT_TRUE(check.verified) << check.error;
    return check.coreClauseIndices;
}

TEST(EncoderProvenance, CertifiedCoreClausesMapToExactlyOneRecord) {
    CorridorWorld w;
    // 120 km/h = 2 segments/step over distance 5 needs 3 steps; pinning the
    // arrival at step 2 is provably infeasible (same as fixtures/).
    const Instance instance(w.network, w.trains, w.schedule(0, 2), kRes);

    cnf::CollectingBackend backend;
    EncoderOptions options;
    options.trackProvenance = true;
    Encoder encoder(backend, instance, options);
    const VssLayout pure(instance.graph());
    encoder.encode(&pure);

    const ProvenanceTable* table = encoder.provenance();
    ASSERT_NE(table, nullptr);
    const std::vector<std::size_t> core = certifiedCore(backend.takeFormula());
    ASSERT_FALSE(core.empty());

    std::size_t tagged = 0;
    for (const std::size_t clause : core) {
        const int span = table->spanOf(clause);
        if (span < 0) {
            continue;  // structural glue clause; allowed but counted below
        }
        ++tagged;
        // Exactly one record: the span is unique, and lookup agrees with it.
        ASSERT_EQ(table->lookup(clause), &table->record(static_cast<std::size_t>(span)));
        EXPECT_FALSE(table->record(static_cast<std::size_t>(span)).family.empty());
    }
    // The refutation must cite at least one domain constraint — an all-glue
    // core would make explanations vacuous.
    EXPECT_GE(tagged, 1u);
}

}  // namespace
}  // namespace etcs::core
