// At-most-one / exactly-one encodings: all four encodings must accept every
// assignment with <= 1 (== 1) true input and reject everything else.
#include <gtest/gtest.h>

#include "cnf/amo.hpp"
#include "util/error.hpp"
#include "cnf/backend.hpp"

namespace etcs::cnf {
namespace {

std::vector<Literal> makeInputs(SatBackend& backend, int n) {
    std::vector<Literal> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(Literal::positive(backend.addVariable()));
    }
    return inputs;
}

std::vector<Literal> assignmentAssumptions(const std::vector<Literal>& inputs,
                                           std::uint32_t bits) {
    std::vector<Literal> assumptions;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        assumptions.push_back(((bits >> i) & 1u) != 0 ? inputs[i] : ~inputs[i]);
    }
    return assumptions;
}

using AmoCase = std::tuple<AmoEncoding, int>;

class AmoEncodingTest : public ::testing::TestWithParam<AmoCase> {};

TEST_P(AmoEncodingTest, AtMostOneAcceptsExactlyTheRightAssignments) {
    const auto [encoding, n] = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    addAtMostOne(*backend, inputs, encoding);
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
        const int trueCount = __builtin_popcount(bits);
        const auto assumptions = assignmentAssumptions(inputs, bits);
        const bool expected = trueCount <= 1;
        EXPECT_EQ(backend->solve(assumptions) == SolveStatus::Sat, expected)
            << toString(encoding) << " n=" << n << " bits=" << bits;
    }
}

TEST_P(AmoEncodingTest, ExactlyOneAcceptsExactlyTheRightAssignments) {
    const auto [encoding, n] = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    addExactlyOne(*backend, inputs, encoding);
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
        const int trueCount = __builtin_popcount(bits);
        const auto assumptions = assignmentAssumptions(inputs, bits);
        EXPECT_EQ(backend->solve(assumptions) == SolveStatus::Sat, trueCount == 1)
            << toString(encoding) << " n=" << n << " bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodingsAndSizes, AmoEncodingTest,
    ::testing::Combine(::testing::Values(AmoEncoding::Pairwise, AmoEncoding::Sequential,
                                         AmoEncoding::Commander, AmoEncoding::Product),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12)),
    [](const ::testing::TestParamInfo<AmoCase>& info) {
        return std::string(toString(std::get<0>(info.param))) + "_n" +
               std::to_string(std::get<1>(info.param));
    });

TEST(AmoEncoding, EmptyAndSingletonAreNoOps) {
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, 1);
    addAtMostOne(*backend, {}, AmoEncoding::Sequential);
    addAtMostOne(*backend, inputs, AmoEncoding::Sequential);
    EXPECT_EQ(backend->numClauses(), 0u);
    EXPECT_EQ(backend->solve({inputs[0]}), SolveStatus::Sat);
}

TEST(AmoEncoding, ExactlyOneOverEmptySetIsRejected) {
    const auto backend = makeInternalBackend();
    EXPECT_THROW(addExactlyOne(*backend, {}, AmoEncoding::Pairwise), PreconditionError);
}

TEST(AmoEncoding, PairwiseAddsNoAuxiliaryVariables) {
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, 6);
    const int before = backend->numVariables();
    addAtMostOne(*backend, inputs, AmoEncoding::Pairwise);
    EXPECT_EQ(backend->numVariables(), before);
    EXPECT_EQ(backend->numClauses(), 15u);  // C(6, 2)
}

TEST(AmoEncoding, SequentialIsLinearInClauses) {
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, 40);
    addAtMostOne(*backend, inputs, AmoEncoding::Sequential);
    EXPECT_LT(backend->numClauses(), 3u * 40u + 5u);
}

}  // namespace
}  // namespace etcs::cnf
