// CollectingBackend + DIMACS export tests: the exported instance must decide
// exactly like the in-process solve.
#include <gtest/gtest.h>

#include <sstream>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/tasks.hpp"
#include "sat/solver.hpp"
#include "studies/studies.hpp"

namespace etcs::cnf {
namespace {

TEST(CollectingBackend, RecordsVariablesAndClauses) {
    CollectingBackend backend;
    const Literal a = Literal::positive(backend.addVariable());
    const Literal b = Literal::positive(backend.addVariable());
    backend.addClause({a, b});
    backend.addUnit(~a);
    EXPECT_EQ(backend.numVariables(), 2);
    EXPECT_EQ(backend.numClauses(), 2u);
    EXPECT_EQ(backend.solve(), SolveStatus::Unknown);
    const auto formula = backend.formula();
    EXPECT_EQ(formula.numVariables, 2);
    ASSERT_EQ(formula.clauses.size(), 2u);
    EXPECT_EQ(formula.clauses[1], std::vector<Literal>{~a});
}

TEST(CollectingBackend, ExportedEtcsInstanceDecidesLikeDirectSolve) {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    for (const bool pureLayout : {true, false}) {
        CollectingBackend collector;
        core::Encoder encoder(collector, instance);
        const core::VssLayout pure(instance.graph());
        encoder.encode(pureLayout ? &pure : nullptr);

        // Round-trip through DIMACS text.
        std::stringstream buffer;
        sat::writeDimacs(buffer, collector.formula());
        const sat::CnfFormula parsed = sat::readDimacs(buffer);

        sat::Solver solver;
        for (int v = 0; v < parsed.numVariables; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : parsed.clauses) {
            solver.addClause(clause);
        }
        const auto viaExport = solver.solve();

        // Direct solve for comparison.
        const auto direct =
            pureLayout
                ? core::verifySchedule(instance, pure).feasible
                : core::generateLayout(instance).feasible;
        EXPECT_EQ(viaExport == sat::SolveStatus::Sat, direct)
            << (pureLayout ? "pure" : "free");
    }
}

}  // namespace
}  // namespace etcs::cnf
