// Cross-cutting property tests:
//  * every decoded solution passes the independent validator,
//  * SAT results are consistent with the greedy simulator oracle,
//  * layout refinement is monotone (adding borders never hurts),
//  * tightening the horizon is monotone for the optimizer.
#include <gtest/gtest.h>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "sim/simulator.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

using CorridorCase = std::tuple<int, int>;  // (stations, trains)

class CorridorPropertyTest : public ::testing::TestWithParam<CorridorCase> {
protected:
    studies::CaseStudy study = studies::corridor(std::get<0>(GetParam()),
                                                 std::get<1>(GetParam()),
                                                 Meters::fromKilometers(2.0),
                                                 Resolution{Meters(500), Seconds(60)});
};

TEST_P(CorridorPropertyTest, DecodedSolutionsAlwaysValidate) {
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    const auto generation = generateLayout(timed);
    if (generation.feasible) {
        EXPECT_TRUE(validateSolution(timed, *generation.solution).empty());
    }
    const Instance open(study.network, study.trains, study.openSchedule, study.resolution);
    const auto optimization = optimizeSchedule(open);
    if (optimization.feasible) {
        EXPECT_TRUE(validateSolution(open, *optimization.solution).empty());
    }
}

TEST_P(CorridorPropertyTest, LayoutRefinementIsMonotone) {
    // If the schedule works on some layout, it also works on any refinement
    // of that layout (more borders can only decouple trains).
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    const auto generation = generateLayout(timed);
    if (!generation.feasible) {
        GTEST_SKIP() << "instance infeasible even with free layout";
    }
    VssLayout refined = generation.solution->layout;
    // Raise every remaining candidate border.
    for (std::size_t n = 0; n < timed.graph().numNodes(); ++n) {
        if (!timed.graph().node(SegNodeId(n)).fixedBorder) {
            refined.setBorder(SegNodeId(n), true);
        }
    }
    const auto verification = verifySchedule(timed, refined);
    EXPECT_TRUE(verification.feasible);
}

TEST_P(CorridorPropertyTest, OptimizerIsMonotoneInHorizon) {
    const Instance open(study.network, study.trains, study.openSchedule, study.resolution);
    const auto base = optimizeSchedule(open);
    if (!base.feasible) {
        GTEST_SKIP() << "infeasible within the base horizon";
    }
    // Extending the horizon must not worsen the optimum.
    rail::Schedule extended;
    for (const auto& run : study.openSchedule.runs()) {
        extended.addRun(run);
    }
    extended.setHorizon(Seconds(study.openSchedule.horizon().count() +
                                4 * study.resolution.temporal.count()));
    const Instance larger(study.network, study.trains, extended, study.resolution);
    const auto more = optimizeSchedule(larger);
    ASSERT_TRUE(more.feasible);
    EXPECT_LE(more.completionSteps, base.completionSteps);
}

TEST_P(CorridorPropertyTest, SimulatorWitnessImpliesSat) {
    // If the greedy simulator completes all routes on the finest layout
    // within the horizon, the SAT optimizer must also find a plan that is at
    // least as fast.
    const Instance open(study.network, study.trains, study.openSchedule, study.resolution);
    const auto& graph = open.graph();
    std::vector<bool> allBorders(graph.numNodes(), true);
    const sim::Simulator simulator(graph, allBorders);
    std::vector<sim::SimTrain> simTrains;
    for (const auto& run : open.runs()) {
        sim::SimTrain t;
        t.train = run.train;
        t.route = graph.shortestPath(run.originSegment, run.destination().segment);
        t.departureStep = run.departureStep;
        t.lengthSegments = run.lengthSegments;
        t.speedSegments = run.speedSegments;
        simTrains.push_back(std::move(t));
    }
    const auto simResult = simulator.run(simTrains, open.horizonSteps() - 1);
    if (!simResult.completed) {
        GTEST_SKIP() << "greedy simulation did not finish (not a counterexample)";
    }
    const auto optimization = optimizeSchedule(open);
    ASSERT_TRUE(optimization.feasible)
        << "simulator found a witness but the optimizer reported infeasible";
    // The synchronous simulator is at least as strict as the encoding
    // (exclusivity, one-step headway, no pass-through), so a completed
    // simulation always has a SAT counterpart; gen_fuzz_test additionally
    // validates the simulated timeline itself as a solution.
}

INSTANTIATE_TEST_SUITE_P(Sweep, CorridorPropertyTest,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3)),
                         [](const ::testing::TestParamInfo<CorridorCase>& info) {
                             return "s" + std::to_string(std::get<0>(info.param)) + "_t" +
                                    std::to_string(std::get<1>(info.param));
                         });

TEST(Property, GenerationOptimumNeverExceedsFinestLayoutSections) {
    const auto study = studies::runningExample();
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    const auto finest = VssLayout::finest(timed.graph());
    EXPECT_LE(generation.sectionCount, finest.sectionCount(timed.graph()));
}

TEST(Property, VerifyGenerateConsistency) {
    // generateLayout is feasible iff verification on the finest layout is
    // feasible (the finest layout dominates all layouts).
    for (int trains = 1; trains <= 3; ++trains) {
        const auto study = studies::corridor(3, trains, Meters::fromKilometers(2.0),
                                             Resolution{Meters(500), Seconds(60)});
        const Instance timed(study.network, study.trains, study.timedSchedule,
                             study.resolution);
        const auto finest = VssLayout::finest(timed.graph());
        const bool verifyFinest = verifySchedule(timed, finest).feasible;
        const bool generate = generateLayout(timed).feasible;
        EXPECT_EQ(verifyFinest, generate) << "trains=" << trains;
    }
}

}  // namespace
}  // namespace etcs::core
