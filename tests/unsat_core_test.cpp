// Failed-assumption (unsat-core) regression tests with hand-verified
// minimal cores, including cores reported after incremental re-solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(int v) { return Literal::positive(v); }
Literal neg(int v) { return Literal::negative(v); }

std::vector<Literal> sorted(std::vector<Literal> lits) {
    std::sort(lits.begin(), lits.end());
    return lits;
}

TEST(UnsatCore, SingleContradictedAssumption) {
    // Formula forces b (via (a|b) and (-a|b)); assuming -b must fail with
    // the minimal core {-b}.
    Solver solver;
    const Var a = solver.addVariable();
    const Var b = solver.addVariable();
    solver.addClause({pos(a), pos(b)});
    solver.addClause({neg(a), pos(b)});
    ASSERT_EQ(solver.solve({neg(b)}), SolveStatus::Unsat);
    EXPECT_EQ(solver.conflictCore(), std::vector<Literal>{neg(b)});
}

TEST(UnsatCore, ImplicationChainNeedsBothEndpoints) {
    // x0 -> x1 -> x2; assuming {x0, -x2} is UNSAT and both assumptions are
    // required — the minimal core is exactly that pair.
    Solver solver;
    const Var x0 = solver.addVariable();
    const Var x1 = solver.addVariable();
    const Var x2 = solver.addVariable();
    solver.addClause({neg(x0), pos(x1)});
    solver.addClause({neg(x1), pos(x2)});
    ASSERT_EQ(solver.solve({pos(x0), neg(x2)}), SolveStatus::Unsat);
    EXPECT_EQ(sorted(solver.conflictCore()),
              sorted({pos(x0), neg(x2)}));
    // Each assumption alone is satisfiable.
    EXPECT_EQ(solver.solve({pos(x0)}), SolveStatus::Sat);
    EXPECT_EQ(solver.solve({neg(x2)}), SolveStatus::Sat);
}

TEST(UnsatCore, IrrelevantAssumptionsStayOut) {
    // Among five assumptions only the {x0, -x2} pair is contradictory; the
    // unconstrained y/z assumptions must not leak into the core.
    Solver solver;
    const Var x0 = solver.addVariable();
    const Var x1 = solver.addVariable();
    const Var x2 = solver.addVariable();
    const Var y = solver.addVariable();
    const Var z = solver.addVariable();
    solver.addClause({neg(x0), pos(x1)});
    solver.addClause({neg(x1), pos(x2)});
    ASSERT_EQ(solver.solve({pos(y), pos(x0), neg(z), neg(x2)}), SolveStatus::Unsat);
    EXPECT_EQ(sorted(solver.conflictCore()), sorted({pos(x0), neg(x2)}));
}

TEST(UnsatCore, ComplementaryAssumptionPair) {
    // Assuming both a and -a: the core is the complementary pair itself,
    // independent of the (satisfiable) formula.
    Solver solver;
    const Var a = solver.addVariable();
    const Var b = solver.addVariable();
    solver.addClause({pos(a), pos(b)});
    ASSERT_EQ(solver.solve({pos(a), neg(a)}), SolveStatus::Unsat);
    const std::vector<Literal> core = sorted(solver.conflictCore());
    EXPECT_EQ(core, sorted({pos(a), neg(a)}));
}

TEST(UnsatCore, RootLevelFalsifiedAssumption) {
    // The formula fixes a at the root; assuming -a fails immediately with
    // the minimal core {-a}.
    Solver solver;
    const Var a = solver.addVariable();
    solver.addClause({pos(a)});
    ASSERT_EQ(solver.solve({neg(a)}), SolveStatus::Unsat);
    EXPECT_EQ(solver.conflictCore(), std::vector<Literal>{neg(a)});
}

TEST(UnsatCore, CoreAfterIncrementalResolve) {
    // First solve succeeds; clauses added afterwards create a new
    // contradiction, and the re-solve must report the new minimal core.
    Solver solver;
    const Var p = solver.addVariable();
    const Var q = solver.addVariable();
    const Var r = solver.addVariable();
    solver.addClause({neg(p), pos(q)});
    ASSERT_EQ(solver.solve({pos(p), pos(r)}), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(q), Value::True);

    // New knowledge: q forbids r.
    solver.addClause({neg(q), neg(r)});
    ASSERT_EQ(solver.solve({pos(p), pos(r)}), SolveStatus::Unsat);
    EXPECT_EQ(sorted(solver.conflictCore()), sorted({pos(p), pos(r)}));

    // The solver stays usable: dropping either assumption is SAT again.
    ASSERT_EQ(solver.solve({pos(p)}), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(r), Value::False);
    ASSERT_EQ(solver.solve({pos(r)}), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(q), Value::False);
}

TEST(UnsatCore, CoreIsUnsatWhenReplayedAsUnits) {
    // Satisfiable 2-pigeons/2-holes placement; the assumptions put both
    // pigeons into hole 0, which is exactly the hand-verified minimal
    // core. Replaying the core as hard units must still be UNSAT.
    const auto addPlacement = [](Solver& s, std::span<const Var> vars) {
        s.addClause({pos(vars[0]), pos(vars[1])});  // pigeon 0 somewhere
        s.addClause({pos(vars[2]), pos(vars[3])});  // pigeon 1 somewhere
        s.addClause({neg(vars[0]), neg(vars[2])});  // hole 0 exclusive
        s.addClause({neg(vars[1]), neg(vars[3])});  // hole 1 exclusive
    };
    Solver solver;
    std::vector<Var> vars;
    for (int i = 0; i < 6; ++i) {  // 4 placement vars + 2 free decoys
        vars.push_back(solver.addVariable());
    }
    addPlacement(solver, vars);
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);

    const std::vector<Literal> assumptions = {pos(vars[4]), pos(vars[0]),
                                              pos(vars[2]), neg(vars[5])};
    ASSERT_EQ(solver.solve(assumptions), SolveStatus::Unsat);
    const std::vector<Literal> core = solver.conflictCore();
    EXPECT_EQ(sorted(core), sorted({pos(vars[0]), pos(vars[2])}));

    Solver replay;
    for (int i = 0; i < 6; ++i) {
        replay.addVariable();
    }
    addPlacement(replay, vars);
    bool consistent = true;
    for (Literal l : core) {
        consistent = replay.addClause({l}) && consistent;
    }
    EXPECT_TRUE(!consistent || replay.solve() == SolveStatus::Unsat);
}

}  // namespace
}  // namespace etcs::sat
