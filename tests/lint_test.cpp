/// \file lint_test.cpp
/// Instance linter: seeded network/schedule defects must produce their exact
/// diagnostic codes, the schedule lower bounds must agree with the SAT
/// solver (soundness), and the tasks must fail fast on lint-rejected
/// instances without a single solve call.
#include <gtest/gtest.h>

#include <sstream>

#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/tasks.hpp"
#include "lint/diagnostics.hpp"
#include "lint/rail_lint.hpp"
#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/segment_graph.hpp"
#include "railway/train.hpp"
#include "util/units.hpp"

namespace etcs {
namespace {

using lint::LintReport;
using lint::Severity;

constexpr Resolution kResolution{Meters(500), Seconds(30)};

/// A three-track corridor: SA --a(1000m)-- --b(1000m)-- --c(1000m)-- SB,
/// one TTD per track. At r_s=500 that is six segments; SA sits on a[0],
/// SB on c[1], graph distance 5.
struct Corridor {
    rail::Network network{"corridor"};
    StationId stationA;
    StationId stationB;

    Corridor() {
        const NodeId n0 = network.addNode("n0");
        const NodeId n1 = network.addNode("n1");
        const NodeId n2 = network.addNode("n2");
        const NodeId n3 = network.addNode("n3");
        const TrackId a = network.addTrack("a", n0, n1, Meters(1000));
        const TrackId b = network.addTrack("b", n1, n2, Meters(1000));
        const TrackId c = network.addTrack("c", n2, n3, Meters(1000));
        network.addTtd("T1", {a});
        network.addTtd("T2", {b});
        network.addTtd("T3", {c});
        stationA = network.addStation("SA", a, Meters(0));
        stationB = network.addStation("SB", c, Meters(1000));
    }
};

/// A 120 km/h train advances 1000 m = 2 segments per 30 s step; with 200 m
/// length it occupies one segment, so SA -> SB needs ceil(5/2) = 3 steps.
rail::TrainSet oneTrain() {
    rail::TrainSet trains;
    trains.addTrain("T", Speed::fromKmPerHour(120.0), Meters(200));
    return trains;
}

rail::Schedule runTo(StationId origin, Seconds departure, StationId destination,
                     std::optional<Seconds> arrival) {
    rail::Schedule schedule;
    schedule.addRun(rail::TrainRun{TrainId(0u), origin, departure,
                                   {rail::TimedStop{destination, arrival, Seconds(0)}}});
    return schedule;
}

/// core::Instance keeps references to its inputs, so tests that build one
/// must own the trains and schedule for as long as the instance lives.
struct LiveInstance {
    rail::TrainSet trains = oneTrain();
    rail::Schedule schedule;
    core::Instance instance;

    LiveInstance(const Corridor& world, Seconds arrival)
        : schedule(runTo(world.stationA, Seconds(0), world.stationB, arrival)),
          instance(world.network, trains, schedule, kResolution) {}
};

TEST(NetworkLint, CleanCorridorHasNoFindings) {
    const Corridor world;
    LintReport report;
    lint::lintNetwork(world.network, report);
    EXPECT_TRUE(report.empty()) << [&] {
        std::ostringstream os;
        report.write(os);
        return os.str();
    }();
}

TEST(NetworkLint, EmptyNetworkIsL016) {
    const rail::Network empty("void");
    LintReport report;
    lint::lintNetwork(empty, report);
    EXPECT_TRUE(report.has("L016"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(NetworkLint, IsolatedNodeIsL010) {
    Corridor world;
    world.network.addNode("nowhere");
    LintReport report;
    lint::lintNetwork(world.network, report);
    EXPECT_EQ(report.countOf("L010"), 1u);
    EXPECT_FALSE(report.has("L011")) << "isolated nodes must not double-report as L011";
}

TEST(NetworkLint, DisconnectedComponentIsL011) {
    Corridor world;
    const NodeId x = world.network.addNode("x");
    const NodeId y = world.network.addNode("y");
    const TrackId island = world.network.addTrack("island", x, y, Meters(700));
    world.network.addTtd("T4", {island});
    LintReport report;
    lint::lintNetwork(world.network, report);
    EXPECT_EQ(report.countOf("L011"), 1u);
    EXPECT_FALSE(report.has("L010"));
}

TEST(NetworkLint, TrackWithoutTtdIsL012) {
    Corridor world;
    const NodeId n3 = *world.network.findNode("n3");
    const NodeId n4 = world.network.addNode("n4");
    world.network.addTrack("orphan", n3, n4, Meters(400));
    LintReport report;
    lint::lintNetwork(world.network, report);
    EXPECT_EQ(report.countOf("L012"), 1u);
}

TEST(NetworkLint, ParallelEdgeInOneTtdIsL013) {
    rail::Network network("loops");
    const NodeId n0 = network.addNode("n0");
    const NodeId n1 = network.addNode("n1");
    const TrackId up = network.addTrack("up", n0, n1, Meters(800));
    const TrackId down = network.addTrack("down", n1, n0, Meters(800));
    network.addTtd("both", {up, down});
    LintReport report;
    lint::lintNetwork(network, report);
    EXPECT_EQ(report.countOf("L013"), 1u);

    // The legitimate layout — one TTD per loop side — is clean.
    rail::Network split("loops");
    const NodeId m0 = split.addNode("n0");
    const NodeId m1 = split.addNode("n1");
    const TrackId u = split.addTrack("up", m0, m1, Meters(800));
    const TrackId d = split.addTrack("down", m1, m0, Meters(800));
    split.addTtd("upT", {u});
    split.addTtd("downT", {d});
    LintReport splitReport;
    lint::lintNetwork(split, splitReport);
    EXPECT_FALSE(splitReport.has("L013"));
}

TEST(NetworkLint, DegreeAboveThreeIsL014) {
    rail::Network network("star");
    const NodeId hub = network.addNode("hub");
    std::vector<TrackId> tracks;
    for (int i = 0; i < 4; ++i) {
        const NodeId leaf = network.addNode("leaf" + std::to_string(i));
        tracks.push_back(network.addTrack("spoke" + std::to_string(i), hub, leaf, Meters(500)));
    }
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        network.addTtd("T" + std::to_string(i), {tracks[i]});
    }
    LintReport report;
    lint::lintNetwork(network, report);
    EXPECT_EQ(report.countOf("L014"), 1u);
    EXPECT_FALSE(report.hasErrors()) << "degree anomalies are warnings, not errors";
}

TEST(NetworkLint, NonContiguousTtdIsL015) {
    // Tracks a and c do not touch, yet share a TTD.
    rail::Network network("gap");
    const NodeId n0 = network.addNode("n0");
    const NodeId n1 = network.addNode("n1");
    const NodeId n2 = network.addNode("n2");
    const NodeId n3 = network.addNode("n3");
    const TrackId a = network.addTrack("a", n0, n1, Meters(1000));
    const TrackId b = network.addTrack("b", n1, n2, Meters(1000));
    const TrackId c = network.addTrack("c", n2, n3, Meters(1000));
    network.addTtd("outer", {a, c});
    network.addTtd("inner", {b});
    LintReport report;
    lint::lintNetwork(network, report);
    EXPECT_EQ(report.countOf("L015"), 1u);
}

TEST(ScheduleLint, FeasibleRunIsClean) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    const auto schedule =
        runTo(world.stationA, Seconds(0), world.stationB, Seconds(3 * 30));
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    EXPECT_TRUE(report.empty());
}

TEST(ScheduleLint, SpeedRoundingToZeroIsL020) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    rail::TrainSet slow;
    slow.addTrain("snail", Speed::fromKmPerHour(1.0), Meters(100));
    const auto schedule =
        runTo(world.stationA, Seconds(0), world.stationB, Seconds(600));
    LintReport report;
    lint::lintSchedule(graph, slow, schedule, report);
    EXPECT_TRUE(report.has("L020"));
}

TEST(ScheduleLint, ArrivalBeforePreviousStopIsL022) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    const auto schedule =
        runTo(world.stationA, Seconds(120), world.stationB, Seconds(30));
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    EXPECT_TRUE(report.has("L022"));
}

TEST(ScheduleLint, DepartureAfterHorizonIsL023) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    auto schedule = runTo(world.stationA, Seconds(600), world.stationB, std::nullopt);
    schedule.setHorizon(Seconds(120));
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    EXPECT_TRUE(report.has("L023"));
}

TEST(ScheduleLint, DeadlineBelowShortestPathBoundIsL024) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    // SA -> SB needs 3 steps; pinning the arrival at step 2 is provably
    // impossible.
    const auto schedule =
        runTo(world.stationA, Seconds(0), world.stationB, Seconds(2 * 30));
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    ASSERT_TRUE(report.has("L024"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(ScheduleLint, OpenStopBeyondHorizonIsL025) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    auto schedule = runTo(world.stationA, Seconds(0), world.stationB, std::nullopt);
    schedule.setHorizon(Seconds(60));  // 3 steps, but the run needs step 3
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    EXPECT_TRUE(report.has("L025"));
}

TEST(ScheduleLint, SharedOriginPinIsL026) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    rail::TrainSet trains;
    trains.addTrain("T1", Speed::fromKmPerHour(120.0), Meters(200));
    trains.addTrain("T2", Speed::fromKmPerHour(120.0), Meters(200));
    rail::Schedule schedule;
    schedule.addRun(rail::TrainRun{
        TrainId(0u), world.stationA, Seconds(0),
        {rail::TimedStop{world.stationB, Seconds(3 * 30), Seconds(0)}}});
    schedule.addRun(rail::TrainRun{
        TrainId(1u), world.stationA, Seconds(0),
        {rail::TimedStop{world.stationB, Seconds(5 * 30), Seconds(0)}}});
    LintReport report;
    lint::lintSchedule(graph, trains, schedule, report);
    EXPECT_TRUE(report.has("L026"));
}

TEST(ScheduleLint, TwoRunsPerTrainIsL027) {
    const Corridor world;
    const rail::SegmentGraph graph(world.network, kResolution);
    rail::Schedule schedule;
    schedule.addRun(rail::TrainRun{
        TrainId(0u), world.stationA, Seconds(0),
        {rail::TimedStop{world.stationB, Seconds(3 * 30), Seconds(0)}}});
    schedule.addRun(rail::TrainRun{
        TrainId(0u), world.stationB, Seconds(300),
        {rail::TimedStop{world.stationA, Seconds(600), Seconds(0)}}});
    LintReport report;
    lint::lintSchedule(graph, oneTrain(), schedule, report);
    EXPECT_EQ(report.countOf("L027"), 1u);
}

TEST(ScheduleLint, ScenarioWrapperStopsAtStructuralErrors) {
    Corridor world;
    world.network.addNode("nowhere");  // structural error L010
    LintReport report;
    lint::lintScenario(world.network, oneTrain(),
                       runTo(world.stationA, Seconds(0), world.stationB, Seconds(90)),
                       kResolution, report);
    EXPECT_TRUE(report.has("L010"));
    EXPECT_FALSE(report.has("L024"));
}

/// Soundness: the L024 lower bound must agree with the SAT solver. The
/// linter claims step 3 is the earliest arrival — so arrival at step 2 must
/// be UNSAT and arrival at step 3 must be SAT, on the finest layout.
TEST(LintSoundness, ShortestPathBoundMatchesSolver) {
    const Corridor world;
    core::TaskOptions noLint;
    noLint.lintInstance = false;

    const LiveInstance tight(world, Seconds(2 * 30));
    const auto tightLayout = core::VssLayout::finest(tight.instance.graph());
    const auto tightResult = core::verifySchedule(tight.instance, tightLayout, noLint);
    EXPECT_FALSE(tightResult.feasible) << "lint claims UNSAT; the solver must agree";
    EXPECT_GE(tightResult.stats.solveCalls, 1u);

    const LiveInstance exact(world, Seconds(3 * 30));
    const auto exactLayout = core::VssLayout::finest(exact.instance.graph());
    LintReport report;
    lint::lintSchedule(exact.instance.graph(), exact.instance.trains(),
                       exact.instance.schedule(), report);
    EXPECT_FALSE(report.hasErrors()) << [&] {
        std::ostringstream os;
        os << "the bound itself must lint clean:\n";
        report.write(os);
        return os.str();
    }();
    const auto exactResult = core::verifySchedule(exact.instance, exactLayout, noLint);
    EXPECT_TRUE(exactResult.feasible) << "one step later must be achievable";
}

TEST(TaskLintGate, VerifyFailsFastWithoutSolveCalls) {
    const Corridor world;
    const LiveInstance infeasible(world, Seconds(2 * 30));
    const auto layout = core::VssLayout::finest(infeasible.instance.graph());

    const auto gated = core::verifySchedule(infeasible.instance, layout);
    EXPECT_FALSE(gated.feasible);
    EXPECT_EQ(gated.stats.solveCalls, 0u) << "lint must reject before any solve";
    EXPECT_EQ(gated.stats.numVariables, 0);

    const auto generation = core::generateLayout(infeasible.instance);
    EXPECT_FALSE(generation.feasible);
    EXPECT_EQ(generation.stats.solveCalls, 0u);
}

TEST(TaskLintGate, OptOutStillSolves) {
    const Corridor world;
    const LiveInstance infeasible(world, Seconds(2 * 30));
    const auto layout = core::VssLayout::finest(infeasible.instance.graph());
    core::TaskOptions noLint;
    noLint.lintInstance = false;
    const auto result = core::verifySchedule(infeasible.instance, layout, noLint);
    EXPECT_FALSE(result.feasible);
    EXPECT_GE(result.stats.solveCalls, 1u);
}

TEST(TaskLintGate, FeasibleInstancePassesTheGate) {
    const Corridor world;
    const LiveInstance fine(world, Seconds(3 * 30));
    const auto layout = core::VssLayout::finest(fine.instance.graph());
    const auto result = core::verifySchedule(fine.instance, layout);
    EXPECT_TRUE(result.feasible);
    EXPECT_GE(result.stats.solveCalls, 1u);
}

TEST(Diagnostics, ReportCountsAndRendering) {
    LintReport report;
    report.add({"L024", Severity::Error, "train T", "unreachable deadline",
                "move the arrival", 7});
    report.add({"L013", Severity::Warning, "track up", "duplicate parallel edge", "", 0});
    EXPECT_EQ(report.size(), 2u);
    EXPECT_EQ(report.count(Severity::Error), 1u);
    EXPECT_EQ(report.count(Severity::Warning), 1u);
    EXPECT_TRUE(report.hasErrors());

    std::ostringstream text;
    report.write(text, "demo.sched");
    EXPECT_NE(text.str().find("demo.sched:7: error L024 [train T]"), std::string::npos)
        << text.str();
    EXPECT_NE(text.str().find("(fix: move the arrival)"), std::string::npos);

    std::ostringstream json;
    report.writeJson(json);
    EXPECT_NE(json.str().find("\"errors\":1"), std::string::npos) << json.str();
    EXPECT_NE(json.str().find("\"code\":\"L024\""), std::string::npos);
}

TEST(Diagnostics, MergeAccumulates) {
    LintReport a;
    a.add({"L010", Severity::Error, "node x", "isolated", "", 0});
    LintReport b;
    b.add({"L013", Severity::Warning, "track t", "duplicate", "", 0});
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_TRUE(a.has("L013"));
    EXPECT_EQ(a.count(Severity::Warning), 1u);
}

}  // namespace
}  // namespace etcs
