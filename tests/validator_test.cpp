// Validator tests: clean solutions pass; systematically corrupted solutions
// are caught with a matching violation message.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct ValidatorFixture : ::testing::Test {
    studies::CaseStudy study = studies::runningExample();
    Instance instance{study.network, study.trains, study.timedSchedule, study.resolution};
    Solution solution = [this] {
        const auto result = verifySchedule(instance, VssLayout::finest(instance.graph()));
        EXPECT_TRUE(result.feasible);
        return *result.solution;
    }();

    static bool anyViolationContains(const std::vector<std::string>& violations,
                                     const std::string& needle) {
        return std::any_of(violations.begin(), violations.end(), [&](const std::string& v) {
            return v.find(needle) != std::string::npos;
        });
    }
};

TEST_F(ValidatorFixture, CleanSolutionHasNoViolations) {
    EXPECT_TRUE(validateSolution(instance, solution).empty());
}

TEST_F(ValidatorFixture, DetectsOccupancyBeforeDeparture) {
    Solution corrupted = solution;
    // Train 3 departs at step 2; give it occupancy at step 0.
    corrupted.traces[2].occupied[0] = {instance.runs()[2].originSegment};
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "before its departure"));
}

TEST_F(ValidatorFixture, DetectsTeleportation) {
    Solution corrupted = solution;
    // Move train 1 to the far end of the network mid-journey.
    auto& occupied = corrupted.traces[0].occupied;
    for (std::size_t t = 1; t + 1 < occupied.size(); ++t) {
        if (!occupied[t].empty() && !occupied[t + 1].empty()) {
            const SegmentId here = occupied[t][0];
            // Find a segment farther than the train's speed.
            for (std::size_t s = 0; s < instance.graph().numSegments(); ++s) {
                if (instance.segmentDistance(here, SegmentId(s)) >
                    instance.runs()[0].speedSegments) {
                    occupied[t + 1] = {SegmentId(s)};
                    const auto violations = validateSolution(instance, corrupted);
                    EXPECT_TRUE(anyViolationContains(violations, "exceeds its speed"));
                    return;
                }
            }
        }
    }
    FAIL() << "fixture should contain a moving train";
}

TEST_F(ValidatorFixture, DetectsWrongTrainLength) {
    Solution corrupted = solution;
    // Train 2 is two segments long; truncate one step to a single segment.
    auto& occupied = corrupted.traces[1].occupied;
    for (auto& step : occupied) {
        if (step.size() == 2) {
            step.pop_back();
            break;
        }
    }
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "expected 2"));
}

TEST_F(ValidatorFixture, DetectsNonChainOccupancy) {
    Solution corrupted = solution;
    // Give train 2 two non-adjacent segments.
    auto& occupied = corrupted.traces[1].occupied;
    for (auto& step : occupied) {
        if (step.size() == 2) {
            // entry[0] (id 0) and exit[3] (id 10) are far apart.
            step = {SegmentId(0u), SegmentId(10u)};
            break;
        }
    }
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "chain"));
}

TEST_F(ValidatorFixture, DetectsSectionSharing) {
    // Rebuild the same movement on the PURE layout: trains that were in
    // separate virtual sections now share TTDs.
    Solution corrupted = solution;
    corrupted.layout = VssLayout(instance.graph());
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "exclusivity"));
}

TEST_F(ValidatorFixture, DetectsMissedPinnedStop) {
    Solution corrupted = solution;
    // Erase train 1's occupancy at its pinned arrival step (step 9).
    corrupted.traces[0].occupied[9].clear();
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "pinned stop") ||
                anyViolationContains(violations, "reappears"));
}

TEST_F(ValidatorFixture, DetectsVanishAndReappear) {
    Solution corrupted = solution;
    auto& occupied = corrupted.traces[0].occupied;
    // Find two consecutive present steps and clear the first of them.
    for (std::size_t t = 1; t + 1 < occupied.size(); ++t) {
        if (!occupied[t - 1].empty() && !occupied[t].empty() && !occupied[t + 1].empty()) {
            occupied[t].clear();
            break;
        }
    }
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "reappears"));
}

TEST_F(ValidatorFixture, DetectsMissingTrain) {
    Solution corrupted = solution;
    for (auto& step : corrupted.traces[3].occupied) {
        step.clear();
    }
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_TRUE(anyViolationContains(violations, "never appears"));
}

TEST_F(ValidatorFixture, DetectsPassThrough) {
    // Hand-build a two-train head-on swap on a 2-segment line.
    rail::Network network("swap");
    const auto a = network.addNode("A");
    const auto b = network.addNode("B");
    const auto t = network.addTrack("t", a, b, Meters(1000));
    network.addTtd("T", {t});
    network.addStation("SA", t, Meters(0));
    network.addStation("SB", t, Meters(1000));
    rail::TrainSet trains;
    trains.addTrain("T1", Speed::fromKmPerHour(120), Meters(100));
    trains.addTrain("T2", Speed::fromKmPerHour(120), Meters(100));
    rail::Schedule schedule;
    for (int i = 0; i < 2; ++i) {
        rail::TrainRun run;
        run.train = TrainId(static_cast<std::size_t>(i));
        run.origin = StationId(static_cast<std::size_t>(i));
        run.departure = Seconds(0);
        run.stops.push_back(rail::TimedStop{StationId(static_cast<std::size_t>(1 - i)),
                                            Seconds(30)});
        schedule.addRun(run);
    }
    const Instance swapInstance(network, trains, schedule, Resolution{Meters(500), Seconds(30)});

    Solution swap{VssLayout::finest(swapInstance.graph()), {}, 2, 2};
    swap.traces.resize(2);
    swap.traces[0].occupied = {{SegmentId(0u)}, {SegmentId(1u)}};
    swap.traces[1].occupied = {{SegmentId(1u)}, {SegmentId(0u)}};
    const auto violations = validateSolution(swapInstance, swap);
    EXPECT_TRUE(anyViolationContains(violations, "pass-through"));
}

}  // namespace
}  // namespace etcs::core
