// Metrics registry tests: counter/gauge semantics, histogram quantile
// correctness against known distributions, and JSON export.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace etcs::obs {
namespace {

TEST(Counter, AccumulatesAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
    Gauge g;
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, SingleSampleQuantilesCollapse) {
    Histogram h;
    h.observe(3.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 3.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
    // All quantiles clamp into [min, max] = {3}.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, UniformDistributionQuantiles) {
    Histogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.observe(static_cast<double>(i));
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_NEAR(h.mean(), 500.5, 1e-9);
    // Exponential buckets with 1.1 growth: ~10% relative resolution; allow
    // a generous 15% band around the exact order statistics.
    EXPECT_NEAR(h.quantile(0.5), 500.0, 75.0);
    EXPECT_NEAR(h.quantile(0.9), 900.0, 135.0);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 150.0);
    EXPECT_LE(h.quantile(1.0), 1000.0 + 1e-9);
    EXPECT_GE(h.quantile(0.0), 1.0 - 1e-9);
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.75));
}

TEST(Histogram, SkewedDistributionQuantiles) {
    Histogram h;
    // 99 fast samples at ~1ms, one slow sample at 10s.
    for (int i = 0; i < 99; ++i) {
        h.observe(0.001);
    }
    h.observe(10.0);
    EXPECT_NEAR(h.quantile(0.5), 0.001, 0.001 * 0.15);
    EXPECT_NEAR(h.quantile(0.99), 0.001, 0.001 * 0.15);
    EXPECT_NEAR(h.quantile(1.0), 10.0, 10.0 * 0.15);
}

TEST(Histogram, NegativeAndSubresolutionSamplesClampToZeroBucket) {
    Histogram h;
    h.observe(-5.0);   // clamped to 0
    h.observe(1e-12);  // below first bound
    EXPECT_EQ(h.count(), 2u);
    EXPECT_NEAR(h.quantile(0.5), 0.0, 1e-9);
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
    Histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) {
                h.observe(1.0);
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Registry, SameNameReturnsSameMetric) {
    Registry registry;
    Counter& a = registry.counter("x");
    Counter& b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7u);
    // Different kinds live in different namespaces.
    registry.gauge("x").set(1.0);
    EXPECT_EQ(registry.counter("x").value(), 7u);
}

TEST(Registry, JsonExportContainsAllMetrics) {
    Registry registry;
    registry.counter("solver.conflicts").add(12);
    registry.gauge("incumbent").set(3.5);
    registry.histogram("solve_seconds").observe(0.25);
    const std::string json = registry.toJson();
    EXPECT_NE(json.find("\"solver.conflicts\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"incumbent\": 3.5"), std::string::npos);
    EXPECT_NE(json.find("\"solve_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(Registry, ResetZerosButKeepsRegistration) {
    Registry registry;
    Counter& c = registry.counter("n");
    c.add(5);
    registry.histogram("h").observe(1.0);
    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(registry.histogram("h").count(), 0u);
    EXPECT_EQ(&registry.counter("n"), &c);
}

TEST(Registry, GlobalIsSingleton) {
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace etcs::obs
