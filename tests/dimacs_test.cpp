// DIMACS reader/writer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/error.hpp"

namespace etcs::sat {
namespace {

TEST(Dimacs, ParsesSimpleFormula) {
    std::istringstream in(
        "c a comment\n"
        "p cnf 3 2\n"
        "1 -2 0\n"
        "2 3 0\n");
    const CnfFormula f = readDimacs(in);
    EXPECT_EQ(f.numVariables, 3);
    ASSERT_EQ(f.clauses.size(), 2u);
    EXPECT_EQ(f.clauses[0][0], Literal::positive(0));
    EXPECT_EQ(f.clauses[0][1], Literal::negative(1));
    EXPECT_EQ(f.clauses[1][1], Literal::positive(2));
}

TEST(Dimacs, ParsesMultipleClausesPerLine) {
    std::istringstream in("p cnf 2 2\n1 0 -2 0\n");
    const CnfFormula f = readDimacs(in);
    EXPECT_EQ(f.clauses.size(), 2u);
}

TEST(Dimacs, RoundTrip) {
    CnfFormula f;
    f.numVariables = 4;
    f.clauses = {{Literal::positive(0), Literal::negative(3)},
                 {Literal::negative(1), Literal::positive(2), Literal::positive(3)},
                 {Literal::negative(0)}};
    std::stringstream buffer;
    writeDimacs(buffer, f);
    const CnfFormula parsed = readDimacs(buffer);
    EXPECT_EQ(parsed.numVariables, f.numVariables);
    EXPECT_EQ(parsed.clauses, f.clauses);
}

TEST(Dimacs, RejectsMissingHeader) {
    std::istringstream in("1 2 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsClauseCountMismatch) {
    std::istringstream in("p cnf 2 5\n1 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
    std::istringstream in("p cnf 2 1\n3 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsUnterminatedClause) {
    std::istringstream in("p cnf 2 1\n1 2\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, ParsedFormulaSolvesCorrectly) {
    std::istringstream in(
        "p cnf 3 4\n"
        "1 2 0\n"
        "-1 2 0\n"
        "1 -2 0\n"
        "-2 -3 0\n");
    const CnfFormula f = readDimacs(in);
    Solver solver;
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(Var{0}), Value::True);
    EXPECT_EQ(solver.modelValue(Var{1}), Value::True);
    EXPECT_EQ(solver.modelValue(Var{2}), Value::False);
}

}  // namespace
}  // namespace etcs::sat
