// DIMACS reader/writer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/error.hpp"

namespace etcs::sat {
namespace {

TEST(Dimacs, ParsesSimpleFormula) {
    std::istringstream in(
        "c a comment\n"
        "p cnf 3 2\n"
        "1 -2 0\n"
        "2 3 0\n");
    const CnfFormula f = readDimacs(in);
    EXPECT_EQ(f.numVariables, 3);
    ASSERT_EQ(f.clauses.size(), 2u);
    EXPECT_EQ(f.clauses[0][0], Literal::positive(0));
    EXPECT_EQ(f.clauses[0][1], Literal::negative(1));
    EXPECT_EQ(f.clauses[1][1], Literal::positive(2));
}

TEST(Dimacs, ParsesMultipleClausesPerLine) {
    std::istringstream in("p cnf 2 2\n1 0 -2 0\n");
    const CnfFormula f = readDimacs(in);
    EXPECT_EQ(f.clauses.size(), 2u);
}

TEST(Dimacs, RoundTrip) {
    CnfFormula f;
    f.numVariables = 4;
    f.clauses = {{Literal::positive(0), Literal::negative(3)},
                 {Literal::negative(1), Literal::positive(2), Literal::positive(3)},
                 {Literal::negative(0)}};
    std::stringstream buffer;
    writeDimacs(buffer, f);
    const CnfFormula parsed = readDimacs(buffer);
    EXPECT_EQ(parsed.numVariables, f.numVariables);
    EXPECT_EQ(parsed.clauses, f.clauses);
}

TEST(Dimacs, ParsesEmptyClause) {
    // A bare "0" is the empty clause — trivially unsatisfiable, but legal
    // DIMACS and exactly what a preprocessor emits for refuted inputs.
    std::istringstream in("p cnf 2 2\n1 2 0\n0\n");
    const CnfFormula f = readDimacs(in);
    ASSERT_EQ(f.clauses.size(), 2u);
    EXPECT_EQ(f.clauses[0].size(), 2u);
    EXPECT_TRUE(f.clauses[1].empty());
}

TEST(Dimacs, EmptyClauseRoundTrips) {
    CnfFormula f;
    f.numVariables = 1;
    f.clauses = {{Literal::positive(0)}, {}};
    std::stringstream buffer;
    writeDimacs(buffer, f);
    const CnfFormula parsed = readDimacs(buffer);
    EXPECT_EQ(parsed.clauses, f.clauses);
}

TEST(Dimacs, ParsesZeroVariableFormula) {
    // "p cnf 0 0" is the vacuously satisfiable empty formula.
    std::istringstream in("p cnf 0 0\n");
    const CnfFormula f = readDimacs(in);
    EXPECT_EQ(f.numVariables, 0);
    EXPECT_TRUE(f.clauses.empty());
    std::stringstream buffer;
    writeDimacs(buffer, f);
    const CnfFormula parsed = readDimacs(buffer);
    EXPECT_EQ(parsed.numVariables, 0);
    EXPECT_TRUE(parsed.clauses.empty());
}

TEST(Dimacs, AllowsCommentsBetweenClauses) {
    std::istringstream in(
        "c leading comment\n"
        "p cnf 2 2\n"
        "1 2 0\n"
        "c interleaved comment\n"
        "-1 -2 0\n"
        "c trailing comment\n");
    const CnfFormula f = readDimacs(in);
    ASSERT_EQ(f.clauses.size(), 2u);
    EXPECT_EQ(f.clauses[1][0], Literal::negative(0));
}

TEST(Dimacs, AllowsCommentInsideSplitClause) {
    // A clause may span lines; comments in between must not break it.
    std::istringstream in(
        "p cnf 3 1\n"
        "1 2\n"
        "c mid-clause comment\n"
        "3 0\n");
    const CnfFormula f = readDimacs(in);
    ASSERT_EQ(f.clauses.size(), 1u);
    EXPECT_EQ(f.clauses[0].size(), 3u);
}

TEST(Dimacs, RejectsHeaderWithMissingCounts) {
    std::istringstream varsOnly("p cnf 3\n1 0\n");
    EXPECT_THROW(readDimacs(varsOnly), InputError);
    std::istringstream noCounts("p cnf\n1 0\n");
    EXPECT_THROW(readDimacs(noCounts), InputError);
}

TEST(Dimacs, RejectsNonNumericToken) {
    std::istringstream in("p cnf 2 1\n1 x 2 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsMissingHeader) {
    std::istringstream in("1 2 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsClauseCountMismatch) {
    std::istringstream in("p cnf 2 5\n1 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
    std::istringstream in("p cnf 2 1\n3 0\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, RejectsUnterminatedClause) {
    std::istringstream in("p cnf 2 1\n1 2\n");
    EXPECT_THROW(readDimacs(in), InputError);
}

TEST(Dimacs, ParsedFormulaSolvesCorrectly) {
    std::istringstream in(
        "p cnf 3 4\n"
        "1 2 0\n"
        "-1 2 0\n"
        "1 -2 0\n"
        "-2 -3 0\n");
    const CnfFormula f = readDimacs(in);
    Solver solver;
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(Var{0}), Value::True);
    EXPECT_EQ(solver.modelValue(Var{1}), Value::True);
    EXPECT_EQ(solver.modelValue(Var{2}), Value::False);
}

}  // namespace
}  // namespace etcs::sat
