// Optimization engine tests: every strategy must find the true optimum (as
// determined by brute force), and the backend's model must be optimal after
// return.
#include <gtest/gtest.h>

#include <random>

#include "cnf/backend.hpp"
#include "opt/minimize.hpp"
#include "util/error.hpp"

namespace etcs::opt {
namespace {

using cnf::SolveStatus;

std::vector<Literal> makeInputs(SatBackend& backend, int n) {
    std::vector<Literal> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(Literal::positive(backend.addVariable()));
    }
    return inputs;
}

class StrategyTest : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(StrategyTest, MinimumOfUnconstrainedSoftLiteralsIsZero) {
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 5);
    const auto result = minimizeTrueLiterals(*backend, soft, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.optimum, 0);
}

TEST_P(StrategyTest, CoveringConstraintForcesMinimum) {
    // Soft literals must cover three disjoint "demands": x0|x1, x2|x3, x4|x5
    // -> optimum 3.
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 6);
    backend->addClause({soft[0], soft[1]});
    backend->addClause({soft[2], soft[3]});
    backend->addClause({soft[4], soft[5]});
    const auto result = minimizeTrueLiterals(*backend, soft, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.optimum, 3);
    // The backend's model must realize the optimum.
    int count = 0;
    for (Literal l : soft) {
        count += backend->modelValue(l) ? 1 : 0;
    }
    EXPECT_EQ(count, 3);
}

TEST_P(StrategyTest, InfeasibleHardClausesReported) {
    const auto backend = cnf::makeInternalBackend();
    const auto soft = makeInputs(*backend, 3);
    backend->addClause({soft[0]});
    backend->addClause({~soft[0]});
    const auto result = minimizeTrueLiterals(*backend, soft, GetParam());
    EXPECT_FALSE(result.feasible);
}

TEST_P(StrategyTest, EmptySoftSetIsPlainSolve) {
    const auto backend = cnf::makeInternalBackend();
    makeInputs(*backend, 2);
    const auto result = minimizeTrueLiterals(*backend, {}, GetParam());
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.optimum, 0);
}

TEST_P(StrategyTest, RandomInstancesMatchBruteForce) {
    std::mt19937 rng(77);
    for (int round = 0; round < 8; ++round) {
        // Random 3-clauses over 8 soft variables.
        const int n = 8;
        std::uniform_int_distribution<int> varDist(0, n - 1);
        std::bernoulli_distribution signDist(0.3);  // mostly positive -> coverage
        std::vector<std::vector<Literal>> clauses;
        const int numClauses = 10;

        const auto backend = cnf::makeInternalBackend();
        const auto soft = makeInputs(*backend, n);
        for (int c = 0; c < numClauses; ++c) {
            std::vector<Literal> clause;
            for (int k = 0; k < 3; ++k) {
                const Literal l = soft[varDist(rng)];
                clause.push_back(signDist(rng) ? ~l : l);
            }
            clauses.push_back(clause);
            backend->addClause(clause);
        }

        // Brute-force optimum.
        int best = -1;
        for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
            bool ok = true;
            for (const auto& clause : clauses) {
                bool sat = false;
                for (Literal l : clause) {
                    const bool v = ((bits >> l.var()) & 1u) != 0;
                    if (v != l.sign()) {
                        sat = true;
                        break;
                    }
                }
                if (!sat) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                const int count = __builtin_popcount(bits);
                if (best < 0 || count < best) {
                    best = count;
                }
            }
        }

        const auto result = minimizeTrueLiterals(*backend, soft, GetParam());
        ASSERT_EQ(result.feasible, best >= 0) << "round " << round;
        if (best >= 0) {
            EXPECT_EQ(result.optimum, best) << "round " << round;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(SearchStrategy::LinearDown,
                                           SearchStrategy::LinearUp, SearchStrategy::Binary),
                         [](const ::testing::TestParamInfo<SearchStrategy>& info) {
                             std::string name(toString(info.param));
                             for (char& c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

class IndexSearchTest : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(IndexSearchTest, FindsSmallestFeasibleIndex) {
    // literal(t) is satisfiable iff t >= 5: chain y_t -> y_{t+1} with y_4
    // forced false and y_5 free models a monotone family.
    const auto backend = cnf::makeInternalBackend();
    std::vector<Literal> y = makeInputs(*backend, 10);
    for (int t = 0; t + 1 < 10; ++t) {
        backend->addClause({~y[t], y[t + 1]});  // monotone
    }
    backend->addClause({~y[4]});  // t <= 4 infeasible
    const auto result = smallestFeasibleIndex(
        *backend, [&](int t) { return y[t]; }, 0, 9, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.index, 5);
    EXPECT_TRUE(backend->modelValue(y[5]));
}

TEST_P(IndexSearchTest, ReportsInfeasibleRange) {
    const auto backend = cnf::makeInternalBackend();
    std::vector<Literal> y = makeInputs(*backend, 4);
    for (Literal l : y) {
        backend->addClause({~l});
    }
    const auto result = smallestFeasibleIndex(
        *backend, [&](int t) { return y[t]; }, 0, 3, GetParam());
    EXPECT_FALSE(result.feasible);
}

TEST_P(IndexSearchTest, WholeRangeFeasibleReturnsLowerBound) {
    const auto backend = cnf::makeInternalBackend();
    std::vector<Literal> y = makeInputs(*backend, 4);
    const auto result = smallestFeasibleIndex(
        *backend, [&](int t) { return y[t]; }, 1, 3, GetParam());
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.index, 1);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, IndexSearchTest,
                         ::testing::Values(SearchStrategy::LinearDown,
                                           SearchStrategy::LinearUp, SearchStrategy::Binary),
                         [](const ::testing::TestParamInfo<SearchStrategy>& info) {
                             std::string name(toString(info.param));
                             for (char& c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(Minimize, RejectsEmptyRange) {
    const auto backend = cnf::makeInternalBackend();
    const auto y = makeInputs(*backend, 2);
    EXPECT_THROW(smallestFeasibleIndex(*backend, [&](int t) { return y[t]; }, 2, 1),
                 PreconditionError);
}

}  // namespace
}  // namespace etcs::opt
