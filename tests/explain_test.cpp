// The infeasibility explanation engine: determinism of the rendered
// reports, the subset guarantee (cited entries come from the certified
// core's provenance records), agreement with the static schedule linter on
// provably infeasible fixtures, and the shrink/no-shrink contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/explain.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "lint/rail_lint.hpp"
#include "util/json.hpp"

namespace etcs::core {
namespace {

using rail::Network;
using rail::Schedule;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

constexpr Resolution kRes{Meters(500), Seconds(30)};

/// Mirror of tests/fixtures/corridor.rail: three 1000 m tracks, one TTD
/// each, stations at the ends (graph distance 5 segments at 500 m).
struct CorridorWorld {
    Network network{"corridor"};
    TrainSet trains;
    TrainId train;

    CorridorWorld() {
        const auto n0 = network.addNode("n0");
        const auto n1 = network.addNode("n1");
        const auto n2 = network.addNode("n2");
        const auto n3 = network.addNode("n3");
        const auto a = network.addTrack("a", n0, n1, Meters(1000));
        const auto b = network.addTrack("b", n1, n2, Meters(1000));
        const auto c = network.addTrack("c", n2, n3, Meters(1000));
        network.addTtd("T1", {a});
        network.addTtd("T2", {b});
        network.addTtd("T3", {c});
        network.addStation("SA", a, Meters(0));
        network.addStation("SB", c, Meters(1000));
        train = trains.addTrain("T", Speed::fromKmPerHour(120), Meters(200));
    }

    [[nodiscard]] Schedule schedule(std::optional<int> arrivalStep) const {
        TrainRun run;
        run.train = train;
        run.origin = *network.findStation("SA");
        run.departure = Seconds(0);
        run.stops.push_back(TimedStop{
            *network.findStation("SB"),
            arrivalStep ? std::optional(Seconds(*arrivalStep * 30)) : std::nullopt});
        Schedule schedule;
        schedule.addRun(run);
        return schedule;
    }
};

/// A head-on meet on a single-track, single-TTD line: two opposing trains
/// cannot pass each other, so the instance is infeasible for every layout
/// and the refutation must cite pairwise separation constraints.
struct HeadOnWorld {
    Network network{"headon"};
    TrainSet trains;
    Schedule schedule;

    HeadOnWorld() {
        const auto a = network.addNode("A");
        const auto b = network.addNode("B");
        const auto t = network.addTrack("t", a, b, Meters(3000));
        network.addTtd("T", {t});
        network.addStation("StA", t, Meters(0));
        network.addStation("StB", t, Meters(3000));
        const auto east = trains.addTrain("East", Speed::fromKmPerHour(120), Meters(100));
        const auto west = trains.addTrain("West", Speed::fromKmPerHour(120), Meters(100));
        addRun(east, "StA", "StB");
        addRun(west, "StB", "StA");
    }

    void addRun(TrainId train, const char* from, const char* to) {
        TrainRun run;
        run.train = train;
        run.origin = *network.findStation(from);
        run.departure = Seconds(0);
        run.stops.push_back(TimedStop{*network.findStation(to), Seconds(5 * 30)});
        schedule.addRun(run);
    }
};

std::string jsonReport(const ExplainResult& result) {
    std::ostringstream out;
    writeExplanationJson(out, result);
    return out.str();
}

std::string textReport(const ExplainResult& result) {
    std::ostringstream out;
    writeExplanationText(out, result);
    return out.str();
}

/// Does some core record support this entry? Key fields must match and the
/// record's step must fall inside the entry's aggregated step range.
bool supportedByCore(const ExplainEntry& entry, const ExplainResult& result) {
    for (const ClauseProvenance& record : result.coreRecords) {
        if (record.family != entry.family || record.run != entry.run ||
            record.run2 != entry.run2 || record.ttd != entry.ttd ||
            record.segment != entry.segment) {
            continue;
        }
        if (record.step < 0 ? entry.stepFirst < 0
                            : entry.stepFirst <= record.step && record.step <= entry.stepLast) {
            return true;
        }
    }
    return false;
}

void expectEntriesAreCoreSubset(const ExplainResult& result) {
    ASSERT_FALSE(result.entries.empty());
    EXPECT_EQ(result.entries.front().code, "E101");
    EXPECT_TRUE(result.entries.front().family.empty());
    for (std::size_t i = 1; i < result.entries.size(); ++i) {
        const ExplainEntry& entry = result.entries[i];
        EXPECT_TRUE(supportedByCore(entry, result))
            << "entry " << entry.code << " [" << entry.family << "] run=" << entry.run
            << " is not backed by any certified core record";
    }
}

TEST(Explain, FeasibleInstanceNeedsNoExplanation) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(6), kRes);
    const ExplainResult result = explainInfeasibility(instance, nullptr);
    EXPECT_TRUE(result.feasible);
    EXPECT_FALSE(result.unsat);
    EXPECT_TRUE(result.error.empty());
    EXPECT_TRUE(result.entries.empty());
    EXPECT_TRUE(result.coreRecords.empty());
}

TEST(Explain, InfeasibleCorridorIsCertifiedAndCited) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(2), kRes);
    const VssLayout pure(instance.graph());
    const ExplainResult result = explainInfeasibility(instance, &pure);

    EXPECT_FALSE(result.feasible);
    EXPECT_TRUE(result.unsat);
    EXPECT_TRUE(result.certified);
    EXPECT_TRUE(result.error.empty());
    EXPECT_GE(result.coreClauses, 1u);
    EXPECT_EQ(result.coreClauses, result.taggedCoreClauses + result.untaggedCoreClauses);
    EXPECT_LE(result.citedGroups, result.coreGroups);
    expectEntriesAreCoreSubset(result);

    // The lone train of the corridor is the culprit; every cited entry
    // must point at run 0.
    for (std::size_t i = 1; i < result.entries.size(); ++i) {
        EXPECT_EQ(result.entries[i].run, 0);
    }
}

TEST(Explain, HeadOnMeetCitesOnlyCoreRecords) {
    HeadOnWorld w;
    const Instance instance(w.network, w.trains, w.schedule, kRes);
    const VssLayout pure(instance.graph());
    const ExplainResult result = explainInfeasibility(instance, &pure);

    EXPECT_TRUE(result.unsat);
    EXPECT_TRUE(result.certified);
    EXPECT_TRUE(result.error.empty());
    expectEntriesAreCoreSubset(result);
}

TEST(Explain, ReportsAreDeterministic) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(2), kRes);
    const VssLayout pure(instance.graph());

    const ExplainResult first = explainInfeasibility(instance, &pure);
    const ExplainResult second = explainInfeasibility(instance, &pure);
    EXPECT_EQ(jsonReport(first), jsonReport(second));
    EXPECT_EQ(textReport(first), textReport(second));
    EXPECT_EQ(first.shrinkSolves, second.shrinkSolves);
}

TEST(Explain, JsonReportParsesAndMatchesTheResult) {
    CorridorWorld w;
    const Instance instance(w.network, w.trains, w.schedule(2), kRes);
    const VssLayout pure(instance.graph());
    const ExplainResult result = explainInfeasibility(instance, &pure);

    const util::JsonValue root = util::parseJson(jsonReport(result));
    ASSERT_EQ(root.type, util::JsonValue::Type::Object);

    const util::JsonValue* certified = root.find("certified");
    ASSERT_NE(certified, nullptr);
    EXPECT_EQ(certified->type, util::JsonValue::Type::Bool);
    EXPECT_TRUE(certified->boolean);

    const util::JsonValue* entries = root.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->type, util::JsonValue::Type::Array);
    ASSERT_EQ(entries->items.size(), result.entries.size());
    const util::JsonValue* code = entries->items.front().find("code");
    ASSERT_NE(code, nullptr);
    EXPECT_EQ(code->text, "E101");

    const util::JsonValue* records = root.find("coreRecords");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->type, util::JsonValue::Type::Array);
    EXPECT_EQ(records->items.size(), result.coreRecords.size());
}

TEST(Explain, EveryEntryCodeIsCatalogued) {
    HeadOnWorld w;
    const Instance instance(w.network, w.trains, w.schedule, kRes);
    const ExplainResult result = explainInfeasibility(instance, nullptr);
    ASSERT_TRUE(result.unsat);
    for (const ExplainEntry& entry : result.entries) {
        bool known = false;
        for (const lint::CodeInfo& info : lint::knownCodes()) {
            if (info.code == entry.code) {
                known = true;
                EXPECT_EQ(info.severity, entry.severity) << entry.code;
            }
        }
        EXPECT_TRUE(known) << entry.code << " missing from lint::knownCodes()";
    }
}

TEST(Explain, NoShrinkKeepsEveryCoreGroup) {
    HeadOnWorld w;
    const Instance instance(w.network, w.trains, w.schedule, kRes);
    ExplainOptions options;
    options.shrinkCore = false;
    const ExplainResult result = explainInfeasibility(instance, nullptr, options);
    ASSERT_TRUE(result.unsat);
    EXPECT_EQ(result.shrinkSolves, 0u);
    EXPECT_EQ(result.citedGroups, result.coreGroups);

    const ExplainResult shrunk = explainInfeasibility(instance, nullptr);
    EXPECT_LE(shrunk.citedGroups, result.citedGroups);
}

// The static linter proves the corridor fixture infeasible without a solver
// (L024 shortest-path bound); the certified-core explanation must agree on
// the verdict and on the culprit train.
TEST(Explain, AgreesWithTheScheduleLinterOnTheCorridor) {
    CorridorWorld w;
    const Schedule infeasible = w.schedule(2);

    lint::LintReport report;
    lint::lintScenario(w.network, w.trains, infeasible, kRes, report);
    ASSERT_TRUE(report.has("L024"));
    std::string lintedTrain;
    for (const lint::Diagnostic& diagnostic : report.diagnostics()) {
        if (diagnostic.code == "L024") {
            lintedTrain = diagnostic.entity;
        }
    }
    EXPECT_EQ(lintedTrain, "train T");

    const Instance instance(w.network, w.trains, infeasible, kRes);
    const VssLayout pure(instance.graph());
    const ExplainResult result = explainInfeasibility(instance, &pure);
    ASSERT_TRUE(result.unsat);
    ASSERT_TRUE(result.certified);

    // The explanation cites the same train the linter blamed: run 0 is
    // train "T", and at least one cited entry names it.
    ASSERT_GE(result.entries.size(), 2u);
    bool citesTrainT = false;
    for (std::size_t i = 1; i < result.entries.size(); ++i) {
        if (result.entries[i].run == 0) {
            citesTrainT = true;
            EXPECT_NE(result.entries[i].message.find("train T"), std::string::npos)
                << result.entries[i].message;
        }
    }
    EXPECT_TRUE(citesTrainT);
    EXPECT_EQ(w.trains.train(instance.runs()[0].train).name, "T");
}

/// Sorted multiset of the cited diagnostic codes of an explanation.
std::vector<std::string> citedCodes(const ExplainResult& result) {
    std::vector<std::string> codes;
    for (const ExplainEntry& entry : result.entries) {
        codes.push_back(entry.code);
    }
    std::sort(codes.begin(), codes.end());
    return codes;
}

// Reachability pruning must not change what the explanation engine
// diagnoses: the same infeasible instance, explained with pruning on and
// off, yields the same verdict, certification, and E-code multiset.
TEST(Explain, PruningPreservesTheDiagnosis) {
    ExplainOptions unpruned;
    unpruned.encoder.pruneUnreachable = false;

    {
        CorridorWorld w;
        const Instance instance(w.network, w.trains, w.schedule(2), kRes);
        const VssLayout pure(instance.graph());
        const ExplainResult pruned = explainInfeasibility(instance, &pure);
        const ExplainResult full = explainInfeasibility(instance, &pure, unpruned);
        ASSERT_TRUE(pruned.unsat);
        ASSERT_TRUE(full.unsat);
        EXPECT_TRUE(pruned.certified);
        EXPECT_TRUE(full.certified);
        EXPECT_EQ(citedCodes(pruned), citedCodes(full));
    }
    {
        // The head-on meet is not reach-refutable (both runs meet their own
        // deadlines); pruning only trims the encodings around the conflict.
        HeadOnWorld w;
        const Instance instance(w.network, w.trains, w.schedule, kRes);
        const ExplainResult pruned = explainInfeasibility(instance, nullptr);
        const ExplainResult full = explainInfeasibility(instance, nullptr, unpruned);
        ASSERT_TRUE(pruned.unsat);
        ASSERT_TRUE(full.unsat);
        EXPECT_TRUE(pruned.certified);
        EXPECT_TRUE(full.certified);
        EXPECT_EQ(citedCodes(pruned), citedCodes(full));
    }
}

}  // namespace
}  // namespace etcs::core
