// Task-level API tests on the running example (paper Fig. 1/2, Table I rows
// 1-3) plus option behaviour.
#include <gtest/gtest.h>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct RunningFixture : ::testing::Test {
    studies::CaseStudy study = studies::runningExample();
    Instance timed{study.network, study.trains, study.timedSchedule, study.resolution};
    Instance open{study.network, study.trains, study.openSchedule, study.resolution};
};

TEST_F(RunningFixture, VerificationOnPureTtdIsInfeasible) {
    const VssLayout pure(timed.graph());
    EXPECT_EQ(pure.sectionCount(timed.graph()), 4);
    const auto result = verifySchedule(timed, pure);
    EXPECT_FALSE(result.feasible);  // Table I row 1: "No"
    EXPECT_FALSE(result.solution.has_value());
    EXPECT_GT(result.stats.numVariables, 0);
    EXPECT_GT(result.stats.numClauses, 0u);
}

TEST_F(RunningFixture, VerificationOnFinestLayoutSucceeds) {
    const auto finest = VssLayout::finest(timed.graph());
    const auto result = verifySchedule(timed, finest);
    EXPECT_TRUE(result.feasible);
    ASSERT_TRUE(result.solution.has_value());
    EXPECT_TRUE(validateSolution(timed, *result.solution).empty());
}

TEST_F(RunningFixture, GenerationFindsSmallLayout) {
    const auto result = generateLayout(timed);
    ASSERT_TRUE(result.feasible);  // Table I row 2: "Yes"
    // Paper: 5 sections suffice (4 TTDs + 1 virtual border).
    EXPECT_EQ(result.sectionCount, 5);
    ASSERT_TRUE(result.solution.has_value());
    EXPECT_TRUE(validateSolution(timed, *result.solution).empty());
}

TEST_F(RunningFixture, GeneratedLayoutPassesVerification) {
    const auto generated = generateLayout(timed);
    ASSERT_TRUE(generated.feasible);
    const auto verified = verifySchedule(timed, generated.solution->layout);
    EXPECT_TRUE(verified.feasible);
}

TEST_F(RunningFixture, GenerationWithoutMinimizationIsFeasibleButLarger) {
    TaskOptions options;
    options.minimizeSections = false;
    const auto result = generateLayout(timed, options);
    ASSERT_TRUE(result.feasible);
    EXPECT_GE(result.sectionCount, 5);
    EXPECT_LE(result.stats.solveCalls, 2u);
}

TEST_F(RunningFixture, OptimizationBeatsTheTimedSchedule) {
    const auto result = optimizeSchedule(open);
    ASSERT_TRUE(result.feasible);  // Table I row 3: "Yes"
    // The timed schedule needs 11 steps (last arrival at step 10); the
    // optimizer must finish strictly earlier (paper: 7 < 10).
    EXPECT_LT(result.completionSteps, timed.horizonSteps());
    EXPECT_GE(result.sectionCount, 4);
    ASSERT_TRUE(result.solution.has_value());
    EXPECT_TRUE(validateSolution(open, *result.solution).empty());
    EXPECT_EQ(result.solution->completionSteps, result.completionSteps);
}

TEST_F(RunningFixture, OptimizationCompletionIsAMinimum) {
    // Re-solving with the completion bound one step lower must fail: do the
    // cross-check via a fresh encoder.
    const auto result = optimizeSchedule(open);
    ASSERT_TRUE(result.feasible);
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, open);
    encoder.encode(nullptr);
    EXPECT_EQ(backend->solve({encoder.doneAllLiteral(result.completionSteps - 1)}),
              cnf::SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({encoder.doneAllLiteral(result.completionSteps)}),
              cnf::SolveStatus::Sat);
}

TEST_F(RunningFixture, OptimizationOnPureLayoutIsWorseOrInfeasible) {
    const VssLayout pure(open.graph());
    const auto onPure = optimizeScheduleOnLayout(open, pure);
    const auto free = optimizeSchedule(open);
    ASSERT_TRUE(free.feasible);
    if (onPure.feasible) {
        EXPECT_GE(onPure.completionSteps, free.completionSteps);
    }
}

TEST_F(RunningFixture, LexicographicSectionsReduceLayout) {
    TaskOptions lexicographic;
    lexicographic.lexicographicSections = true;
    TaskOptions plain;
    plain.lexicographicSections = false;
    const auto with = optimizeSchedule(open, lexicographic);
    const auto without = optimizeSchedule(open, plain);
    ASSERT_TRUE(with.feasible);
    ASSERT_TRUE(without.feasible);
    EXPECT_EQ(with.completionSteps, without.completionSteps);
    EXPECT_LE(with.sectionCount, without.sectionCount);
}

TEST_F(RunningFixture, SearchStrategiesAgreeOnGeneration) {
    int sections[3];
    int i = 0;
    for (const auto strategy : {opt::SearchStrategy::LinearDown, opt::SearchStrategy::LinearUp,
                                opt::SearchStrategy::Binary}) {
        TaskOptions options;
        options.borderSearch = strategy;
        const auto result = generateLayout(timed, options);
        ASSERT_TRUE(result.feasible);
        sections[i++] = result.sectionCount;
    }
    EXPECT_EQ(sections[0], sections[1]);
    EXPECT_EQ(sections[1], sections[2]);
}

TEST_F(RunningFixture, AmoEncodingsAgreeOnVerification) {
    for (const auto encoding : {cnf::AmoEncoding::Pairwise, cnf::AmoEncoding::Sequential,
                                cnf::AmoEncoding::Commander, cnf::AmoEncoding::Product}) {
        TaskOptions options;
        options.encoder.amoEncoding = encoding;
        const VssLayout pure(timed.graph());
        EXPECT_FALSE(verifySchedule(timed, pure, options).feasible)
            << cnf::toString(encoding);
        const auto finest = VssLayout::finest(timed.graph());
        EXPECT_TRUE(verifySchedule(timed, finest, options).feasible)
            << cnf::toString(encoding);
    }
}

TEST_F(RunningFixture, VerificationRequiresTimedSchedule) {
    const VssLayout pure(open.graph());
    EXPECT_THROW((void)verifySchedule(open, pure), PreconditionError);
    EXPECT_THROW((void)generateLayout(open), PreconditionError);
}

TEST_F(RunningFixture, OptimizationInfeasibleOnTooShortHorizon) {
    rail::Schedule shortSchedule;
    for (const auto& run : study.openSchedule.runs()) {
        shortSchedule.addRun(run);
    }
    shortSchedule.setHorizon(Seconds(3 * 30));  // 3 steps: nobody can finish
    const Instance tiny(study.network, study.trains, shortSchedule, study.resolution);
    const auto result = optimizeSchedule(tiny);
    EXPECT_FALSE(result.feasible);
}

TEST_F(RunningFixture, StatsRuntimeIsPopulated) {
    const auto result = generateLayout(timed);
    EXPECT_GT(result.stats.runtimeSeconds, 0.0);
    EXPECT_GT(result.stats.solveCalls, 0u);
}

TEST(Tasks, IntermediateStopIsHonoured) {
    // A -> via C -> B on the running example network: train 1 must pass
    // through station C's segment at its pinned time.
    auto study = studies::runningExample();
    rail::Schedule schedule;
    rail::TrainRun run;
    run.train = TrainId(0u);
    run.origin = *study.network.findStation("StA");
    run.departure = Seconds(0);
    run.stops.push_back(rail::TimedStop{*study.network.findStation("StC"), Seconds(60)});
    run.stops.push_back(rail::TimedStop{*study.network.findStation("StB"), Seconds(270)});
    schedule.addRun(run);
    const Instance instance(study.network, study.trains, schedule, study.resolution);
    const auto finest = VssLayout::finest(instance.graph());
    const auto result = verifySchedule(instance, finest);
    ASSERT_TRUE(result.feasible);
    const auto& trace = result.solution->traces[0];
    const SegmentId stopSegment =
        instance.graph().segmentOfStation(*study.network.findStation("StC"));
    const auto& atStop = trace.occupied[2];  // 0:01 -> step 2
    EXPECT_NE(std::find(atStop.begin(), atStop.end(), stopSegment), atStop.end());
    EXPECT_TRUE(validateSolution(instance, *result.solution).empty());
}

}  // namespace
}  // namespace etcs::core
