// VssLayout unit tests.
#include <gtest/gtest.h>

#include "core/layout.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct LayoutFixture : ::testing::Test {
    studies::CaseStudy study = studies::runningExample();
    rail::SegmentGraph graph{study.network, study.resolution};
};

TEST_F(LayoutFixture, DefaultLayoutIsPureTtd) {
    const VssLayout layout(graph);
    EXPECT_EQ(layout.virtualBorderCount(graph), 0);
    EXPECT_EQ(layout.sectionCount(graph), 4);
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        EXPECT_EQ(layout.isBorder(graph, SegNodeId(n)), graph.node(SegNodeId(n)).fixedBorder);
    }
}

TEST_F(LayoutFixture, FinestLayoutSplitsEverySegment) {
    const auto finest = VssLayout::finest(graph);
    EXPECT_EQ(finest.sectionCount(graph), static_cast<int>(graph.numSegments()));
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        EXPECT_TRUE(finest.isBorder(graph, SegNodeId(n)));
    }
}

TEST_F(LayoutFixture, SettingBordersChangesSectionCount) {
    VssLayout layout(graph);
    int candidates = 0;
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (!graph.node(SegNodeId(n)).fixedBorder) {
            layout.setBorder(SegNodeId(n), true);
            ++candidates;
            EXPECT_EQ(layout.virtualBorderCount(graph), candidates);
            EXPECT_EQ(layout.sectionCount(graph), 4 + candidates);
        }
    }
    // Clearing one border undoes its section.
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (!graph.node(SegNodeId(n)).fixedBorder) {
            layout.setBorder(SegNodeId(n), false);
            EXPECT_EQ(layout.sectionCount(graph), 4 + candidates - 1);
            break;
        }
    }
}

TEST_F(LayoutFixture, BorderOnFixedNodeIsRedundant) {
    VssLayout layout(graph);
    // Raising the flag on a fixed-border node must not change the section
    // count (it is already a border).
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (graph.node(SegNodeId(n)).fixedBorder) {
            layout.setBorder(SegNodeId(n), true);
            EXPECT_EQ(layout.sectionCount(graph), 4);
            EXPECT_EQ(layout.virtualBorderCount(graph), 0);  // not counted
            break;
        }
    }
}

TEST_F(LayoutFixture, FlagsVectorMatchesGraphSize) {
    const VssLayout layout(graph);
    EXPECT_EQ(layout.flags().size(), graph.numNodes());
}

}  // namespace
}  // namespace etcs::core
