/// \file gen_test.cpp
/// Contracts of the scenario generator (src/gen/): seed determinism down to
/// the emitted bytes, parameter boundaries, strict-reader roundtrips, and
/// byte-identical regeneration of the frozen corpus in tests/fixtures/gen/
/// (the instances cli_test drives the shipped tools with).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "railway/io.hpp"

#ifndef ETCS_FIXTURE_DIR
#error "ETCS_FIXTURE_DIR must point at tests/fixtures/"
#endif

namespace {

using etcs::gen::Family;
using etcs::gen::GeneratedScenario;
using etcs::gen::GenParams;
using etcs::gen::ScheduleKind;

std::string railText(const GeneratedScenario& scenario) {
    std::ostringstream out;
    etcs::rail::writeNetwork(out, scenario.network);
    return out.str();
}

std::string schedText(const GeneratedScenario& scenario) {
    std::ostringstream out;
    etcs::rail::writeScenario(
        out, etcs::rail::Scenario{scenario.name, scenario.trains, scenario.schedule},
        scenario.network);
    return out.str();
}

std::string fileText(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(Generator, SameSeedIsByteIdentical) {
    for (Family family : etcs::gen::allFamilies()) {
        for (ScheduleKind kind : etcs::gen::allScheduleKinds()) {
            GenParams params;
            params.family = family;
            params.schedule = kind;
            params.seed = 7;
            SCOPED_TRACE(std::string(etcs::gen::familyName(family)) + "/" +
                         std::string(etcs::gen::scheduleKindName(kind)));
            const auto first = etcs::gen::generate(params);
            const auto second = etcs::gen::generate(params);
            EXPECT_EQ(first.name, second.name);
            EXPECT_EQ(railText(first), railText(second));
            EXPECT_EQ(schedText(first), schedText(second));
            EXPECT_EQ(etcs::gen::manifestJson(first), etcs::gen::manifestJson(second));
        }
    }
}

TEST(Generator, DifferentSeedsChangeTheNetwork) {
    GenParams params;
    params.seed = 1;
    const auto a = etcs::gen::generate(params);
    params.seed = 2;
    const auto b = etcs::gen::generate(params);
    // Not a tautology via the embedded name: compare the network bytes.
    EXPECT_NE(railText(a), railText(b));
}

TEST(Generator, MinimalSizeIsValidForEveryFamily) {
    for (Family family : etcs::gen::allFamilies()) {
        GenParams params;
        params.family = family;
        params.size = 1;
        params.trains = 1;
        params.seed = 3;
        SCOPED_TRACE(std::string(etcs::gen::familyName(family)));
        // generate() validates the network internally; surviving the call
        // and producing at least one track is the contract here.
        const auto scenario = etcs::gen::generate(params);
        EXPECT_GE(scenario.network.numTracks(), 1U);
        EXPECT_EQ(scenario.schedule.size(), scenario.simArrivalSteps.size());
    }
}

TEST(Generator, ZeroTrainsYieldsAnEmptyFeasibleSchedule) {
    for (Family family : etcs::gen::allFamilies()) {
        GenParams params;
        params.family = family;
        params.trains = 0;
        params.schedule = ScheduleKind::Infeasible;  // must be coerced
        params.seed = 5;
        SCOPED_TRACE(std::string(etcs::gen::familyName(family)));
        const auto scenario = etcs::gen::generate(params);
        EXPECT_EQ(scenario.schedule.size(), 0U);
        EXPECT_TRUE(scenario.simCompleted);
        EXPECT_NE(scenario.name.find("_t0_feasible"), std::string::npos)
            << scenario.name;
    }
}

TEST(Generator, RingFamilyHandlesDegenerateLoopSizes) {
    // A one-motif ring degenerates into a loop; the generator must clamp to
    // a validating topology rather than emit a self-loop track.
    for (int size = 1; size <= 3; ++size) {
        GenParams params;
        params.family = Family::Ring;
        params.size = size;
        params.seed = 11;
        SCOPED_TRACE("ring size " + std::to_string(size));
        const auto scenario = etcs::gen::generate(params);
        EXPECT_GE(scenario.network.numTracks(), 2U);
    }
}

TEST(Generator, EmittedFilesSurviveTheStrictReaders) {
    for (Family family : etcs::gen::allFamilies()) {
        GenParams params;
        params.family = family;
        params.seed = 13;
        SCOPED_TRACE(std::string(etcs::gen::familyName(family)));
        const auto scenario = etcs::gen::generate(params);

        // write -> strict read -> write must be a fixpoint.
        std::istringstream railIn(railText(scenario));
        const auto network = etcs::rail::readNetwork(railIn);
        std::ostringstream railOut;
        etcs::rail::writeNetwork(railOut, network);
        EXPECT_EQ(railText(scenario), railOut.str());

        std::istringstream schedIn(schedText(scenario));
        const auto readBack = etcs::rail::readScenario(schedIn, network);
        std::ostringstream schedOut;
        etcs::rail::writeScenario(schedOut, readBack, network);
        EXPECT_EQ(schedText(scenario), schedOut.str());
    }
}

TEST(Generator, NameParsersRoundTrip) {
    for (Family family : etcs::gen::allFamilies()) {
        EXPECT_EQ(etcs::gen::parseFamily(etcs::gen::familyName(family)), family);
    }
    for (ScheduleKind kind : etcs::gen::allScheduleKinds()) {
        EXPECT_EQ(etcs::gen::parseScheduleKind(etcs::gen::scheduleKindName(kind)), kind);
    }
    EXPECT_FALSE(etcs::gen::parseFamily("motorway").has_value());
    EXPECT_FALSE(etcs::gen::parseScheduleKind("impossible").has_value());
}

TEST(Generator, FrozenCorpusRegeneratesByteIdentically) {
    // tests/fixtures/gen/ was produced by `etcsgen --seed 42` (see
    // docs/GENERATOR.md); regeneration must reproduce every byte, otherwise
    // the generator broke reproducibility and the corpus must be re-frozen
    // deliberately.
    const struct {
        Family family;
        ScheduleKind kind;
    } corpus[] = {
        {Family::Corridor, ScheduleKind::Feasible},
        {Family::Corridor, ScheduleKind::Infeasible},
        {Family::Station, ScheduleKind::Feasible},
        {Family::Station, ScheduleKind::Infeasible},
        {Family::Junction, ScheduleKind::Tight},
        {Family::Ring, ScheduleKind::Infeasible},
        {Family::SingleTrack, ScheduleKind::Feasible},
        {Family::SingleTrack, ScheduleKind::Tight},
        {Family::Network, ScheduleKind::Feasible},
        {Family::Network, ScheduleKind::Infeasible},
    };
    const std::string dir = std::string(ETCS_FIXTURE_DIR) + "/gen/";
    for (const auto& entry : corpus) {
        GenParams params;
        params.family = entry.family;
        params.schedule = entry.kind;
        params.seed = 42;
        const auto scenario = etcs::gen::generate(params);
        SCOPED_TRACE(scenario.name);
        EXPECT_EQ(railText(scenario), fileText(dir + scenario.name + ".rail"));
        EXPECT_EQ(schedText(scenario), fileText(dir + scenario.name + ".sched"));
        EXPECT_EQ(etcs::gen::manifestJson(scenario),
                  fileText(dir + scenario.name + ".json"));
    }
}

}  // namespace
