/// \file cli_test.cpp
/// End-to-end exit-code and output contracts of the shipped command-line
/// tools: etcslint, gencnf, dratcheck, etcs_explain, benchdiff, etcsgen and
/// etcs_cli (the latter two over the frozen generated corpus in
/// tests/fixtures/gen/, see docs/GENERATOR.md). Exit code conventions:
/// 0 success (for etcslint: no error-severity findings; for etcs_explain:
/// feasible), 1 findings / NOT VERIFIED / infeasible / regressions, 2 usage
/// or I/O error — and never partial output on failure.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

#ifndef ETCS_ETCSLINT_BIN
#error "ETCS_ETCSLINT_BIN must point at the etcslint executable"
#endif
#ifndef ETCS_GENCNF_BIN
#error "ETCS_GENCNF_BIN must point at the gencnf executable"
#endif
#ifndef ETCS_DRATCHECK_BIN
#error "ETCS_DRATCHECK_BIN must point at the dratcheck executable"
#endif
#ifndef ETCS_EXPLAIN_BIN
#error "ETCS_EXPLAIN_BIN must point at the etcs_explain executable"
#endif
#ifndef ETCS_BENCHDIFF_BIN
#error "ETCS_BENCHDIFF_BIN must point at the benchdiff executable"
#endif
#ifndef ETCS_ETCSGEN_BIN
#error "ETCS_ETCSGEN_BIN must point at the etcsgen executable"
#endif
#ifndef ETCS_CLI_BIN
#error "ETCS_CLI_BIN must point at the etcs_cli executable"
#endif
#ifndef ETCS_DATA_DIR
#error "ETCS_DATA_DIR must point at the repository's data/ directory"
#endif
#ifndef ETCS_FIXTURE_DIR
#error "ETCS_FIXTURE_DIR must point at tests/fixtures/"
#endif

namespace {

struct RunResult {
    int exitCode = -1;
    std::string output;  ///< combined stdout + stderr
};

/// Run a command, capturing combined output and the real exit code. The
/// capture file is per-process: ctest runs each discovered test case as its
/// own process, concurrently under -j, and a shared file name races.
RunResult run(const std::string& command) {
    const std::string outFile = testing::TempDir() + "cli_test_output." +
                                std::to_string(::getpid()) + ".txt";
    const int status = std::system((command + " > " + outFile + " 2>&1").c_str());
    RunResult result;
    if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    std::ifstream in(outFile);
    std::stringstream buffer;
    buffer << in.rdbuf();
    result.output = buffer.str();
    return result;
}

const std::string kLint = ETCS_ETCSLINT_BIN;
const std::string kGencnf = ETCS_GENCNF_BIN;
const std::string kDratcheck = ETCS_DRATCHECK_BIN;
const std::string kExplain = ETCS_EXPLAIN_BIN;
const std::string kBenchdiff = ETCS_BENCHDIFF_BIN;
const std::string kEtcsgen = ETCS_ETCSGEN_BIN;
const std::string kEtcsCli = ETCS_CLI_BIN;
const std::string kData = ETCS_DATA_DIR;
const std::string kFixtures = ETCS_FIXTURE_DIR;

/// Write `content` to a per-process temp file and return its path.
std::string writeTempFile(const std::string& stem, const std::string& content) {
    const std::string path =
        testing::TempDir() + stem + "." + std::to_string(::getpid());
    std::ofstream out(path);
    out << content;
    return path;
}

/// Like writeTempFile, but keeps the extension last (etcslint classifies
/// its inputs by extension).
std::string writeSchedFile(const std::string& stem, const std::string& content) {
    const std::string path =
        testing::TempDir() + stem + "." + std::to_string(::getpid()) + ".sched";
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(EtcslintCli, ShippedDataExitsZero) {
    const auto result =
        run(kLint + " " + kData + "/quickstart.rail " + kData + "/quickstart.sched");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos) << result.output;
}

TEST(EtcslintCli, InfeasibleScheduleExitsOneWithProofMessage) {
    const auto result = run(kLint + " " + kFixtures + "/corridor.rail " + kFixtures +
                            "/infeasible.sched");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("L024"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("proven infeasible (no SAT solver required)"),
              std::string::npos)
        << result.output;
}

TEST(EtcslintCli, BrokenNetworkExitsOne) {
    const auto result = run(kLint + " " + kFixtures + "/broken.rail");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("L005"), std::string::npos) << result.output;
}

TEST(EtcslintCli, JsonOutputIsEmitted) {
    const auto result = run(kLint + " --json " + kFixtures + "/broken.rail");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("\"errors\":true"), std::string::npos) << result.output;
}

TEST(EtcslintCli, MissingFileExitsTwo) {
    const auto result = run(kLint + " /nonexistent/net.rail");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(EtcslintCli, NoArgumentsExitsTwo) {
    EXPECT_EQ(run(kLint).exitCode, 2);
}

TEST(EtcslintCli, CodesListsTheCatalogue) {
    const auto result = run(kLint + " --codes");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("L024"), std::string::npos);
    EXPECT_NE(result.output.find("C010"), std::string::npos);
    EXPECT_NE(result.output.find("R001"), std::string::npos);
}

TEST(EtcslintCli, CleanInputGetsAPerFileNoDiagnosticsLine) {
    // Contract: in text mode every clean file is acknowledged explicitly,
    // so "no output about file X" always means "file X was not linted".
    const auto result =
        run(kLint + " " + kData + "/quickstart.rail " + kData + "/quickstart.sched");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("no diagnostics"), std::string::npos) << result.output;
}

TEST(EtcslintCli, ReachRefutesADeadlineWithR001AndExitsOne) {
    // SA -> SB is 5 segments; at 120 km/h and r = (500 m, 30 s) the train
    // needs 3 steps, so a 30-second deadline is reach-refutable.
    const std::string sched = writeSchedFile(
        "cli_test_reach_infeasible",
        "scenario rush\ntrain T 120 200\nrun T from SA dep 0:00 to SB arr 0:00:30\n");
    const auto result = run(kLint + " --reach --rs 500 --rt 30 " + kFixtures +
                            "/corridor.rail " + sched);
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("R001"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("proven infeasible (no SAT solver required)"),
              std::string::npos)
        << result.output;
}

TEST(EtcslintCli, ReachOnFeasibleScheduleReportsWindowsAndExitsZero) {
    const std::string sched = writeSchedFile(
        "cli_test_reach_feasible",
        "scenario relaxed\ntrain T 120 200\nrun T from SA dep 0:00 to SB arr 0:02:00\n");
    const auto result = run(kLint + " --reach --rs 500 --rt 30 " + kFixtures +
                            "/corridor.rail " + sched);
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("reach: train T"), std::string::npos) << result.output;
}

TEST(EtcslintCli, ReachJsonIsByteStable) {
    const std::string sched = writeSchedFile(
        "cli_test_reach_json",
        "scenario relaxed\ntrain T 120 200\nrun T from SA dep 0:00 to SB arr 0:02:00\n");
    const std::string command = kLint + " --reach --json --rs 500 --rt 30 " + kFixtures +
                                "/corridor.rail " + sched;
    const auto first = run(command);
    EXPECT_EQ(first.exitCode, 0) << first.output;
    EXPECT_NE(first.output.find("\"reach\""), std::string::npos) << first.output;
    EXPECT_NE(first.output.find("\"windows\""), std::string::npos) << first.output;
    const auto second = run(command);
    EXPECT_EQ(first.output, second.output) << "reach JSON must be deterministic";
}

TEST(EtcslintCli, ReachWithMissingFileExitsTwo) {
    const auto result = run(kLint + " --reach /nonexistent/net.rail");
    EXPECT_EQ(result.exitCode, 2) << result.output;
}

TEST(GencnfCli, UnknownStudyExitsTwo) {
    const auto result = run(kGencnf + " nosuch " + testing::TempDir() + "out.cnf");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("unknown study"), std::string::npos) << result.output;
}

TEST(GencnfCli, UnwritableOutputExitsTwoWithoutPartialFile) {
    const std::string target = "/nonexistent_dir/out.cnf";
    const auto result = run(kGencnf + " simple " + target);
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
    EXPECT_FALSE(std::ifstream(target).is_open()) << "no partial output may remain";
}

TEST(GencnfCli, ValidStudyWritesAFormula) {
    const std::string target = testing::TempDir() + "cli_test_simple.cnf";
    const auto result = run(kGencnf + " simple " + target);
    EXPECT_EQ(result.exitCode, 0) << result.output;
    std::ifstream in(target);
    ASSERT_TRUE(in.is_open());
    std::string token;
    in >> token;
    EXPECT_TRUE(token == "c" || token == "p") << "DIMACS must start with a header";
}

TEST(DratcheckCli, MissingFormulaExitsTwo) {
    const auto result = run(kDratcheck + " /nonexistent/f.cnf /nonexistent/p.drat");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(DratcheckCli, InvalidDimacsExitsTwo) {
    // A .rail file is not a DIMACS formula; the reader must reject it
    // instead of producing a bogus verification verdict.
    const auto result =
        run(kDratcheck + " " + kFixtures + "/corridor.rail " + kFixtures + "/corridor.rail");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(DratcheckCli, UsageErrorExitsTwo) {
    EXPECT_EQ(run(kDratcheck).exitCode, 2);
}

TEST(EtcsExplainCli, FeasibleScheduleExitsZero) {
    // SA -> SB needs 3 steps at these parameters; a 2-minute deadline
    // (step 4) leaves slack, so there is nothing to explain.
    const std::string sched = writeTempFile(
        "cli_test_feasible.sched",
        "scenario relaxed\ntrain T 120 200\nrun T from SA dep 0:00 to SB arr 0:02:00\n");
    const auto result = run(kExplain + " " + kFixtures + "/corridor.rail " + sched +
                            " --rs 500 --rt 30");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("feasible"), std::string::npos) << result.output;
}

TEST(EtcsExplainCli, InfeasibleScheduleEmitsReportAndExitsOne) {
    const auto result = run(kExplain + " " + kFixtures + "/corridor.rail " + kFixtures +
                            "/infeasible.sched --rs 500 --rt 30");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("E101"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("certified UNSAT core"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("train T"), std::string::npos) << result.output;
}

/// The acceptance contract of docs/EXPLAIN.md, end to end: the JSON report
/// is deterministic, its cited entries are a subset of the certified core's
/// provenance records, and the exported formula/proof pair is certified by
/// the independent dratcheck binary.
TEST(EtcsExplainCli, JsonReportIsBackedByADratCertifiedCore) {
    const std::string stem = testing::TempDir() + "cli_test_explain." +
                             std::to_string(::getpid());
    const std::string jsonFile = stem + ".json";
    const std::string cnfFile = stem + ".cnf";
    const std::string proofFile = stem + ".drat";
    const std::string command = kExplain + " " + kFixtures + "/corridor.rail " +
                                kFixtures + "/infeasible.sched --rs 500 --rt 30 --json" +
                                " --out " + jsonFile + " --cnf-out " + cnfFile +
                                " --proof-out " + proofFile;
    const auto result = run(command);
    ASSERT_EQ(result.exitCode, 1) << result.output;

    // The report must parse, claim certification, and cite only (train,
    // section, step) entries backed by the certified core's records.
    std::ifstream in(jsonFile);
    ASSERT_TRUE(in.is_open());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const etcs::util::JsonValue root = etcs::util::parseJson(buffer.str());
    ASSERT_TRUE(root.isObject());
    ASSERT_NE(root.find("certified"), nullptr);
    EXPECT_TRUE(root.find("certified")->boolean);
    ASSERT_NE(root.find("unsat"), nullptr);
    EXPECT_TRUE(root.find("unsat")->boolean);

    const etcs::util::JsonValue* entries = root.find("entries");
    const etcs::util::JsonValue* records = root.find("coreRecords");
    ASSERT_NE(entries, nullptr);
    ASSERT_NE(records, nullptr);
    ASSERT_GE(entries->items.size(), 2u) << "summary plus at least one citation";
    ASSERT_FALSE(records->items.empty());
    const auto field = [](const etcs::util::JsonValue& object, const char* name) {
        const etcs::util::JsonValue* value = object.find(name);
        return value == nullptr ? -2.0 : value->number;
    };
    for (const etcs::util::JsonValue& entry : entries->items) {
        const etcs::util::JsonValue* family = entry.find("family");
        ASSERT_NE(family, nullptr);
        if (family->text.empty()) {
            continue;  // the E101 summary cites no single record
        }
        bool supported = false;
        for (const etcs::util::JsonValue& record : records->items) {
            supported = supported ||
                        (record.find("family")->text == family->text &&
                         field(record, "run") == field(entry, "run") &&
                         field(record, "ttd") == field(entry, "ttd") &&
                         field(record, "segment") == field(entry, "segment") &&
                         field(entry, "stepFirst") <= field(record, "step") &&
                         field(record, "step") <= field(entry, "stepLast"));
        }
        EXPECT_TRUE(supported) << "uncited entry family " << family->text;
    }

    // Determinism: a second run produces a byte-identical report.
    const std::string jsonFile2 = stem + ".2.json";
    const auto rerun = run(kExplain + " " + kFixtures + "/corridor.rail " + kFixtures +
                           "/infeasible.sched --rs 500 --rt 30 --json --out " + jsonFile2);
    ASSERT_EQ(rerun.exitCode, 1) << rerun.output;
    std::ifstream second(jsonFile2);
    std::stringstream buffer2;
    buffer2 << second.rdbuf();
    EXPECT_EQ(buffer.str(), buffer2.str());

    // Independent certification of the exported core's refutation.
    const auto check = run(kDratcheck + " " + cnfFile + " " + proofFile);
    EXPECT_EQ(check.exitCode, 0) << check.output;
    EXPECT_NE(check.output.find("VERIFIED"), std::string::npos) << check.output;
}

TEST(EtcsExplainCli, MissingFileExitsTwo) {
    const auto result = run(kExplain + " /nonexistent/net.rail /nonexistent/s.sched"
                            " --rs 500 --rt 30");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(EtcsExplainCli, UsageErrorExitsTwo) {
    EXPECT_EQ(run(kExplain).exitCode, 2);
}

TEST(BenchdiffCli, IdenticalFilesHaveNoRegressions) {
    const std::string bench = writeTempFile(
        "cli_test_bench_old.json",
        R"({"counters":{"etcs.sat.conflicts":120},"gauges":{"table1.simple.verify.runtime_seconds":1.5},"histograms":{}})");
    const auto result = run(kBenchdiff + " " + bench + " " + bench);
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("0 regression(s)"), std::string::npos) << result.output;
}

TEST(BenchdiffCli, FlagsRuntimeRegressionsBeyondThreshold) {
    const std::string before = writeTempFile(
        "cli_test_bench_before.json",
        R"({"gauges":{"table1.simple.verify.runtime_seconds":1.0,"table1.simple.verify.variables":50}})");
    const std::string after = writeTempFile(
        "cli_test_bench_after.json",
        R"({"gauges":{"table1.simple.verify.runtime_seconds":2.0,"table1.simple.verify.variables":50}})");
    const auto result = run(kBenchdiff + " --threshold 0.25 " + before + " " + after);
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("REGRESSION"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("runtime_seconds"), std::string::npos) << result.output;

    // Within threshold, or on an unwatched metric, the diff is clean.
    const auto reversed = run(kBenchdiff + " --threshold 0.25 " + after + " " + before);
    EXPECT_EQ(reversed.exitCode, 0) << reversed.output;
}

TEST(BenchdiffCli, MalformedJsonExitsTwo) {
    const std::string bad = writeTempFile("cli_test_bench_bad.json", "{not json");
    const auto result = run(kBenchdiff + " " + bad + " " + bad);
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(BenchdiffCli, UsageErrorExitsTwo) {
    EXPECT_EQ(run(kBenchdiff).exitCode, 2);
}

TEST(EtcsgenCli, TwoRunsAreByteIdenticalForEveryFamily) {
    // The reproducibility headline: identical parameters must reproduce
    // identical bytes for every family x schedule-kind combination.
    const std::string stem = testing::TempDir() + "cli_test_gen." +
                             std::to_string(::getpid());
    ASSERT_EQ(run("mkdir -p " + stem + ".1 " + stem + ".2").exitCode, 0);
    const std::string flags = " --family all --schedule all --seed 5 --out ";
    ASSERT_EQ(run(kEtcsgen + flags + stem + ".1").exitCode, 0);
    ASSERT_EQ(run(kEtcsgen + flags + stem + ".2").exitCode, 0);
    const auto diff = run("diff -r " + stem + ".1 " + stem + ".2");
    EXPECT_EQ(diff.exitCode, 0) << diff.output;
}

TEST(EtcsgenCli, DimacsExportCarriesHeaderAndManifestParses) {
    const std::string dir = testing::TempDir() + "cli_test_gen_cnf." +
                            std::to_string(::getpid());
    ASSERT_EQ(run("mkdir -p " + dir).exitCode, 0);
    const auto result =
        run(kEtcsgen + " --family corridor --seed 42 --dimacs --out " + dir);
    ASSERT_EQ(result.exitCode, 0) << result.output;

    std::ifstream cnf(dir + "/corridor_s42_n3_t2_feasible.cnf");
    ASSERT_TRUE(cnf.is_open());
    std::string token;
    cnf >> token;
    EXPECT_TRUE(token == "c" || token == "p") << "DIMACS must start with a header";

    std::ifstream manifest(dir + "/corridor_s42_n3_t2_feasible.json");
    ASSERT_TRUE(manifest.is_open());
    std::stringstream buffer;
    buffer << manifest.rdbuf();
    const etcs::util::JsonValue root = etcs::util::parseJson(buffer.str());
    ASSERT_TRUE(root.isObject());
    ASSERT_NE(root.find("seed"), nullptr);
    EXPECT_EQ(root.find("seed")->number, 42.0);
    ASSERT_NE(root.find("family"), nullptr);
    EXPECT_EQ(root.find("family")->text, "corridor");
}

TEST(EtcsgenCli, UnknownFamilyExitsTwo) {
    const auto result = run(kEtcsgen + " --family motorway --seed 1");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("unknown family"), std::string::npos) << result.output;
}

TEST(EtcsgenCli, MissingRequiredFlagsExitsTwo) {
    EXPECT_EQ(run(kEtcsgen).exitCode, 2);
    EXPECT_EQ(run(kEtcsgen + " --family corridor").exitCode, 2);
}

TEST(EtcsgenCli, UnwritableOutputExitsTwo) {
    const auto result =
        run(kEtcsgen + " --family corridor --seed 1 --out /nonexistent_dir");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(EtcsCliGenCorpus, FeasibleInstancesVerifyWithExitZero) {
    for (const char* name :
         {"corridor_s42_n3_t2_feasible", "station_s42_n3_t2_feasible",
          "single_track_s42_n3_t2_feasible", "network_s42_n3_t2_feasible"}) {
        SCOPED_TRACE(name);
        const std::string base = kFixtures + "/gen/" + name;
        const auto result = run(kEtcsCli + " verify " + base + ".rail " + base +
                                ".sched --rs 500 --rt 60");
        EXPECT_EQ(result.exitCode, 0) << result.output;
        EXPECT_NE(result.output.find("FEASIBLE"), std::string::npos) << result.output;
    }
}

TEST(EtcsCliGenCorpus, InfeasibleInstancesExitOne) {
    for (const char* name :
         {"corridor_s42_n3_t2_infeasible", "station_s42_n3_t2_infeasible",
          "ring_s42_n3_t2_infeasible", "network_s42_n3_t2_infeasible"}) {
        SCOPED_TRACE(name);
        const std::string base = kFixtures + "/gen/" + name;
        const auto result = run(kEtcsCli + " verify " + base + ".rail " + base +
                                ".sched --rs 500 --rt 60");
        EXPECT_EQ(result.exitCode, 1) << result.output;
        EXPECT_NE(result.output.find("INFEASIBLE"), std::string::npos) << result.output;
    }
}

TEST(EtcslintCli, GenInfeasibleCorpusIsProvenByL024) {
    const std::string base = kFixtures + "/gen/ring_s42_n3_t2_infeasible";
    const auto result = run(kLint + " --rs 500 --rt 60 " + base + ".rail " + base +
                            ".sched");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("L024"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("proven infeasible (no SAT solver required)"),
              std::string::npos)
        << result.output;
}

TEST(EtcslintCli, GenFeasibleCorpusIsClean) {
    const std::string base = kFixtures + "/gen/corridor_s42_n3_t2_feasible";
    const auto result = run(kLint + " --rs 500 --rt 60 " + base + ".rail " + base +
                            ".sched");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos) << result.output;
}

TEST(EtcsExplainCli, GenInfeasibleCorpusGetsACertifiedExplanation) {
    const std::string base = kFixtures + "/gen/network_s42_n3_t2_infeasible";
    const auto result = run(kExplain + " " + base + ".rail " + base +
                            ".sched --rs 500 --rt 60");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("certified UNSAT core"), std::string::npos)
        << result.output;
}

}  // namespace
