/// \file cli_test.cpp
/// End-to-end exit-code and output contracts of the shipped command-line
/// tools: etcslint, gencnf and dratcheck. Exit code conventions: 0 success
/// (for etcslint: no error-severity findings), 1 findings / NOT VERIFIED,
/// 2 usage or I/O error — and never partial output on failure.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef ETCS_ETCSLINT_BIN
#error "ETCS_ETCSLINT_BIN must point at the etcslint executable"
#endif
#ifndef ETCS_GENCNF_BIN
#error "ETCS_GENCNF_BIN must point at the gencnf executable"
#endif
#ifndef ETCS_DRATCHECK_BIN
#error "ETCS_DRATCHECK_BIN must point at the dratcheck executable"
#endif
#ifndef ETCS_DATA_DIR
#error "ETCS_DATA_DIR must point at the repository's data/ directory"
#endif
#ifndef ETCS_FIXTURE_DIR
#error "ETCS_FIXTURE_DIR must point at tests/fixtures/"
#endif

namespace {

struct RunResult {
    int exitCode = -1;
    std::string output;  ///< combined stdout + stderr
};

/// Run a command, capturing combined output and the real exit code. The
/// capture file is per-process: ctest runs each discovered test case as its
/// own process, concurrently under -j, and a shared file name races.
RunResult run(const std::string& command) {
    const std::string outFile = testing::TempDir() + "cli_test_output." +
                                std::to_string(::getpid()) + ".txt";
    const int status = std::system((command + " > " + outFile + " 2>&1").c_str());
    RunResult result;
    if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    std::ifstream in(outFile);
    std::stringstream buffer;
    buffer << in.rdbuf();
    result.output = buffer.str();
    return result;
}

const std::string kLint = ETCS_ETCSLINT_BIN;
const std::string kGencnf = ETCS_GENCNF_BIN;
const std::string kDratcheck = ETCS_DRATCHECK_BIN;
const std::string kData = ETCS_DATA_DIR;
const std::string kFixtures = ETCS_FIXTURE_DIR;

TEST(EtcslintCli, ShippedDataExitsZero) {
    const auto result =
        run(kLint + " " + kData + "/quickstart.rail " + kData + "/quickstart.sched");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos) << result.output;
}

TEST(EtcslintCli, InfeasibleScheduleExitsOneWithProofMessage) {
    const auto result = run(kLint + " " + kFixtures + "/corridor.rail " + kFixtures +
                            "/infeasible.sched");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("L024"), std::string::npos) << result.output;
    EXPECT_NE(result.output.find("proven infeasible (no SAT solver required)"),
              std::string::npos)
        << result.output;
}

TEST(EtcslintCli, BrokenNetworkExitsOne) {
    const auto result = run(kLint + " " + kFixtures + "/broken.rail");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("L005"), std::string::npos) << result.output;
}

TEST(EtcslintCli, JsonOutputIsEmitted) {
    const auto result = run(kLint + " --json " + kFixtures + "/broken.rail");
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("\"errors\":true"), std::string::npos) << result.output;
}

TEST(EtcslintCli, MissingFileExitsTwo) {
    const auto result = run(kLint + " /nonexistent/net.rail");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(EtcslintCli, NoArgumentsExitsTwo) {
    EXPECT_EQ(run(kLint).exitCode, 2);
}

TEST(EtcslintCli, CodesListsTheCatalogue) {
    const auto result = run(kLint + " --codes");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("L024"), std::string::npos);
    EXPECT_NE(result.output.find("C010"), std::string::npos);
}

TEST(GencnfCli, UnknownStudyExitsTwo) {
    const auto result = run(kGencnf + " nosuch " + testing::TempDir() + "out.cnf");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("unknown study"), std::string::npos) << result.output;
}

TEST(GencnfCli, UnwritableOutputExitsTwoWithoutPartialFile) {
    const std::string target = "/nonexistent_dir/out.cnf";
    const auto result = run(kGencnf + " simple " + target);
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
    EXPECT_FALSE(std::ifstream(target).is_open()) << "no partial output may remain";
}

TEST(GencnfCli, ValidStudyWritesAFormula) {
    const std::string target = testing::TempDir() + "cli_test_simple.cnf";
    const auto result = run(kGencnf + " simple " + target);
    EXPECT_EQ(result.exitCode, 0) << result.output;
    std::ifstream in(target);
    ASSERT_TRUE(in.is_open());
    std::string token;
    in >> token;
    EXPECT_TRUE(token == "c" || token == "p") << "DIMACS must start with a header";
}

TEST(DratcheckCli, MissingFormulaExitsTwo) {
    const auto result = run(kDratcheck + " /nonexistent/f.cnf /nonexistent/p.drat");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(DratcheckCli, InvalidDimacsExitsTwo) {
    // A .rail file is not a DIMACS formula; the reader must reject it
    // instead of producing a bogus verification verdict.
    const auto result =
        run(kDratcheck + " " + kFixtures + "/corridor.rail " + kFixtures + "/corridor.rail");
    EXPECT_EQ(result.exitCode, 2) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
}

TEST(DratcheckCli, UsageErrorExitsTwo) {
    EXPECT_EQ(run(kDratcheck).exitCode, 2);
}

}  // namespace
