// Property tests: the CDCL solver agrees with brute-force enumeration on
// random formulas across clause densities, and its models satisfy every
// clause.
#include <gtest/gtest.h>

#include <random>

#include "sat/solver.hpp"
#include "support/test_seed.hpp"

namespace etcs::sat {
namespace {

struct RandomCnf {
    int numVariables;
    std::vector<std::vector<Literal>> clauses;
};

RandomCnf makeRandomCnf(std::mt19937& rng, int numVariables, int numClauses, int clauseSize) {
    RandomCnf cnf;
    cnf.numVariables = numVariables;
    std::uniform_int_distribution<int> varDist(0, numVariables - 1);
    std::bernoulli_distribution signDist(0.5);
    for (int c = 0; c < numClauses; ++c) {
        std::vector<Literal> clause;
        for (int k = 0; k < clauseSize; ++k) {
            clause.push_back(Literal(varDist(rng), signDist(rng)));
        }
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

bool bruteForceSat(const RandomCnf& cnf) {
    for (std::uint32_t assignment = 0; assignment < (1u << cnf.numVariables); ++assignment) {
        bool allSatisfied = true;
        for (const auto& clause : cnf.clauses) {
            bool satisfied = false;
            for (Literal l : clause) {
                const bool value = ((assignment >> l.var()) & 1u) != 0;
                if (value != l.sign()) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied) {
                allSatisfied = false;
                break;
            }
        }
        if (allSatisfied) {
            return true;
        }
    }
    return false;
}

bool modelSatisfies(const Solver& solver, const RandomCnf& cnf) {
    for (const auto& clause : cnf.clauses) {
        bool satisfied = false;
        for (Literal l : clause) {
            if (solver.modelValue(l) == Value::True) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) {
            return false;
        }
    }
    return true;
}

/// (variables, clause-count multiplier x10, clause size, seed)
using RandomCase = std::tuple<int, int, int, unsigned>;

class RandomCnfTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
    const auto [numVariables, densityX10, clauseSize, baseSeed] = GetParam();
    const unsigned seed = etcs::test::effectiveSeed(baseSeed);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    const int numClauses = numVariables * densityX10 / 10;
    for (int round = 0; round < 12; ++round) {
        const RandomCnf cnf = makeRandomCnf(rng, numVariables, numClauses, clauseSize);
        Solver solver;
        for (int v = 0; v < cnf.numVariables; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : cnf.clauses) {
            solver.addClause(clause);
        }
        const SolveStatus status = solver.solve();
        const bool expected = bruteForceSat(cnf);
        ASSERT_EQ(status, expected ? SolveStatus::Sat : SolveStatus::Unsat)
            << "seed=" << seed << " vars=" << numVariables << " clauses=" << numClauses
            << " round=" << round;
        if (status == SolveStatus::Sat) {
            EXPECT_TRUE(modelSatisfies(solver, cnf)) << "seed=" << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, RandomCnfTest,
    ::testing::Values(
        // Under-constrained (mostly SAT), critical (~4.3 for 3-SAT), and
        // over-constrained (mostly UNSAT) regions, plus 2-SAT mixes.
        RandomCase{8, 20, 3, 1}, RandomCase{8, 43, 3, 2}, RandomCase{8, 70, 3, 3},
        RandomCase{10, 43, 3, 4}, RandomCase{12, 43, 3, 5}, RandomCase{14, 43, 3, 6},
        RandomCase{10, 10, 2, 7}, RandomCase{10, 20, 2, 8}, RandomCase{10, 30, 2, 9},
        RandomCase{12, 55, 4, 10}, RandomCase{9, 60, 3, 11}, RandomCase{15, 42, 3, 12}));

class RandomAssumptionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomAssumptionTest, AssumptionsMatchHardUnits) {
    // Solving under assumptions must match solving with the same literals
    // added as unit clauses to a fresh solver.
    const unsigned seed = etcs::test::effectiveSeed(GetParam());
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    for (int round = 0; round < 10; ++round) {
        const RandomCnf cnf = makeRandomCnf(rng, 10, 38, 3);
        std::uniform_int_distribution<int> varDist(0, 9);
        std::bernoulli_distribution signDist(0.5);
        std::vector<Literal> assumptions;
        for (int i = 0; i < 3; ++i) {
            assumptions.push_back(Literal(varDist(rng), signDist(rng)));
        }

        Solver incremental;
        Solver oneShot;
        for (int v = 0; v < 10; ++v) {
            incremental.addVariable();
            oneShot.addVariable();
        }
        for (const auto& clause : cnf.clauses) {
            incremental.addClause(clause);
            oneShot.addClause(clause);
        }
        bool oneShotOk = true;
        for (Literal l : assumptions) {
            oneShotOk = oneShot.addClause({l}) && oneShotOk;
        }
        const SolveStatus viaAssumptions = incremental.solve(assumptions);
        const SolveStatus viaUnits = oneShotOk ? oneShot.solve() : SolveStatus::Unsat;
        EXPECT_EQ(viaAssumptions, viaUnits) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssumptionTest, ::testing::Values(11u, 22u, 33u, 44u));

TEST(RandomCnf, CoreIsActuallyUnsat) {
    // Every reported conflict core, added as units, must be unsatisfiable.
    const unsigned seed = etcs::test::effectiveSeed(99);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    int coresChecked = 0;
    for (int round = 0; round < 40 && coresChecked < 8; ++round) {
        const RandomCnf cnf = makeRandomCnf(rng, 10, 35, 3);
        std::uniform_int_distribution<int> varDist(0, 9);
        std::bernoulli_distribution signDist(0.5);
        std::vector<Literal> assumptions;
        for (int i = 0; i < 5; ++i) {
            assumptions.push_back(Literal(varDist(rng), signDist(rng)));
        }
        Solver solver;
        for (int v = 0; v < 10; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : cnf.clauses) {
            solver.addClause(clause);
        }
        if (solver.solve(assumptions) != SolveStatus::Unsat || !solver.okay()) {
            continue;
        }
        const std::vector<Literal> core = solver.conflictCore();
        ASSERT_FALSE(core.empty());
        Solver check;
        for (int v = 0; v < 10; ++v) {
            check.addVariable();
        }
        for (const auto& clause : cnf.clauses) {
            check.addClause(clause);
        }
        bool stillOk = true;
        for (Literal l : core) {
            stillOk = check.addClause({l}) && stillOk;
        }
        EXPECT_TRUE(!stillOk || check.solve() == SolveStatus::Unsat);
        ++coresChecked;
    }
    EXPECT_GT(coresChecked, 0);
}

}  // namespace
}  // namespace etcs::sat
