// Tseitin formula-helper tests (cnf/formula.hpp).
#include <gtest/gtest.h>

#include "cnf/backend.hpp"
#include "cnf/formula.hpp"

namespace etcs::cnf {
namespace {

std::vector<Literal> makeInputs(SatBackend& backend, int n) {
    std::vector<Literal> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(Literal::positive(backend.addVariable()));
    }
    return inputs;
}

std::vector<Literal> assumptionsFor(const std::vector<Literal>& inputs, std::uint32_t bits) {
    std::vector<Literal> assumptions;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        assumptions.push_back(((bits >> i) & 1u) != 0 ? inputs[i] : ~inputs[i]);
    }
    return assumptions;
}

TEST(Formula, Implication) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 2);
    addImplication(*backend, x[0], x[1]);
    EXPECT_EQ(backend->solve({x[0], ~x[1]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({x[0], x[1]}), SolveStatus::Sat);
    EXPECT_EQ(backend->solve({~x[0], ~x[1]}), SolveStatus::Sat);
}

TEST(Formula, ImplicationToDisjunction) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 4);
    const Literal disj[] = {x[1], x[2], x[3]};
    addImplicationToDisjunction(*backend, x[0], disj);
    EXPECT_EQ(backend->solve({x[0], ~x[1], ~x[2], ~x[3]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({x[0], ~x[1], x[2], ~x[3]}), SolveStatus::Sat);
}

TEST(Formula, ConjunctionImpliesDisjunction) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 4);
    const Literal conj[] = {x[0], x[1]};
    const Literal disj[] = {x[2], x[3]};
    addConjunctionImpliesDisjunction(*backend, conj, disj);
    EXPECT_EQ(backend->solve({x[0], x[1], ~x[2], ~x[3]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({x[0], ~x[1], ~x[2], ~x[3]}), SolveStatus::Sat);
}

TEST(Formula, Equivalence) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 2);
    addEquivalence(*backend, x[0], x[1]);
    EXPECT_EQ(backend->solve({x[0], ~x[1]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({~x[0], x[1]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({x[0], x[1]}), SolveStatus::Sat);
    EXPECT_EQ(backend->solve({~x[0], ~x[1]}), SolveStatus::Sat);
}

TEST(Formula, MakeAndTruthTable) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 3);
    const Literal y = makeAnd(*backend, x);
    for (std::uint32_t bits = 0; bits < 8; ++bits) {
        auto assumptions = assumptionsFor(x, bits);
        ASSERT_EQ(backend->solve(assumptions), SolveStatus::Sat);
        EXPECT_EQ(backend->modelValue(y), bits == 7u) << "bits=" << bits;
    }
}

TEST(Formula, MakeOrTruthTable) {
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 3);
    const Literal y = makeOr(*backend, x);
    for (std::uint32_t bits = 0; bits < 8; ++bits) {
        auto assumptions = assumptionsFor(x, bits);
        ASSERT_EQ(backend->solve(assumptions), SolveStatus::Sat);
        EXPECT_EQ(backend->modelValue(y), bits != 0u) << "bits=" << bits;
    }
}

TEST(Formula, GatesComposable) {
    // (a & b) | (c & d) as two AND gates into an OR gate.
    const auto backend = makeInternalBackend();
    const auto x = makeInputs(*backend, 4);
    const Literal left[] = {x[0], x[1]};
    const Literal right[] = {x[2], x[3]};
    const Literal ands[] = {makeAnd(*backend, left), makeAnd(*backend, right)};
    const Literal out = makeOr(*backend, ands);
    backend->addUnit(out);
    EXPECT_EQ(backend->solve({~x[0], ~x[2]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({x[0], x[1], ~x[2]}), SolveStatus::Sat);
}

}  // namespace
}  // namespace etcs::cnf
