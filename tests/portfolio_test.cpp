// Differential and property harness for the parallel portfolio SAT backend.
//
// Four batteries (see docs/PARALLEL.md for the subsystem itself):
//  * differential — seeded random CNFs plus encoder-generated ETCS instances
//    are solved by the plain solver, portfolio instances at 1/2/4 threads
//    (racing and deterministic), and Z3 when compiled in; verdicts must
//    agree, SAT models must satisfy the formula, and failed-assumption
//    cores must be real cores;
//  * clause-sharing soundness — every clause a worker imports is recorded
//    and proven to be a consequence of the original formula by refuting
//    F ∧ ¬C with a proof-logging solver and certifying the refutation with
//    the independent DRAT checker;
//  * determinism regression — deterministic mode with a fixed (seed,
//    threads) pair must reproduce the verdict, winner, epoch count, work
//    counters, and model bit-for-bit across fresh runs;
//  * stress — repeated racing solves on a small UNSAT instance to shake
//    out cancellation/teardown races (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "cnf/backend.hpp"
#include "cnf/collect.hpp"
#include "obs/metrics.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "sat/drat_check.hpp"
#include "sat/portfolio.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "studies/studies.hpp"
#include "support/formula_helpers.hpp"
#include "support/test_seed.hpp"

namespace etcs::sat {
namespace {

using etcs::test::makeRandomFormula;
using etcs::test::modelSatisfies;
using etcs::test::pigeonhole;
using etcs::test::proofCertifies;

struct PortfolioRun {
    SolveStatus status = SolveStatus::Unknown;
    int winner = -1;
    std::uint64_t epochs = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t imported = 0;
    std::vector<Value> model;  ///< populated on Sat, indexed by variable
};

PortfolioRun solvePortfolio(const CnfFormula& f, PortfolioOptions options,
                            std::span<const Literal> assumptions = {}) {
    PortfolioSolver portfolio(std::move(options));
    for (int v = 0; v < f.numVariables; ++v) {
        portfolio.addVariable();
    }
    for (const auto& clause : f.clauses) {
        portfolio.addClause(clause);
    }
    PortfolioRun run;
    run.status = portfolio.solve(assumptions);
    run.winner = portfolio.lastWinner();
    run.epochs = portfolio.stats().epochs;
    run.conflicts = portfolio.solverStats().conflicts;
    run.imported = portfolio.stats().importedClauses;
    if (run.status == SolveStatus::Sat) {
        run.model.resize(static_cast<std::size_t>(f.numVariables));
        for (Var v = 0; v < f.numVariables; ++v) {
            run.model[static_cast<std::size_t>(v)] = portfolio.modelValue(v);
        }
    }
    return run;
}

SolveStatus solveReference(const CnfFormula& f,
                           std::span<const Literal> assumptions = {}) {
    Solver solver;
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    return solver.solve(assumptions);
}

#ifdef ETCS_HAVE_Z3
SolveStatus solveZ3(const CnfFormula& f) {
    const auto backend = cnf::makeZ3Backend();
    for (int v = 0; v < f.numVariables; ++v) {
        backend->addVariable();
    }
    for (const auto& clause : f.clauses) {
        backend->addClause(clause);
    }
    return backend->solve();
}
#endif

std::uint64_t modelHash(const std::vector<Value>& model) {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a
    for (const Value v : model) {
        h ^= static_cast<std::uint64_t>(v) + 1;
        h *= 1099511628211ULL;
    }
    return h;
}

// ------------------------------------------------- differential battery --

/// (variables, clauses, clause size, seed) — one batch of the sweep.
using DiffCase = std::tuple<int, int, int, unsigned>;

class PortfolioDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(PortfolioDifferentialTest, AgreesWithReferenceAcrossThreadCounts) {
    const auto [numVariables, numClauses, clauseSize, baseSeed] = GetParam();
    const unsigned seed = etcs::test::effectiveSeed(baseSeed);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);

    int satCount = 0;
    int unsatCount = 0;
    for (int round = 0; round < 25; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const CnfFormula f = makeRandomFormula(rng, numVariables, numClauses, clauseSize);
        const SolveStatus expected = solveReference(f);
        ASSERT_NE(expected, SolveStatus::Unknown);
#ifdef ETCS_HAVE_Z3
        ASSERT_EQ(expected, solveZ3(f));
#endif
        (expected == SolveStatus::Sat ? satCount : unsatCount) += 1;

        for (const int threads : {1, 2, 4}) {
            SCOPED_TRACE("racing threads=" + std::to_string(threads));
            PortfolioOptions options;
            options.numThreads = threads;
            options.seed = seed;
            const PortfolioRun run = solvePortfolio(f, options);
            ASSERT_EQ(run.status, expected);
            ASSERT_GE(run.winner, 0);
            ASSERT_LT(run.winner, threads);
            if (expected == SolveStatus::Sat) {
                EXPECT_TRUE(modelSatisfies(f, run.model));
            }
        }
        {
            SCOPED_TRACE("deterministic threads=2");
            PortfolioOptions options;
            options.numThreads = 2;
            options.deterministic = true;
            options.epochConflicts = 256;
            options.seed = seed;
            const PortfolioRun run = solvePortfolio(f, options);
            ASSERT_EQ(run.status, expected);
            if (expected == SolveStatus::Sat) {
                EXPECT_TRUE(modelSatisfies(f, run.model));
            }
        }
    }
    // The sweep spans under- and over-constrained densities; every batch
    // must actually exercise at least one of the two verdict paths.
    EXPECT_GT(satCount + unsatCount, 0);
}

// 8 batches x 25 instances = 200 randomized instances per run, spanning
// 2-SAT and 3/4-SAT below, at, and above the satisfiability threshold.
INSTANTIATE_TEST_SUITE_P(
    DensitySweep, PortfolioDifferentialTest,
    ::testing::Values(DiffCase{12, 51, 3, 5001},   // ~4.3 (critical)
                      DiffCase{12, 72, 3, 5002},   // 6.0 (mostly UNSAT)
                      DiffCase{16, 68, 3, 5003},   // ~4.3
                      DiffCase{20, 100, 3, 5004},  // 5.0
                      DiffCase{10, 20, 2, 5005},   // 2-SAT mixed
                      DiffCase{10, 35, 2, 5006},   // 2-SAT mostly UNSAT
                      DiffCase{25, 107, 3, 5007},  // ~4.3, larger
                      DiffCase{30, 135, 4, 5008}   // 4-SAT under-threshold
                      ));

// --------------------------------------------- assumptions and the cores --

TEST(PortfolioAssumptions, IncrementalSolvesMatchAndCoresAreReal) {
    const unsigned seed = etcs::test::effectiveSeed(6100);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    std::bernoulli_distribution signDist(0.5);

    int unsatUnderAssumptions = 0;
    for (int round = 0; round < 30; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const CnfFormula f = makeRandomFormula(rng, 16, 68, 3);

        PortfolioOptions options;
        options.numThreads = 4;
        options.seed = seed;
        PortfolioSolver portfolio(options);
        for (int v = 0; v < f.numVariables; ++v) {
            portfolio.addVariable();
        }
        for (const auto& clause : f.clauses) {
            portfolio.addClause(clause);
        }

        // Five incremental solves on the same portfolio: every worker must
        // replay the assumptions, and the winner's verdict must match a
        // fresh single-threaded solver given the same assumptions.
        for (int probe = 0; probe < 5; ++probe) {
            SCOPED_TRACE("probe " + std::to_string(probe));
            std::vector<int> vars(static_cast<std::size_t>(f.numVariables));
            for (std::size_t i = 0; i < vars.size(); ++i) {
                vars[i] = static_cast<int>(i);
            }
            std::shuffle(vars.begin(), vars.end(), rng);
            std::vector<Literal> assumptions;
            for (int i = 0; i < 4; ++i) {
                assumptions.push_back(Literal(vars[static_cast<std::size_t>(i)],
                                              signDist(rng)));
            }

            const SolveStatus expected = solveReference(f, assumptions);
            const SolveStatus got = portfolio.solve(assumptions);
            ASSERT_EQ(got, expected);

            if (got == SolveStatus::Sat) {
                // The winner's model must satisfy formula and assumptions.
                std::vector<Value> model(static_cast<std::size_t>(f.numVariables));
                for (Var v = 0; v < f.numVariables; ++v) {
                    model[static_cast<std::size_t>(v)] = portfolio.modelValue(v);
                }
                EXPECT_TRUE(modelSatisfies(f, model));
                for (const Literal l : assumptions) {
                    EXPECT_EQ(portfolio.modelValue(l), Value::True);
                }
                continue;
            }

            ++unsatUnderAssumptions;
            const std::vector<Literal>& core = portfolio.conflictCore();
            // The core is a subset of the assumptions...
            for (const Literal l : core) {
                EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                          assumptions.end())
                    << "core literal is not an assumption";
            }
            // ...that is itself jointly unsatisfiable with the formula.
            EXPECT_EQ(solveReference(f, core), SolveStatus::Unsat);
        }
    }
    EXPECT_GT(unsatUnderAssumptions, 0)
        << "sweep never hit the failed-assumption path";
}

// --------------------------------------- clause-sharing soundness battery --

/// Thread-safe recorder hooked into PortfolioOptions::onImportedClause.
struct ImportRecorder {
    std::mutex mutex;
    std::vector<std::vector<Literal>> clauses;

    void operator()(int /*worker*/, std::span<const Literal> clause) {
        const std::lock_guard<std::mutex> lock(mutex);
        clauses.emplace_back(clause.begin(), clause.end());
    }
};

/// Prove that `clause` is a consequence of `f`: F ∧ ¬C must be refutable,
/// and the refutation must be certified by the independent DRAT checker.
::testing::AssertionResult clauseIsImplied(const CnfFormula& f,
                                           const std::vector<Literal>& clause) {
    CnfFormula augmented = f;
    MemoryProofWriter proof;
    Solver solver;
    solver.setProofWriter(&proof);
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& c : f.clauses) {
        solver.addClause(c);
    }
    for (const Literal l : clause) {
        augmented.clauses.push_back({~l});
        solver.addClause({~l});
    }
    if (solver.solve() != SolveStatus::Unsat) {
        return ::testing::AssertionFailure() << "F ∧ ¬C is satisfiable";
    }
    return proofCertifies(augmented, proof.takeProof());
}

void checkSharingSoundness(const CnfFormula& f, const PortfolioOptions& base,
                           SolveStatus expected) {
    PortfolioOptions options = base;
    auto recorder = std::make_shared<ImportRecorder>();
    options.onImportedClause = [recorder](int worker, std::span<const Literal> c) {
        (*recorder)(worker, c);
    };
    const PortfolioRun run = solvePortfolio(f, options);
    ASSERT_EQ(run.status, expected);
    ASSERT_FALSE(recorder->clauses.empty())
        << "no clauses were shared; the instance is too easy to exercise sharing";

    // Deduplicate (the same clause reaches several inboxes) and verify a
    // bounded sample — implication checks against the DRAT checker are the
    // expensive part, not the collection.
    std::set<std::vector<Literal>> distinct;
    for (auto clause : recorder->clauses) {
        ASSERT_FALSE(clause.empty()) << "an empty clause was shared";
        std::sort(clause.begin(), clause.end());
        distinct.insert(std::move(clause));
    }
    constexpr std::size_t kSample = 60;
    std::size_t checked = 0;
    for (const auto& clause : distinct) {
        if (checked++ == kSample) {
            break;
        }
        EXPECT_TRUE(clauseIsImplied(f, clause));
    }
}

TEST(PortfolioClauseSharing, RacingImportsAreConsequencesOfTheFormula) {
    PortfolioOptions options;
    options.numThreads = 4;
    options.seed = etcs::test::effectiveSeed(6200);
    checkSharingSoundness(pigeonhole(8, 7), options, SolveStatus::Unsat);
}

TEST(PortfolioClauseSharing, DeterministicExchangeIsSoundToo) {
    PortfolioOptions options;
    options.numThreads = 4;
    options.deterministic = true;
    options.epochConflicts = 512;  // force several exchange barriers
    options.seed = etcs::test::effectiveSeed(6201);
    checkSharingSoundness(pigeonhole(8, 7), options, SolveStatus::Unsat);
}

TEST(PortfolioClauseSharing, SharingActuallyHappensOnHardInstances) {
    PortfolioOptions options;
    options.numThreads = 4;
    options.seed = etcs::test::effectiveSeed(6202);
    const PortfolioRun run = solvePortfolio(pigeonhole(8, 7), options);
    ASSERT_EQ(run.status, SolveStatus::Unsat);
    EXPECT_GT(run.imported, 0u);
}

// ------------------------------------------------ determinism regression --

TEST(PortfolioDeterminism, UnsatRunsAreReproducible) {
    const CnfFormula php = pigeonhole(8, 7);
    PortfolioOptions options;
    options.numThreads = 4;
    options.deterministic = true;
    options.epochConflicts = 512;
    options.seed = 42;

    const PortfolioRun first = solvePortfolio(php, options);
    const PortfolioRun second = solvePortfolio(php, options);
    ASSERT_EQ(first.status, SolveStatus::Unsat);
    EXPECT_EQ(second.status, first.status);
    EXPECT_EQ(second.winner, first.winner);
    EXPECT_EQ(second.epochs, first.epochs);
    EXPECT_EQ(second.conflicts, first.conflicts);
    EXPECT_EQ(second.imported, first.imported);
    EXPECT_GT(first.epochs, 1u) << "instance finished in one epoch; the "
                                    "exchange path was not exercised";
}

TEST(PortfolioDeterminism, SatModelIsReproducible) {
    const unsigned seed = etcs::test::effectiveSeed(6300);
    SCOPED_TRACE(etcs::test::seedTrace(seed));
    std::mt19937 rng(seed);
    // Density 2.5 — nearly always SAT; skip the rare UNSAT draws.
    int compared = 0;
    for (int round = 0; round < 8 && compared < 3; ++round) {
        const CnfFormula f = makeRandomFormula(rng, 24, 60, 3);
        PortfolioOptions options;
        options.numThreads = 4;
        options.deterministic = true;
        options.epochConflicts = 64;
        options.seed = 7;

        const PortfolioRun first = solvePortfolio(f, options);
        const PortfolioRun second = solvePortfolio(f, options);
        ASSERT_EQ(second.status, first.status);
        if (first.status != SolveStatus::Sat) {
            continue;
        }
        ++compared;
        EXPECT_EQ(second.winner, first.winner);
        EXPECT_EQ(second.conflicts, first.conflicts);
        EXPECT_EQ(modelHash(second.model), modelHash(first.model));
        EXPECT_TRUE(modelSatisfies(f, first.model));
    }
    EXPECT_GT(compared, 0) << "sweep never produced a SAT instance";
}

// ------------------------------------------------------ winner-only DRAT --

TEST(PortfolioProofs, WinnerProofCertifiesAndSharingIsDisabled) {
    const CnfFormula php = pigeonhole(7, 6);
    for (const bool deterministic : {false, true}) {
        SCOPED_TRACE(deterministic ? "deterministic" : "racing");
        PortfolioOptions options;
        options.numThreads = 4;
        options.deterministic = deterministic;
        options.epochConflicts = 512;
        PortfolioSolver portfolio(options);
        MemoryProofWriter proof;
        portfolio.setProofWriter(&proof);
        for (int v = 0; v < php.numVariables; ++v) {
            portfolio.addVariable();
        }
        for (const auto& clause : php.clauses) {
            portfolio.addClause(clause);
        }
        ASSERT_EQ(portfolio.solve(), SolveStatus::Unsat);
        ASSERT_GE(portfolio.lastWinner(), 0);
        // Proof capture forces a share-nothing portfolio: a worker's DRAT
        // derivation must stay self-contained.
        EXPECT_EQ(portfolio.stats().exportedClauses, 0u);
        EXPECT_EQ(portfolio.stats().importedClauses, 0u);
        EXPECT_TRUE(proofCertifies(php, proof.takeProof()));
    }
}

// ------------------------------------------------------- stress (TSan) --

TEST(PortfolioStress, RepeatedRacingSolvesStayCorrect) {
    const CnfFormula php = pigeonhole(6, 5);
    for (int iteration = 0; iteration < 50; ++iteration) {
        SCOPED_TRACE("iteration " + std::to_string(iteration));
        PortfolioOptions options;
        options.numThreads = 4;
        options.seed = static_cast<std::uint64_t>(iteration) + 1;
        const PortfolioRun run = solvePortfolio(php, options);
        ASSERT_EQ(run.status, SolveStatus::Unsat);
        ASSERT_GE(run.winner, 0);
    }
}

// ------------------------------------------------------- ETCS instances --

struct EncodedInstance {
    CnfFormula sat;    ///< verification on the finest layout (feasible)
    CnfFormula unsat;  ///< same, plus completion pinned before its bound
};

EncodedInstance encodeStudy(const studies::CaseStudy& study) {
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    EncodedInstance out;
    {
        cnf::CollectingBackend backend;
        core::Encoder encoder(backend, instance);
        const auto finest = core::VssLayout::finest(instance.graph());
        encoder.encode(&finest);
        out.sat = backend.formula();
    }
    {
        cnf::CollectingBackend backend;
        core::Encoder encoder(backend, instance);
        const auto finest = core::VssLayout::finest(instance.graph());
        encoder.encode(&finest);
        const int bound = encoder.completionLowerBound();
        EXPECT_GE(bound, 1);
        backend.addUnit(encoder.doneAllLiteral(std::max(bound - 1, 0)));
        out.unsat = backend.formula();
    }
    return out;
}

class PortfolioEncoderTest : public ::testing::TestWithParam<studies::CaseStudy (*)()> {};

TEST_P(PortfolioEncoderTest, EtcsInstancesMatchAcrossModes) {
    const studies::CaseStudy study = GetParam()();
    SCOPED_TRACE(study.name);
    const EncodedInstance encoded = encodeStudy(study);

    for (const int threads : {2, 4}) {
        SCOPED_TRACE("racing threads=" + std::to_string(threads));
        PortfolioOptions options;
        options.numThreads = threads;
        const PortfolioRun sat = solvePortfolio(encoded.sat, options);
        ASSERT_EQ(sat.status, SolveStatus::Sat);
        EXPECT_TRUE(modelSatisfies(encoded.sat, sat.model));
        const PortfolioRun unsat = solvePortfolio(encoded.unsat, options);
        ASSERT_EQ(unsat.status, SolveStatus::Unsat);
    }
    {
        SCOPED_TRACE("deterministic");
        PortfolioOptions options;
        options.numThreads = 4;
        options.deterministic = true;
        options.epochConflicts = 1024;
        const PortfolioRun sat = solvePortfolio(encoded.sat, options);
        ASSERT_EQ(sat.status, SolveStatus::Sat);
        EXPECT_TRUE(modelSatisfies(encoded.sat, sat.model));
        const PortfolioRun unsat = solvePortfolio(encoded.unsat, options);
        ASSERT_EQ(unsat.status, SolveStatus::Unsat);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperLayouts, PortfolioEncoderTest,
                         ::testing::Values(&studies::runningExample,
                                           &studies::simpleLayout));

// --------------------------------------------------- backend/task wiring --

TEST(PortfolioBackend, TasksProduceTheSameLayoutQuality) {
    const studies::CaseStudy study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);

    const auto baseline = core::generateLayout(instance);
    core::TaskOptions parallel;
    parallel.threads = 2;
    const auto viaPortfolio = core::generateLayout(instance, parallel);

    ASSERT_EQ(viaPortfolio.feasible, baseline.feasible);
    ASSERT_TRUE(viaPortfolio.feasible);
    // Both backends minimize sum border_v; the optimum is backend-agnostic.
    EXPECT_EQ(viaPortfolio.sectionCount, baseline.sectionCount);
}

// Regression: the portfolio used to expose an always-empty failed-assumption
// core (the winner's solver state is reset by the next solve), starving the
// provenance/explanation pipeline. The winner's core is now snapshotted at
// the end of each Unsat solve and must survive until the next call.
TEST(PortfolioAssumptions, WinnerCoreIsSnapshottedAndNonEmpty) {
    // (x0 | x1) with assumptions {~x0, ~x1}: Unsat, and every failed-
    // assumption core must name at least one of the two assumptions.
    CnfFormula f;
    f.numVariables = 3;
    f.clauses.push_back({Literal::positive(0), Literal::positive(1)});

    PortfolioOptions options;
    options.numThreads = 2;
    options.seed = 7;
    PortfolioSolver portfolio(options);
    for (int v = 0; v < f.numVariables; ++v) {
        portfolio.addVariable();
    }
    for (const auto& clause : f.clauses) {
        portfolio.addClause(clause);
    }

    const std::vector<Literal> assumptions{Literal::negative(0), Literal::negative(1),
                                           Literal::negative(2)};
    ASSERT_EQ(portfolio.solve(assumptions), SolveStatus::Unsat);
    const std::vector<Literal> core = portfolio.conflictCore();
    ASSERT_FALSE(core.empty());
    for (const Literal l : core) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                  assumptions.end())
            << "core literal is not an assumption";
    }
    // The core is a real core: the formula is Unsat under the core alone.
    EXPECT_EQ(solveReference(f, core), SolveStatus::Unsat);

    // A subsequent unconstrained solve is Sat and clears the snapshot.
    ASSERT_EQ(portfolio.solve(), SolveStatus::Sat);
    EXPECT_TRUE(portfolio.conflictCore().empty());
}

TEST(PortfolioBackend, ExposesTheCoreAndRecordsItsSize) {
    const auto backend = cnf::makePortfolioBackend(2);
    for (int v = 0; v < 2; ++v) {
        backend->addVariable();
    }
    backend->addClause({Literal::positive(0), Literal::positive(1)});

    auto& registry = etcs::obs::Registry::global();
    registry.gauge("etcs.sat.portfolio.core_size").set(-1.0);

    const std::vector<Literal> assumptions{Literal::negative(0), Literal::negative(1)};
    ASSERT_EQ(backend->solve(assumptions), SolveStatus::Unsat);
    const std::vector<Literal> core = backend->conflictCore();
    ASSERT_FALSE(core.empty());
    for (const Literal l : core) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                  assumptions.end());
    }
    EXPECT_EQ(registry.gauge("etcs.sat.portfolio.core_size").value(),
              static_cast<double>(core.size()));
}

TEST(PortfolioBackend, ReportsItsNameAndThreadCount) {
    const auto backend = cnf::makePortfolioBackend(3);
    EXPECT_EQ(backend->name(), "portfolio-cdcl(3)");
    const auto deterministic = cnf::makePortfolioBackend(2, /*deterministic=*/true);
    EXPECT_EQ(deterministic->name(), "portfolio-cdcl(2,deterministic)");
}

}  // namespace
}  // namespace etcs::sat
