// Physical-network model and text I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "railway/io.hpp"
#include "railway/network.hpp"

namespace etcs::rail {
namespace {

Network makeSmallNetwork() {
    Network n("small");
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto c = n.addNode("C");
    const auto t1 = n.addTrack("t1", a, b, Meters(1000));
    const auto t2 = n.addTrack("t2", b, c, Meters(2000));
    n.addTtd("TTD1", {t1});
    n.addTtd("TTD2", {t2});
    n.addStation("StA", t1, Meters(0));
    n.addStation("StC", t2, Meters(2000));
    return n;
}

TEST(Network, BasicConstruction) {
    const Network n = makeSmallNetwork();
    EXPECT_EQ(n.numNodes(), 3u);
    EXPECT_EQ(n.numTracks(), 2u);
    EXPECT_EQ(n.numTtds(), 2u);
    EXPECT_EQ(n.numStations(), 2u);
    EXPECT_NO_THROW(n.validate());
    EXPECT_EQ(n.totalLength().count(), 3000);
}

TEST(Network, NameLookups) {
    const Network n = makeSmallNetwork();
    ASSERT_TRUE(n.findNode("B").has_value());
    EXPECT_EQ(n.node(*n.findNode("B")).name, "B");
    ASSERT_TRUE(n.findTrack("t2").has_value());
    EXPECT_TRUE(n.findStation("StA").has_value());
    EXPECT_TRUE(n.findTtd("TTD1").has_value());
    EXPECT_FALSE(n.findNode("Z").has_value());
    EXPECT_FALSE(n.findTrack("tz").has_value());
}

TEST(Network, Degree) {
    const Network n = makeSmallNetwork();
    EXPECT_EQ(n.degree(*n.findNode("A")), 1);
    EXPECT_EQ(n.degree(*n.findNode("B")), 2);
}

TEST(Network, TtdOfTrack) {
    const Network n = makeSmallNetwork();
    EXPECT_EQ(n.ttdOfTrack(*n.findTrack("t1")), *n.findTtd("TTD1"));
}

TEST(Network, RejectsDuplicateNames) {
    Network n;
    n.addNode("A");
    EXPECT_THROW(n.addNode("A"), PreconditionError);
}

TEST(Network, RejectsSelfLoopTrack) {
    Network n;
    const auto a = n.addNode("A");
    EXPECT_THROW(n.addTrack("t", a, a, Meters(100)), PreconditionError);
}

TEST(Network, RejectsNonPositiveTrackLength) {
    Network n;
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    EXPECT_THROW(n.addTrack("t", a, b, Meters(0)), PreconditionError);
}

TEST(Network, RejectsTrackInTwoTtds) {
    Network n;
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto t = n.addTrack("t", a, b, Meters(100));
    n.addTtd("T1", {t});
    EXPECT_THROW(n.addTtd("T2", {t}), PreconditionError);
}

TEST(Network, RejectsStationOffsetOutsideTrack) {
    Network n;
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto t = n.addTrack("t", a, b, Meters(100));
    EXPECT_THROW(n.addStation("S", t, Meters(101)), PreconditionError);
}

TEST(Network, ValidateRejectsTrackWithoutTtd) {
    Network n;
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    n.addTrack("t", a, b, Meters(100));
    EXPECT_THROW(n.validate(), InputError);
}

TEST(Network, ValidateRejectsDisconnectedNetwork) {
    Network n;
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto c = n.addNode("C");
    const auto d = n.addNode("D");
    const auto t1 = n.addTrack("t1", a, b, Meters(100));
    const auto t2 = n.addTrack("t2", c, d, Meters(100));
    n.addTtd("T1", {t1});
    n.addTtd("T2", {t2});
    EXPECT_THROW(n.validate(), InputError);
}

TEST(NetworkIo, RoundTrip) {
    const Network original = makeSmallNetwork();
    std::stringstream buffer;
    writeNetwork(buffer, original);
    const Network parsed = readNetwork(buffer);
    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.numNodes(), original.numNodes());
    EXPECT_EQ(parsed.numTracks(), original.numTracks());
    EXPECT_EQ(parsed.numTtds(), original.numTtds());
    EXPECT_EQ(parsed.numStations(), original.numStations());
    EXPECT_EQ(parsed.track(TrackId(0u)).length, original.track(TrackId(0u)).length);
}

TEST(NetworkIo, ParsesCommentsAndBlankLines) {
    std::istringstream in(
        "# a railway\n"
        "network demo\n"
        "\n"
        "node A\n"
        "node B  # trailing comment\n"
        "track t A B 500\n"
        "ttd T t\n");
    const Network n = readNetwork(in);
    EXPECT_EQ(n.name(), "demo");
    EXPECT_EQ(n.numTracks(), 1u);
}

TEST(NetworkIo, RejectsUnknownKeyword) {
    std::istringstream in("nodes A\n");
    EXPECT_THROW(readNetwork(in), InputError);
}

TEST(NetworkIo, RejectsUnknownNodeReference) {
    std::istringstream in(
        "node A\n"
        "track t A Z 100\n");
    EXPECT_THROW(readNetwork(in), InputError);
}

TEST(NetworkIo, RejectsMalformedLength) {
    std::istringstream in(
        "node A\nnode B\n"
        "track t A B 10x\n");
    EXPECT_THROW(readNetwork(in), InputError);
}

TEST(ScenarioIo, RoundTrip) {
    const Network network = makeSmallNetwork();
    std::istringstream in(
        "scenario demo\n"
        "train ICE 180 400\n"
        "train Slow 90 700\n"
        "run ICE from StA dep 0:00 to StC arr 0:04:30\n"
        "run Slow from StC dep 0:02 to StA\n"
        "horizon 0:20\n");
    const Scenario scenario = readScenario(in, network);
    EXPECT_EQ(scenario.name, "demo");
    EXPECT_EQ(scenario.trains.size(), 2u);
    ASSERT_EQ(scenario.schedule.size(), 2u);
    EXPECT_EQ(scenario.schedule.runs()[0].departure.count(), 0);
    ASSERT_TRUE(scenario.schedule.runs()[0].stops[0].arrival.has_value());
    EXPECT_EQ(scenario.schedule.runs()[0].stops[0].arrival->count(), 270);
    EXPECT_FALSE(scenario.schedule.runs()[1].stops[0].arrival.has_value());
    EXPECT_EQ(scenario.schedule.horizon().count(), 20 * 60);

    std::stringstream buffer;
    writeScenario(buffer, scenario, network);
    const Scenario reparsed = readScenario(buffer, network);
    EXPECT_EQ(reparsed.trains.size(), scenario.trains.size());
    EXPECT_EQ(reparsed.schedule.size(), scenario.schedule.size());
    EXPECT_EQ(reparsed.schedule.horizon(), scenario.schedule.horizon());
}

TEST(ScenarioIo, ParsesViaStops) {
    const Network network = [] {
        Network n("via");
        const auto a = n.addNode("A");
        const auto b = n.addNode("B");
        const auto c = n.addNode("C");
        const auto t1 = n.addTrack("t1", a, b, Meters(1000));
        const auto t2 = n.addTrack("t2", b, c, Meters(1000));
        n.addTtd("T1", {t1});
        n.addTtd("T2", {t2});
        n.addStation("S1", t1, Meters(0));
        n.addStation("S2", t1, Meters(1000));
        n.addStation("S3", t2, Meters(1000));
        return n;
    }();
    std::istringstream in(
        "train T 120 100\n"
        "run T from S1 dep 0:00 via S2 arr 0:03 to S3 arr 0:08\n");
    const Scenario scenario = readScenario(in, network);
    ASSERT_EQ(scenario.schedule.runs()[0].stops.size(), 2u);
    EXPECT_EQ(scenario.schedule.runs()[0].stops[0].arrival->count(), 180);
    EXPECT_EQ(scenario.schedule.runs()[0].stops[1].arrival->count(), 480);
}

TEST(ScenarioIo, RejectsRunWithUnknownTrain) {
    const Network network = makeSmallNetwork();
    std::istringstream in("run Ghost from StA dep 0:00 to StC\n");
    EXPECT_THROW(readScenario(in, network), InputError);
}

TEST(ScenarioIo, RejectsRunWithoutDestination) {
    const Network network = makeSmallNetwork();
    std::istringstream in(
        "train T 120 100\n"
        "run T from StA dep 0:00 via StC\n");
    EXPECT_THROW(readScenario(in, network), InputError);
}

}  // namespace
}  // namespace etcs::rail
