// Integration tests: the four case studies reproduce the qualitative shape
// of the paper's Table I.
#include <gtest/gtest.h>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct TableShape {
    int pureSections;          // TTD count expected in the "TTD/VSS" column
    bool expectVerifyFeasible; // Table I "Sat." for the verification row
};

void expectTableShape(const studies::CaseStudy& study, const TableShape& shape) {
    SCOPED_TRACE(study.name);
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    const VssLayout pure(timed.graph());
    EXPECT_EQ(pure.sectionCount(timed.graph()), shape.pureSections);

    // Verification on the pure TTD layout.
    const auto verification = verifySchedule(timed, pure);
    EXPECT_EQ(verification.feasible, shape.expectVerifyFeasible);

    // Generation: must be feasible with at least as many sections, and only
    // a few more (the paper adds 1-4 virtual sections per study).
    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    EXPECT_GE(generation.sectionCount, shape.pureSections);
    EXPECT_LE(generation.sectionCount, shape.pureSections + 4);
    ASSERT_TRUE(generation.solution.has_value());
    EXPECT_TRUE(validateSolution(timed, *generation.solution).empty());

    // Optimization: completes strictly within the scenario horizon.
    const Instance open(study.network, study.trains, study.openSchedule, study.resolution);
    const auto optimization = optimizeSchedule(open);
    ASSERT_TRUE(optimization.feasible);
    EXPECT_LT(optimization.completionSteps, open.horizonSteps());
    ASSERT_TRUE(optimization.solution.has_value());
    EXPECT_TRUE(validateSolution(open, *optimization.solution).empty());
}

TEST(Studies, RunningExampleMatchesTableI) {
    expectTableShape(studies::runningExample(), {4, false});
}

TEST(Studies, SimpleLayoutMatchesTableI) {
    expectTableShape(studies::simpleLayout(), {10, false});
}

TEST(Studies, ComplexLayoutMatchesTableI) {
    expectTableShape(studies::complexLayout(), {22, false});
}

TEST(Studies, NordlandsbanenMatchesTableI) {
    expectTableShape(studies::nordlandsbanen(), {51, false});
}

TEST(Studies, RunningExampleGenerationNeedsExactlyOneExtraSection) {
    const auto study = studies::runningExample();
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    EXPECT_EQ(generation.sectionCount, 5);  // Table I: 5
}

TEST(Studies, RunningExampleOptimizationImprovesArrivals) {
    // Fig. 2b: under the optimized layout, trains arrive strictly earlier
    // than the original schedule requires.
    const auto study = studies::runningExample();
    const Instance open(study.network, study.trains, study.openSchedule, study.resolution);
    const auto optimization = optimizeSchedule(open);
    ASSERT_TRUE(optimization.feasible);
    const Instance timed(study.network, study.trains, study.timedSchedule, study.resolution);
    int originalLatest = 0;
    for (const auto& run : timed.runs()) {
        originalLatest = std::max(originalLatest, *run.destination().arrivalStep);
    }
    EXPECT_LT(optimization.completionSteps - 1, originalLatest);
}

TEST(Studies, NordlandsbanenHas58StationsAnd822Km) {
    const auto study = studies::nordlandsbanen();
    int numberedHalts = 0;
    for (const auto& station : study.network.stations()) {
        if (station.name.rfind("St", 0) == 0) {
            ++numberedHalts;
        }
    }
    EXPECT_EQ(numberedHalts, 58);
    EXPECT_EQ(study.network.totalLength().count(), 822000 + 10 * 10000);  // + loop tracks
    EXPECT_EQ(study.network.numTtds(), 51u);
}

TEST(Studies, HorizonsMatchThePaper) {
    EXPECT_EQ(Instance(studies::runningExample().network, studies::runningExample().trains,
                       studies::runningExample().timedSchedule,
                       studies::runningExample().resolution)
                  .horizonSteps(),
              11);
    const auto nordland = studies::nordlandsbanen();
    EXPECT_EQ(Instance(nordland.network, nordland.trains, nordland.timedSchedule,
                       nordland.resolution)
                  .horizonSteps(),
              48);  // Table I: 48 time steps
}

TEST(Studies, CorridorGeneratorProducesValidScenarios) {
    for (int stations : {2, 3, 4}) {
        const auto study = studies::corridor(stations, 3, Meters::fromKilometers(2.0),
                                             Resolution{Meters(500), Seconds(60)});
        SCOPED_TRACE(study.name);
        EXPECT_NO_THROW(study.network.validate());
        EXPECT_EQ(study.network.numTtds(), static_cast<std::size_t>(3 * stations - 1));
        const Instance timed(study.network, study.trains, study.timedSchedule,
                             study.resolution);
        const auto generation = generateLayout(timed);
        EXPECT_TRUE(generation.feasible);
        if (generation.solution) {
            EXPECT_TRUE(validateSolution(timed, *generation.solution).empty());
        }
    }
}

}  // namespace
}  // namespace etcs::core
