// CNF preprocessor tests: each rule individually, plus equisatisfiability
// on random formulas.
#include <gtest/gtest.h>

#include <random>

#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(Var v) { return Literal::positive(v); }
Literal neg(Var v) { return Literal::negative(v); }

CnfFormula makeFormula(int numVariables, std::vector<std::vector<Literal>> clauses) {
    CnfFormula f;
    f.numVariables = numVariables;
    f.clauses = std::move(clauses);
    return f;
}

SolveStatus solveFormula(const CnfFormula& f) {
    Solver solver;
    for (int v = 0; v < f.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    return solver.solve();
}

TEST(Preprocess, RemovesTautologies) {
    auto f = makeFormula(2, {{pos(0), neg(0)}, {pos(1), pos(0)}});
    const auto result = preprocess(f);
    EXPECT_FALSE(result.unsatisfiable);
    EXPECT_EQ(result.stats.removedTautologies, 1u);
}

TEST(Preprocess, PropagatesUnits) {
    auto f = makeFormula(3, {{pos(0)}, {neg(0), pos(1)}, {neg(1), pos(2)}});
    const auto result = preprocess(f);
    EXPECT_FALSE(result.unsatisfiable);
    EXPECT_EQ(result.stats.propagatedUnits, 3u);
    EXPECT_TRUE(f.clauses.empty());  // everything fixed
    EXPECT_EQ(result.fixedLiterals.size(), 3u);
}

TEST(Preprocess, DetectsUnitConflict) {
    auto f = makeFormula(1, {{pos(0)}, {neg(0)}});
    const auto result = preprocess(f);
    EXPECT_TRUE(result.unsatisfiable);
    ASSERT_EQ(f.clauses.size(), 1u);
    EXPECT_TRUE(f.clauses[0].empty());
}

TEST(Preprocess, DetectsEmptyClauseAfterPropagation) {
    auto f = makeFormula(2, {{pos(0)}, {pos(1)}, {neg(0), neg(1)}});
    const auto result = preprocess(f);
    EXPECT_TRUE(result.unsatisfiable);
}

TEST(Preprocess, EliminatesPureLiterals) {
    // Variable 1 occurs only positively; eliminating it satisfies both
    // clauses, then variable 0 disappears entirely.
    auto f = makeFormula(2, {{pos(0), pos(1)}, {neg(0), pos(1)}});
    const auto result = preprocess(f);
    EXPECT_FALSE(result.unsatisfiable);
    EXPECT_GE(result.stats.eliminatedPureLiterals, 1u);
    EXPECT_TRUE(f.clauses.empty());
    EXPECT_FALSE(result.pureLiterals.empty());
    EXPECT_EQ(result.pureLiterals.front(), pos(1));
}

TEST(Preprocess, SubsumesSupersetClauses) {
    auto f = makeFormula(3, {{pos(0), pos(1)}, {pos(0), pos(1), pos(2)}, {neg(0), pos(2)},
                             {neg(1), pos(2)}, {neg(2), pos(0)}});
    const auto result = preprocess(f);
    EXPECT_FALSE(result.unsatisfiable);
    EXPECT_GE(result.stats.subsumedClauses, 1u);
    for (const auto& clause : f.clauses) {
        EXPECT_NE(clause, (std::vector<Literal>{pos(0), pos(1), pos(2)}));
    }
}

TEST(Preprocess, SelfSubsumingResolutionStrengthens) {
    // (a | b) and (~a | b | c): the second strengthens to (b | c).
    auto f = makeFormula(3, {{pos(0), pos(1)}, {neg(0), pos(1), pos(2)}, {neg(1), pos(2)},
                             {neg(2), neg(1), pos(0)}});
    const auto result = preprocess(f);
    EXPECT_FALSE(result.unsatisfiable);
    EXPECT_GE(result.stats.strengthenedClauses, 1u);
}

TEST(Preprocess, FixedLiteralsHoldInEveryModel) {
    auto f = makeFormula(4, {{pos(0)}, {neg(0), pos(1)}, {pos(2), pos(3)}, {neg(2), pos(3)}});
    CnfFormula original = f;
    const auto result = preprocess(f);
    ASSERT_FALSE(result.unsatisfiable);
    // Check each fixed literal against the original formula: adding its
    // negation must be unsatisfiable.
    for (Literal fixed : result.fixedLiterals) {
        Solver solver;
        for (int v = 0; v < original.numVariables; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : original.clauses) {
            solver.addClause(clause);
        }
        solver.addClause({~fixed});
        EXPECT_EQ(solver.solve(), SolveStatus::Unsat)
            << "literal " << fixed << " is not actually entailed";
    }
}

class PreprocessRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PreprocessRandomTest, PreservesSatisfiability) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> varDist(0, 9);
    std::bernoulli_distribution signDist(0.5);
    std::uniform_int_distribution<int> sizeDist(1, 4);
    for (int round = 0; round < 15; ++round) {
        CnfFormula f;
        f.numVariables = 10;
        const int numClauses = 25 + round * 2;
        for (int c = 0; c < numClauses; ++c) {
            std::vector<Literal> clause;
            const int size = sizeDist(rng);
            for (int k = 0; k < size; ++k) {
                clause.push_back(Literal(varDist(rng), signDist(rng)));
            }
            f.clauses.push_back(clause);
        }
        const CnfFormula original = f;
        const auto result = preprocess(f);
        const SolveStatus expected = solveFormula(original);
        if (result.unsatisfiable) {
            EXPECT_EQ(expected, SolveStatus::Unsat) << "round " << round;
        } else {
            EXPECT_EQ(solveFormula(f), expected) << "round " << round;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessRandomTest,
                         ::testing::Values(3u, 14u, 159u, 2653u, 58979u));

TEST(Preprocess, IdempotentOnSimplifiedFormula) {
    auto f = makeFormula(4, {{pos(0), pos(1), pos(2)}, {neg(0), pos(3)}, {neg(1), neg(3)},
                             {pos(2), neg(3), pos(0)}});
    preprocess(f);
    const CnfFormula once = f;
    const auto second = preprocess(f);
    EXPECT_EQ(f.clauses.size(), once.clauses.size());
    EXPECT_EQ(second.stats.propagatedUnits, 0u);
    EXPECT_EQ(second.stats.subsumedClauses, 0u);
}

}  // namespace
}  // namespace etcs::sat
