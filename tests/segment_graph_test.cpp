// Discretization and graph-algorithm tests on hand-built networks,
// including the running example's Fig. 3 graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "railway/segment_graph.hpp"
#include "studies/studies.hpp"

namespace etcs::rail {
namespace {

/// Line: A --1500m-- B --1000m-- C, two TTDs.
Network lineNetwork() {
    Network n("line");
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto c = n.addNode("C");
    const auto t1 = n.addTrack("t1", a, b, Meters(1500));
    const auto t2 = n.addTrack("t2", b, c, Meters(1000));
    n.addTtd("T1", {t1});
    n.addTtd("T2", {t2});
    n.addStation("StA", t1, Meters(0));
    n.addStation("StMid", t1, Meters(800));
    n.addStation("StC", t2, Meters(1000));
    return n;
}

/// The running example's network (Fig. 1/3): 11 segments at r_s = 0.5 km.
const studies::CaseStudy& runningStudy() {
    static const studies::CaseStudy study = studies::runningExample();
    return study;
}

constexpr Resolution kHalfKm{Meters(500), Seconds(30)};

TEST(SegmentGraph, LineDiscretization) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.numSegments(), 5u);  // 3 + 2
    EXPECT_EQ(g.numNodes(), 6u);     // A, 2 joints, B, 1 joint, C
}

TEST(SegmentGraph, FixedBordersAtEndpointsAndTtdJoints) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    int fixed = 0;
    for (std::size_t i = 0; i < g.numNodes(); ++i) {
        if (g.node(SegNodeId(i)).fixedBorder) {
            ++fixed;
        }
    }
    // A, B (TTD joint), C are fixed; the 3 split joints are not.
    EXPECT_EQ(fixed, 3);
}

TEST(SegmentGraph, PartialTrailingSegmentRoundsUp) {
    Network n("odd");
    const auto a = n.addNode("A");
    const auto b = n.addNode("B");
    const auto t = n.addTrack("t", a, b, Meters(1200));
    n.addTtd("T", {t});
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.numSegments(), 3u);  // ceil(1200/500)
}

TEST(SegmentGraph, StationSegmentLookup) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    // StA at offset 0 -> first segment of t1.
    const Segment& sa = g.segment(g.segmentOfStation(*n.findStation("StA")));
    EXPECT_EQ(sa.indexInTrack, 0);
    // StMid at 800 m -> second segment (index 1).
    const Segment& sm = g.segment(g.segmentOfStation(*n.findStation("StMid")));
    EXPECT_EQ(sm.indexInTrack, 1);
    // StC at the very end of t2 -> clamped to the last segment.
    const Segment& sc = g.segment(g.segmentOfStation(*n.findStation("StC")));
    EXPECT_EQ(sc.indexInTrack, 1);
}

TEST(SegmentGraph, RunningExampleMatchesFig3) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    // Fig. 3: 11 edges, 11 nodes.
    EXPECT_EQ(g.numSegments(), 11u);
    EXPECT_EQ(g.numNodes(), 11u);
}

TEST(SegmentGraph, SharedNode) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_TRUE(g.sharedNode(SegmentId(0u), SegmentId(1u)).valid());
    EXPECT_FALSE(g.sharedNode(SegmentId(0u), SegmentId(2u)).valid());
}

TEST(SegmentGraph, ChainsOfLengthOneAreSegments) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.chains(1).size(), g.numSegments());
}

TEST(SegmentGraph, ChainsOfLengthTwoOnALine) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    // On a 5-segment line there are exactly 4 adjacent pairs.
    const auto chains = g.chains(2);
    EXPECT_EQ(chains.size(), 4u);
    for (const Chain& c : chains) {
        EXPECT_EQ(c.size(), 2u);
        EXPECT_TRUE(g.sharedNode(c[0], c[1]).valid());
    }
}

TEST(SegmentGraph, ChainsAreReportedOncePerDirection) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    const auto chains = g.chains(3);
    std::set<std::set<SegmentId>> unique;
    for (const Chain& c : chains) {
        EXPECT_TRUE(unique.insert(std::set<SegmentId>(c.begin(), c.end())).second)
            << "duplicate chain";
    }
}

TEST(SegmentGraph, ChainsRespectNodeSimplicity) {
    // In the running example, a chain may not pass through the same switch
    // twice (e.g. main + side both connect S1 and S2).
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    for (int length : {2, 3, 4}) {
        for (const Chain& chain : g.chains(length)) {
            std::set<SegNodeId> nodes;
            for (SegmentId s : chain) {
                nodes.insert(g.segment(s).a);
                nodes.insert(g.segment(s).b);
            }
            EXPECT_EQ(nodes.size(), chain.size() + 1) << "chain is not node-simple";
        }
    }
}

TEST(SegmentGraph, ReachableWithinIncludesSelf) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    const auto reach0 = g.reachableWithin(SegmentId(0u), 0);
    EXPECT_EQ(reach0.size(), 1u);
    EXPECT_EQ(reach0[0], SegmentId(0u));
}

TEST(SegmentGraph, ReachableWithinDistance) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.reachableWithin(SegmentId(0u), 2).size(), 3u);
    EXPECT_EQ(g.reachableWithin(SegmentId(2u), 2).size(), 5u);
    EXPECT_EQ(g.reachableWithin(SegmentId(0u), 10).size(), g.numSegments());
}

TEST(SegmentGraph, DistanceMatchesBfs) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.distance(SegmentId(0u), SegmentId(0u)), 0);
    EXPECT_EQ(g.distance(SegmentId(0u), SegmentId(4u)), 4);
    EXPECT_EQ(g.distance(SegmentId(4u), SegmentId(0u)), 4);
}

TEST(SegmentGraph, ShortestPathEndpoints) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    const auto path = g.shortestPath(SegmentId(0u), SegmentId(3u));
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), SegmentId(0u));
    EXPECT_EQ(path.back(), SegmentId(3u));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(g.sharedNode(path[i], path[i + 1]).valid());
    }
}

TEST(SegmentGraph, SimplePathsOnParallelTracks) {
    // Running example: between entry-side and exit-side segments there are
    // two routes (via main and via side).
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    const SegmentId entryLast(2u);  // entry[2], adjacent to S1
    const SegmentId exitFirst(7u);  // exit[0], adjacent to S2
    const auto paths = g.simplePaths(entryLast, exitFirst, 4);
    EXPECT_EQ(paths.size(), 2u);  // main route and side route
    for (const auto& p : paths) {
        EXPECT_EQ(p.front(), entryLast);
        EXPECT_EQ(p.back(), exitFirst);
        EXPECT_EQ(p.size(), 4u);
    }
}

TEST(SegmentGraph, SimplePathsRespectLengthBound) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    EXPECT_TRUE(g.simplePaths(SegmentId(0u), SegmentId(10u), 3).empty());
    EXPECT_FALSE(g.simplePaths(SegmentId(0u), SegmentId(10u), 11).empty());
}

TEST(SegmentGraph, SimplePathsSameSegment) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    const auto paths = g.simplePaths(SegmentId(3u), SegmentId(3u), 5);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], SegmentPath{SegmentId(3u)});
}

TEST(SegmentGraph, BetweenNodeSetsAdjacentSegments) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    const auto sets = g.betweenNodeSets(SegmentId(0u), SegmentId(1u));
    ASSERT_EQ(sets.size(), 1u);
    ASSERT_EQ(sets[0].size(), 1u);
    EXPECT_EQ(sets[0][0], g.sharedNode(SegmentId(0u), SegmentId(1u)));
}

TEST(SegmentGraph, BetweenNodeSetsSpanningTtd) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    const auto sets = g.betweenNodeSets(SegmentId(0u), SegmentId(2u));
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0].size(), 2u);  // the two interior joints
}

TEST(SegmentGraph, BetweenNodeSetsRejectsCrossTtd) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_THROW(g.betweenNodeSets(SegmentId(0u), SegmentId(4u)), PreconditionError);
    EXPECT_THROW(g.betweenNodeSets(SegmentId(0u), SegmentId(0u)), PreconditionError);
}

TEST(SegmentGraph, SectionsPureTtd) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    const std::vector<bool> noBorders(g.numNodes(), false);
    EXPECT_EQ(g.countSections(noBorders), 4);  // the four TTDs of Fig. 1
}

TEST(SegmentGraph, SectionsFinest) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    const std::vector<bool> allBorders(g.numNodes(), true);
    EXPECT_EQ(g.countSections(allBorders), static_cast<int>(g.numSegments()));
}

TEST(SegmentGraph, SectionsSingleExtraBorder) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    std::vector<bool> borders(g.numNodes(), false);
    // Find the joint between the two side-track segments and raise it.
    const SegNodeId joint = g.sharedNode(SegmentId(5u), SegmentId(6u));
    ASSERT_TRUE(joint.valid());
    borders[joint.get()] = true;
    EXPECT_EQ(g.countSections(borders), 5);
}

TEST(SegmentGraph, SectionsPartitionAllSegments) {
    const auto& study = runningStudy();
    const SegmentGraph g(study.network, study.resolution);
    std::vector<bool> borders(g.numNodes(), false);
    borders[3] = true;
    borders[7] = true;
    const auto sections = g.sections(borders);
    std::size_t total = 0;
    for (const auto& section : sections) {
        total += section.size();
    }
    EXPECT_EQ(total, g.numSegments());
}

TEST(SegmentGraph, SegmentLabel) {
    const Network n = lineNetwork();
    const SegmentGraph g(n, kHalfKm);
    EXPECT_EQ(g.segmentLabel(SegmentId(0u)), "t1[0]");
    EXPECT_EQ(g.segmentLabel(SegmentId(4u)), "t2[1]");
}

}  // namespace
}  // namespace etcs::rail
