// Randomized robustness battery for the explanation engine: random line
// networks with deliberately tight (mostly unreachable) deadlines. The
// engine must never crash or error out, UNSAT verdicts must be certified
// with a non-empty report, the JSON rendering must parse, every cited entry
// must be backed by a certified core record, and the whole pipeline must be
// deterministic for a fixed instance. Runs under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "core/explain.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "support/test_seed.hpp"
#include "util/json.hpp"

namespace etcs::core {
namespace {

struct RandomWorld {
    rail::Network network{"explainfuzz"};
    rail::TrainSet trains;
    rail::Schedule schedule;
    Resolution resolution{Meters(500), Seconds(30)};
};

/// A random chain of 2-4 single-TTD tracks with stations at the ends plus
/// 1-2 trains whose arrival pins are drawn from a range straddling the
/// shortest-path bound — roughly half the instances are infeasible, some
/// only through solver reasoning (meets, occupancy), not the linter bound.
RandomWorld makeRandomWorld(std::mt19937& rng) {
    RandomWorld world;
    std::uniform_int_distribution<int> trackCount(2, 4);
    std::uniform_int_distribution<int> lengthDist(1, 3);  // x 500 m

    const int numTracks = trackCount(rng);
    std::vector<NodeId> nodes;
    for (int i = 0; i <= numTracks; ++i) {
        nodes.push_back(world.network.addNode("n" + std::to_string(i)));
    }
    std::vector<TrackId> tracks;
    int totalSegments = 0;
    for (int i = 0; i < numTracks; ++i) {
        const int length = lengthDist(rng);
        totalSegments += length;
        tracks.push_back(world.network.addTrack(
            "t" + std::to_string(i), nodes[static_cast<std::size_t>(i)],
            nodes[static_cast<std::size_t>(i + 1)], Meters(500 * length)));
        world.network.addTtd("T" + std::to_string(i), {tracks.back()});
    }
    const StationId left = world.network.addStation("L", tracks.front(), Meters(0));
    const StationId right = world.network.addStation(
        "R", tracks.back(), world.network.track(tracks.back()).length);
    world.network.validate();

    std::uniform_int_distribution<int> trainCountDist(1, 2);
    std::bernoulli_distribution westbound(0.5);
    // 60 km/h = 1 segment/step: the shortest trip needs ~totalSegments
    // steps; pins in [1, totalSegments + 2] straddle that bound.
    std::uniform_int_distribution<int> arrivalDist(1, totalSegments + 2);
    const int numTrains = trainCountDist(rng);
    for (int i = 0; i < numTrains; ++i) {
        const TrainId train = world.trains.addTrain(
            "tr" + std::to_string(i), Speed::fromKmPerHour(60), Meters(200));
        rail::TrainRun run;
        run.train = train;
        const bool west = westbound(rng);
        run.origin = west ? right : left;
        run.departure = Seconds(0);
        run.stops.push_back(rail::TimedStop{
            west ? left : right, Seconds(arrivalDist(rng) * 30)});
        world.schedule.addRun(run);
    }
    return world;
}

class ExplainFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExplainFuzzTest, NeverCrashesAndReportsAreWellFormed) {
    const unsigned seed = etcs::test::effectiveSeed(GetParam());
    std::mt19937 rng(seed);
    int unsatSeen = 0;
    for (int round = 0; round < 8; ++round) {
        SCOPED_TRACE(etcs::test::seedTrace(seed) + " round " + std::to_string(round));
        const RandomWorld world = makeRandomWorld(rng);
        const Instance instance(world.network, world.trains, world.schedule,
                                world.resolution);
        const VssLayout pure(instance.graph());

        ExplainOptions options;
        options.shrinkConflictBudget = 5000;
        const ExplainResult result = explainInfeasibility(instance, &pure, options);

        // The pipeline must always reach a verdict on these small instances.
        ASSERT_TRUE(result.error.empty()) << result.error;
        ASSERT_NE(result.feasible, result.unsat);
        if (result.feasible) {
            EXPECT_TRUE(result.entries.empty());
            continue;
        }
        ++unsatSeen;
        EXPECT_TRUE(result.certified);
        ASSERT_FALSE(result.entries.empty());
        EXPECT_EQ(result.entries.front().code, "E101");
        EXPECT_GE(result.coreClauses, 1u);

        // The JSON report parses, is non-empty and renders identically on a
        // second pass over the same result.
        std::ostringstream json;
        writeExplanationJson(json, result);
        const util::JsonValue root = util::parseJson(json.str());
        ASSERT_EQ(root.type, util::JsonValue::Type::Object);
        ASSERT_NE(root.find("entries"), nullptr);
        EXPECT_EQ(root.find("entries")->items.size(), result.entries.size());
        std::ostringstream again;
        writeExplanationJson(again, result);
        EXPECT_EQ(json.str(), again.str());

        // Subset soundness: every cited entry is backed by a core record.
        for (const ExplainEntry& entry : result.entries) {
            if (entry.family.empty()) {
                continue;  // E101 summary line
            }
            bool supported = false;
            for (const ClauseProvenance& record : result.coreRecords) {
                supported = supported ||
                            (record.family == entry.family && record.run == entry.run &&
                             record.run2 == entry.run2 && record.ttd == entry.ttd &&
                             record.segment == entry.segment);
            }
            EXPECT_TRUE(supported) << entry.code << " [" << entry.family << "]";
        }
    }
    // The deadline distribution is tuned so a sweep always exercises the
    // UNSAT path; a silent all-feasible run would test nothing.
    EXPECT_GT(unsatSeen, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace etcs::core
