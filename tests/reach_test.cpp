/// \file reach_test.cpp
/// The reachability fixpoint of lint/reach.hpp and its two consumers: the
/// R-code lint pass and the encoder's cell pruning (core/pruning.hpp).
/// Soundness is exercised from three sides:
///   * analytic — widening the horizon never shrinks a window, pinned
///     obligations of feasible schedules lie inside their windows;
///   * differential — pruned and unpruned encodings agree on the verdict,
///     including on instances the analysis itself proves infeasible (the
///     dangerous corner: a skipped pin clause must not turn UNSAT into SAT);
///   * oracle — every cell a completed greedy simulation occupies is
///     admitted by the analysis (simulator-reachable subset of windows).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cnf/backend.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/pruning.hpp"
#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "gen/generator.hpp"
#include "gen/oracle.hpp"
#include "lint/reach.hpp"
#include "railway/segment_graph.hpp"

namespace etcs::lint {
namespace {

using rail::Network;
using rail::Schedule;
using rail::SegmentGraph;
using rail::TimedStop;
using rail::TrainRun;
using rail::TrainSet;

constexpr Resolution kRes{Meters(500), Seconds(30)};

/// A single 6-segment, 3 km line in one TTD with stations at both ends and
/// one in the middle (segment ids 0 and 5 for the ends, 3 for the middle).
struct LineWorld {
    Network network{"reachline"};
    TrainSet trains;
    TrainId train;

    LineWorld() {
        const auto a = network.addNode("A");
        const auto b = network.addNode("B");
        const auto t = network.addTrack("t", a, b, Meters(3000));
        network.addTtd("T", {t});
        network.addStation("StA", t, Meters(0));
        network.addStation("StM", t, Meters(1500));
        network.addStation("StB", t, Meters(3000));
        // 120 km/h at r = (500 m, 30 s) -> 2 segments/step; 100 m -> 1 segment.
        train = trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    }

    [[nodiscard]] Schedule schedule(const char* from, const char* to, int depSteps,
                                    std::optional<int> arrSteps,
                                    Seconds dwell = Seconds(0)) const {
        TrainRun r;
        r.train = train;
        r.origin = *network.findStation(from);
        r.departure = Seconds(depSteps * 30);
        TimedStop stop{*network.findStation(to),
                       arrSteps ? std::optional(Seconds(*arrSteps * 30)) : std::nullopt};
        stop.dwell = dwell;
        r.stops.push_back(stop);
        Schedule s;
        s.addRun(r);
        return s;
    }
};

TEST(Reach, TravelLowerBoundMirrorsInstanceRounding) {
    EXPECT_EQ(travelLowerBound(0, 1, 1), 0);
    EXPECT_EQ(travelLowerBound(5, 1, 1), 5);
    EXPECT_EQ(travelLowerBound(5, 1, 2), 3);  // ceil(5 / 2)
    EXPECT_EQ(travelLowerBound(5, 3, 2), 2);  // body slack: ceil((5 - 2) / 2)
    EXPECT_EQ(travelLowerBound(1, 4, 1), 0);  // the body already covers it
}

TEST(Reach, StepWindowBasics) {
    const StepWindow empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.width(), 0);
    EXPECT_FALSE(empty.contains(0));

    const StepWindow w{2, 5};
    EXPECT_FALSE(w.empty());
    EXPECT_EQ(w.width(), 4);
    EXPECT_TRUE(w.contains(2));
    EXPECT_TRUE(w.contains(5));
    EXPECT_FALSE(w.contains(1));
    EXPECT_FALSE(w.contains(6));
}

/// Hand-built runs covering the three shapes the analysis distinguishes:
/// fully pinned (prompt cutoff), open destination, and mixed pin + open.
std::vector<ReachRun> lineRuns(const SegmentGraph& graph, const LineWorld& w) {
    const SegmentId origin = graph.segmentOfStation(*w.network.findStation("StA"));
    const SegmentId middle = graph.segmentOfStation(*w.network.findStation("StM"));
    const SegmentId dest = graph.segmentOfStation(*w.network.findStation("StB"));
    std::vector<ReachRun> runs;
    {
        ReachRun pinned;
        pinned.originSegment = origin;
        pinned.speedSegments = 2;
        pinned.stops.push_back(ReachStop{dest, 4, 2});
        runs.push_back(pinned);
    }
    {
        ReachRun open;
        open.originSegment = origin;
        open.speedSegments = 2;
        open.stops.push_back(ReachStop{dest, std::nullopt, 1});
        runs.push_back(open);
    }
    {
        ReachRun mixed;
        mixed.originSegment = origin;
        mixed.speedSegments = 2;
        mixed.stops.push_back(ReachStop{middle, 2, 1});
        mixed.stops.push_back(ReachStop{dest, std::nullopt, 2});
        runs.push_back(mixed);
    }
    return runs;
}

TEST(Reach, WideningTheHorizonNeverShrinksAWindow) {
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const ReachAnalysis narrow(graph, lineRuns(graph, w), 8);
    const ReachAnalysis wide(graph, lineRuns(graph, w), 13);
    ASSERT_EQ(narrow.numRuns(), wide.numRuns());
    for (std::size_t run = 0; run < narrow.numRuns(); ++run) {
        for (std::size_t s = 0; s < graph.numSegments(); ++s) {
            const SegmentId seg(s);
            for (int t = 0; t < narrow.horizonSteps(); ++t) {
                if (narrow.possible(run, seg, t)) {
                    EXPECT_TRUE(wide.possible(run, seg, t))
                        << "run " << run << " segment " << s << " step " << t
                        << " vanished when the horizon grew";
                }
            }
        }
    }
}

TEST(Reach, PromptCutoffTruncatesFullyPinnedRuns) {
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const ReachAnalysis analysis(graph, lineRuns(graph, w), 12);

    // Run 0 is fully pinned with its destination visit ending at step 5.
    EXPECT_TRUE(analysis.promptCutoff(0));
    EXPECT_EQ(analysis.runCutoffStep(0), 5);
    for (std::size_t s = 0; s < graph.numSegments(); ++s) {
        for (int t = 6; t < analysis.horizonSteps(); ++t) {
            EXPECT_FALSE(analysis.possible(0, SegmentId(s), t))
                << "cell past the prompt cutoff at segment " << s << " step " << t;
        }
    }

    // Run 1 has an open destination: no truncation applies.
    EXPECT_FALSE(analysis.promptCutoff(1));
    EXPECT_EQ(analysis.runCutoffStep(1), analysis.horizonSteps() - 1);
    EXPECT_FALSE(analysis.provablyInfeasible());
}

TEST(Reach, PinnedRaysCarveNonConvexExclusions) {
    // A 1 seg/step train pinned to arrive at the far end exactly when the
    // shortest path allows leaves a single admissible step on the origin
    // segment — the cone alone would admit the whole prefix [0, 5].
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const SegmentId origin = graph.segmentOfStation(*w.network.findStation("StA"));
    const SegmentId dest = graph.segmentOfStation(*w.network.findStation("StB"));
    ReachRun slow;
    slow.originSegment = origin;
    slow.speedSegments = 1;
    slow.stops.push_back(ReachStop{dest, 5, 1});
    const ReachAnalysis analysis(graph, {slow}, 10);

    EXPECT_FALSE(analysis.provablyInfeasible());
    const StepWindow atOrigin = analysis.window(0, origin);
    EXPECT_EQ(atOrigin.earliest, 0);
    EXPECT_EQ(atOrigin.latest, 0);
    for (int t = 1; t <= 5; ++t) {
        EXPECT_FALSE(analysis.possible(0, origin, t)) << "step " << t;
    }
    EXPECT_TRUE(analysis.possible(0, dest, 5));
}

TEST(Reach, FeasiblePinsLieInsideTheirWindows) {
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const auto reach = analyzeSchedule(graph, w.trains, w.schedule("StA", "StB", 0, 4));
    ASSERT_TRUE(reach.analysis.has_value());
    const ReachAnalysis& analysis = *reach.analysis;
    ASSERT_EQ(analysis.numRuns(), 1u);
    EXPECT_FALSE(analysis.provablyInfeasible());

    const SegmentId origin = graph.segmentOfStation(*w.network.findStation("StA"));
    const SegmentId dest = graph.segmentOfStation(*w.network.findStation("StB"));
    EXPECT_TRUE(analysis.possible(0, origin, 0));
    EXPECT_TRUE(analysis.window(0, dest).contains(4));
    EXPECT_GT(analysis.possibleCells(), 0u);
    EXPECT_LT(analysis.possibleCells(), analysis.totalCells());
}

TEST(Reach, UnreachableDeadlineIsR001) {
    // StA -> StB needs 3 steps at 2 seg/step; pinning step 2 is refutable.
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const Schedule schedule = w.schedule("StA", "StB", 0, 2);
    const auto reach = analyzeSchedule(graph, w.trains, schedule);
    ASSERT_TRUE(reach.analysis.has_value());
    EXPECT_TRUE(reach.analysis->provablyInfeasible());

    LintReport report;
    lintReachability(graph, w.trains, schedule, report);
    EXPECT_TRUE(report.has("R001"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(Reach, EmptyOpenStopWindowIsR001) {
    // An open destination with a horizon shorter than the travel time has an
    // empty window. The narrowing propagates the contradiction back to the
    // departure cell, so the reported violation is the origin one.
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    Schedule schedule = w.schedule("StA", "StB", 0, std::nullopt);
    schedule.setHorizon(Seconds(60));  // H = 3 steps < 3-step travel + visit
    const auto reach = analyzeSchedule(graph, w.trains, schedule);
    ASSERT_TRUE(reach.analysis.has_value());
    ASSERT_TRUE(reach.analysis->provablyInfeasible());
    EXPECT_EQ(reach.analysis->violations().front().kind,
              ReachViolation::Kind::OriginUnreachable);
    EXPECT_TRUE(reach.analysis->window(0, graph.segmentOfStation(
                                              *w.network.findStation("StB")))
                    .empty());

    LintReport report;
    lintReachability(graph, w.trains, schedule, report);
    EXPECT_TRUE(report.has("R001"));
}

TEST(Reach, UnplaceableDwellIsR002) {
    // A 1600 m train (4 segments) reaches StM with zero travel lower bound,
    // so its departure cell stays admissible — but the 10-minute dwell needs
    // 20 consecutive steps and the horizon offers only 10: a dead stop.
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    const TrainId longTrain =
        w.trains.addTrain("L", Speed::fromKmPerHour(120), Meters(1600));
    TrainRun r;
    r.train = longTrain;
    r.origin = *w.network.findStation("StA");
    r.departure = Seconds(0);
    TimedStop stop{*w.network.findStation("StM"), std::nullopt};
    stop.dwell = Seconds(600);
    r.stops.push_back(stop);
    Schedule schedule;
    schedule.addRun(r);
    schedule.setHorizon(Seconds(9 * 30));
    const auto reach = analyzeSchedule(graph, w.trains, schedule);
    ASSERT_TRUE(reach.analysis.has_value());
    ASSERT_TRUE(reach.analysis->provablyInfeasible());
    EXPECT_EQ(reach.analysis->violations().front().kind,
              ReachViolation::Kind::DwellUnplaceable);

    LintReport report;
    lintReachability(graph, w.trains, schedule, report);
    EXPECT_TRUE(report.has("R002"));
    EXPECT_FALSE(report.has("R001"));
}

TEST(Reach, VacuousDeadlineIsR003) {
    // With the default horizon (the latest pinned arrival), the destination
    // deadline can never bind: the horizon itself forces the arrival.
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    LintReport tight;
    lintReachability(graph, w.trains, w.schedule("StA", "StB", 0, 4), tight);
    EXPECT_TRUE(tight.has("R003"));
    EXPECT_FALSE(tight.hasErrors()) << "R003 is informational";

    // With slack after the deadline the pin genuinely constrains the run.
    Schedule relaxed = w.schedule("StA", "StB", 0, 4);
    relaxed.setHorizon(Seconds(10 * 30));
    LintReport slack;
    lintReachability(graph, w.trains, relaxed, slack);
    EXPECT_FALSE(slack.has("R003"));
}

TEST(Reach, StructurallyBrokenRunsAreSkippedNotReported) {
    // A run overrunning the horizon is the basic linter's L023 finding; the
    // reachability pass must skip it instead of double-reporting.
    LineWorld w;
    const SegmentGraph graph(w.network, kRes);
    Schedule schedule = w.schedule("StA", "StB", 0, 4);
    schedule.setHorizon(Seconds(30));  // arrival step 4 > horizon
    const auto reach = analyzeSchedule(graph, w.trains, schedule);
    ASSERT_TRUE(reach.analysis.has_value());
    EXPECT_EQ(reach.analysis->numRuns(), 0u);
    EXPECT_TRUE(reach.scheduleRunIndex.empty());

    LintReport report;
    lintReachability(graph, w.trains, schedule, report);
    EXPECT_TRUE(report.empty());
}

/// Every cell a completed greedy simulation occupies must be admitted by
/// the analysis: the simulator is an independent implementation of the
/// same movement semantics, so a violation here is an unsound exclusion.
void expectSimulationInsideWindows(const core::Instance& instance) {
    const auto finest = core::VssLayout::finest(instance.graph());
    const auto sim = gen::simulate(instance, finest);
    ASSERT_TRUE(sim.completed);
    const core::Solution witness = gen::solutionFromSimulation(instance, finest, sim);

    core::PruneTable table(instance);
    ASSERT_FALSE(table.provablyInfeasible());
    for (std::size_t run = 0; run < witness.traces.size(); ++run) {
        const core::RunTrace& trace = witness.traces[run];
        for (std::size_t t = 0; t < trace.occupied.size(); ++t) {
            for (const SegmentId seg : trace.occupied[t]) {
                EXPECT_TRUE(table.possible(run, seg, static_cast<int>(t)))
                    << "simulated occupancy outside the window: run " << run
                    << " segment " << seg.get() << " step " << t;
            }
        }
    }
}

TEST(Reach, SimulatedTrajectoriesStayInsideTheWindows) {
    {
        LineWorld w;
        const core::Instance instance(w.network, w.trains,
                                      w.schedule("StA", "StB", 0, 4), kRes);
        expectSimulationInsideWindows(instance);
    }
    // Feasible-kind generated scenarios complete by construction (their
    // deadlines are sampled from the simulation itself).
    for (const gen::Family family :
         {gen::Family::Corridor, gen::Family::Station, gen::Family::Network}) {
        gen::GenParams params;
        params.family = family;
        params.schedule = gen::ScheduleKind::Feasible;
        params.seed = 11;
        params.size = 2;
        params.trains = 2;
        const auto scenario = gen::generate(params);
        SCOPED_TRACE(scenario.name);
        const core::Instance instance(scenario.network, scenario.trains,
                                      scenario.schedule, params.resolution);
        expectSimulationInsideWindows(instance);
    }
}

TEST(Reach, PruningShrinksTheEncodingButKeepsTheVerdict) {
    // Slack after the pinned arrival triggers the prompt-model truncation:
    // the pruned encoding drops the post-arrival tail entirely.
    LineWorld w;
    Schedule schedule = w.schedule("StA", "StB", 0, 4);
    schedule.setHorizon(Seconds(240));
    const core::Instance instance(w.network, w.trains, schedule, kRes);
    const core::VssLayout finest = core::VssLayout::finest(instance.graph());

    int fullVars = 0;
    for (const bool prune : {false, true}) {
        core::TaskOptions options;
        options.lintInstance = false;
        options.encoder.pruneUnreachable = prune;
        const auto verdict = core::verifySchedule(instance, finest, options);
        EXPECT_TRUE(verdict.feasible);
        ASSERT_TRUE(verdict.solution.has_value());
        EXPECT_TRUE(core::validateSolution(instance, *verdict.solution).empty());
        if (!prune) {
            fullVars = verdict.stats.numVariables;
        } else {
            EXPECT_LT(verdict.stats.numVariables, fullVars)
                << "pruning must remove variables on a pinned run with slack";
        }
    }
}

TEST(Reach, ProvablyInfeasibleInstanceStaysUnsatWhenPruned) {
    // The dangerous corner: the analysis empties the destination pin, so
    // the pruned encoding must still produce falsum — never a model.
    LineWorld w;
    const core::Instance instance(w.network, w.trains, w.schedule("StA", "StB", 0, 2),
                                  kRes);
    const core::PruneTable table(instance);
    EXPECT_TRUE(table.provablyInfeasible());

    const core::VssLayout finest = core::VssLayout::finest(instance.graph());
    for (const bool prune : {false, true}) {
        core::TaskOptions options;
        options.lintInstance = false;
        options.encoder.pruneUnreachable = prune;
        EXPECT_FALSE(core::verifySchedule(instance, finest, options).feasible)
            << (prune ? "pruned" : "full") << " encoding found a bogus model";
    }
}

}  // namespace
}  // namespace etcs::lint
