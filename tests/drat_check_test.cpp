// DRAT subsystem tests: proof serialization round-trips, hand-crafted
// RUP/RAT proofs the checker must accept, and corrupted or vacuous proofs
// it must reject.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/drat_check.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(int v) { return Literal::positive(v); }
Literal neg(int v) { return Literal::negative(v); }

/// Shorthand for building a formula from DIMACS-style integers.
CnfFormula formulaOf(int numVariables, std::initializer_list<std::vector<int>> clauses) {
    CnfFormula f;
    f.numVariables = numVariables;
    for (const auto& ints : clauses) {
        std::vector<Literal> clause;
        for (int i : ints) {
            clause.push_back(Literal(std::abs(i) - 1, i < 0));
        }
        f.clauses.push_back(std::move(clause));
    }
    return f;
}

DratStep addition(std::initializer_list<int> ints) {
    DratStep step;
    for (int i : ints) {
        step.literals.push_back(Literal(std::abs(i) - 1, i < 0));
    }
    return step;
}

DratStep deletion(std::initializer_list<int> ints) {
    DratStep step = addition(ints);
    step.isDeletion = true;
    return step;
}

// ---------------------------------------------------------------- writers --

TEST(DratProof, TextRoundTrip) {
    DratProof proof;
    proof.steps = {addition({1, -2}), deletion({3}), addition({})};
    std::stringstream buffer;
    TextDratWriter writer(buffer);
    writeDrat(writer, proof);
    EXPECT_EQ(writer.additions(), 2u);
    EXPECT_EQ(writer.deletions(), 1u);
    const DratProof parsed = readDratText(buffer);
    ASSERT_EQ(parsed.steps.size(), 3u);
    EXPECT_EQ(parsed.steps[0].literals, proof.steps[0].literals);
    EXPECT_FALSE(parsed.steps[0].isDeletion);
    EXPECT_TRUE(parsed.steps[1].isDeletion);
    EXPECT_TRUE(parsed.steps[2].literals.empty());
}

TEST(DratProof, BinaryRoundTripWithLargeVariables) {
    DratProof proof;
    DratStep wide;
    // Multi-byte varints: variables 0, 127, 128, 1'000'000.
    wide.literals = {pos(0), neg(127), pos(128), neg(1'000'000)};
    proof.steps = {wide, deletion({5, -6}), addition({})};
    std::stringstream buffer;
    BinaryDratWriter writer(buffer);
    writeDrat(writer, proof);
    const DratProof parsed = readDratBinary(buffer);
    ASSERT_EQ(parsed.steps.size(), 3u);
    EXPECT_EQ(parsed.steps[0].literals, wide.literals);
    EXPECT_TRUE(parsed.steps[1].isDeletion);
    EXPECT_EQ(parsed.steps[1].literals, proof.steps[1].literals);
}

TEST(DratProof, ReadDratSniffsFormat) {
    DratProof proof;
    proof.steps = {addition({1, 2}), addition({})};
    std::stringstream text;
    TextDratWriter textWriter(text);
    writeDrat(textWriter, proof);
    EXPECT_EQ(readDrat(text).steps.size(), 2u);

    std::stringstream binary;
    BinaryDratWriter binaryWriter(binary);
    writeDrat(binaryWriter, proof);
    EXPECT_EQ(readDrat(binary).steps.size(), 2u);
}

TEST(DratProof, MemoryWriterRecordsSteps) {
    MemoryProofWriter writer;
    writer.addClause({pos(0), neg(1)});
    writer.deleteClause({pos(2)});
    writer.addEmptyClause();
    const DratProof& proof = writer.proof();
    ASSERT_EQ(proof.steps.size(), 3u);
    EXPECT_FALSE(proof.steps[0].isDeletion);
    EXPECT_TRUE(proof.steps[1].isDeletion);
    EXPECT_TRUE(proof.steps[2].literals.empty());
    EXPECT_EQ(writer.additions(), 2u);
    EXPECT_EQ(writer.deletions(), 1u);
}

// ---------------------------------------------------------------- checker --

TEST(DratCheck, AcceptsHandCraftedRupProof) {
    // All four binary clauses over {a, b}: UNSAT. Lemma (a) is RUP
    // (assume -a: clause 1 gives b, clause 4 gives -b), then the empty
    // clause follows by propagation.
    const CnfFormula f = formulaOf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}});
    DratProof proof;
    proof.steps = {addition({1}), addition({})};
    const DratCheckResult result = checkDrat(f, proof);
    EXPECT_TRUE(result.verified) << result.error;
    EXPECT_GE(result.stats.verifiedLemmas, 1u);
    EXPECT_EQ(result.stats.ratLemmas, 0u);
    EXPECT_GT(result.stats.coreClauses, 0u);
}

TEST(DratCheck, AcceptsRatLemma) {
    // (a) is not RUP here, but it is RAT on pivot a: both resolvents —
    // (b) via clause 1 and (c) via clause 2 — are RUP thanks to the
    // (b|d),(b|-d) and (c|e),(c|-e) pairs. Once (a) is added, unit
    // propagation reaches the conflict through (-b|-c).
    const CnfFormula f = formulaOf(
        5, {{-1, 2}, {-1, 3}, {2, 4}, {2, -4}, {3, 5}, {3, -5}, {-2, -3}});
    DratProof proof;
    proof.steps = {addition({1}), addition({})};
    const DratCheckResult result = checkDrat(f, proof);
    EXPECT_TRUE(result.verified) << result.error;
    EXPECT_EQ(result.stats.ratLemmas, 1u);
}

TEST(DratCheck, HandlesDeletionSteps) {
    // The (3 4) clause plays no part in the refutation; deleting it first
    // exercises the forward deactivation and backward reactivation paths
    // while the remaining clauses still derive the conflict.
    const CnfFormula f = formulaOf(4, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}, {3, 4}});
    DratProof proof;
    proof.steps = {deletion({3, 4}), addition({1}), addition({})};
    const DratCheckResult result = checkDrat(f, proof);
    EXPECT_TRUE(result.verified) << result.error;
    EXPECT_EQ(result.stats.skippedDeletions, 0u);
}

TEST(DratCheck, AcceptsFormulaWithEmptyClause) {
    const CnfFormula f = formulaOf(1, {{1}, {}});
    const DratCheckResult result = checkDrat(f, DratProof{});
    EXPECT_TRUE(result.verified) << result.error;
}

TEST(DratCheck, RejectsEmptyProofOfNonTrivialFormula) {
    const CnfFormula f = formulaOf(2, {{1, 2}, {-1, -2}});
    const DratCheckResult result = checkDrat(f, DratProof{});
    EXPECT_FALSE(result.verified);
    EXPECT_FALSE(result.error.empty());
}

TEST(DratCheck, RejectsAssertedButUnderivedEmptyClause) {
    // PHP(3,2) has no unit clauses, so a proof consisting of the bare
    // empty clause asserts a conflict that unit propagation cannot reach.
    const CnfFormula php = formulaOf(6, {{1, 2},
                                         {3, 4},
                                         {5, 6},
                                         {-1, -3},
                                         {-1, -5},
                                         {-3, -5},
                                         {-2, -4},
                                         {-2, -6},
                                         {-4, -6}});
    DratProof proof;
    proof.steps = {addition({})};
    const DratCheckResult result = checkDrat(php, proof);
    EXPECT_FALSE(result.verified);
    EXPECT_FALSE(result.error.empty());
}

TEST(DratCheck, RejectsNonRupNonRatLemma) {
    // (-2) is neither RUP (assuming b triggers no propagation conflict)
    // nor RAT (the resolvent (-1) is not RUP), yet adding it makes unit
    // propagation conflict — the backward pass must catch the bogus lemma.
    const CnfFormula f = formulaOf(2, {{1, 2}, {-1, 2}, {1, -2}});
    DratProof proof;
    proof.steps = {addition({-2}), addition({})};
    const DratCheckResult result = checkDrat(f, proof);
    EXPECT_FALSE(result.verified);
    EXPECT_FALSE(result.error.empty());
}

TEST(DratCheck, RejectsCorruptedSolverProof) {
    // A genuine solver proof of PHP(4,3), corrupted by dropping every
    // addition except the final empty clause. What remains asserts the
    // conflict without deriving it.
    CnfFormula php;
    php.numVariables = 12;
    const auto litOf = [](int pigeon, int hole) {
        return Literal::positive(pigeon * 3 + hole);
    };
    for (int p = 0; p < 4; ++p) {
        std::vector<Literal> atLeast;
        for (int h = 0; h < 3; ++h) {
            atLeast.push_back(litOf(p, h));
        }
        php.clauses.push_back(atLeast);
    }
    for (int h = 0; h < 3; ++h) {
        for (int p1 = 0; p1 < 4; ++p1) {
            for (int p2 = p1 + 1; p2 < 4; ++p2) {
                php.clauses.push_back({~litOf(p1, h), ~litOf(p2, h)});
            }
        }
    }

    MemoryProofWriter writer;
    Solver solver;
    solver.setProofWriter(&writer);
    for (int v = 0; v < php.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : php.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), SolveStatus::Unsat);

    const DratProof genuine = writer.proof();
    ASSERT_TRUE(checkDrat(php, genuine).verified);

    DratProof corrupted;
    for (const DratStep& step : genuine.steps) {
        if (!step.isDeletion && !step.literals.empty()) {
            continue;  // drop every real lemma
        }
        corrupted.steps.push_back(step);
    }
    ASSERT_LT(corrupted.steps.size(), genuine.steps.size());
    const DratCheckResult result = checkDrat(php, corrupted);
    EXPECT_FALSE(result.verified);
    EXPECT_FALSE(result.error.empty());
}

TEST(DratCheck, TruncatedSolverProof) {
    const CnfFormula f = formulaOf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}});
    MemoryProofWriter writer;
    Solver solver;
    solver.setProofWriter(&writer);
    solver.addVariable();
    solver.addVariable();
    for (const auto& clause : f.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), SolveStatus::Unsat);

    // Dropping only the trailing empty clause must still verify: the
    // remaining lemmas reach the conflict by propagation alone.
    DratProof withoutTerminal = writer.proof();
    ASSERT_FALSE(withoutTerminal.steps.empty());
    ASSERT_TRUE(withoutTerminal.steps.back().literals.empty());
    withoutTerminal.steps.pop_back();
    EXPECT_TRUE(checkDrat(f, withoutTerminal).verified);

    // Dropping all additions as well leaves nothing that derives one.
    DratProof gutted;
    for (const DratStep& step : withoutTerminal.steps) {
        if (step.isDeletion) {
            gutted.steps.push_back(step);
        }
    }
    EXPECT_FALSE(checkDrat(f, gutted).verified);
}

TEST(DratCheck, SkipsDeletionOfUnknownClause) {
    const CnfFormula f = formulaOf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}});
    DratProof proof;
    proof.steps = {deletion({1, 2, -2}),  // never existed
                   addition({1}), addition({})};
    const DratCheckResult result = checkDrat(f, proof);
    EXPECT_TRUE(result.verified) << result.error;
    EXPECT_EQ(result.stats.skippedDeletions, 1u);
}

}  // namespace
}  // namespace etcs::sat
