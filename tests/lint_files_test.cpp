/// \file lint_files_test.cpp
/// File-level lint regression tests: the shipped data/ instances must lint
/// clean, the seeded defect fixtures must produce their exact parse codes,
/// and docs/LINTING.md must document every known diagnostic code.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lint/diagnostics.hpp"
#include "lint/rail_lint.hpp"
#include "railway/io.hpp"
#include "util/units.hpp"

#ifndef ETCS_DATA_DIR
#error "ETCS_DATA_DIR must point at the repository's data/ directory"
#endif
#ifndef ETCS_FIXTURE_DIR
#error "ETCS_FIXTURE_DIR must point at tests/fixtures/"
#endif
#ifndef ETCS_DOCS_DIR
#error "ETCS_DOCS_DIR must point at the repository's docs/ directory"
#endif

namespace etcs {
namespace {

using lint::LintReport;

constexpr Resolution kResolution{Meters(500), Seconds(30)};

std::ifstream openOrFail(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    return in;
}

std::string render(const LintReport& report) {
    std::ostringstream os;
    report.write(os);
    return os.str();
}

void expectScenarioLintsClean(const std::string& railFile, const std::string& schedFile) {
    auto railIn = openOrFail(std::string(ETCS_DATA_DIR) + "/" + railFile);
    LintReport report;
    const rail::Network network = lint::lintNetworkFile(railIn, report);
    auto schedIn = openOrFail(std::string(ETCS_DATA_DIR) + "/" + schedFile);
    const rail::Scenario scenario = lint::lintScenarioFile(schedIn, network, report);
    lint::lintScenario(network, scenario.trains, scenario.schedule, kResolution, report);
    EXPECT_TRUE(report.empty()) << railFile << " + " << schedFile << " must lint clean:\n"
                                << render(report);
}

TEST(ShippedData, QuickstartLintsClean) {
    expectScenarioLintsClean("quickstart.rail", "quickstart.sched");
}

TEST(ShippedData, RunningExampleLintsClean) {
    expectScenarioLintsClean("running_example.rail", "running_example.sched");
}

TEST(Fixtures, BrokenNetworkProducesEveryParseCode) {
    auto in = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/broken.rail");
    LintReport report;
    (void)lint::lintNetworkFile(in, report);
    EXPECT_EQ(report.countOf("L001"), 1u) << render(report);  // malformed length
    EXPECT_EQ(report.countOf("L002"), 1u) << render(report);  // duplicate node
    EXPECT_EQ(report.countOf("L003"), 1u) << render(report);  // unknown node
    EXPECT_EQ(report.countOf("L004"), 1u) << render(report);  // zero-length track
    EXPECT_EQ(report.countOf("L005"), 1u) << render(report);  // offset outside track
    // Diagnostics carry their 1-based source lines.
    bool sawLine = false;
    for (const auto& d : report.diagnostics()) {
        sawLine = sawLine || d.line > 0;
    }
    EXPECT_TRUE(sawLine);
}

TEST(Fixtures, BrokenNetworkSurvivingPartIsStructurallySound) {
    auto in = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/broken.rail");
    LintReport parse;
    const rail::Network network = lint::lintNetworkFile(in, parse);
    // The lenient reader skips the five bad lines; what remains (two tracks,
    // two TTDs) is a valid connected network.
    LintReport structural;
    lint::lintNetwork(network, structural);
    EXPECT_TRUE(structural.empty()) << render(structural);
}

TEST(Fixtures, BrokenScenarioProducesParseCodes) {
    auto railIn = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/corridor.rail");
    LintReport railReport;
    const rail::Network network = lint::lintNetworkFile(railIn, railReport);
    EXPECT_TRUE(railReport.empty()) << render(railReport);

    auto in = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/broken.sched");
    LintReport report;
    const rail::Scenario scenario = lint::lintScenarioFile(in, network, report);
    EXPECT_EQ(report.countOf("L002"), 1u) << render(report);  // duplicate train
    EXPECT_EQ(report.countOf("L004"), 1u) << render(report);  // zero speed
    EXPECT_GE(report.countOf("L001"), 2u) << render(report);  // malformed int + clock
    EXPECT_GE(report.countOf("L003"), 2u) << render(report);  // unknown train + station
    // The surviving run (last line) parsed fine.
    EXPECT_EQ(scenario.schedule.size(), 1u);
}

TEST(Fixtures, InfeasibleScheduleIsProvenWithoutSolver) {
    auto railIn = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/corridor.rail");
    LintReport report;
    const rail::Network network = lint::lintNetworkFile(railIn, report);
    auto schedIn = openOrFail(std::string(ETCS_FIXTURE_DIR) + "/infeasible.sched");
    const rail::Scenario scenario = lint::lintScenarioFile(schedIn, network, report);
    lint::lintScenario(network, scenario.trains, scenario.schedule, kResolution, report);
    EXPECT_TRUE(report.has("L024")) << render(report);
    EXPECT_TRUE(report.hasErrors());
}

/// docs/LINTING.md is the user-facing catalogue; every code the analyzers
/// can emit must have a documented section.
TEST(Docs, LintingCataloguesEveryKnownCode) {
    auto in = openOrFail(std::string(ETCS_DOCS_DIR) + "/LINTING.md");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string docs = buffer.str();
    for (const lint::CodeInfo& info : lint::knownCodes()) {
        EXPECT_NE(docs.find(std::string("### ") + std::string(info.code)), std::string::npos)
            << "docs/LINTING.md is missing a '### " << info.code << "' section";
    }
}

}  // namespace
}  // namespace etcs
