// End-to-end observability tests: per-family encoder accounting matches the
// backend totals, task results carry real solver counters, a traced task run
// produces the expected spans, and the task-level progress hook can cancel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "cnf/backend.hpp"
#include "core/tasks.hpp"
#include "obs/trace.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

struct RunningFixture : ::testing::Test {
    studies::CaseStudy study = studies::runningExample();
    Instance timed{study.network, study.trains, study.timedSchedule, study.resolution};
    Instance open{study.network, study.trains, study.openSchedule, study.resolution};
};

TEST_F(RunningFixture, FamilyCountsSumToBackendTotals) {
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, timed);
    encoder.encode(nullptr);  // free-layout mode exercises border variables
    const auto families = encoder.familyCounts();
    ASSERT_FALSE(families.empty());

    int variables = 0;
    std::size_t clauses = 0;
    for (const auto& family : families) {
        EXPECT_FALSE(family.family.empty());
        EXPECT_GE(family.variables, 0);
        variables += family.variables;
        clauses += family.clauses;
    }
    EXPECT_EQ(variables, backend->numVariables());
    EXPECT_EQ(clauses, backend->numClauses());

    // The core structural families of the paper's encoding must be present.
    auto has = [&families](std::string_view name) {
        for (const auto& family : families) {
            if (family.family == name) {
                return true;
            }
        }
        return false;
    };
    EXPECT_TRUE(has("occupies_vars"));
    EXPECT_TRUE(has("border_vars"));
    EXPECT_TRUE(has("chain_occupancy"));
    EXPECT_TRUE(has("movement"));
    EXPECT_TRUE(has("vss_separation"));
    EXPECT_TRUE(has("pass_through"));
}

TEST_F(RunningFixture, DoneAllSelectorsAccountedAfterEncode) {
    const auto backend = cnf::makeInternalBackend();
    Encoder encoder(*backend, timed);
    encoder.encode(nullptr);
    const int before = backend->numVariables();
    (void)encoder.doneAllLiteral(timed.horizonSteps() - 1);
    ASSERT_GT(backend->numVariables(), before);

    int variables = 0;
    std::size_t clauses = 0;
    for (const auto& family : encoder.familyCounts()) {
        variables += family.variables;
        clauses += family.clauses;
    }
    EXPECT_EQ(variables, backend->numVariables());
    EXPECT_EQ(clauses, backend->numClauses());
}

TEST_F(RunningFixture, TaskResultsCarrySolverCounters) {
    // Verification on the pure TTD layout is UNSAT — the solver must have
    // worked for that verdict (conflicts strictly positive).
    const VssLayout pure(timed.graph());
    const auto verification = verifySchedule(timed, pure);
    ASSERT_FALSE(verification.feasible);
    EXPECT_GT(verification.stats.conflicts, 0u);
    EXPECT_GT(verification.stats.propagations, 0u);
    EXPECT_GT(verification.stats.decisions, 0u);
    EXPECT_GT(verification.stats.maxDecisionLevel, 0u);

    const auto generation = generateLayout(timed);
    ASSERT_TRUE(generation.feasible);
    EXPECT_GT(generation.stats.propagations, 0u);
    EXPECT_GT(generation.stats.solveCalls, 0u);
}

TEST_F(RunningFixture, InternalBackendSupportsProgress) {
    const auto backend = cnf::makeInternalBackend();
    EXPECT_TRUE(backend->setProgressCallback([](const sat::SolverProgress&) {
        return true;
    }));
    EXPECT_TRUE(backend->setProgressCallback({}));  // clearing also supported
}

TEST_F(RunningFixture, TaskProgressCancellationReportsInfeasible) {
    TaskOptions options;
    options.progressIntervalConflicts = 1;  // fire on the very first conflict
    int calls = 0;
    options.progress = [&calls](const sat::SolverProgress&) {
        ++calls;
        return false;
    };
    const VssLayout pure(timed.graph());
    // The pure-TTD verification needs many conflicts, so cancellation must
    // kick in and the task reports "not feasible" without crashing.
    const auto result = verifySchedule(timed, pure, options);
    EXPECT_FALSE(result.feasible);
    EXPECT_GT(calls, 0);
}

TEST_F(RunningFixture, TracedTaskRunEmitsPipelineSpans) {
    const std::string path = ::testing::TempDir() + "etcs_obs_integration_trace.json";
    ASSERT_TRUE(obs::Tracer::start(path));
    {
        const VssLayout pure(timed.graph());
        const auto result = verifySchedule(timed, pure);
        EXPECT_FALSE(result.feasible);
    }
    obs::Tracer::stop();

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path.c_str());

    ASSERT_FALSE(text.empty());
    EXPECT_NE(text.find("\"task.verify\""), std::string::npos);
    EXPECT_NE(text.find("\"encode\""), std::string::npos);
    EXPECT_NE(text.find("\"sat.solve\""), std::string::npos);
    EXPECT_NE(text.find("\"encode.done\""), std::string::npos);

    auto count = [&text](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t at = text.find(needle); at != std::string::npos;
             at = text.find(needle, at + needle.size())) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
    EXPECT_GT(count("\"ph\":\"B\""), 0u);
}

TEST_F(RunningFixture, TracedOptimizationEmitsMinimizeSpans) {
    const std::string path = ::testing::TempDir() + "etcs_obs_opt_trace.json";
    ASSERT_TRUE(obs::Tracer::start(path));
    {
        const auto result = optimizeSchedule(open);
        EXPECT_TRUE(result.feasible);
    }
    obs::Tracer::stop();

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"task.optimize\""), std::string::npos);
    EXPECT_NE(text.find("\"opt.index_search\""), std::string::npos);
    EXPECT_NE(text.find("\"opt.probe_index\""), std::string::npos);
}

}  // namespace
}  // namespace etcs::core
