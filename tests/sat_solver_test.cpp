// Unit tests for the CDCL solver: propagation, conflicts, models,
// assumptions, cores, and option behaviour.
#include <gtest/gtest.h>

#include "sat/solver.hpp"

namespace etcs::sat {
namespace {

Literal pos(Var v) { return Literal::positive(v); }
Literal neg(Var v) { return Literal::negative(v); }

TEST(Literal, Encoding) {
    const Literal l = pos(3);
    EXPECT_EQ(l.var(), 3);
    EXPECT_FALSE(l.sign());
    EXPECT_TRUE((~l).sign());
    EXPECT_EQ((~l).var(), 3);
    EXPECT_EQ(~~l, l);
    EXPECT_EQ(Literal::fromCode(l.code()), l);
}

TEST(Solver, EmptyFormulaIsSat) {
    Solver s;
    EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(Solver, SingleUnit) {
    Solver s;
    const Var a = s.addVariable();
    s.addClause({pos(a)});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_EQ(s.modelValue(a), Value::True);
}

TEST(Solver, ContradictingUnitsAreUnsat) {
    Solver s;
    const Var a = s.addVariable();
    s.addClause({pos(a)});
    EXPECT_FALSE(s.addClause({neg(a)}));
    EXPECT_FALSE(s.okay());
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
    Solver s;
    EXPECT_FALSE(s.addClause(std::span<const Literal>{}));
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(Solver, TautologyIsIgnored) {
    Solver s;
    const Var a = s.addVariable();
    EXPECT_TRUE(s.addClause({pos(a), neg(a)}));
    EXPECT_EQ(s.numClauses(), 0u);
    EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(Solver, DuplicateLiteralsAreDeduplicated) {
    Solver s;
    const Var a = s.addVariable();
    const Var b = s.addVariable();
    s.addClause({pos(a), pos(a), pos(b), pos(b)});
    s.addClause({neg(a)});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_EQ(s.modelValue(b), Value::True);
}

TEST(Solver, ImplicationChainPropagates) {
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 50; ++i) {
        vars.push_back(s.addVariable());
    }
    for (int i = 0; i + 1 < 50; ++i) {
        s.addClause({neg(vars[i]), pos(vars[i + 1])});
    }
    s.addClause({pos(vars[0])});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    for (Var v : vars) {
        EXPECT_EQ(s.modelValue(v), Value::True);
    }
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
    // p[i][j]: pigeon i sits in hole j.
    Solver s;
    Var p[3][2];
    for (auto& row : p) {
        for (Var& v : row) {
            v = s.addVariable();
        }
    }
    for (auto& row : p) {
        s.addClause({pos(row[0]), pos(row[1])});
    }
    for (int j = 0; j < 2; ++j) {
        for (int i = 0; i < 3; ++i) {
            for (int k = i + 1; k < 3; ++k) {
                s.addClause({neg(p[i][j]), neg(p[k][j])});
            }
        }
    }
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(Solver, XorChainSat) {
    // x0 ^ x1 = 1, x1 ^ x2 = 1, ... and x0 = 0 pins everything.
    Solver s;
    std::vector<Var> x;
    for (int i = 0; i < 20; ++i) {
        x.push_back(s.addVariable());
    }
    for (int i = 0; i + 1 < 20; ++i) {
        s.addClause({pos(x[i]), pos(x[i + 1])});
        s.addClause({neg(x[i]), neg(x[i + 1])});
    }
    s.addClause({neg(x[0])});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(s.modelValue(x[i]), i % 2 == 0 ? Value::False : Value::True);
    }
}

TEST(Solver, AssumptionsSelectBranch) {
    Solver s;
    const Var a = s.addVariable();
    const Var b = s.addVariable();
    s.addClause({pos(a), pos(b)});
    ASSERT_EQ(s.solve({neg(a)}), SolveStatus::Sat);
    EXPECT_EQ(s.modelValue(b), Value::True);
    ASSERT_EQ(s.solve({neg(b)}), SolveStatus::Sat);
    EXPECT_EQ(s.modelValue(a), Value::True);
}

TEST(Solver, IncrementalReuseAfterUnsatAssumptions) {
    Solver s;
    const Var a = s.addVariable();
    const Var b = s.addVariable();
    s.addClause({pos(a), pos(b)});
    EXPECT_EQ(s.solve({neg(a), neg(b)}), SolveStatus::Unsat);
    EXPECT_TRUE(s.okay());  // only the assumptions were contradictory
    EXPECT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_EQ(s.solve({neg(a)}), SolveStatus::Sat);
}

TEST(Solver, ConflictCoreIsSubsetOfAssumptions) {
    Solver s;
    const Var a = s.addVariable();
    const Var b = s.addVariable();
    const Var c = s.addVariable();
    s.addClause({neg(a), neg(b)});  // a & b impossible
    ASSERT_EQ(s.solve({pos(a), pos(b), pos(c)}), SolveStatus::Unsat);
    const auto& core = s.conflictCore();
    EXPECT_FALSE(core.empty());
    for (Literal l : core) {
        EXPECT_TRUE(l == pos(a) || l == pos(b) || l == pos(c));
    }
    // c is irrelevant; a and b must both appear in a minimal-ish core.
    EXPECT_LE(core.size(), 2u);
}

TEST(Solver, CoreFromRootLevelImplication) {
    Solver s;
    const Var a = s.addVariable();
    s.addClause({neg(a)});
    ASSERT_EQ(s.solve({pos(a)}), SolveStatus::Unsat);
    ASSERT_EQ(s.conflictCore().size(), 1u);
    EXPECT_EQ(s.conflictCore()[0], pos(a));
}

TEST(Solver, StatsAreCounted) {
    Solver s;
    std::vector<Var> x;
    for (int i = 0; i < 30; ++i) {
        x.push_back(s.addVariable());
    }
    // A formula that requires some search: pairwise exclusion rows.
    for (int i = 0; i + 2 < 30; i += 3) {
        s.addClause({pos(x[i]), pos(x[i + 1]), pos(x[i + 2])});
        s.addClause({neg(x[i]), neg(x[i + 1])});
        s.addClause({neg(x[i]), neg(x[i + 2])});
        s.addClause({neg(x[i + 1]), neg(x[i + 2])});
    }
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_GT(s.stats().decisions, 0u);
    EXPECT_GT(s.stats().propagations, 0u);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
    // A hard pigeonhole instance with a tiny conflict budget.
    Solver s;
    constexpr int kPigeons = 9;
    constexpr int kHoles = 8;
    std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
    for (auto& row : p) {
        std::vector<Literal> atLeast;
        for (Var& v : row) {
            v = s.addVariable();
            atLeast.push_back(pos(v));
        }
        s.addClause(atLeast);
    }
    for (int j = 0; j < kHoles; ++j) {
        for (int i = 0; i < kPigeons; ++i) {
            for (int k = i + 1; k < kPigeons; ++k) {
                s.addClause({neg(p[i][j]), neg(p[k][j])});
            }
        }
    }
    s.options().conflictLimit = 10;
    EXPECT_EQ(s.solve(), SolveStatus::Unknown);
}

TEST(Solver, WorksWithoutRestartsAndMinimization) {
    Solver s;
    s.options().useRestarts = false;
    s.options().minimizeLearned = false;
    s.options().phaseSaving = false;
    std::vector<Var> x;
    for (int i = 0; i < 40; ++i) {
        x.push_back(s.addVariable());
    }
    for (int i = 0; i + 1 < 40; i += 2) {
        s.addClause({pos(x[i]), pos(x[i + 1])});
        s.addClause({neg(x[i]), neg(x[i + 1])});
    }
    EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(Solver, ManySolveCallsWithVaryingAssumptions) {
    Solver s;
    std::vector<Var> x;
    for (int i = 0; i < 10; ++i) {
        x.push_back(s.addVariable());
    }
    // Exactly-one (pairwise) over 10 variables.
    std::vector<Literal> all;
    for (Var v : x) {
        all.push_back(pos(v));
    }
    s.addClause(all);
    for (int i = 0; i < 10; ++i) {
        for (int j = i + 1; j < 10; ++j) {
            s.addClause({neg(x[i]), neg(x[j])});
        }
    }
    for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(s.solve({pos(x[i])}), SolveStatus::Sat);
        for (int j = 0; j < 10; ++j) {
            EXPECT_EQ(s.modelValue(x[j]) == Value::True, i == j);
        }
    }
    // Assuming two distinct variables true is unsatisfiable.
    EXPECT_EQ(s.solve({pos(x[0]), pos(x[5])}), SolveStatus::Unsat);
}

TEST(Solver, RejectsUnknownVariableInClause) {
    Solver s;
    s.addVariable();
    EXPECT_THROW(s.addClause({pos(5)}), PreconditionError);
}

TEST(Solver, RejectsUnknownVariableInAssumption) {
    Solver s;
    s.addVariable();
    EXPECT_THROW(s.solve({pos(5)}), PreconditionError);
}

}  // namespace
}  // namespace etcs::sat
