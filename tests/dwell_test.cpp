// Dwell-time tests: minimum standing times at stops, across encoder,
// validator, instance discretization and file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "railway/io.hpp"
#include "studies/studies.hpp"

namespace etcs::core {
namespace {

constexpr Resolution kRes{Meters(500), Seconds(30)};

/// Single 6-segment line with stations at both ends and in the middle.
struct DwellWorld {
    rail::Network network{"dwell"};
    rail::TrainSet trains;
    TrainId train;

    DwellWorld() {
        const auto a = network.addNode("A");
        const auto b = network.addNode("B");
        const auto t = network.addTrack("t", a, b, Meters(3000));
        network.addTtd("T", {t});
        network.addStation("StA", t, Meters(0));
        network.addStation("StMid", t, Meters(1400));
        network.addStation("StB", t, Meters(3000));
        train = trains.addTrain("T", Speed::fromKmPerHour(120), Meters(100));
    }

    [[nodiscard]] rail::TrainRun run(std::optional<int> midArr, int midDwellSteps,
                                     std::optional<int> endArr) const {
        rail::TrainRun r;
        r.train = train;
        r.origin = *network.findStation("StA");
        r.departure = Seconds(0);
        rail::TimedStop mid{*network.findStation("StMid"),
                            midArr ? std::optional(Seconds(*midArr * 30)) : std::nullopt,
                            Seconds(midDwellSteps * 30)};
        rail::TimedStop end{*network.findStation("StB"),
                            endArr ? std::optional(Seconds(*endArr * 30)) : std::nullopt};
        r.stops = {mid, end};
        return r;
    }
};

TEST(Dwell, InstanceDiscretizesDwellSteps) {
    DwellWorld w;
    rail::Schedule s;
    s.addRun(w.run(3, 2, 10));
    const Instance instance(w.network, w.trains, s, kRes);
    EXPECT_EQ(instance.runs()[0].stops[0].dwellSteps, 2);
    EXPECT_EQ(instance.runs()[0].stops[1].dwellSteps, 1);  // default
}

TEST(Dwell, PinnedStopWithDwellHoldsPosition) {
    DwellWorld w;
    rail::Schedule s;
    s.addRun(w.run(3, 3, 10));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto result = verifySchedule(instance, VssLayout::finest(instance.graph()));
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(validateSolution(instance, *result.solution).empty());
    const SegmentId mid = instance.graph().segmentOfStation(*w.network.findStation("StMid"));
    for (int step = 3; step < 6; ++step) {
        const auto& occupied = result.solution->traces[0].occupied[
            static_cast<std::size_t>(step)];
        EXPECT_NE(std::find(occupied.begin(), occupied.end(), mid), occupied.end())
            << "step " << step;
    }
}

TEST(Dwell, DwellPushesOutTheMinimumArrival) {
    DwellWorld w;
    // Trip A->Mid (2 segments -> 1 step at v=2) + Mid->B (3 segments -> 2
    // steps). Mid is pinned at step 1; a d-step dwell keeps the train at Mid
    // through step 1+d-1, so the earliest B arrival is 1 + (d-1) + 2.
    for (const auto& [dwellSteps, endArr, expectFeasible] :
         {std::tuple{1, 3, true}, {3, 4, false}, {3, 5, true}, {3, 6, true}}) {
        rail::Schedule s;
        s.addRun(w.run(1, dwellSteps, endArr));
        const Instance instance(w.network, w.trains, s, kRes);
        const auto result = verifySchedule(instance, VssLayout::finest(instance.graph()));
        EXPECT_EQ(result.feasible, expectFeasible)
            << "dwell=" << dwellSteps << " arr=" << endArr;
        if (result.feasible) {
            EXPECT_TRUE(validateSolution(instance, *result.solution).empty());
        }
    }
}

TEST(Dwell, OpenStopWithDwellInOptimization) {
    DwellWorld w;
    auto optimize = [&](int dwellSteps) {
        rail::Schedule s;
        s.addRun(w.run(std::nullopt, dwellSteps, std::nullopt));
        s.setHorizon(Seconds(12 * 30));
        const Instance instance(w.network, w.trains, s, kRes);
        const auto result = optimizeSchedule(instance);
        EXPECT_TRUE(result.feasible);
        if (result.solution) {
            EXPECT_TRUE(validateSolution(instance, *result.solution).empty());
        }
        return result.completionSteps;
    };
    // With a 3-step dwell: reach Mid at 1, stand through 3, reach B at 5,
    // done at 6. Without dwell the stop is a drive-through: done at 4.
    EXPECT_EQ(optimize(3), 6);
    EXPECT_EQ(optimize(1), 4);
}

TEST(Dwell, ValidatorCatchesShortenedDwell) {
    DwellWorld w;
    rail::Schedule s;
    s.addRun(w.run(3, 3, 10));
    const Instance instance(w.network, w.trains, s, kRes);
    const auto result = verifySchedule(instance, VssLayout::finest(instance.graph()));
    ASSERT_TRUE(result.feasible);
    Solution corrupted = *result.solution;
    // Remove the middle step of the dwell window.
    const SegmentId mid = instance.graph().segmentOfStation(*w.network.findStation("StMid"));
    auto& occupied = corrupted.traces[0].occupied[4];
    occupied.erase(std::remove(occupied.begin(), occupied.end(), mid), occupied.end());
    const auto violations = validateSolution(instance, corrupted);
    EXPECT_FALSE(violations.empty());
}

TEST(Dwell, ScenarioIoRoundTripsDwell) {
    DwellWorld w;
    std::istringstream in(
        "train ICE 120 100\n"
        "run ICE from StA dep 0:00 via StMid arr 0:02 dwell 0:01:30 to StB arr 0:06\n");
    const rail::Scenario scenario = rail::readScenario(in, w.network);
    ASSERT_EQ(scenario.schedule.runs()[0].stops.size(), 2u);
    EXPECT_EQ(scenario.schedule.runs()[0].stops[0].dwell.count(), 90);
    std::ostringstream out;
    rail::writeScenario(out, scenario, w.network);
    EXPECT_NE(out.str().find("dwell 0:01:30"), std::string::npos);
    std::istringstream in2(out.str());
    const rail::Scenario reparsed = rail::readScenario(in2, w.network);
    EXPECT_EQ(reparsed.schedule.runs()[0].stops[0].dwell.count(), 90);
}

}  // namespace
}  // namespace etcs::core
