// Train roster, schedule, and discretized-instance tests.
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"
#include "studies/studies.hpp"

namespace etcs {
namespace {

using rail::Schedule;
using rail::TimedStop;
using rail::Train;
using rail::TrainRun;
using rail::TrainSet;

TEST(TrainSet, AddAndLookup) {
    TrainSet trains;
    const TrainId id = trains.addTrain("ICE", Speed::fromKmPerHour(180), Meters(400));
    EXPECT_EQ(trains.size(), 1u);
    EXPECT_EQ(trains.train(id).name, "ICE");
    EXPECT_EQ(trains.findTrain("ICE"), id);
    EXPECT_FALSE(trains.findTrain("nope").has_value());
}

TEST(TrainSet, RejectsDuplicatesAndInvalidData) {
    TrainSet trains;
    trains.addTrain("A", Speed::fromKmPerHour(100), Meters(100));
    EXPECT_THROW(trains.addTrain("A", Speed::fromKmPerHour(100), Meters(100)),
                 PreconditionError);
    EXPECT_THROW(trains.addTrain("B", Speed::fromKmPerHour(0), Meters(100)),
                 PreconditionError);
    EXPECT_THROW(trains.addTrain("C", Speed::fromKmPerHour(100), Meters(0)),
                 PreconditionError);
}

TEST(Train, DiscreteQuantities) {
    const Train t{"X", Speed::fromKmPerHour(120), Meters(700)};
    const Resolution r{Meters(500), Seconds(30)};
    EXPECT_EQ(t.lengthSegments(r), 2);
    EXPECT_EQ(t.speedSegments(r), 2);
}

TEST(Schedule, HorizonFromArrivals) {
    Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    run.departure = Seconds(0);
    run.stops.push_back(TimedStop{StationId(1u), Seconds(300)});
    s.addRun(run);
    EXPECT_EQ(s.horizon().count(), 300);
    EXPECT_TRUE(s.fullyTimed());
}

TEST(Schedule, ExplicitHorizonWins) {
    Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    run.departure = Seconds(0);
    run.stops.push_back(TimedStop{StationId(1u), std::nullopt});
    s.addRun(run);
    EXPECT_FALSE(s.fullyTimed());
    s.setHorizon(Seconds(600));
    EXPECT_EQ(s.horizon().count(), 600);
}

TEST(Schedule, RejectsRunWithoutStops) {
    Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    EXPECT_THROW(s.addRun(run), PreconditionError);
}

TEST(Instance, DiscretizesRunningExample) {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    EXPECT_EQ(instance.horizonSteps(), 11);  // 5 min at 30 s, arrival at step 10
    ASSERT_EQ(instance.numRuns(), 4u);
    // Fig. 1b, discretized.
    EXPECT_EQ(instance.runs()[0].departureStep, 0);
    EXPECT_EQ(*instance.runs()[0].destination().arrivalStep, 9);   // 0:04:30
    EXPECT_EQ(instance.runs()[1].lengthSegments, 2);               // 700 m
    EXPECT_EQ(*instance.runs()[1].destination().arrivalStep, 8);   // 0:04
    EXPECT_EQ(instance.runs()[2].departureStep, 2);                // 0:01
    EXPECT_EQ(instance.runs()[3].speedSegments, 3);                // 180 km/h
    EXPECT_EQ(*instance.runs()[3].destination().arrivalStep, 10);  // 0:05
}

TEST(Instance, SegmentDistanceIsSymmetricAndTriangular) {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto n = instance.graph().numSegments();
    for (std::size_t a = 0; a < n; ++a) {
        EXPECT_EQ(instance.segmentDistance(SegmentId(a), SegmentId(a)), 0);
        for (std::size_t b = 0; b < n; ++b) {
            EXPECT_EQ(instance.segmentDistance(SegmentId(a), SegmentId(b)),
                      instance.segmentDistance(SegmentId(b), SegmentId(a)));
            for (std::size_t c = 0; c < n; ++c) {
                EXPECT_LE(instance.segmentDistance(SegmentId(a), SegmentId(c)),
                          instance.segmentDistance(SegmentId(a), SegmentId(b)) +
                              instance.segmentDistance(SegmentId(b), SegmentId(c)));
            }
        }
    }
}

TEST(Instance, RejectsImmobileTrain) {
    const auto study = studies::runningExample();
    rail::TrainSet slowTrains;
    slowTrains.addTrain("Crawler", Speed::fromKmPerHour(10), Meters(100));
    rail::Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    run.departure = Seconds(0);
    run.stops.push_back(TimedStop{StationId(1u), Seconds(300)});
    s.addRun(run);
    // 10 km/h covers 83 m per 30 s step < 500 m resolution -> zero segments.
    EXPECT_THROW(core::Instance(study.network, slowTrains, s, study.resolution), InputError);
}

TEST(Instance, RejectsDepartureAfterHorizon) {
    const auto study = studies::runningExample();
    rail::Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    run.departure = Seconds(9999);
    run.stops.push_back(TimedStop{StationId(1u), std::nullopt});
    s.addRun(run);
    s.setHorizon(Seconds(300));
    EXPECT_THROW(core::Instance(study.network, study.trains, s, study.resolution), InputError);
}

TEST(Instance, RejectsStopBeforePreviousStop) {
    const auto study = studies::runningExample();
    rail::Schedule s;
    TrainRun run;
    run.train = TrainId(0u);
    run.origin = StationId(0u);
    run.departure = Seconds(120);
    run.stops.push_back(TimedStop{StationId(1u), Seconds(60)});  // arrives before departing
    s.addRun(run);
    EXPECT_THROW(core::Instance(study.network, study.trains, s, study.resolution), InputError);
}

}  // namespace
}  // namespace etcs
