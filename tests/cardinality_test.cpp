// Totalizer and sequential-counter cardinality encodings: outputs must track
// the popcount of the inputs exactly, for every assignment.
#include <gtest/gtest.h>

#include "cnf/backend.hpp"
#include "cnf/cardinality.hpp"
#include "util/error.hpp"

namespace etcs::cnf {
namespace {

std::vector<Literal> makeInputs(SatBackend& backend, int n) {
    std::vector<Literal> inputs;
    for (int i = 0; i < n; ++i) {
        inputs.push_back(Literal::positive(backend.addVariable()));
    }
    return inputs;
}

std::vector<Literal> assignmentAssumptions(const std::vector<Literal>& inputs,
                                           std::uint32_t bits) {
    std::vector<Literal> assumptions;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        assumptions.push_back(((bits >> i) & 1u) != 0 ? inputs[i] : ~inputs[i]);
    }
    return assumptions;
}

class TotalizerTest : public ::testing::TestWithParam<int> {};

TEST_P(TotalizerTest, OutputsEqualPopcountForEveryAssignment) {
    const int n = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    const Totalizer totalizer(*backend, inputs);
    ASSERT_EQ(totalizer.numInputs(), static_cast<std::size_t>(n));
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
        const int popcount = __builtin_popcount(bits);
        auto assumptions = assignmentAssumptions(inputs, bits);
        ASSERT_EQ(backend->solve(assumptions), SolveStatus::Sat);
        for (int k = 0; k < n; ++k) {
            // output(k) holds iff at least k+1 inputs are true.
            EXPECT_EQ(backend->modelValue(totalizer.output(k)), popcount >= k + 1)
                << "n=" << n << " bits=" << bits << " k=" << k;
        }
    }
}

TEST_P(TotalizerTest, AtMostAssumptionEnforcesBound) {
    const int n = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    const Totalizer totalizer(*backend, inputs);
    for (int k = 0; k < n; ++k) {
        for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
            auto assumptions = assignmentAssumptions(inputs, bits);
            assumptions.push_back(totalizer.atMostAssumption(static_cast<std::size_t>(k)));
            const bool expected = __builtin_popcount(bits) <= k;
            EXPECT_EQ(backend->solve(assumptions) == SolveStatus::Sat, expected)
                << "n=" << n << " k=" << k << " bits=" << bits;
        }
    }
}

TEST_P(TotalizerTest, AtLeastAssumptionEnforcesBound) {
    const int n = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    const Totalizer totalizer(*backend, inputs);
    for (int k = 1; k <= n; ++k) {
        for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
            auto assumptions = assignmentAssumptions(inputs, bits);
            assumptions.push_back(totalizer.atLeastAssumption(static_cast<std::size_t>(k)));
            const bool expected = __builtin_popcount(bits) >= k;
            EXPECT_EQ(backend->solve(assumptions) == SolveStatus::Sat, expected)
                << "n=" << n << " k=" << k << " bits=" << bits;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TotalizerTest, ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(Totalizer, HardAtMostConstraint) {
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, 6);
    const Totalizer totalizer(*backend, inputs);
    totalizer.addAtMost(*backend, 2);
    // Forcing three inputs true is now unsatisfiable.
    EXPECT_EQ(backend->solve({inputs[0], inputs[1], inputs[2]}), SolveStatus::Unsat);
    EXPECT_EQ(backend->solve({inputs[0], inputs[1]}), SolveStatus::Sat);
}

using SeqCase = std::tuple<int, int>;  // (n, k)

class SequentialCounterTest : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SequentialCounterTest, AcceptsExactlyAssignmentsWithinBound) {
    const auto [n, k] = GetParam();
    const auto backend = makeInternalBackend();
    const auto inputs = makeInputs(*backend, n);
    addAtMostK(*backend, inputs, static_cast<std::size_t>(k));
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
        const auto assumptions = assignmentAssumptions(inputs, bits);
        const bool expected = __builtin_popcount(bits) <= k;
        EXPECT_EQ(backend->solve(assumptions) == SolveStatus::Sat, expected)
            << "n=" << n << " k=" << k << " bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SequentialCounterTest,
                         ::testing::Values(SeqCase{4, 0}, SeqCase{4, 1}, SeqCase{4, 2},
                                           SeqCase{4, 3}, SeqCase{4, 4}, SeqCase{6, 1},
                                           SeqCase{6, 3}, SeqCase{6, 5}, SeqCase{8, 2},
                                           SeqCase{8, 4}));

TEST(Cardinality, TotalizerOverEmptyInputsIsRejected) {
    const auto backend = makeInternalBackend();
    EXPECT_THROW(Totalizer(*backend, {}), PreconditionError);
}

}  // namespace
}  // namespace etcs::cnf
