/// \file formula_helpers.hpp
/// Shared CNF fixtures for the randomized solver test suites: random k-SAT
/// generation, model checking against a formula, pigeonhole instances, and
/// DRAT certification of UNSAT verdicts. Used by differential_test and
/// portfolio_test so both harnesses agree on what "validated" means.
#pragma once

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace etcs::test {

inline sat::CnfFormula makeRandomFormula(std::mt19937& rng, int numVariables,
                                         int numClauses, int clauseSize) {
    sat::CnfFormula f;
    f.numVariables = numVariables;
    std::uniform_int_distribution<int> varDist(0, numVariables - 1);
    std::bernoulli_distribution signDist(0.5);
    for (int c = 0; c < numClauses; ++c) {
        std::vector<sat::Literal> clause;
        for (int k = 0; k < clauseSize; ++k) {
            clause.push_back(sat::Literal(varDist(rng), signDist(rng)));
        }
        f.clauses.push_back(std::move(clause));
    }
    return f;
}

inline bool modelSatisfies(const sat::CnfFormula& f,
                           const std::vector<sat::Value>& model) {
    for (const auto& clause : f.clauses) {
        bool satisfied = false;
        for (sat::Literal l : clause) {
            const sat::Value v = model[static_cast<std::size_t>(l.var())];
            if ((l.sign() && v == sat::Value::False) ||
                (!l.sign() && v == sat::Value::True)) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) {
            return false;
        }
    }
    return true;
}

/// The pigeonhole principle PHP(pigeons, holes): UNSAT whenever
/// pigeons > holes, with refutations exponential for resolution — a compact
/// way to make the solver work hard enough to restart and share clauses.
inline sat::CnfFormula pigeonhole(int pigeons, int holes) {
    sat::CnfFormula f;
    f.numVariables = pigeons * holes;
    const auto litOf = [holes](int p, int h) {
        return sat::Literal::positive(p * holes + h);
    };
    for (int p = 0; p < pigeons; ++p) {
        std::vector<sat::Literal> atLeast;
        for (int h = 0; h < holes; ++h) {
            atLeast.push_back(litOf(p, h));
        }
        f.clauses.push_back(std::move(atLeast));
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
                f.clauses.push_back({~litOf(p1, h), ~litOf(p2, h)});
            }
        }
    }
    return f;
}

/// Certify an UNSAT verdict: the recorded proof must check against the
/// *original* formula with the independent backward checker.
inline ::testing::AssertionResult proofCertifies(const sat::CnfFormula& original,
                                                 const sat::DratProof& proof) {
    const sat::DratCheckResult check = sat::checkDrat(original, proof);
    if (check.verified) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "proof rejected: " << check.error << " (" << proof.steps.size()
           << " steps)";
}

}  // namespace etcs::test
