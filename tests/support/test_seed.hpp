/// \file test_seed.hpp
/// Reproducible seeds for randomized tests.
///
/// Randomized tests obtain their RNG seed through effectiveSeed(fallback).
/// The fallback (the value baked into the test's parameter list) is used
/// unless the run overrides it:
///   * `--seed=N` on the test binary's command line (binaries built with
///     tests/support/seeded_main.cpp), or
///   * the `ETCS_TEST_SEED` environment variable.
/// Failure messages always include the effective seed, so a failing run
/// can be replayed with  ETCS_TEST_SEED=N ./sat_random_test  or
/// `./sat_random_test --seed=N` plus a --gtest_filter for the failing case.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace etcs::test {

/// Slot filled by seeded_main.cpp when --seed=N is on the command line.
inline std::optional<unsigned>& seedOverride() {
    static std::optional<unsigned> slot;
    return slot;
}

/// The seed this run should use where a test would default to `fallback`.
inline unsigned effectiveSeed(unsigned fallback) {
    if (seedOverride().has_value()) {
        return *seedOverride();
    }
    if (const char* env = std::getenv("ETCS_TEST_SEED")) {
        char* end = nullptr;
        const unsigned long value = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0') {
            return static_cast<unsigned>(value);
        }
    }
    return fallback;
}

/// "seed N" — the trace string every randomized test scopes its rounds with.
inline std::string seedTrace(unsigned seed) {
    return "seed " + std::to_string(seed) +
           " (replay: ETCS_TEST_SEED=" + std::to_string(seed) + " or --seed=" +
           std::to_string(seed) + ")";
}

}  // namespace etcs::test
