/// \file seeded_main.cpp
/// gtest main for randomized test binaries: accepts `--seed=N` (or
/// `--seed N`) in addition to the usual gtest flags and routes it to
/// etcs::test::effectiveSeed (see test_seed.hpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "support/test_seed.hpp"

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        const char* value = nullptr;
        if (std::strncmp(argv[i], "--seed=", 7) == 0) {
            value = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            value = argv[++i];
        } else {
            continue;
        }
        char* end = nullptr;
        const unsigned long seed = std::strtoul(value, &end, 10);
        if (end == value || *end != '\0') {
            std::cerr << "invalid --seed value: " << value << "\n";
            return 2;
        }
        etcs::test::seedOverride() = static_cast<unsigned>(seed);
    }
    if (etcs::test::seedOverride().has_value()) {
        std::cout << "[ seed     ] override " << *etcs::test::seedOverride() << "\n";
    }
    return RUN_ALL_TESTS();
}
