// Movement-authority simulator tests.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "studies/studies.hpp"

namespace etcs::sim {
namespace {

using rail::Network;
using rail::SegmentGraph;

/// Single 5-segment line in one TTD.
struct LineFixture {
    Network network;
    std::unique_ptr<SegmentGraph> graph;

    LineFixture() : network("simline") {
        const auto a = network.addNode("A");
        const auto b = network.addNode("B");
        const auto t = network.addTrack("t", a, b, Meters(2500));
        network.addTtd("T", {t});
        graph = std::make_unique<SegmentGraph>(network, Resolution{Meters(500), Seconds(30)});
    }

    [[nodiscard]] rail::SegmentPath fullRoute() const {
        rail::SegmentPath route;
        for (std::size_t i = 0; i < graph->numSegments(); ++i) {
            route.push_back(SegmentId(i));
        }
        return route;
    }
};

TEST(Simulator, SingleTrainRunsToDestination) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    SimTrain train{TrainId(0u), f.fullRoute(), 0, 1, 2};
    const auto result = sim.run({&train, 1}, 20);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.deadlocked);
    // 4 hops at 2 per step: arrival on step 2 (0-indexed steps).
    EXPECT_EQ(result.arrivalStep[0], 2);
}

TEST(Simulator, DelayedDeparture) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    SimTrain train{TrainId(0u), f.fullRoute(), 3, 1, 2};
    const auto result = sim.run({&train, 1}, 20);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.arrivalStep[0], 5);
}

TEST(Simulator, FollowerBlocksOnPureTtd) {
    const LineFixture f;
    // One TTD, no VSS: the follower cannot even enter until the leader
    // arrives and leaves the network.
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    const auto route = f.fullRoute();
    SimTrain trains[] = {{TrainId(0u), route, 0, 1, 1}, {TrainId(1u), route, 1, 1, 1}};
    const auto result = sim.run(trains, 30);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.arrivalStep[0], 4);
    // Leader arrives at 4 and leaves; follower enters afterwards.
    EXPECT_GT(result.arrivalStep[1], 5);
}

TEST(Simulator, FollowerTracksCloselyWithVss) {
    const LineFixture f;
    // Every node a border: each segment its own VSS.
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), true));
    const auto route = f.fullRoute();
    SimTrain trains[] = {{TrainId(0u), route, 0, 1, 1}, {TrainId(1u), route, 1, 1, 1}};
    const auto result = sim.run(trains, 30);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.arrivalStep[0], 4);
    EXPECT_LE(result.arrivalStep[1], 7);  // close following, small delay only
}

TEST(Simulator, HeadOnTrainsDeadlockOnSingleTrack) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), true));
    rail::SegmentPath forward = f.fullRoute();
    rail::SegmentPath backward(forward.rbegin(), forward.rend());
    SimTrain trains[] = {{TrainId(0u), forward, 0, 1, 1}, {TrainId(1u), backward, 0, 1, 1}};
    const auto result = sim.run(trains, 30);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.deadlocked);
}

TEST(Simulator, MaxStepsExceededIsNeitherCompletedNorDeadlocked) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    SimTrain train{TrainId(0u), f.fullRoute(), 10, 1, 1};  // departs after maxSteps
    const auto result = sim.run({&train, 1}, 5);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.stepsSimulated, 5);
}

TEST(Simulator, LongTrainOccupiesItsLength) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), true));
    SimTrain train{TrainId(0u), f.fullRoute(), 0, 2, 1};
    const auto result = sim.run({&train, 1}, 20);
    ASSERT_TRUE(result.completed);
    // While mid-route the snapshot shows two occupied segments.
    bool sawTwo = false;
    for (const auto& step : result.timeline) {
        if (step[0].present && step[0].occupied.size() == 2) {
            sawTwo = true;
        }
    }
    EXPECT_TRUE(sawTwo);
}

TEST(Simulator, TimelineMatchesArrivals) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    SimTrain train{TrainId(0u), f.fullRoute(), 0, 1, 2};
    const auto result = sim.run({&train, 1}, 20);
    ASSERT_TRUE(result.completed);
    // The train occupies its destination on the arrival step itself (so the
    // timeline is a valid witness for the encoding's pinned arrivals) ...
    const auto& atArrival =
        result.timeline[static_cast<std::size_t>(result.arrivalStep[0])][0];
    ASSERT_TRUE(atArrival.present);
    EXPECT_EQ(atArrival.occupied.front(), train.route.back());
    // ... and is no longer present afterwards.
    for (int step = result.arrivalStep[0] + 1; step < result.stepsSimulated; ++step) {
        EXPECT_FALSE(result.timeline[static_cast<std::size_t>(step)][0].present);
    }
}

TEST(Simulator, CrossingAtLoopSucceeds) {
    // Two stations joined by a line, with a two-track loop in the middle:
    // opposing trains pass each other there.
    Network n("loop");
    const auto a = n.addNode("A");
    const auto u = n.addNode("u");
    const auto v = n.addNode("v");
    const auto b = n.addNode("B");
    const auto t1 = n.addTrack("west", a, u, Meters(1000));
    const auto la = n.addTrack("loopA", u, v, Meters(500));
    const auto lb = n.addTrack("loopB", u, v, Meters(500));
    const auto t2 = n.addTrack("east", v, b, Meters(1000));
    n.addTtd("Tw", {t1});
    n.addTtd("Tla", {la});
    n.addTtd("Tlb", {lb});
    n.addTtd("Te", {t2});
    const SegmentGraph g(n, Resolution{Meters(500), Seconds(30)});

    // Routes: east-bound through loopA, west-bound through loopB.
    auto seg = [&](const char* track, int index) {
        for (std::size_t s = 0; s < g.numSegments(); ++s) {
            const auto& segment = g.segment(SegmentId(s));
            if (n.track(segment.track).name == track && segment.indexInTrack == index) {
                return SegmentId(s);
            }
        }
        throw std::logic_error("segment not found");
    };
    const rail::SegmentPath eastRoute = {seg("west", 0), seg("west", 1), seg("loopA", 0),
                                         seg("east", 0), seg("east", 1)};
    const rail::SegmentPath westRoute = {seg("east", 1), seg("east", 0), seg("loopB", 0),
                                         seg("west", 1), seg("west", 0)};
    const Simulator sim(g, std::vector<bool>(g.numNodes(), false));
    SimTrain trains[] = {{TrainId(0u), eastRoute, 0, 1, 1}, {TrainId(1u), westRoute, 0, 1, 1}};
    const auto result = sim.run(trains, 40);
    EXPECT_TRUE(result.completed) << "trains should pass at the loop";
}

TEST(Simulator, RejectsEmptyRoute) {
    const LineFixture f;
    const Simulator sim(*f.graph, std::vector<bool>(f.graph->numNodes(), false));
    SimTrain train{TrainId(0u), {}, 0, 1, 1};
    EXPECT_THROW((void)sim.run({&train, 1}, 5), PreconditionError);
}

TEST(Simulator, SectionLookupMatchesLayout) {
    const LineFixture f;
    std::vector<bool> borders(f.graph->numNodes(), false);
    const Simulator pure(*f.graph, borders);
    EXPECT_EQ(pure.numSections(), 1);
    const Simulator fine(*f.graph, std::vector<bool>(f.graph->numNodes(), true));
    EXPECT_EQ(fine.numSections(), static_cast<int>(f.graph->numSegments()));
    EXPECT_NE(fine.sectionOf(SegmentId(0u)), fine.sectionOf(SegmentId(1u)));
}

}  // namespace
}  // namespace etcs::sim
