// SatBackend contract tests for the internal backend, plus cross-validation
// between the internal CDCL solver and Z3 when libz3 is available.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <vector>

#include "cnf/backend.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

namespace etcs::cnf {
namespace {

using BackendFactory = std::function<std::unique_ptr<SatBackend>()>;

std::vector<BackendFactory> availableBackends() {
    std::vector<BackendFactory> factories{[] { return makeInternalBackend(); }};
#ifdef ETCS_HAVE_Z3
    factories.push_back([] { return makeZ3Backend(); });
#endif
    return factories;
}

TEST(Backend, ContractBasics) {
    for (const auto& factory : availableBackends()) {
        const auto backend = factory();
        SCOPED_TRACE(backend->name());
        const Literal a = Literal::positive(backend->addVariable());
        const Literal b = Literal::positive(backend->addVariable());
        EXPECT_EQ(backend->numVariables(), 2);
        backend->addClause({a, b});
        backend->addUnit(~a);
        EXPECT_EQ(backend->numClauses(), 2u);
        ASSERT_EQ(backend->solve(), SolveStatus::Sat);
        EXPECT_FALSE(backend->modelValue(a));
        EXPECT_TRUE(backend->modelValue(b));
        EXPECT_EQ(backend->solve({~b}), SolveStatus::Unsat);
        const auto core = backend->conflictCore();
        ASSERT_EQ(core.size(), 1u);
        EXPECT_EQ(core[0], ~b);
        // Still usable afterwards.
        EXPECT_EQ(backend->solve(), SolveStatus::Sat);
    }
}

TEST(Backend, CrossCheckOnRandomFormulas) {
    const auto factories = availableBackends();
    if (factories.size() < 2) {
        GTEST_SKIP() << "Z3 not available; nothing to cross-check";
    }
    std::mt19937 rng(4242);
    std::uniform_int_distribution<int> varDist(0, 11);
    std::bernoulli_distribution signDist(0.5);
    for (int round = 0; round < 15; ++round) {
        // One random 3-SAT formula near the phase transition.
        std::vector<std::vector<Literal>> clauses;
        for (int c = 0; c < 50; ++c) {
            std::vector<Literal> clause;
            for (int k = 0; k < 3; ++k) {
                clause.push_back(Literal(varDist(rng), signDist(rng)));
            }
            clauses.push_back(clause);
        }
        std::vector<SolveStatus> verdicts;
        for (const auto& factory : factories) {
            const auto backend = factory();
            for (int v = 0; v < 12; ++v) {
                backend->addVariable();
            }
            for (const auto& clause : clauses) {
                backend->addClause(clause);
            }
            verdicts.push_back(backend->solve());
        }
        for (std::size_t i = 1; i < verdicts.size(); ++i) {
            EXPECT_EQ(verdicts[0], verdicts[i]) << "round " << round;
        }
    }
}

TEST(Backend, CrossCheckOnRunningExampleTasks) {
    const auto factories = availableBackends();
    if (factories.size() < 2) {
        GTEST_SKIP() << "Z3 not available; nothing to cross-check";
    }
    const auto study = studies::runningExample();
    const core::Instance timed(study.network, study.trains, study.timedSchedule,
                               study.resolution);
    for (const auto& factory : factories) {
        core::TaskOptions options;
        options.backendFactory = factory;
        const core::VssLayout pure(timed.graph());
        EXPECT_FALSE(core::verifySchedule(timed, pure, options).feasible);
        const auto generation = core::generateLayout(timed, options);
        ASSERT_TRUE(generation.feasible);
        EXPECT_EQ(generation.sectionCount, 5);
    }
}

}  // namespace
}  // namespace etcs::cnf
