/// \file gen_fuzz_test.cpp
/// Differential fuzz battery over the scenario generator (src/gen/): 200+
/// generated scenarios per run, each cross-checked between independent
/// implementations of the same semantics:
///
///   * solver vs. construction: feasible-kind scenarios must be SAT on the
///     finest layout, infeasible-kind scenarios must be UNSAT;
///   * solver vs. linter: any error-severity lint finding is a soundness
///     claim (the instance is provably UNSAT) — the claim is certified by an
///     independently checked DRAT refutation;
///   * solver vs. simulator: a completed greedy simulation converts into a
///     core::Solution that must pass the solution validator (the oracle of
///     gen/oracle.hpp), and the solver's own SAT witnesses must too;
///   * backend vs. backend: internal, deterministic portfolio, and (when
///     built in) Z3 must agree on every verdict;
///   * pruned vs. unpruned: the reachability-pruned encoding (the default;
///     certifyUnsat also DRAT-checks its refutations) must agree with the
///     full encoding on every verdict, and both witnesses must validate.
///
/// Reproduce a failure with ETCS_TEST_SEED=N or --seed=N (see
/// support/test_seed.hpp); the per-scenario SCOPED_TRACE names the instance.
#include <gtest/gtest.h>

#include <string>

#include "cnf/backend.hpp"
#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "gen/generator.hpp"
#include "gen/oracle.hpp"
#include "lint/rail_lint.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "support/test_seed.hpp"

namespace {

using etcs::gen::Family;
using etcs::gen::GenParams;
using etcs::gen::ScheduleKind;

/// 6 families x 3 kinds x kRoundsPerCombination scenarios per run.
constexpr int kRoundsPerCombination = 12;

/// Encode the verification instance (finest layout) and certify its
/// unsatisfiability with the solver's DRAT proof and the independent
/// checker.
void certifyUnsat(const etcs::core::Instance& instance) {
    etcs::cnf::CollectingBackend collector;
    etcs::core::Encoder encoder(collector, instance);
    const auto finest = etcs::core::VssLayout::finest(instance.graph());
    encoder.encode(&finest);
    const etcs::sat::CnfFormula formula = collector.takeFormula();

    etcs::sat::MemoryProofWriter proofWriter;
    etcs::sat::Solver solver;
    solver.setProofWriter(&proofWriter);
    for (int v = 0; v < formula.numVariables; ++v) {
        solver.addVariable();
    }
    for (const auto& clause : formula.clauses) {
        solver.addClause(clause);
    }
    ASSERT_EQ(solver.solve(), etcs::sat::SolveStatus::Unsat);
    const auto check = etcs::sat::checkDrat(formula, proofWriter.takeProof());
    EXPECT_TRUE(check.verified) << check.error;
}

TEST(GenFuzz, DifferentialBattery) {
    const unsigned baseSeed = etcs::test::effectiveSeed(20260809U);
    SCOPED_TRACE(etcs::test::seedTrace(baseSeed));

    int scenarios = 0;
    for (int round = 0; round < kRoundsPerCombination; ++round) {
        for (Family family : etcs::gen::allFamilies()) {
            for (ScheduleKind kind : etcs::gen::allScheduleKinds()) {
                GenParams params;
                params.family = family;
                params.schedule = kind;
                params.size = 1 + round % 3;
                params.trains = 1 + round % 3;
                params.seed = static_cast<std::uint64_t>(baseSeed) * 1000003ULL +
                              static_cast<std::uint64_t>(scenarios);
                const auto scenario = etcs::gen::generate(params);
                SCOPED_TRACE(scenario.name);
                ++scenarios;

                const etcs::core::Instance instance(scenario.network, scenario.trains,
                                                    scenario.schedule,
                                                    params.resolution);
                const auto finest = etcs::core::VssLayout::finest(instance.graph());

                // Reference verdict: the internal backend, lint disabled so
                // the solver itself is exercised on every instance.
                etcs::core::TaskOptions internal;
                internal.lintInstance = false;
                const auto verdict =
                    etcs::core::verifySchedule(instance, finest, internal);

                // Construction guarantees.
                if (kind == ScheduleKind::Feasible) {
                    EXPECT_TRUE(verdict.feasible)
                        << "feasible-by-construction scenario is UNSAT";
                }
                if (kind == ScheduleKind::Infeasible) {
                    EXPECT_FALSE(verdict.feasible)
                        << "provably infeasible scenario is SAT";
                }

                // Solver SAT witnesses satisfy the independent validator.
                if (verdict.feasible) {
                    ASSERT_TRUE(verdict.solution.has_value());
                    EXPECT_TRUE(
                        etcs::core::validateSolution(instance, *verdict.solution)
                            .empty());
                }

                // Reachability pruning soundness: the unpruned encoding
                // (the reference verdict above uses the default, pruned
                // one) must agree on every verdict, and its witnesses must
                // validate too.
                etcs::core::TaskOptions unpruned;
                unpruned.lintInstance = false;
                unpruned.encoder.pruneUnreachable = false;
                const auto fullVerdict =
                    etcs::core::verifySchedule(instance, finest, unpruned);
                EXPECT_EQ(fullVerdict.feasible, verdict.feasible)
                    << "pruned and unpruned encodings disagree";
                if (fullVerdict.feasible) {
                    ASSERT_TRUE(fullVerdict.solution.has_value());
                    EXPECT_TRUE(
                        etcs::core::validateSolution(instance, *fullVerdict.solution)
                            .empty());
                }

                // Linter soundness: an error-severity finding claims UNSAT;
                // certify the claim with an independently checked proof.
                etcs::lint::LintReport lintReport;
                etcs::lint::lintScenario(scenario.network, scenario.trains,
                                         scenario.schedule, params.resolution,
                                         lintReport);
                if (lintReport.hasErrors()) {
                    EXPECT_FALSE(verdict.feasible)
                        << "lint proved UNSAT but the solver found a model";
                    certifyUnsat(instance);
                }
                if (kind == ScheduleKind::Infeasible) {
                    EXPECT_TRUE(lintReport.has("L024"))
                        << "infeasible-kind deadline should trip the L024 bound";
                }

                // Simulator oracle. Only the feasible kind pins deadlines at
                // the simulated arrivals; tight/infeasible distort a deadline
                // below them, so there the completed simulation is no longer
                // a witness for the instance (and its horizon may clip the
                // traces).
                if (kind == ScheduleKind::Feasible) {
                    const auto sim = etcs::gen::simulate(instance, finest);
                    EXPECT_TRUE(sim.completed)
                        << "sampling simulation must replay on the same layout";
                    if (sim.completed) {
                        const auto witness =
                            etcs::gen::solutionFromSimulation(instance, finest, sim);
                        EXPECT_TRUE(
                            etcs::core::validateSolution(instance, witness).empty())
                            << "completed simulation fails the solution validator";
                        EXPECT_TRUE(verdict.feasible)
                            << "simulation found a witness but the solver says UNSAT";
                    }
                }

                // Backend agreement.
                etcs::core::TaskOptions portfolio;
                portfolio.lintInstance = false;
                portfolio.threads = 2;
                portfolio.deterministicPortfolio = true;
                EXPECT_EQ(
                    etcs::core::verifySchedule(instance, finest, portfolio).feasible,
                    verdict.feasible)
                    << "portfolio backend disagrees";
#ifdef ETCS_HAVE_Z3
                etcs::core::TaskOptions z3Options;
                z3Options.lintInstance = false;
                z3Options.backendFactory = [] { return etcs::cnf::makeZ3Backend(); };
                EXPECT_EQ(
                    etcs::core::verifySchedule(instance, finest, z3Options).feasible,
                          verdict.feasible)
                    << "Z3 backend disagrees";
#endif
            }
        }
    }
    EXPECT_GE(scenarios, 200);
}

}  // namespace
