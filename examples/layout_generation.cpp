/// \file layout_generation.cpp
/// The paper's second design task on the Fig. 4a "Simple Layout": generate a
/// minimal VSS layout for a schedule the pure TTD layout cannot realize,
/// print where the virtual borders go, and export Graphviz drawings.
///
/// Usage: layout_generation [output-prefix]
///   Writes <prefix>_network.dot and <prefix>_vss.dot (default prefix:
///   "simple_layout").
#include <fstream>
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "railway/dot.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main(int argc, char** argv) {
    const std::string prefix = argc > 1 ? argv[1] : "simple_layout";
    const auto study = studies::simpleLayout();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);

    std::cout << "=== " << study.name << " ===\n"
              << "tracks: " << study.network.numTracks() << ", TTD sections: "
              << study.network.numTtds() << ", segments at r_s = "
              << study.resolution.spatial.kilometers()
              << " km: " << instance.graph().numSegments() << "\n\n";

    // The schedule fails on the pure TTD layout...
    const core::VssLayout pure(instance.graph());
    const auto verification = core::verifySchedule(instance, pure);
    std::cout << "schedule on the pure TTD layout: "
              << (verification.feasible ? "feasible" : "infeasible") << "\n";

    // ... so let the solver place virtual subsections.
    const auto generation = core::generateLayout(instance);
    if (!generation.feasible) {
        std::cout << "no VSS layout can realize the schedule -- nothing to export\n";
        return 1;
    }
    const core::VssLayout& layout = generation.solution->layout;
    std::cout << "generated layout: " << generation.sectionCount << " sections ("
              << layout.virtualBorderCount(instance.graph()) << " virtual borders), "
              << generation.stats.numVariables << " variables, "
              << generation.stats.runtimeSeconds << " s\n\n";

    // Describe each virtual border in railway terms.
    const auto& graph = instance.graph();
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        const SegNodeId node{n};
        if (graph.node(node).fixedBorder || !layout.flags()[n]) {
            continue;
        }
        const auto segments = graph.segmentsAt(node);
        std::cout << "virtual border between";
        for (SegmentId s : segments) {
            std::cout << " " << graph.segmentLabel(s);
        }
        std::cout << "\n";
    }

    // Export DOT drawings: the physical network and the VSS decomposition.
    {
        std::ofstream out(prefix + "_network.dot");
        rail::writeDot(out, study.network);
    }
    {
        std::ofstream out(prefix + "_vss.dot");
        rail::writeDot(out, graph, &layout.flags());
    }
    std::cout << "\nwrote " << prefix << "_network.dot and " << prefix
              << "_vss.dot (render with: neato -Tsvg / dot -Tsvg)\n";
    return 0;
}
