/// \file quickstart.cpp
/// Five-minute tour of the library: build a small railway network, define a
/// schedule, and run all three ETCS Level 3 design tasks.
///
///   network:   StWest ===TTD_W=== [loop] ===TTD_E=== StEast
///   schedule:  one eastbound and one westbound train that must pass at the
///              middle loop.
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "railway/network.hpp"
#include "railway/schedule.hpp"
#include "railway/train.hpp"

using namespace etcs;

int main() {
    // 1. Describe the physical network: nodes, tracks, TTD sections,
    //    stations. The middle passing loop has two parallel tracks.
    rail::Network network("quickstart");
    const auto west = network.addNode("west");
    const auto loopIn = network.addNode("loopIn");
    const auto loopOut = network.addNode("loopOut");
    const auto east = network.addNode("east");

    const auto lineW = network.addTrack("lineW", west, loopIn, Meters::fromKilometers(2.0));
    const auto loopA = network.addTrack("loopA", loopIn, loopOut, Meters::fromKilometers(1.0));
    const auto loopB = network.addTrack("loopB", loopIn, loopOut, Meters::fromKilometers(1.0));
    const auto lineE = network.addTrack("lineE", loopOut, east, Meters::fromKilometers(2.0));

    network.addTtd("TTD_W", {lineW});
    network.addTtd("TTD_LA", {loopA});
    network.addTtd("TTD_LB", {loopB});
    network.addTtd("TTD_E", {lineE});

    const auto stWest = network.addStation("StWest", lineW, Meters(0));
    const auto stEast = network.addStation("StEast", lineE, Meters::fromKilometers(2.0));
    network.validate();

    // 2. Trains and a (fully timed) schedule.
    rail::TrainSet trains;
    const auto icEast = trains.addTrain("IC-East", Speed::fromKmPerHour(120), Meters(200));
    const auto icWest = trains.addTrain("IC-West", Speed::fromKmPerHour(120), Meters(200));

    rail::Schedule schedule;
    auto addRun = [&schedule](TrainId train, StationId from, StationId to, const char* dep,
                              const char* arr) {
        rail::TrainRun run;
        run.train = train;
        run.origin = from;
        run.departure = Seconds::parse(dep);
        run.stops.push_back(rail::TimedStop{to, Seconds::parse(arr)});
        schedule.addRun(run);
    };
    addRun(icEast, stWest, stEast, "0:00", "0:08");
    addRun(icWest, stEast, stWest, "0:00", "0:08");

    // 3. Discretize: r_s = 0.5 km, r_t = 1 min (paper Sec. III-A).
    const Resolution resolution{Meters::fromKilometers(0.5), Seconds::fromMinutes(1.0)};
    const core::Instance instance(network, trains, schedule, resolution);
    std::cout << "instance: " << instance.graph().numSegments() << " segments, "
              << instance.horizonSteps() << " time steps\n\n";

    // 4. Task 1 -- verification: does the schedule work on the pure TTD
    //    layout (no virtual subsections)?
    const core::VssLayout pureTtd(instance.graph());
    const auto verification = core::verifySchedule(instance, pureTtd);
    std::cout << "verification on pure TTD layout (" << pureTtd.sectionCount(instance.graph())
              << " sections): " << (verification.feasible ? "works" : "does NOT work") << "\n";

    // 5. Task 2 -- generation: find a VSS layout (with as few sections as
    //    possible) on which the schedule does work.
    const auto generation = core::generateLayout(instance);
    if (generation.feasible) {
        std::cout << "generated VSS layout with " << generation.sectionCount
                  << " sections (runtime " << generation.stats.runtimeSeconds << " s)\n";
        const auto violations = core::validateSolution(instance, *generation.solution);
        std::cout << "independent validator: "
                  << (violations.empty() ? "solution OK" : "VIOLATIONS!") << "\n";
    } else {
        std::cout << "no VSS layout can realize this schedule\n";
    }

    // 6. Task 3 -- optimization: drop the arrival times and ask for the
    //    fastest schedule any VSS layout allows.
    rail::Schedule open;
    for (const auto& run : schedule.runs()) {
        rail::TrainRun openRun = run;
        openRun.stops.back().arrival.reset();
        open.addRun(openRun);
    }
    open.setHorizon(schedule.horizon());
    const core::Instance openInstance(network, trains, open, resolution);
    const auto optimization = core::optimizeSchedule(openInstance);
    if (optimization.feasible) {
        std::cout << "optimized schedule completes in " << optimization.completionSteps
                  << " steps (of " << openInstance.horizonSteps() << " available) using "
                  << optimization.sectionCount << " sections\n";
        for (std::size_t r = 0; r < optimization.solution->traces.size(); ++r) {
            const auto& trace = optimization.solution->traces[r];
            std::cout << "  " << trains.train(openInstance.runs()[r].train).name
                      << " arrives at step " << trace.firstArrivalStep << " ("
                      << resolution.timeOf(trace.firstArrivalStep).clock() << ")\n";
        }
    }
    return 0;
}
