/// \file nordlandsbanen_study.cpp
/// The real-life example inspired by the Norwegian Nordlandsbanen: run all
/// three design tasks and additionally quantify what the virtual
/// subsections buy by optimizing the schedule on the pure TTD layout too.
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main() {
    const auto study = studies::nordlandsbanen();
    std::cout << "=== " << study.name << " ===\n"
              << "822 km Trondheim--Bodo single track, " << study.network.numStations()
              << " station points (58 numbered halts), " << study.network.numTtds()
              << " TTD sections\n"
              << "resolution: r_s = " << study.resolution.spatial.kilometers()
              << " km, r_t = " << study.resolution.temporal.minutes() << " min\n\n";

    const core::Instance timed(study.network, study.trains, study.timedSchedule,
                               study.resolution);
    std::cout << "discretized: " << timed.graph().numSegments() << " segments, "
              << timed.horizonSteps() << " time steps, " << timed.numRuns() << " trains\n\n";

    // Task 1: the timetable does not work with TTDs alone.
    const core::VssLayout pure(timed.graph());
    const auto verification = core::verifySchedule(timed, pure);
    std::cout << "[verification] pure TTD layout (" << pure.sectionCount(timed.graph())
              << " sections): " << (verification.feasible ? "feasible" : "infeasible")
              << "  [" << verification.stats.numVariables << " vars, "
              << verification.stats.runtimeSeconds << " s]\n";

    // Task 2: a few virtual subsections fix it.
    const auto generation = core::generateLayout(timed);
    if (generation.feasible) {
        std::cout << "[generation]   VSS layout with " << generation.sectionCount
                  << " sections realizes the timetable  [" << generation.stats.numVariables
                  << " vars, " << generation.stats.runtimeSeconds << " s]\n";
    } else {
        std::cout << "[generation]   infeasible\n";
    }

    // Task 3: free the arrivals and minimize completion time.
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);
    const auto optimized = core::optimizeSchedule(open);
    if (optimized.feasible) {
        std::cout << "[optimization] all trains done after " << optimized.completionSteps
                  << " steps (" << study.resolution.timeOf(optimized.completionSteps).clock()
                  << ") with " << optimized.sectionCount << " sections  ["
                  << optimized.stats.runtimeSeconds << " s]\n";
    }

    // Extra: what does ETCS Level 3 buy over the installed infrastructure?
    const auto onPure = core::optimizeScheduleOnLayout(open, pure);
    if (onPure.feasible && optimized.feasible) {
        std::cout << "\nVSS speed-up: best possible completion drops from "
                  << onPure.completionSteps << " steps (pure TTD) to "
                  << optimized.completionSteps << " steps (with VSS)\n";
    } else if (optimized.feasible) {
        std::cout << "\nOn the pure TTD layout the trains cannot even complete within the "
                     "horizon; with VSS they finish in "
                  << optimized.completionSteps << " steps\n";
    }

    if (optimized.feasible) {
        std::cout << "\nPer-train arrivals under the optimized layout:\n";
        for (std::size_t r = 0; r < open.numRuns(); ++r) {
            const auto& trace = optimized.solution->traces[r];
            std::cout << "  " << study.trains.train(open.runs()[r].train).name << ": dep "
                      << study.resolution.timeOf(open.runs()[r].departureStep).clock()
                      << " -> arr "
                      << study.resolution.timeOf(trace.firstArrivalStep).clock() << "\n";
        }
    }
    return 0;
}
